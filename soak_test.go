package nimble

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/clean"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestConcurrentMixedWorkload soaks the whole facade under simultaneous
// querying, materialization churn, cache traffic, source updates, and
// cleaning-flow runs — the kind of load a deployed integration server
// sees. Run with -race (the CI suite does) to catch synchronization
// regressions across the matview/qcache/engine interplay.
func TestConcurrentMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sys := New(Config{Instances: 2, CacheEntries: 16})
	db := workload.CustomerDB("crm", 200, 2, 1)
	if err := sys.AddRelationalSource("crmdb", db); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Query workers (cache hits and misses).
	queries := workload.CityQueries(50, 0.9, 3)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := sys.Query(ctx, queries[(i+w)%len(queries)]); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}(w)
	}
	// Materialization churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := sys.Materialize(ctx, "customers"); err != nil {
				errs <- fmt.Errorf("materialize: %w", err)
				return
			}
			if i%3 == 0 {
				sys.Drop("customers")
			} else if err := sys.Refresh(ctx, "customers"); err != nil {
				errs <- fmt.Errorf("refresh: %w", err)
				return
			}
		}
	}()
	// Source-side updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO customers VALUES (%d, 'Soak %d', 'Seattle', 'gold')`, 10000+i, i))
		}
	}()
	// Cleaning flows sharing the system concordance DB and lineage log.
	set := workload.DirtyCustomers(60, 0.3, 9)
	flow := &Flow{
		Name:      "soak",
		Translate: clean.TranslateAddressFields,
		Normalize: map[string]clean.Normalizer{"name": clean.NormalizeName},
		BlockKey:  func(r Record) string { return r.Get("city") + r.Get("address") },
		Matcher: clean.CompositeMatcher([]clean.FieldWeight{
			{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.95,
		ReviewThreshold: 0.95,
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sys.RunCleaningFlow(flow, set.Records, nil, 0); err != nil {
					errs <- fmt.Errorf("clean: %w", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The system still answers correctly afterwards.
	res, err := sys.Query(ctx, `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 {
		t.Error("no results after soak")
	}
}

// buildSoakSystem assembles the three-source chaos-soak deployment:
// a relational CRM, an XML ticket feed, and a source that is (in the
// chaos variant) permanently offline. With withChaos=false it is the
// fault-free twin used as the correctness oracle. The chaos variant
// wraps every source in a seeded fault schedule, injects a fake clock
// into backoff and latency sleeps, and arms retries plus breakers.
func buildSoakSystem(t testing.TB, withChaos bool, seed int64) (*System, map[string]*chaos.Source) {
	t.Helper()
	sys := New(Config{Instances: 1, CacheEntries: 0, TraceBuffer: -1, Metrics: obs.NewRegistry()})
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", 120, 2, 7)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Integration escalation</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Question about lenses</subject></ticket>
	</tickets>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("dead", `<dead><item>alpha</item><item>beta</item></dead>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("goldcust", `
		WHERE <cust><who>$w</who><where>$c</where><tier>"gold"</tier></cust> IN "customers"
		CONSTRUCT <vip><name>$w</name><city>$c</city></vip>`); err != nil {
		t.Fatal(err)
	}
	if !withChaos {
		return sys, nil
	}
	clk := chaos.NewFakeClock()
	wrapped := map[string]*chaos.Source{}
	sys.WrapSources(func(src Source) Source {
		var sched chaos.Schedule
		switch src.Name() {
		case "crmdb":
			sched = chaos.Mix{Seed: seed, PUnavailable: 0.12, PMalformed: 0.08,
				PGarbage: 0.04, PHang: 0.04, MaxLatency: 20 * time.Millisecond}
		case "tickets":
			sched = chaos.Flap{Up: 3, Down: 2}
		case "dead":
			sched = chaos.Script{Then: chaos.Fault{Kind: chaos.Unavailable}}
		default:
			return nil
		}
		cs := chaos.Wrap(src, sched).WithSleep(clk.Sleep)
		wrapped[src.Name()] = cs
		return cs
	})
	breakers := exec.NewBreakerSet(4, 200*time.Millisecond, clk, sys.Metrics())
	sys.setResilience(exec.Resilience{
		FetchTimeout: 150 * time.Millisecond, // real time: only Hang faults pay it
		Retries:      2,
		RetryBase:    10 * time.Millisecond, // virtual time: FakeClock sleeps
		RetryMax:     80 * time.Millisecond,
	}, breakers, clk)
	return sys, wrapped
}

// soakQueries is the deterministic mixed workload: city lookups over
// the mediated schema (→ crmdb), the raw ticket feed, the second-level
// gold-tier schema, and the permanently dead source, round-robin.
func soakQueries(n int) []string {
	cities := workload.Cities()
	qs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			qs = append(qs, fmt.Sprintf(
				`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "%s" CONSTRUCT <hit>$w</hit>`,
				cities[i%len(cities)]))
		case 1:
			qs = append(qs, `WHERE <ticket><subject>$s</subject></ticket> IN "tickets" CONSTRUCT <r>$s</r>`)
		case 2:
			qs = append(qs, `WHERE <vip><name>$n</name></vip> IN "goldcust" CONSTRUCT <g>$n</g>`)
		default:
			qs = append(qs, `WHERE <item>$x</item> IN "dead" CONSTRUCT <r>$x</r>`)
		}
	}
	return qs
}

// runChaosSoak executes n mixed queries against a freshly built chaos
// deployment and returns the full run report. It enforces the soak
// invariants: no query hangs or panics, every Complete result is
// byte-identical to the fault-free twin's answer, every incomplete
// result names its failed sources, and the dead source is quarantined
// by its breaker (fetched far fewer times than it is queried).
func runChaosSoak(t *testing.T, seed int64, n int) string {
	t.Helper()
	baseline, _ := buildSoakSystem(t, false, 0)
	sys, wrapped := buildSoakSystem(t, true, seed)
	ctx := context.Background()

	oracle := map[string]string{}
	var report strings.Builder
	fmt.Fprintf(&report, "chaos soak seed=%d queries=%d\n", seed, n)
	deadQueries := 0
	for i, q := range soakQueries(n) {
		if _, ok := oracle[q]; !ok {
			res, err := baseline.Query(ctx, q)
			if err != nil || !res.Complete {
				t.Fatalf("baseline query %d failed: complete=%v err=%v", i, res != nil && res.Complete, err)
			}
			oracle[q] = res.XML()
		}
		if strings.Contains(q, `"dead"`) {
			deadQueries++
		}
		start := time.Now()
		res, err := sys.Query(ctx, q)
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("query %d took %v — resilience layer failed to bound it", i, elapsed)
		}
		switch {
		case err != nil:
			// A clean failure (e.g. a Garbage fault under the partial
			// policy) is acceptable; a panic or hang is not.
			fmt.Fprintf(&report, "q%03d error %v\n", i, err)
		case res.Complete:
			if got := res.XML(); got != oracle[q] {
				t.Errorf("query %d reported Complete but differs from the fault-free answer:\n got %s\nwant %s", i, got, oracle[q])
			}
			fmt.Fprintf(&report, "q%03d ok\n", i)
		default:
			if len(res.FailedSources) == 0 {
				t.Errorf("query %d incomplete without failed sources: %+v", i, res.Completeness)
			}
			fmt.Fprintf(&report, "q%03d partial failed=%v\n", i, res.FailedSources)
		}
	}

	// The breaker must have quarantined the dead source: without it
	// every dead query costs 1+Retries fetches; with it most are
	// skipped before touching the source.
	deadCalls, _ := wrapped["dead"].Stats()
	if deadCalls >= deadQueries {
		t.Errorf("dead source fetched %d times across %d queries — breaker did not quarantine it", deadCalls, deadQueries)
	}

	// Close the report with the final breaker positions and the injected
	// fault census (sorted: the report is compared byte-for-byte).
	states := sys.BreakerStates()
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&report, "breaker %s=%s\n", k, states[k])
	}
	for _, name := range []string{"crmdb", "dead", "tickets"} {
		calls, injected := wrapped[name].Stats()
		fmt.Fprintf(&report, "%s calls=%d", name, calls)
		for k := chaos.Pass; k <= chaos.Hang; k++ {
			if injected[k] > 0 {
				fmt.Fprintf(&report, " %s=%d", k, injected[k])
			}
		}
		report.WriteString("\n")
	}
	return report.String()
}

// TestChaosSoak runs 200 mixed queries under a seeded fault schedule,
// twice, and demands byte-identical run reports — the determinism
// contract that makes any chaos failure replayable — on top of the
// per-query soak invariants (no hangs, no falsely-Complete results,
// clean degradation). The -tags soak build runs the longer variant.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const seed, n = 20260806, 200
	first := runChaosSoak(t, seed, n)
	second := runChaosSoak(t, seed, n)
	if first != second {
		t.Errorf("same-seed replay diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// The schedule must actually have exercised degradation paths.
	for _, want := range []string{"q000 ok", "partial", "failed=[dead]"} {
		if !strings.Contains(first, want) {
			t.Errorf("report missing %q:\n%s", want, first)
		}
	}
}

// TestRetryRecoversEndToEnd: a source that fails twice then recovers is
// healed by the retry layer — the query completes, the retries show up
// in the EXPLAIN fetch node, and the retry counter advances.
func TestRetryRecoversEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	sys := New(Config{Instances: 1, TraceBuffer: -1, Metrics: reg})
	if err := sys.AddXMLSource("feed", `<feed><a>one</a><a>two</a></feed>`); err != nil {
		t.Fatal(err)
	}
	clk := chaos.NewFakeClock()
	var cs *chaos.Source
	sys.WrapSources(func(src Source) Source {
		cs = chaos.Wrap(src, chaos.Fail(2)).WithSleep(clk.Sleep)
		return cs
	})
	sys.setResilience(exec.Resilience{Retries: 2, RetryBase: 5 * time.Millisecond}, nil, clk)

	res, err := sys.Query(context.Background(), `WHERE <a>$x</a> IN "feed" CONSTRUCT <r>$x</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Values) != 2 {
		t.Fatalf("result = complete=%v values=%d", res.Complete, len(res.Values))
	}
	if calls, _ := cs.Stats(); calls != 3 {
		t.Errorf("source fetched %d times, want 3 (two failures + recovery)", calls)
	}
	if res.Explain == nil || !strings.Contains(res.Explain.Render(), "retries=2") {
		var plan string
		if res.Explain != nil {
			plan = res.Explain.Render()
		}
		t.Errorf("EXPLAIN missing retry attribution:\n%s", plan)
	}
	if n := reg.Counter("nimble_fetch_retries_total", "source", "feed").Value(); n != 2 {
		t.Errorf("nimble_fetch_retries_total = %d, want 2", n)
	}
}
