package nimble

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/clean"
	"repro/internal/workload"
)

// TestConcurrentMixedWorkload soaks the whole facade under simultaneous
// querying, materialization churn, cache traffic, source updates, and
// cleaning-flow runs — the kind of load a deployed integration server
// sees. Run with -race (the CI suite does) to catch synchronization
// regressions across the matview/qcache/engine interplay.
func TestConcurrentMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sys := New(Config{Instances: 2, CacheEntries: 16})
	db := workload.CustomerDB("crm", 200, 2, 1)
	if err := sys.AddRelationalSource("crmdb", db); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Query workers (cache hits and misses).
	queries := workload.CityQueries(50, 0.9, 3)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := sys.Query(ctx, queries[(i+w)%len(queries)]); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}(w)
	}
	// Materialization churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := sys.Materialize(ctx, "customers"); err != nil {
				errs <- fmt.Errorf("materialize: %w", err)
				return
			}
			if i%3 == 0 {
				sys.Drop("customers")
			} else if err := sys.Refresh(ctx, "customers"); err != nil {
				errs <- fmt.Errorf("refresh: %w", err)
				return
			}
		}
	}()
	// Source-side updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO customers VALUES (%d, 'Soak %d', 'Seattle', 'gold')`, 10000+i, i))
		}
	}()
	// Cleaning flows sharing the system concordance DB and lineage log.
	set := workload.DirtyCustomers(60, 0.3, 9)
	flow := &Flow{
		Name:      "soak",
		Translate: clean.TranslateAddressFields,
		Normalize: map[string]clean.Normalizer{"name": clean.NormalizeName},
		BlockKey:  func(r Record) string { return r.Get("city") + r.Get("address") },
		Matcher: clean.CompositeMatcher([]clean.FieldWeight{
			{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.95,
		ReviewThreshold: 0.95,
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sys.RunCleaningFlow(flow, set.Records, nil, 0); err != nil {
					errs <- fmt.Errorf("clean: %w", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The system still answers correctly afterwards.
	res, err := sys.Query(ctx, `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 {
		t.Error("no results after soak")
	}
}
