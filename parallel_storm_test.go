package nimble

// Parallel-execution storm: concurrent parallel queries hammer the
// cluster front end while chaos keeps one source dead and another slow.
// Every healthy response must be byte-identical to a serial oracle
// computed up front — the no-lost-no-duplicated-tuples property of the
// exchange machinery under scheduler pressure — and the parallel-worker
// gauge must return to zero afterwards (no leaked worker accounting).
// CI runs this under -race (the parallel-race step).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/workload"
)

func buildStormSystem(t *testing.T, reg *obs.Registry, parallelism, budget int) *System {
	t.Helper()
	sys := New(Config{
		Instances:    2,
		Parallelism:  parallelism,
		WorkerBudget: budget,
		Metrics:      reg,
		TraceBuffer:  -1,
		FetchRetries: 1,
		RetryBackoff: time.Millisecond,
		FetchTimeout: 2 * time.Second,
	})
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", 40, 2, 11)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Engine overheats</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Manual unclear</subject></ticket>
		<ticket pri="high"><cust>3</cust><subject>Crash on start</subject></ticket>
		<ticket pri="low"><cust>4</cust><subject>Wrong invoice</subject></ticket>
	</tickets>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("dead", `<dead><item>alpha</item></dead>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("slowsrc", `<slow><item>beta</item><item>gamma</item></slow>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	sys.WrapSources(func(src Source) Source {
		switch src.Name() {
		case "dead":
			return chaos.Wrap(src, chaos.Script{Then: chaos.Fault{Kind: chaos.Unavailable}})
		case "slowsrc":
			return chaos.Wrap(src, chaos.Script{Then: chaos.Fault{Kind: chaos.Slow, Latency: 2 * time.Millisecond}})
		}
		return nil
	})
	return sys
}

func TestParallelStormUnderChaos(t *testing.T) {
	reg := obs.NewRegistry()
	sys := buildStormSystem(t, reg, 4, 0)
	defer sys.Close()
	ts := httptest.NewServer(sys.HTTPHandler("admin"))
	defer ts.Close()

	// The oracle comes from a serial twin (same deterministic dataset,
	// parallelism 1): the storm's parallel answers must match it byte
	// for byte.
	serial := buildStormSystem(t, obs.NewRegistry(), 1, 0)
	defer serial.Close()
	tsSerial := httptest.NewServer(serial.HTTPHandler("admin"))
	defer tsSerial.Close()

	postTo := func(base, q string) (int, string) {
		resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(q))
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	post := func(q string) (int, string) { return postTo(ts.URL, q) }

	const healthyQL = `WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
		<ticket><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
		CONSTRUCT <r><who>$w</who><subject>$s</subject></r> ORDER-BY $w`
	const slowQL = `WHERE <item>$x</item> IN "slowsrc" CONSTRUCT <r>$x</r>`
	const deadQL = `WHERE <item>$x</item> IN "dead" CONSTRUCT <r>$x</r>`

	// Serial oracle for the healthy join, computed before the storm.
	code, oracle := postTo(tsSerial.URL, healthyQL)
	if code != 200 {
		t.Fatalf("oracle query: %d %s", code, oracle)
	}
	if !strings.Contains(oracle, "<subject>") || strings.Contains(oracle, `complete="false"`) {
		t.Fatalf("oracle unexpected: %s", oracle)
	}

	const (
		goroutines = 8
		iterations = 12
	)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch (g + i) % 3 {
				case 0, 1:
					code, body := post(healthyQL)
					if code != 200 {
						errs <- "healthy query status " + body
						continue
					}
					if body != oracle {
						errs <- "healthy query result differs from oracle (lost or duplicated tuples):\n" + body
					}
				case 2:
					// Fault traffic: a dead source yields flagged partial
					// results; a slow one just takes longer. Either way the
					// request must complete without tearing the system.
					var code int
					if i%2 == 0 {
						code, _ = post(deadQL)
					} else {
						code, _ = post(slowQL)
					}
					if code != 200 {
						errs <- "chaos query failed hard"
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Every exchange tore its pool down: the worker gauge is balanced.
	if v := reg.Gauge("nimble_parallel_workers").Value(); v != 0 {
		t.Fatalf("nimble_parallel_workers = %v after storm, want 0 (leaked worker accounting)", v)
	}
}
