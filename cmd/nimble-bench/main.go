// Command nimble-bench runs the experiment harness and prints the
// EXPERIMENTS.md tables.
//
// Usage:
//
//	nimble-bench [-full] [-only E5] [-bench9 [-out BENCH_9.json]]
//
// Without flags it runs every experiment at quick scale; -full uses the
// larger sizes EXPERIMENTS.md reports; -only runs a single experiment by
// id (F1, E1..E8). -bench9 runs only the intra-query parallelism
// benchmark and writes its machine-readable report (schema documented
// in EXPERIMENTS.md) so future PRs have a perf trajectory to compare.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slower; the EXPERIMENTS.md numbers)")
	only := flag.String("only", "", "run a single experiment by id (F1, E1..E8)")
	bench9 := flag.Bool("bench9", false, "run the intra-query parallelism benchmark and write its JSON report")
	out := flag.String("out", "BENCH_9.json", "output path for the -bench9 report")
	flag.Parse()

	scale := experiments.QuickScale()
	label := "quick"
	if *full {
		scale = experiments.FullScale()
		label = "full"
	}
	fmt.Printf("nimble-bench: scale=%s customers=%d queries=%d trials=%d\n\n",
		label, scale.Customers, scale.Queries, scale.Trials)

	if *bench9 {
		start := time.Now()
		rep := experiments.Bench9Parallel(scale, label)
		fmt.Print(rep.Table().String())
		fmt.Printf("(B9 in %.1fs)\n\n", time.Since(start).Seconds())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench9: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench9: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench9: wrote %s\n", *out)
		return
	}

	runners := map[string]func(experiments.Scale) *experiments.Table{
		"F1": experiments.F1Architecture,
		"E1": experiments.E1WarehousingVsVirtual,
		"E2": experiments.E2ViewSelection,
		"E3": experiments.E3QueryCache,
		"E4": experiments.E4PartialResults,
		"E5": experiments.E5Pushdown,
		"E6": experiments.E6Cleaning,
		"E7": experiments.E7LoadBalance,
		"E8": experiments.E8Algebra,
		"E9": experiments.E9Hierarchy,
	}
	order := []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}

	if *only != "" {
		id := strings.ToUpper(*only)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", *only, strings.Join(order, ", "))
			os.Exit(2)
		}
		order = []string{id}
		_ = run
	}
	for _, id := range order {
		start := time.Now()
		table := runners[id](scale)
		fmt.Print(table.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	// Observability snapshot: everything the experiments recorded into
	// the default registry (systems built with an explicit Config.Metrics
	// registry are not included).
	if snap := obs.Default().Summary(); snap != "" {
		fmt.Println("observability snapshot (default registry):")
		fmt.Print(snap)
	}
}
