// nimble-lint runs the repository's invariant-checking analyzers
// (internal/analysis) over the packages matched by the given patterns
// and prints every unsuppressed finding as file:line:col: analyzer:
// message. It exits 1 when findings remain, 0 when the tree is clean.
//
// Usage:
//
//	go run ./cmd/nimble-lint [flags] [packages]
//
//	-list          print the analyzer roster and exit
//	-only a,b      run only the named analyzers
//	-show-ignored  also print suppressed findings (marked [suppressed])
//
// Patterns default to ./... . Findings are silenced per site with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "print the analyzer roster and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	showIgnored := flag.Bool("show-ignored", false, "also print suppressed findings")
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *onlyFlag != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*onlyFlag, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "nimble-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	targets, err := loader.LoadTargets(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nimble-lint: %v\n", err)
		os.Exit(2)
	}
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "nimble-lint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	found := 0
	for _, target := range targets {
		diags, err := analysis.Run(target, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nimble-lint: %s: %v\n", target.Path, err)
			os.Exit(2)
		}
		kept, suppressed := analysis.Filter(target.Fset, target.Files, diags)
		for _, d := range kept {
			fmt.Printf("%s: %s: %s\n", target.Fset.Position(d.Pos), d.Analyzer, d.Message)
			found++
		}
		if *showIgnored {
			for _, d := range suppressed {
				fmt.Printf("%s: %s: %s [suppressed]\n", target.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "nimble-lint: %d finding(s) in %d package(s)\n", found, len(targets))
		os.Exit(1)
	}
}
