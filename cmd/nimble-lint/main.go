// nimble-lint runs the repository's invariant-checking analyzers
// (internal/analysis) over the packages matched by the given patterns
// and prints every unsuppressed finding as file:line:col: analyzer:
// message. It exits 1 when findings remain, 0 when the tree is clean.
//
// Usage:
//
//	go run ./cmd/nimble-lint [flags] [packages]
//
//	-list          print the analyzer roster and exit
//	-only a,b      run only the named analyzers
//	-show-ignored  also print suppressed findings (marked [suppressed])
//	-json          print findings as a JSON array on stdout
//
// Patterns default to ./... . Findings are silenced per site with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it. Directives naming
// analyzers that do not exist are themselves findings: a typo in a
// directive must not silently stop suppressing.
//
// All targets run inside one analysis.Session, so suite-level analyzers
// (lockorder's lock-acquisition graph) see the whole program, not one
// package at a time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func main() {
	listFlag := flag.Bool("list", false, "print the analyzer roster and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	showIgnored := flag.Bool("show-ignored", false, "also print suppressed findings")
	jsonFlag := flag.Bool("json", false, "print findings as JSON")
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *onlyFlag != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*onlyFlag, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "nimble-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	targets, err := loader.LoadTargets(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nimble-lint: %v\n", err)
		os.Exit(2)
	}
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "nimble-lint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	// Per-target passes accumulate into one session; suite-level Finish
	// hooks run once over everything the session saw.
	session := analysis.NewSession(loader.Fset)
	var kept, suppressed []analysis.Diagnostic
	for _, target := range targets {
		diags, err := session.RunTarget(target, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nimble-lint: %s: %v\n", target.Path, err)
			os.Exit(2)
		}
		k, s := analysis.Filter(target.Fset, target.Files, diags)
		kept = append(kept, k...)
		suppressed = append(suppressed, s...)
	}
	k, s := analysis.Filter(loader.Fset, session.Files(), session.FinishAll(analyzers))
	kept = append(kept, k...)
	suppressed = append(suppressed, s...)

	// Malformed suppressions are findings too (never self-suppressible:
	// they pass through no Filter call).
	kept = append(kept, analysis.CheckDirectives(loader.Fset, session.Files())...)

	emit := func(ds []analysis.Diagnostic, sup bool) []finding {
		out := make([]finding, 0, len(ds))
		for _, d := range ds {
			p := loader.Fset.Position(d.Pos)
			out = append(out, finding{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Analyzer: d.Analyzer, Message: d.Message, Suppressed: sup,
			})
		}
		return out
	}
	all := emit(kept, false)
	if *showIgnored || *jsonFlag {
		all = append(all, emit(suppressed, true)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "nimble-lint: encoding findings: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range all {
			mark := ""
			if f.Suppressed {
				mark = " [suppressed]"
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message, mark)
		}
	}

	found := len(kept)
	if found > 0 {
		fmt.Fprintf(os.Stderr, "nimble-lint: %d finding(s) in %d package(s)\n", found, len(targets))
		os.Exit(1)
	}
}
