package main

import (
	"context"
	"io"
	"strings"
	"testing"

	nimble "repro"
)

func cliSystem(t *testing.T) *nimble.System {
	t.Helper()
	sys := nimble.New(nimble.Config{})
	db := nimble.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada')`)
	if err := sys.AddRelationalSource("crmdb", db); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers",
		`WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <cust><who>$n</who></cust>`); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMetaCommands(t *testing.T) {
	sys := cliSystem(t)
	ctx := context.Background()
	explain := false

	// .quit returns false; everything else true.
	if meta(ctx, io.Discard, sys, ".quit", &explain) || meta(ctx, io.Discard, sys, ".exit", &explain) {
		t.Error("quit should return false")
	}
	for _, cmd := range []string{
		".help", ".sources", ".schemas", ".explain",
		".materialize customers", ".schemas", ".refresh customers", ".refresh",
		".drop customers", ".materialize", ".drop", ".refresh nosuch",
		".materialize nosuch", ".unknowncmd",
	} {
		if !meta(ctx, io.Discard, sys, cmd, &explain) {
			t.Errorf("%s should keep the shell running", cmd)
		}
	}
	if !explain {
		t.Error(".explain should toggle on")
	}
	if len(sys.Materialized()) != 0 {
		t.Errorf("materialized = %v after drop", sys.Materialized())
	}
}

func TestRunOnceExplain(t *testing.T) {
	sys, err := boot(10)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	q := `WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
	      <ticket><cust>$i</cust><issue>$s</issue></ticket> IN "tickets"
	      CONSTRUCT <r><who>$w</who><issue>$s</issue></r>`
	if err := runOnce(context.Background(), &out, sys, q, true); err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"<results>", "HashJoin", "Match [fetch tickets", "Fetch [crmdb", "out=", "time=", "operators="} {
		if !strings.Contains(out.String(), part) {
			t.Errorf("output missing %q:\n%s", part, out.String())
		}
	}
}
