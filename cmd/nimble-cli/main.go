// Command nimble-cli is an interactive XML-QL shell over the demo
// deployment (the same one nimbled serves). Queries may span multiple
// lines and end with a blank line; meta-commands start with a dot:
//
//	.sources            list registered sources
//	.schemas            list mediated schemas
//	.materialize NAME   store a schema locally
//	.refresh [NAME]     refresh one or all materialized schemas
//	.drop NAME          drop a local copy
//	.explain            toggle plan explanation output
//	.quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	nimble "repro"
	"repro/internal/workload"
)

func main() {
	customers := flag.Int("customers", 200, "demo dataset size")
	flag.Parse()

	sys := nimble.New(nimble.Config{CacheEntries: 32})
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", *customers, 3, 1)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("nimble-cli — XML-QL shell. End a query with a blank line; .help for commands.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf []string
	explain := false
	ctx := context.Background()
	prompt := func() {
		if len(buf) == 0 {
			fmt.Print("nimble> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if len(buf) == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(ctx, os.Stdout, sys, trimmed, &explain) {
				return
			}
			prompt()
			continue
		}
		if trimmed != "" {
			buf = append(buf, line)
			prompt()
			continue
		}
		if len(buf) == 0 {
			prompt()
			continue
		}
		q := strings.Join(buf, "\n")
		buf = nil
		res, err := sys.Query(ctx, q)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println(res.XML())
			if !res.Complete {
				fmt.Printf("warning: incomplete — sources failed: %v\n", res.FailedSources)
			}
			if explain {
				fmt.Printf("rewrites=%d fetches=%d tuples=%d\n",
					res.Stats.Rewrites, res.Stats.Fetches, res.Stats.TuplesEmitted)
				for _, e := range res.Stats.Explain {
					fmt.Println("  plan:", e)
				}
			}
		}
		prompt()
	}
}

// meta handles dot-commands; it returns false to exit.
func meta(ctx context.Context, out io.Writer, sys *nimble.System, cmd string, explain *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Fprintln(out, ".sources .schemas .materialize NAME .refresh [NAME] .drop NAME .explain .quit")
	case ".sources":
		for _, s := range sys.Sources() {
			fmt.Fprintln(out, " ", s)
		}
	case ".schemas":
		mat := map[string]bool{}
		for _, m := range sys.Materialized() {
			mat[m] = true
		}
		for _, s := range sys.Schemas() {
			suffix := ""
			if mat[s] {
				suffix = " (materialized)"
			}
			fmt.Fprintln(out, " ", s+suffix)
		}
	case ".materialize":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .materialize NAME")
			break
		}
		if err := sys.Materialize(ctx, fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case ".refresh":
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		if err := sys.Refresh(ctx, name); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case ".drop":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .drop NAME")
			break
		}
		sys.Drop(fields[1])
	case ".explain":
		*explain = !*explain
		fmt.Fprintln(out, "explain:", *explain)
	default:
		fmt.Fprintln(out, "unknown command; .help for the list")
	}
	return true
}
