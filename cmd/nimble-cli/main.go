// Command nimble-cli is an interactive XML-QL shell over the demo
// deployment (the same one nimbled serves). With a query argument it
// runs once and exits (`nimble-cli -explain 'WHERE ...'` prints the
// per-operator EXPLAIN ANALYZE tree). Interactively, queries may span
// multiple lines and end with a blank line; meta-commands start with a
// dot:
//
//	.sources            list registered sources
//	.schemas            list mediated schemas
//	.materialize NAME   store a schema locally
//	.refresh [NAME]     refresh one or all materialized schemas
//	.drop NAME          drop a local copy
//	.explain            toggle EXPLAIN ANALYZE output
//	.quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	nimble "repro"
	"repro/internal/workload"
)

// boot assembles the demo deployment: a relational CRM database plus an
// XML support-ticket feed, so federated (two-source) queries work out of
// the box.
func boot(customers int) (*nimble.System, error) {
	sys := nimble.New(nimble.Config{CacheEntries: 32})
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", customers, 3, 1)); err != nil {
		return nil, err
	}
	if err := sys.AddXMLSource("tickets", ticketsXML(customers)); err != nil {
		return nil, err
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		return nil, err
	}
	return sys, nil
}

// ticketsXML builds the support-ticket document, keyed by customer id
// (workload ids run 0..n-1).
func ticketsXML(customers int) string {
	issues := []string{"login failure", "billing dispute", "slow dashboard", "export stuck", "password reset"}
	statuses := []string{"open", "closed"}
	n := customers
	if n > 25 {
		n = 25
	}
	var b strings.Builder
	b.WriteString("<tickets>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<ticket><cust>%d</cust><issue>%s</issue><status>%s</status></ticket>",
			i, issues[i%len(issues)], statuses[i%len(statuses)])
	}
	b.WriteString("</tickets>")
	return b.String()
}

// runOnce executes one query and prints the results — and, with explain,
// the per-operator EXPLAIN ANALYZE tree.
func runOnce(ctx context.Context, out io.Writer, sys *nimble.System, q string, explain bool) error {
	res, err := sys.Query(ctx, q)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.XML())
	if !res.Complete {
		fmt.Fprintf(out, "warning: incomplete — sources failed: %v\n", res.FailedSources)
	}
	if explain {
		printExplain(out, res)
	}
	return nil
}

// printExplain renders a result's EXPLAIN ANALYZE report.
func printExplain(out io.Writer, res *nimble.Result) {
	if res.Explain != nil {
		fmt.Fprint(out, res.Explain.Render())
	}
	fmt.Fprintf(out, "rewrites=%d fetches=%d tuples=%d operators=%d drain=%.3fms\n",
		res.Stats.Rewrites, res.Stats.Fetches, res.Stats.TuplesEmitted,
		res.Stats.OperatorsRun, float64(res.Stats.DrainNanos)/1e6)
	for _, e := range res.Stats.Explain {
		fmt.Fprintln(out, "  plan:", e)
	}
}

func main() {
	customers := flag.Int("customers", 200, "demo dataset size")
	explainFlag := flag.Bool("explain", false, "print the per-operator EXPLAIN ANALYZE tree for each query")
	flag.Parse()

	sys, err := boot(*customers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := context.Background()

	// One-shot mode: the query is the remaining arguments.
	if args := flag.Args(); len(args) > 0 {
		if err := runOnce(ctx, os.Stdout, sys, strings.Join(args, " "), *explainFlag); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("nimble-cli — XML-QL shell. End a query with a blank line; .help for commands.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf []string
	explain := *explainFlag
	prompt := func() {
		if len(buf) == 0 {
			fmt.Print("nimble> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if len(buf) == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(ctx, os.Stdout, sys, trimmed, &explain) {
				return
			}
			prompt()
			continue
		}
		if trimmed != "" {
			buf = append(buf, line)
			prompt()
			continue
		}
		if len(buf) == 0 {
			prompt()
			continue
		}
		q := strings.Join(buf, "\n")
		buf = nil
		if err := runOnce(ctx, os.Stdout, sys, q, explain); err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
}

// meta handles dot-commands; it returns false to exit.
func meta(ctx context.Context, out io.Writer, sys *nimble.System, cmd string, explain *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Fprintln(out, ".sources .schemas .materialize NAME .refresh [NAME] .drop NAME .explain .quit")
	case ".sources":
		for _, s := range sys.Sources() {
			fmt.Fprintln(out, " ", s)
		}
	case ".schemas":
		mat := map[string]bool{}
		for _, m := range sys.Materialized() {
			mat[m] = true
		}
		for _, s := range sys.Schemas() {
			suffix := ""
			if mat[s] {
				suffix = " (materialized)"
			}
			fmt.Fprintln(out, " ", s+suffix)
		}
	case ".materialize":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .materialize NAME")
			break
		}
		if err := sys.Materialize(ctx, fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case ".refresh":
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		if err := sys.Refresh(ctx, name); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case ".drop":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .drop NAME")
			break
		}
		sys.Drop(fields[1])
	case ".explain":
		*explain = !*explain
		fmt.Fprintln(out, "explain:", *explain)
	default:
		fmt.Fprintln(out, "unknown command; .help for the list")
	}
	return true
}
