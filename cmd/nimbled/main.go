// Command nimbled serves the integration system over HTTP: the query
// endpoint, lenses, catalog listing, statistics, and the admin
// materialization endpoints. It boots the demo customer-integration
// deployment (three sources, two mediated schemas, two lenses) so the
// server is explorable immediately:
//
//	nimbled -addr :8080 -cluster 4 -route affinity -cap 8 -queue 64 &
//	curl -XPOST -d 'WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>' localhost:8080/query
//	curl 'localhost:8080/lens/by-city?city=Seattle&device=web'
//	curl -XPOST 'localhost:8080/admin/materialize?schema=customers&token=admin'
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/cluster
//	curl -XPOST 'localhost:8080/admin/drain?instance=1&token=admin'
//	curl 'localhost:8080/debug/trace/last?n=1'
//	curl -XPOST -d '...' 'localhost:8080/query?profile=1'
//
// On SIGINT/SIGTERM the daemon drains the cluster gracefully: routing
// stops, in-flight queries finish (bounded by -drain-timeout), then the
// HTTP server shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	nimble "repro"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	instances := flag.Int("instances", 2, "engine instances behind the cluster front end")
	clusterN := flag.Int("cluster", 0, "shorthand for -instances (takes precedence when set)")
	route := flag.String("route", "least", "routing policy: least, rr, p2c, affinity")
	capPer := flag.Int("cap", 0, "per-instance concurrent query cap (0 unbounded)")
	queue := flag.Int("queue", 0, "admission queue bound once all instances are saturated; excess sheds 503 + Retry-After (0 unbounded)")
	cacheSize := flag.Int("cache", 64, "query cache entries (0 disables)")
	cachePer := flag.Bool("cache-per-instance", false, "give each instance its own cache (pair with -route affinity)")
	probe := flag.String("probe", `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <ok>$w</ok>`,
		"health-probe canary query; failing/incomplete answers eject an instance (empty disables probing)")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "health probe spacing")
	ejectAfter := flag.Int("eject-after", 3, "consecutive probe failures that eject an instance")
	readmitAfter := flag.Duration("readmit-after", 10*time.Second, "cooldown before an ejected instance is probed for readmission")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	adminToken := flag.String("admin-token", "admin", "token for /admin endpoints")
	customers := flag.Int("customers", 500, "demo dataset size")
	traces := flag.Int("traces", 16, "kept query traces retained for /debug/traces and /debug/trace/last (-1 disables tracing)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate: fraction of traces kept regardless of outcome (errored/slow traces are always kept; negative = tail-only)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "tail-keep traces at least this slow even when head sampling drops them (0 disables)")
	traceSeed := flag.Int64("trace-seed", 0, "trace/span id generator seed; a fixed seed makes the head-sampled set reproducible (0 = random)")
	traceExport := flag.String("trace-export", "", "append kept traces as OTLP-style JSON lines to this file (empty disables export)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowN := flag.Int("slowlog", 16, "slow queries retained with EXPLAIN plans for /debug/slowlog")
	slowAfter := flag.Duration("slow-threshold", 0, "record queries at least this slow (0 keeps the slowest overall)")
	fetchTimeout := flag.Duration("fetch-timeout", 10*time.Second, "per-attempt remote fetch timeout (0 disables)")
	fetchRetries := flag.Int("fetch-retries", 2, "retries after a transient fetch failure, with exponential backoff (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive transient failures that open a source's circuit breaker (0 disables)")
	parallelism := flag.Int("parallelism", 0, "intra-query worker goroutines a query requests (0 = the whole worker budget, 1 = serial); the scheduler grants min(requested, available)")
	workerBudget := flag.Int("worker-budget", 0, "process-wide extra-worker slots shared by all concurrent queries (0 = GOMAXPROCS)")
	queryClass := flag.String("query-class", "interactive", "default scheduling class: interactive or batch (per-request X-Nimble-Class overrides)")
	flag.Parse()

	n := *instances
	if *clusterN > 0 {
		n = *clusterN
	}
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	sys := nimble.New(nimble.Config{
		Instances:        n,
		CacheEntries:     *cacheSize,
		CachePerInstance: *cachePer,
		RoutePolicy:      *route,
		InstanceCapacity: *capPer,
		AdmissionQueue:   *queue,
		HealthProbe:      *probe,
		ProbeInterval:    *probeEvery,
		EjectAfter:       *ejectAfter,
		ReadmitAfter:     *readmitAfter,
		TraceBuffer:      *traces,
		TraceSample:      *traceSample,
		TraceSlow:        *traceSlow,
		TraceSeed:        *traceSeed,
		Logger:           logger,
		Pprof:            *pprofOn,
		SlowLogSize:      *slowN,
		SlowLogThreshold: *slowAfter,
		FetchTimeout:     *fetchTimeout,
		FetchRetries:     *fetchRetries,
		BreakerThreshold: *breakerThreshold,
		Parallelism:      *parallelism,
		WorkerBudget:     *workerBudget,
		QueryClass:       *queryClass,
	})
	obs.RegisterRuntimeMetrics(sys.Metrics())
	var fileExp *obs.FileExporter
	if *traceExport != "" {
		var err error
		fileExp, err = obs.NewFileExporter(*traceExport, "nimbled")
		if err != nil {
			log.Fatal(err)
		}
		sys.SetTraceExporter(fileExp)
	}
	if err := boot(sys, *customers); err != nil {
		log.Fatal(err)
	}
	sys.InstrumentSources()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sys.StartHealthProbes(ctx)

	httpSrv := server.NewHTTPServer(*addr, sys.HTTPHandler(*adminToken))
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("nimbled listening",
		"sources", len(sys.Sources()), "schemas", len(sys.Schemas()),
		"instances", sys.Instances(), "route", *route, "addr", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	logger.Info("draining cluster", "bound", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sys.Cluster().DrainAll(dctx); err != nil {
		logger.Warn("drain incomplete", "error", err.Error())
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	sys.Close()
	if fileExp != nil {
		if err := fileExp.Close(); err != nil {
			logger.Warn("trace export close", "error", err.Error())
		}
	}
	logger.Info("nimbled stopped")
}

// boot assembles the demo deployment.
func boot(sys *nimble.System, customers int) error {
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", customers, 3, 1)); err != nil {
		return err
	}
	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Integration demo escalation</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Question about lenses</subject></ticket>
	</tickets>`); err != nil {
		return err
	}
	dir, err := sys.AddDirectorySource("staff", "org")
	if err != nil {
		return err
	}
	dir.Put("support/eva", map[string]string{"mail": "eva@example.com", "region": "west"})
	dir.Put("support/omar", map[string]string{"mail": "omar@example.com", "region": "east"})

	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		return err
	}
	if err := sys.DefineSchema("goldcust", `
		WHERE <cust><who>$w</who><where>$c</where><tier>"gold"</tier></cust> IN "customers"
		CONSTRUCT <vip><name>$w</name><city>$c</city></vip>`); err != nil {
		return err
	}

	if err := sys.PublishLens(&nimble.Lens{
		Name:  "by-city",
		Title: "Customers by city",
		Queries: []string{`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "${city}"
			CONSTRUCT <hit><name>$w</name><city>$p</city></hit>`},
		Params: []nimble.LensParam{{Name: "city", Required: true}},
		Rules: []nimble.LensRule{
			{Match: "hit", Template: `<p><b>{child:name}</b> — {child:city}</p>`},
		},
	}); err != nil {
		return err
	}
	if err := sys.PublishLens(&nimble.Lens{
		Name:      "vips",
		Title:     "Gold-tier customers (authenticated)",
		Queries:   []string{`WHERE <vip><name>$n</name><city>$c</city></vip> IN "goldcust" CONSTRUCT <hit><name>$n</name><city>$c</city></hit>`},
		AuthToken: "vip-secret",
	}); err != nil {
		return err
	}
	fmt.Println("demo queries:")
	fmt.Println(`  curl -XPOST -d 'WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>' localhost:8080/query`)
	fmt.Println(`  curl 'localhost:8080/lens/by-city?city=Seattle&device=web'`)
	fmt.Println(`  curl 'localhost:8080/lens/vips?auth=vip-secret&device=plain'`)
	fmt.Println("observability:")
	fmt.Println(`  curl localhost:8080/metrics                        # Prometheus exposition (+ nimble_runtime_* gauges)`)
	fmt.Println(`  curl 'localhost:8080/debug/traces?min_ms=50&err=1' # search kept traces (add &format=text&depth=4)`)
	fmt.Println(`  curl 'localhost:8080/debug/trace/last?n=1'         # last kept span tree (add &format=xml)`)
	fmt.Println(`  curl -XPOST -d '<query>' 'localhost:8080/query?profile=1'  # embed the span tree in the answer`)
	fmt.Println(`  curl -XPOST -d '<query>' 'localhost:8080/query?explain=1'  # embed the EXPLAIN ANALYZE operator tree`)
	fmt.Println(`  curl localhost:8080/debug/queries                  # active queries + recent slow queries`)
	fmt.Println(`  curl localhost:8080/debug/slowlog                  # slowest queries with their plans`)
	fmt.Println("cluster:")
	fmt.Println(`  curl localhost:8080/debug/cluster                  # instance health, routing, admission queue`)
	fmt.Println(`  curl -XPOST 'localhost:8080/admin/drain?instance=1&token=admin'  # graceful drain`)
	return nil
}
