// Command nimbled serves the integration system over HTTP: the query
// endpoint, lenses, catalog listing, statistics, and the admin
// materialization endpoints. It boots the demo customer-integration
// deployment (three sources, two mediated schemas, two lenses) so the
// server is explorable immediately:
//
//	nimbled -addr :8080 -instances 2 &
//	curl -XPOST -d 'WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>' localhost:8080/query
//	curl 'localhost:8080/lens/by-city?city=Seattle&device=web'
//	curl -XPOST 'localhost:8080/admin/materialize?schema=customers&token=admin'
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl 'localhost:8080/debug/trace/last?n=1'
//	curl -XPOST -d '...' 'localhost:8080/query?profile=1'
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	nimble "repro"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	instances := flag.Int("instances", 2, "engine instances behind the load balancer")
	cacheSize := flag.Int("cache", 64, "query cache entries (0 disables)")
	adminToken := flag.String("admin-token", "admin", "token for /admin endpoints")
	customers := flag.Int("customers", 500, "demo dataset size")
	traces := flag.Int("traces", 16, "recent query traces kept for /debug/trace/last (-1 disables)")
	slowN := flag.Int("slowlog", 16, "slow queries retained with EXPLAIN plans for /debug/slowlog")
	slowAfter := flag.Duration("slow-threshold", 0, "record queries at least this slow (0 keeps the slowest overall)")
	fetchTimeout := flag.Duration("fetch-timeout", 10*time.Second, "per-attempt remote fetch timeout (0 disables)")
	fetchRetries := flag.Int("fetch-retries", 2, "retries after a transient fetch failure, with exponential backoff (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive transient failures that open a source's circuit breaker (0 disables)")
	flag.Parse()

	sys := nimble.New(nimble.Config{
		Instances:        *instances,
		CacheEntries:     *cacheSize,
		TraceBuffer:      *traces,
		SlowLogSize:      *slowN,
		SlowLogThreshold: *slowAfter,
		FetchTimeout:     *fetchTimeout,
		FetchRetries:     *fetchRetries,
		BreakerThreshold: *breakerThreshold,
	})
	if err := boot(sys, *customers); err != nil {
		log.Fatal(err)
	}
	sys.InstrumentSources()
	log.Printf("nimbled: %d sources, %d schemas, %d engine instances, listening on %s",
		len(sys.Sources()), len(sys.Schemas()), sys.Instances(), *addr)
	log.Fatal(server.NewHTTPServer(*addr, sys.HTTPHandler(*adminToken)).ListenAndServe())
}

// boot assembles the demo deployment.
func boot(sys *nimble.System, customers int) error {
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", customers, 3, 1)); err != nil {
		return err
	}
	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Integration demo escalation</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Question about lenses</subject></ticket>
	</tickets>`); err != nil {
		return err
	}
	dir, err := sys.AddDirectorySource("staff", "org")
	if err != nil {
		return err
	}
	dir.Put("support/eva", map[string]string{"mail": "eva@example.com", "region": "west"})
	dir.Put("support/omar", map[string]string{"mail": "omar@example.com", "region": "east"})

	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		return err
	}
	if err := sys.DefineSchema("goldcust", `
		WHERE <cust><who>$w</who><where>$c</where><tier>"gold"</tier></cust> IN "customers"
		CONSTRUCT <vip><name>$w</name><city>$c</city></vip>`); err != nil {
		return err
	}

	if err := sys.PublishLens(&nimble.Lens{
		Name:  "by-city",
		Title: "Customers by city",
		Queries: []string{`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "${city}"
			CONSTRUCT <hit><name>$w</name><city>$p</city></hit>`},
		Params: []nimble.LensParam{{Name: "city", Required: true}},
		Rules: []nimble.LensRule{
			{Match: "hit", Template: `<p><b>{child:name}</b> — {child:city}</p>`},
		},
	}); err != nil {
		return err
	}
	if err := sys.PublishLens(&nimble.Lens{
		Name:      "vips",
		Title:     "Gold-tier customers (authenticated)",
		Queries:   []string{`WHERE <vip><name>$n</name><city>$c</city></vip> IN "goldcust" CONSTRUCT <hit><name>$n</name><city>$c</city></hit>`},
		AuthToken: "vip-secret",
	}); err != nil {
		return err
	}
	fmt.Println("demo queries:")
	fmt.Println(`  curl -XPOST -d 'WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>' localhost:8080/query`)
	fmt.Println(`  curl 'localhost:8080/lens/by-city?city=Seattle&device=web'`)
	fmt.Println(`  curl 'localhost:8080/lens/vips?auth=vip-secret&device=plain'`)
	fmt.Println("observability:")
	fmt.Println(`  curl localhost:8080/metrics                        # Prometheus exposition`)
	fmt.Println(`  curl 'localhost:8080/debug/trace/last?n=1'         # last query span tree (add &format=xml)`)
	fmt.Println(`  curl -XPOST -d '<query>' 'localhost:8080/query?profile=1'  # embed the span tree in the answer`)
	fmt.Println(`  curl -XPOST -d '<query>' 'localhost:8080/query?explain=1'  # embed the EXPLAIN ANALYZE operator tree`)
	fmt.Println(`  curl localhost:8080/debug/queries                  # active queries + recent slow queries`)
	fmt.Println(`  curl localhost:8080/debug/slowlog                  # slowest queries with their plans`)
	return nil
}
