package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	nimble "repro"
)

func TestBootAndServe(t *testing.T) {
	sys := nimble.New(nimble.Config{Instances: 2, CacheEntries: 8})
	if err := boot(sys, 50); err != nil {
		t.Fatal(err)
	}
	if len(sys.Sources()) != 3 || len(sys.Schemas()) != 2 {
		t.Fatalf("boot: sources=%v schemas=%v", sys.Sources(), sys.Schemas())
	}
	ts := httptest.NewServer(sys.HTTPHandler("admin"))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "text/plain",
		strings.NewReader(`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<results>") {
		t.Errorf("query: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/lens/by-city?city=Seattle&device=web")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<html>") {
		t.Errorf("lens: %d", resp.StatusCode)
	}

	// The authenticated VIP lens rejects without its token.
	resp, _ = http.Get(ts.URL + "/lens/vips")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("vips without token: %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/lens/vips?auth=vip-secret&device=plain")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("vips with token: %d", resp.StatusCode)
	}
}
