// Package lens implements the front-end objects of §2.1: "a lens is an
// object that contains a set of XML queries, parameters, XSL formatting,
// and authentication information. Result formatting can be targeted to
// specific devices (e.g., web interface, wireless device)."
//
// The formatting engine is a small match-template transform (the role
// XSL plays in the product): per-element rules with placeholder
// substitution, plus built-in whole-document renderings per device.
package lens

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmldm"
	"repro/internal/xmlparse"
)

// Device names a rendering target.
type Device string

// The supported devices.
const (
	DeviceXML      Device = "xml"      // raw XML
	DeviceWeb      Device = "web"      // HTML
	DeviceWireless Device = "wireless" // compact text for small screens
	DevicePlain    Device = "plain"    // plain text lines
)

// ParseDevice maps a string to a Device (defaulting to XML).
func ParseDevice(s string) Device {
	switch strings.ToLower(s) {
	case "web", "html":
		return DeviceWeb
	case "wireless", "wml":
		return DeviceWireless
	case "plain", "text":
		return DevicePlain
	default:
		return DeviceXML
	}
}

// Param declares one lens parameter.
type Param struct {
	Name     string
	Required bool
	Default  string
}

// Rule is one formatting rule: elements whose name equals Match render
// through Template. Placeholders: {text} (the element's text), {tag}
// (its name), {attr:k} (attribute k), {child:k} (text of child k),
// {children} (recursive rendering of child elements).
type Rule struct {
	Match    string
	Template string
}

// Lens is a published, parameterized query with formatting and
// authentication.
type Lens struct {
	Name    string
	Queries []string // XML-QL texts with ${param} placeholders
	Params  []Param
	Rules   []Rule
	// AuthToken, when non-empty, must accompany every use of the lens.
	AuthToken string
	// Title renders as the heading on web output.
	Title string
}

// ErrAuth is returned when a lens's auth token is missing or wrong.
var ErrAuth = errors.New("lens: authentication failed")

// Authorize checks a supplied token.
func (l *Lens) Authorize(token string) error {
	if l.AuthToken != "" && token != l.AuthToken {
		return ErrAuth
	}
	return nil
}

// Bind substitutes parameters into the lens queries. Parameter values
// are escaped for splicing inside string literals; unknown parameters
// are rejected, required ones enforced, defaults applied.
func (l *Lens) Bind(params map[string]string) ([]string, error) {
	declared := map[string]Param{}
	for _, p := range l.Params {
		declared[p.Name] = p
	}
	for name := range params {
		if _, ok := declared[name]; !ok {
			return nil, fmt.Errorf("lens %s: unknown parameter %q", l.Name, name)
		}
	}
	vals := map[string]string{}
	for _, p := range l.Params {
		v, ok := params[p.Name]
		if !ok || v == "" {
			if p.Required && p.Default == "" {
				return nil, fmt.Errorf("lens %s: parameter %q is required", l.Name, p.Name)
			}
			v = p.Default
		}
		vals[p.Name] = v
	}
	var out []string
	for _, q := range l.Queries {
		bound, err := substitute(l.Name, q, vals)
		if err != nil {
			return nil, err
		}
		out = append(out, bound)
	}
	return out, nil
}

// substitute expands ${name} placeholders in a single left-to-right
// pass. Substituted values are never re-scanned, so a parameter value
// containing "${...}" stays literal — no injection through values and
// no dependence on map iteration order.
func substitute(lensName, q string, vals map[string]string) (string, error) {
	var sb strings.Builder
	for {
		i := strings.Index(q, "${")
		if i < 0 {
			sb.WriteString(q)
			return sb.String(), nil
		}
		sb.WriteString(q[:i])
		end := strings.Index(q[i:], "}")
		if end < 0 {
			return "", fmt.Errorf("lens %s: unterminated placeholder %s", lensName, q[i:])
		}
		name := q[i+2 : i+end]
		v, ok := vals[name]
		if !ok {
			return "", fmt.Errorf("lens %s: unbound placeholder ${%s}", lensName, name)
		}
		sb.WriteString(escapeQL(v))
		q = q[i+end+1:]
	}
}

// escapeQL escapes a parameter value for safe inclusion inside an XML-QL
// double-quoted string literal.
func escapeQL(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Render formats a result document for a device.
func (l *Lens) Render(doc *xmldm.Node, device Device) string {
	switch device {
	case DeviceWeb:
		return l.renderWeb(doc)
	case DeviceWireless:
		return l.renderCompact(doc, 40)
	case DevicePlain:
		return l.renderCompact(doc, 0)
	default:
		return xmlparse.SerializeString(doc, 2)
	}
}

func (l *Lens) ruleFor(name string) (Rule, bool) {
	for _, r := range l.Rules {
		if r.Match == name {
			return r, true
		}
	}
	return Rule{}, false
}

// applyRule expands a rule template for an element.
func (l *Lens) applyRule(r Rule, n *xmldm.Node) string {
	out := r.Template
	out = strings.ReplaceAll(out, "{text}", htmlEscape(n.Text()))
	out = strings.ReplaceAll(out, "{tag}", n.Name)
	for strings.Contains(out, "{attr:") {
		i := strings.Index(out, "{attr:")
		j := strings.Index(out[i:], "}")
		if j < 0 {
			break
		}
		key := out[i+6 : i+j]
		v, _ := n.Attr(key)
		out = out[:i] + htmlEscape(v) + out[i+j+1:]
	}
	for strings.Contains(out, "{child:") {
		i := strings.Index(out, "{child:")
		j := strings.Index(out[i:], "}")
		if j < 0 {
			break
		}
		key := out[i+7 : i+j]
		text := ""
		if c := n.Child(key); c != nil {
			text = c.Text()
		}
		out = out[:i] + htmlEscape(text) + out[i+j+1:]
	}
	if strings.Contains(out, "{children}") {
		var sb strings.Builder
		for _, c := range n.ChildElements() {
			sb.WriteString(l.renderElement(c))
		}
		out = strings.ReplaceAll(out, "{children}", sb.String())
	}
	return out
}

// renderElement renders one element: through its rule if any, otherwise
// a generic definition-list rendering.
func (l *Lens) renderElement(n *xmldm.Node) string {
	if r, ok := l.ruleFor(n.Name); ok {
		return l.applyRule(r, n)
	}
	kids := n.ChildElements()
	if len(kids) == 0 {
		return fmt.Sprintf(`<span class=%q>%s</span>`, n.Name, htmlEscape(n.Text()))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<dl class=%q>`, n.Name)
	for _, c := range kids {
		if len(c.ChildElements()) > 0 {
			fmt.Fprintf(&sb, "<dt>%s</dt><dd>%s</dd>", c.Name, l.renderElement(c))
		} else {
			fmt.Fprintf(&sb, "<dt>%s</dt><dd>%s</dd>", c.Name, htmlEscape(c.Text()))
		}
	}
	sb.WriteString("</dl>")
	return sb.String()
}

func (l *Lens) renderWeb(doc *xmldm.Node) string {
	var sb strings.Builder
	title := l.Title
	if title == "" {
		title = l.Name
	}
	fmt.Fprintf(&sb, "<html><head><title>%s</title></head><body><h1>%s</h1>\n", htmlEscape(title), htmlEscape(title))
	if v, ok := doc.Attr("complete"); ok && v == "false" {
		sb.WriteString(`<p class="warning">Warning: results are incomplete; one or more sources did not respond.</p>` + "\n")
	}
	for _, c := range doc.ChildElements() {
		sb.WriteString(`<div class="result">`)
		sb.WriteString(l.renderElement(c))
		sb.WriteString("</div>\n")
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

// renderCompact renders text lines; width > 0 truncates for small
// screens.
func (l *Lens) renderCompact(doc *xmldm.Node, width int) string {
	var sb strings.Builder
	if v, ok := doc.Attr("complete"); ok && v == "false" {
		sb.WriteString("! partial results\n")
	}
	for _, c := range doc.ChildElements() {
		line := compactLine(c)
		if width > 0 && len(line) > width {
			line = line[:width-1] + "…"
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func compactLine(n *xmldm.Node) string {
	kids := n.ChildElements()
	if len(kids) == 0 {
		return n.Text()
	}
	var parts []string
	for _, c := range kids {
		parts = append(parts, c.Name+"="+c.Text())
	}
	return strings.Join(parts, " | ")
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Registry holds published lenses, safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	lenses map[string]*Lens // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{lenses: map[string]*Lens{}}
}

// Publish registers a lens; republishing a name replaces it.
func (r *Registry) Publish(l *Lens) error {
	if l.Name == "" {
		return errors.New("lens: lens needs a name")
	}
	if len(l.Queries) == 0 {
		return fmt.Errorf("lens %s: needs at least one query", l.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lenses[strings.ToLower(l.Name)] = l
	return nil
}

// Get returns the named lens.
func (r *Registry) Get(name string) (*Lens, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	l, ok := r.lenses[strings.ToLower(name)]
	return l, ok
}

// Names lists published lenses, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, l := range r.lenses {
		out = append(out, l.Name)
	}
	sort.Strings(out)
	return out
}
