package lens

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/xmlparse"
)

func sampleLens() *Lens {
	return &Lens{
		Name:  "customers-by-city",
		Title: "Customers",
		Queries: []string{
			`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "${city}"
			 CONSTRUCT <hit><name>$w</name></hit>`,
		},
		Params: []Param{
			{Name: "city", Required: true},
			{Name: "limit", Default: "10"},
		},
	}
}

func TestBindSubstitutes(t *testing.T) {
	l := sampleLens()
	qs, err := l.Bind(map[string]string{"city": "London"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qs[0], `"London"`) || strings.Contains(qs[0], "${") {
		t.Errorf("bound = %s", qs[0])
	}
}

func TestBindValidation(t *testing.T) {
	l := sampleLens()
	if _, err := l.Bind(nil); err == nil {
		t.Error("missing required parameter should fail")
	}
	if _, err := l.Bind(map[string]string{"city": "X", "nope": "1"}); err == nil {
		t.Error("unknown parameter should fail")
	}
}

func TestBindDefaultApplied(t *testing.T) {
	l := &Lens{
		Name:    "l",
		Queries: []string{`WHERE <a>$x</a> IN "s", $x < ${limit} CONSTRUCT <r>$x</r>`},
		Params:  []Param{{Name: "limit", Default: "5"}},
	}
	qs, err := l.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qs[0], "< 5") {
		t.Errorf("default not applied: %s", qs[0])
	}
}

func TestBindEscapesInjection(t *testing.T) {
	l := sampleLens()
	qs, err := l.Bind(map[string]string{"city": `X" CONSTRUCT <evil/`})
	if err != nil {
		t.Fatal(err)
	}
	// The quote must be escaped so the value stays inside the literal.
	if !strings.Contains(qs[0], `\"`) {
		t.Errorf("injection not escaped: %s", qs[0])
	}
}

func TestBindUnboundPlaceholderFails(t *testing.T) {
	l := &Lens{Name: "l", Queries: []string{`WHERE <a>$x</a> IN "s", $x = "${oops}" CONSTRUCT <r/>`}}
	if _, err := l.Bind(nil); err == nil {
		t.Error("unbound placeholder should fail")
	}
	l2 := &Lens{Name: "l", Queries: []string{`WHERE <a>$x</a> IN "s", $x = "${broken" CONSTRUCT <r/>`}}
	if _, err := l2.Bind(nil); err == nil {
		t.Error("unterminated placeholder should fail")
	}
}

func TestBindValuesAreNotRescanned(t *testing.T) {
	// A parameter value containing "${other}" must stay literal: values
	// are substituted in one pass, never re-expanded.
	l := &Lens{
		Name:    "l",
		Queries: []string{`WHERE <a>$x</a> IN "s", $x = "${a}" AND $x != "${b}" CONSTRUCT <r/>`},
		Params:  []Param{{Name: "a"}, {Name: "b", Default: "bee"}},
	}
	qs, err := l.Bind(map[string]string{"a": "${b}"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qs[0], `"${b}"`) {
		t.Errorf("value was re-expanded: %s", qs[0])
	}
	if !strings.Contains(qs[0], `"bee"`) {
		t.Errorf("real placeholder not expanded: %s", qs[0])
	}
}

func TestAuthorize(t *testing.T) {
	open := &Lens{Name: "open", Queries: []string{"q"}}
	if err := open.Authorize(""); err != nil {
		t.Error("open lens should not need auth")
	}
	sec := &Lens{Name: "sec", Queries: []string{"q"}, AuthToken: "s3cret"}
	if err := sec.Authorize("wrong"); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong token: %v", err)
	}
	if err := sec.Authorize("s3cret"); err != nil {
		t.Errorf("right token: %v", err)
	}
}

func TestRenderDevices(t *testing.T) {
	doc, err := xmlparse.ParseString(`<results><hit><name>Ada &amp; Co</name><city>London</city></hit></results>`)
	if err != nil {
		t.Fatal(err)
	}
	l := sampleLens()

	xml := l.Render(doc, DeviceXML)
	if !strings.Contains(xml, "<results>") {
		t.Errorf("xml = %s", xml)
	}

	web := l.Render(doc, DeviceWeb)
	if !strings.Contains(web, "<h1>Customers</h1>") || !strings.Contains(web, "Ada &amp; Co") {
		t.Errorf("web = %s", web)
	}
	if !strings.Contains(web, "<dt>name</dt>") {
		t.Errorf("generic rendering missing: %s", web)
	}

	plain := l.Render(doc, DevicePlain)
	if !strings.Contains(plain, "name=Ada & Co | city=London") {
		t.Errorf("plain = %q", plain)
	}

	wl := l.Render(doc, DeviceWireless)
	line := strings.SplitN(wl, "\n", 2)[0]
	if len(line) > 41 {
		t.Errorf("wireless line too long: %q", line)
	}
}

func TestRenderIncompleteWarning(t *testing.T) {
	doc, _ := xmlparse.ParseString(`<results complete="false"><hit><name>A</name></hit></results>`)
	l := sampleLens()
	if !strings.Contains(l.Render(doc, DeviceWeb), "incomplete") {
		t.Error("web output should warn about partial results")
	}
	if !strings.HasPrefix(l.Render(doc, DevicePlain), "! partial results") {
		t.Error("plain output should flag partial results")
	}
}

func TestRenderRules(t *testing.T) {
	doc, _ := xmlparse.ParseString(`<results><hit id="7"><name>Ada</name><city>London</city></hit></results>`)
	l := sampleLens()
	l.Rules = []Rule{{
		Match:    "hit",
		Template: `<p>#{attr:id} {child:name} of {child:city}</p>`,
	}}
	web := l.Render(doc, DeviceWeb)
	if !strings.Contains(web, "<p>#7 Ada of London</p>") {
		t.Errorf("rule rendering = %s", web)
	}
}

func TestRuleChildrenPlaceholder(t *testing.T) {
	doc, _ := xmlparse.ParseString(`<results><grp><item>a</item><item>b</item></grp></results>`)
	l := &Lens{Name: "l", Queries: []string{"q"},
		Rules: []Rule{{Match: "grp", Template: `<ul>{children}</ul>`}, {Match: "item", Template: `<li>{text}</li>`}}}
	web := l.Render(doc, DeviceWeb)
	if !strings.Contains(web, "<ul><li>a</li><li>b</li></ul>") {
		t.Errorf("children rendering = %s", web)
	}
}

func TestParseDevice(t *testing.T) {
	cases := map[string]Device{
		"web": DeviceWeb, "HTML": DeviceWeb, "wml": DeviceWireless,
		"plain": DevicePlain, "text": DevicePlain, "xml": DeviceXML, "": DeviceXML,
	}
	for in, want := range cases {
		if got := ParseDevice(in); got != want {
			t.Errorf("ParseDevice(%q) = %v", in, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(&Lens{}); err == nil {
		t.Error("unnamed lens should fail")
	}
	if err := r.Publish(&Lens{Name: "x"}); err == nil {
		t.Error("queryless lens should fail")
	}
	if err := r.Publish(sampleLens()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("CUSTOMERS-BY-CITY"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if names := r.Names(); len(names) != 1 {
		t.Errorf("names = %v", names)
	}
}
