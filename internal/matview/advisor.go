package matview

import (
	"context"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/xmlql"
)

// Advisor decides which mediated schemas to materialize under a storage
// budget, adapting to the observed query load. It implements a greedy
// benefit-per-size policy in the spirit of automated view selection
// ([Agrawal et al. 2000], which §3.3 cites as the problem's nearest
// relative), extended with the paper's complications: costs of remote
// sources are estimated from observed fetches rather than known, and the
// chosen set is re-evaluated as the load shifts.
type Advisor struct {
	cat *catalog.Catalog

	mu sync.Mutex
	// load counts queries per schema within the current window.
	load map[string]int
	// remoteCost accumulates observed bytes moved per schema's sources.
	remoteCost map[string]int
	// size is the last known materialized size (elements) per schema.
	size map[string]int
	// decay halves history each window so the advisor adapts.
	windows int
}

// NewAdvisor creates an advisor over a catalog.
func NewAdvisor(cat *catalog.Catalog) *Advisor {
	return &Advisor{
		cat:        cat,
		load:       map[string]int{},
		remoteCost: map[string]int{},
		size:       map[string]int{},
	}
}

// NoteQuery records the schemas a query references; call it per query.
func (a *Advisor) NoteQuery(q *xmlql.Query) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, dep := range catalog.QueryDeps(q) {
		if a.cat.IsSchema(dep) {
			a.load[strings.ToLower(dep)]++
		}
	}
}

// NoteCost records an observed remote fetch cost attributed to a schema
// (callers attribute fetches to the schema being answered).
func (a *Advisor) NoteCost(schema string, bytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.remoteCost[strings.ToLower(schema)] += bytes
}

// NoteSize records a schema's materialized size in elements.
func (a *Advisor) NoteSize(schema string, elements int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.size[strings.ToLower(schema)] = elements
}

// EndWindow halves all counters, so old load decays and the advisor
// adapts "over time depending on the query load" (§3.3).
func (a *Advisor) EndWindow() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for k, v := range a.load {
		a.load[k] = v / 2
	}
	for k, v := range a.remoteCost {
		a.remoteCost[k] = v / 2
	}
	a.windows++
}

// Candidate is one schema with its computed benefit.
type Candidate struct {
	Schema  string
	Queries int
	Cost    int
	Size    int
	Benefit float64
}

// Decide returns the schemas to materialize, greedily by benefit per
// size until the element budget is exhausted. Benefit of a schema is
// (queries in window) × (observed remote cost); unqueried schemas have
// zero benefit and are never chosen.
func (a *Advisor) Decide(budgetElements int) []Candidate {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cands []Candidate
	for schema, q := range a.load {
		if q == 0 {
			continue
		}
		cost := a.remoteCost[schema]
		if cost == 0 {
			cost = 1
		}
		size := a.size[schema]
		if size == 0 {
			size = 1 // unknown size: optimistic until measured
		}
		cands = append(cands, Candidate{
			Schema:  schema,
			Queries: q,
			Cost:    cost,
			Size:    size,
			Benefit: float64(q) * float64(cost) / float64(size),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Benefit != cands[j].Benefit {
			return cands[i].Benefit > cands[j].Benefit
		}
		return cands[i].Schema < cands[j].Schema
	})
	var chosen []Candidate
	used := 0
	for _, c := range cands {
		if used+c.Size > budgetElements {
			continue
		}
		used += c.Size
		chosen = append(chosen, c)
	}
	return chosen
}

// Apply reconciles the manager's store with a decision: materializes
// newly chosen schemas and drops no-longer-chosen ones. It returns the
// number of changes made.
func (a *Advisor) Apply(ctx context.Context, m *Manager, decision []Candidate) (int, error) {
	want := map[string]bool{}
	for _, c := range decision {
		want[strings.ToLower(c.Schema)] = true
	}
	changes := 0
	for _, have := range m.Materialized() {
		if !want[strings.ToLower(have)] {
			m.Drop(have)
			changes++
		}
	}
	for _, c := range decision {
		already := false
		for _, have := range m.Materialized() {
			if strings.EqualFold(have, c.Schema) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if err := m.Materialize(ctx, c.Schema); err != nil {
			return changes, err
		}
		changes++
		if st, ok := staleSize(m, c.Schema); ok {
			a.NoteSize(c.Schema, st)
		}
	}
	return changes, nil
}

func staleSize(m *Manager, schema string) (int, bool) {
	for _, e := range m.Entries() {
		if strings.EqualFold(e.Schema, schema) {
			return e.Elements, true
		}
	}
	return 0, false
}
