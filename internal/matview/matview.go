// Package matview implements the compound architecture of §3.3: "the
// system should be configurable to query on demand as well as
// materialize some data locally". One materializes views over the
// mediated schema — not a warehouse schema — and the query processor
// uses the local copies when available. Refresh is manual, periodic
// (TTL), or on-demand at lookup time.
//
// The package also contains the view-selection advisor for the research
// challenge §3.3 poses: "algorithms that decide which data (and over
// which sources) need to be materialized", adapting to the query load.
package matview

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xmldm"
)

// RefreshMode selects when a stale entry is refreshed.
type RefreshMode int

const (
	// RefreshManual: entries only change on explicit Refresh calls.
	RefreshManual RefreshMode = iota
	// RefreshOnDemand: a stale entry is refreshed synchronously when a
	// query touches it.
	RefreshOnDemand
	// RefreshStale: a stale entry is a miss; queries go back to the
	// sources until someone refreshes.
	RefreshStale
)

// Entry is one locally materialized mediated schema.
type Entry struct {
	Schema      string
	RefreshedAt time.Time
	Elements    int
	Hits        int64
	Refreshes   int64
}

type entry struct {
	Entry
	doc *xmldm.Node
}

// Manager owns the local materialized store and plugs itself into an
// engine as its local store.
type Manager struct {
	eng *core.Engine

	mu      sync.RWMutex
	entries map[string]*entry // guarded by mu

	// TTL after which an entry counts as stale; 0 means never stale.
	TTL time.Duration // guarded by mu
	// Mode selects the stale behaviour.
	Mode RefreshMode // guarded by mu
	// Clock is replaceable for tests and staleness experiments.
	Clock func() time.Time // guarded by mu

	// observability, nil (no-op) until SetMetrics.
	metrics    *obs.Registry // guarded by mu
	mRefreshes *obs.Counter  // guarded by mu
}

// SetMetrics mirrors the store into a metrics registry: a refresh
// counter, an entry-count gauge, and one staleness-age gauge per
// materialized schema (registered as schemas materialize).
func (m *Manager) SetMetrics(reg *obs.Registry) {
	m.mu.Lock()
	m.metrics = reg
	m.mRefreshes = reg.Counter("nimble_matview_refresh_total")
	m.mu.Unlock()
	reg.GaugeFunc("nimble_matview_entries", func() float64 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		return float64(len(m.entries))
	})
}

// NewManager creates a manager and installs it on the engine.
func NewManager(eng *core.Engine) *Manager {
	m := &Manager{
		eng:     eng,
		entries: make(map[string]*entry),
		Clock:   time.Now,
	}
	eng.SetLocalStore(m.lookup, m.holds)
	return m
}

// Materialize computes and stores the schema's document. It fails if
// the computation was incomplete (a half-materialized view would
// silently lose data on every later query).
func (m *Manager) Materialize(ctx context.Context, schema string) error {
	doc, comp, err := m.eng.MaterializeSchema(ctx, schema)
	if err != nil {
		return err
	}
	if !comp.Complete {
		return fmt.Errorf("matview: refusing to materialize %q from incomplete sources %v", schema, comp.FailedSources())
	}
	key := strings.ToLower(schema)
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &entry{Entry: Entry{Schema: schema}}
		m.entries[key] = e
	}
	e.doc = doc
	e.RefreshedAt = m.Clock()
	e.Elements = doc.CountElements()
	e.Refreshes++
	reg := m.metrics
	cnt := m.mRefreshes
	m.mu.Unlock()
	cnt.Inc()
	if reg != nil {
		reg.GaugeFunc("nimble_matview_staleness_seconds", func() float64 {
			age, ok := m.Staleness(schema)
			if !ok {
				return -1 // dropped: no local copy
			}
			return age.Seconds()
		}, "schema", key)
	}
	return nil
}

// Drop removes a materialized schema.
func (m *Manager) Drop(schema string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, strings.ToLower(schema))
}

// Refresh re-materializes an existing entry.
func (m *Manager) Refresh(ctx context.Context, schema string) error {
	m.mu.RLock()
	_, ok := m.entries[strings.ToLower(schema)]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("matview: schema %q is not materialized", schema)
	}
	return m.Materialize(ctx, schema)
}

// RefreshAll refreshes every entry; the periodic-refresh driver.
func (m *Manager) RefreshAll(ctx context.Context) error {
	for _, name := range m.Materialized() {
		if err := m.Refresh(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// StartPeriodicRefresh launches a background loop refreshing every
// entry each interval — the classic warehouse loading program (§3.3's
// "writing programs that load the data from the data sources to the
// warehouse periodically"), here one line of configuration. The loop
// stops when ctx is cancelled; refresh errors go to onErr (may be nil).
func (m *Manager) StartPeriodicRefresh(ctx context.Context, interval time.Duration, onErr func(error)) {
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := m.RefreshAll(ctx); err != nil && onErr != nil && ctx.Err() == nil {
					onErr(err)
				}
			}
		}
	}()
}

// Materialized lists the materialized schema names, sorted.
func (m *Manager) Materialized() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, e := range m.entries {
		out = append(out, e.Schema)
	}
	sort.Strings(out)
	return out
}

// Entries reports a snapshot of the store.
func (m *Manager) Entries() []Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Entry
	for _, e := range m.entries {
		out = append(out, e.Entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Schema < out[j].Schema })
	return out
}

// Staleness returns how old a schema's local copy is, and whether one
// exists.
func (m *Manager) Staleness(schema string) (time.Duration, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[strings.ToLower(schema)]
	if !ok {
		return 0, false
	}
	return m.Clock().Sub(e.RefreshedAt), true
}

// holds reports whether queries over the schema should skip unfolding
// because the store will answer them.
func (m *Manager) holds(schema string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[strings.ToLower(schema)]
	if !ok {
		return false
	}
	if m.isStaleLocked(e) && m.Mode == RefreshStale {
		return false
	}
	return true
}

// isStaleLocked reports staleness; the caller holds mu.
func (m *Manager) isStaleLocked(e *entry) bool {
	return m.TTL > 0 && m.Clock().Sub(e.RefreshedAt) > m.TTL
}

// Lookup is the exported form of the local-store hook, for wiring the
// manager into additional engine instances.
func (m *Manager) Lookup(source string, req catalog.Request) (*xmldm.Node, bool) {
	return m.lookup(source, req)
}

// Holds is the exported form of the skip-unfolding predicate.
func (m *Manager) Holds(schema string) bool { return m.holds(schema) }

// lookup is the engine's local-store hook.
func (m *Manager) lookup(source string, _ catalog.Request) (*xmldm.Node, bool) {
	key := strings.ToLower(source)
	m.mu.RLock()
	e, ok := m.entries[key]
	if !ok {
		m.mu.RUnlock()
		return nil, false
	}
	stale := m.isStaleLocked(e)
	mode := m.Mode
	doc := e.doc
	m.mu.RUnlock()

	if stale {
		switch mode {
		case RefreshOnDemand:
			// Synchronous refresh keeps the local answer fresh at the
			// price of one materialization.
			if err := m.Materialize(context.Background(), source); err == nil {
				m.mu.RLock()
				e = m.entries[key]
				doc = e.doc
				m.mu.RUnlock()
			}
		case RefreshStale:
			return nil, false
		}
	}
	m.mu.Lock()
	e.Hits++
	m.mu.Unlock()
	return doc, true
}
