package matview

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// newEnv builds an engine with a relational source and a "customers"
// mediated schema, returning the engine, the DB (for updates), and a
// counter of remote fetches.
func newEnv(t testing.TB) (*core.Engine, *rdb.Database, *int) {
	t.Helper()
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada'), (2, 'Alan')`)
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("crmdb", db)); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineViewQL("customers",
		`WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <cust><who>$n</who></cust>`); err != nil {
		t.Fatal(err)
	}
	e := core.New(cat)
	fetches := 0
	e.SetObserver(func(string, catalog.Request, catalog.Cost, error) { fetches++ })
	return e, db, &fetches
}

const custQuery = `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r> ORDER-BY $w`

func TestMaterializeServesLocally(t *testing.T) {
	e, _, fetches := newEnv(t)
	m := NewManager(e)
	if err := m.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	*fetches = 0
	res, err := e.Query(context.Background(), custQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %d", len(res.Values))
	}
	if *fetches != 0 {
		t.Errorf("remote fetches = %d, want 0", *fetches)
	}
	entries := m.Entries()
	if len(entries) != 1 || entries[0].Hits == 0 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestStalenessAndManualRefresh(t *testing.T) {
	e, db, _ := newEnv(t)
	m := NewManager(e)
	if err := m.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	// Source-side update: the local copy is now stale.
	db.MustExec(`INSERT INTO customers VALUES (3, 'Grace')`)
	res, _ := e.Query(context.Background(), custQuery)
	if len(res.Values) != 2 {
		t.Fatalf("stale copy should still answer with old data, got %d", len(res.Values))
	}
	if err := m.Refresh(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	res, _ = e.Query(context.Background(), custQuery)
	if len(res.Values) != 3 {
		t.Errorf("after refresh: %d values", len(res.Values))
	}
	if err := m.Refresh(context.Background(), "nosuch"); err == nil {
		t.Error("refreshing unmaterialized schema should fail")
	}
}

func TestTTLModes(t *testing.T) {
	e, db, _ := newEnv(t)
	m := NewManager(e)
	now := time.Unix(1000, 0)
	m.Clock = func() time.Time { return now }
	m.TTL = time.Minute
	if err := m.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO customers VALUES (3, 'Grace')`)

	// Fresh: local copy answers.
	res, _ := e.Query(context.Background(), custQuery)
	if len(res.Values) != 2 {
		t.Fatalf("fresh: %d", len(res.Values))
	}

	// Stale + RefreshStale: miss, back to sources.
	now = now.Add(2 * time.Minute)
	m.Mode = RefreshStale
	res, _ = e.Query(context.Background(), custQuery)
	if len(res.Values) != 3 {
		t.Errorf("RefreshStale should fall through to sources: %d", len(res.Values))
	}

	// Stale + RefreshOnDemand: refresh then answer locally.
	db.MustExec(`INSERT INTO customers VALUES (4, 'Edsger')`)
	m.Mode = RefreshOnDemand
	res, _ = e.Query(context.Background(), custQuery)
	if len(res.Values) != 4 {
		t.Errorf("RefreshOnDemand should see the update: %d", len(res.Values))
	}

	// Stale + RefreshManual: stale data keeps serving.
	db.MustExec(`INSERT INTO customers VALUES (5, 'Barbara')`)
	m.Mode = RefreshManual
	now = now.Add(2 * time.Minute)
	res, _ = e.Query(context.Background(), custQuery)
	if len(res.Values) != 4 {
		t.Errorf("RefreshManual should serve stale: %d", len(res.Values))
	}

	if st, ok := m.Staleness("customers"); !ok || st != 2*time.Minute {
		t.Errorf("staleness = %v, %v", st, ok)
	}
}

func TestDropRestoresVirtualQuerying(t *testing.T) {
	e, db, fetches := newEnv(t)
	m := NewManager(e)
	m.Materialize(context.Background(), "customers")
	m.Drop("customers")
	db.MustExec(`INSERT INTO customers VALUES (3, 'Grace')`)
	*fetches = 0
	res, _ := e.Query(context.Background(), custQuery)
	if len(res.Values) != 3 {
		t.Errorf("virtual querying should see fresh data: %d", len(res.Values))
	}
	if *fetches == 0 {
		t.Error("drop should restore remote fetching")
	}
	if _, ok := m.Staleness("customers"); ok {
		t.Error("entry should be gone")
	}
}

func TestMaterializeRefusesIncomplete(t *testing.T) {
	cat := catalog.New()
	legacy, _ := sources.NewXMLSource("legacy", `<l><c><who>X</who></c></l>`)
	cat.AddSource(sources.NewDowned(legacy))
	cat.DefineViewQL("customers", `WHERE <c><who>$w</who></c> IN "legacy" CONSTRUCT <cust><who>$w</who></cust>`)
	e := core.New(cat)
	m := NewManager(e)
	if err := m.Materialize(context.Background(), "customers"); err == nil {
		t.Error("materializing from a down source must fail, not store half a view")
	}
}

func TestRefreshAll(t *testing.T) {
	e, db, _ := newEnv(t)
	m := NewManager(e)
	m.Materialize(context.Background(), "customers")
	db.MustExec(`INSERT INTO customers VALUES (3, 'Grace')`)
	if err := m.RefreshAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Query(context.Background(), custQuery)
	if len(res.Values) != 3 {
		t.Errorf("after RefreshAll: %d", len(res.Values))
	}
}

func TestPeriodicRefresh(t *testing.T) {
	e, db, _ := newEnv(t)
	m := NewManager(e)
	if err := m.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO customers VALUES (3, 'Grace')`)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartPeriodicRefresh(ctx, 5*time.Millisecond, func(err error) { t.Error(err) })
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := e.Query(context.Background(), custQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) == 3 {
			return // the loader picked up the insert
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("periodic refresh never picked up the source update")
}

func TestAdvisorGreedySelection(t *testing.T) {
	e, _, _ := newEnv(t)
	cat := e.Catalog()
	cat.DefineViewQL("rare", `WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <r><n>$n</n></r>`)
	a := NewAdvisor(cat)

	hot := xmlql.MustParse(custQuery)
	cold := xmlql.MustParse(`WHERE <r><n>$n</n></r> IN "rare" CONSTRUCT <o>$n</o>`)
	for i := 0; i < 100; i++ {
		a.NoteQuery(hot)
	}
	a.NoteQuery(cold)
	a.NoteCost("customers", 4000)
	a.NoteCost("rare", 4000)
	a.NoteSize("customers", 50)
	a.NoteSize("rare", 50)

	// Budget fits only one schema: the hot one wins.
	dec := a.Decide(60)
	if len(dec) != 1 || dec[0].Schema != "customers" {
		t.Fatalf("decision = %+v", dec)
	}
	// Budget fits both.
	dec = a.Decide(200)
	if len(dec) != 2 {
		t.Errorf("decision = %+v", dec)
	}
	// Unqueried schemas never selected.
	for _, c := range dec {
		if c.Queries == 0 {
			t.Errorf("unqueried schema chosen: %+v", c)
		}
	}
}

func TestAdvisorAdaptsAfterWindowDecay(t *testing.T) {
	e, _, _ := newEnv(t)
	cat := e.Catalog()
	cat.DefineViewQL("other", `WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <x><n>$n</n></x>`)
	a := NewAdvisor(cat)
	hot := xmlql.MustParse(custQuery)
	newHot := xmlql.MustParse(`WHERE <x><n>$n</n></x> IN "other" CONSTRUCT <o>$n</o>`)

	for i := 0; i < 100; i++ {
		a.NoteQuery(hot)
	}
	a.NoteSize("customers", 10)
	a.NoteSize("other", 10)
	if dec := a.Decide(15); len(dec) != 1 || dec[0].Schema != "customers" {
		t.Fatalf("phase 1 decision = %+v", dec)
	}
	// The load shifts; after several windows of decay the new schema
	// dominates.
	for w := 0; w < 6; w++ {
		a.EndWindow()
		for i := 0; i < 50; i++ {
			a.NoteQuery(newHot)
		}
	}
	dec := a.Decide(15)
	if len(dec) != 1 || dec[0].Schema != "other" {
		t.Errorf("advisor did not adapt: %+v", dec)
	}
}

func TestAdvisorApply(t *testing.T) {
	e, _, _ := newEnv(t)
	m := NewManager(e)
	a := NewAdvisor(e.Catalog())
	a.NoteQuery(xmlql.MustParse(custQuery))
	a.NoteSize("customers", 1)
	changes, err := a.Apply(context.Background(), m, a.Decide(1000))
	if err != nil {
		t.Fatal(err)
	}
	if changes != 1 || len(m.Materialized()) != 1 {
		t.Errorf("changes = %d, materialized = %v", changes, m.Materialized())
	}
	// Applying an empty decision drops it again.
	changes, err = a.Apply(context.Background(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if changes != 1 || len(m.Materialized()) != 0 {
		t.Errorf("drop changes = %d, materialized = %v", changes, m.Materialized())
	}
	// Re-applying the same decision is a no-op.
	changes, _ = a.Apply(context.Background(), m, nil)
	if changes != 0 {
		t.Errorf("no-op changes = %d", changes)
	}
}

func TestMaterializedDocumentShape(t *testing.T) {
	e, _, _ := newEnv(t)
	doc, comp, err := e.MaterializeSchema(context.Background(), "customers")
	if err != nil || !comp.Complete {
		t.Fatalf("materialize: %v, %+v", err, comp)
	}
	if doc.Name != "customers" || len(doc.ChildrenNamed("cust")) != 2 {
		t.Errorf("document = %s", doc.String())
	}
	var v xmldm.Value = doc
	if v.Kind() != xmldm.KindNode {
		t.Error("document should be a node")
	}
}

func TestMatviewMetrics(t *testing.T) {
	eng, _, _ := newEnv(t)
	m := NewManager(eng)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	if err := m.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("nimble_matview_refresh_total").Value(); n != 2 {
		t.Errorf("refreshes = %d", n)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "nimble_matview_entries 1") {
		t.Errorf("entries gauge missing:\n%s", out)
	}
	if !strings.Contains(out, `nimble_matview_staleness_seconds{schema="customers"}`) {
		t.Errorf("staleness gauge missing:\n%s", out)
	}
}
