package xmlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldm"
)

func TestParseSimple(t *testing.T) {
	doc, err := ParseString(`<catalog><book id="b1"><title>TAOCP</title></book></catalog>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "catalog" {
		t.Errorf("root = %q", doc.Name)
	}
	book := doc.Child("book")
	if book == nil {
		t.Fatal("no book")
	}
	if id, _ := book.Attr("id"); id != "b1" {
		t.Errorf("id = %q", id)
	}
	if got := book.Child("title").Text(); got != "TAOCP" {
		t.Errorf("title = %q", got)
	}
	if book.Parent != doc {
		t.Error("parent pointer missing")
	}
	if doc.Ord != 1 || book.Ord != 2 {
		t.Errorf("ordinals = %d, %d", doc.Ord, book.Ord)
	}
}

func TestParsePreservesSiblingOrder(t *testing.T) {
	doc, err := ParseString(`<r><a>1</a><b>2</b><a>3</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range doc.ChildElements() {
		got = append(got, e.Name+e.Text())
	}
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestParseMixedContent(t *testing.T) {
	doc, err := ParseString(`<p>hello <b>world</b> again</p>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Text(); got != "hello world again" {
		t.Errorf("text = %q", got)
	}
	if len(doc.Children) != 3 {
		t.Errorf("children = %d, want text+elem+text", len(doc.Children))
	}
}

func TestParseDropsInterElementWhitespace(t *testing.T) {
	doc, err := ParseString("<r>\n  <a>x</a>\n  <b>y</b>\n</r>")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 2 {
		t.Errorf("children = %d, want 2 (whitespace dropped)", len(doc.Children))
	}
}

func TestParseEntitiesAndEscaping(t *testing.T) {
	doc, err := ParseString(`<x a="q&quot;v">&lt;tag&gt; &amp; more</x>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Text(); got != "<tag> & more" {
		t.Errorf("text = %q", got)
	}
	if a, _ := doc.Attr("a"); a != `q"v` {
		t.Errorf("attr = %q", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",           // no root
		"   ",        // no root
		"<a><b></a>", // mismatched
		"<a>",        // unterminated
		"<a/><b/>",   // multiple roots
		"plain text", // no element
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) should fail", c)
		}
	}
}

func TestParseSkipsCommentsAndPIs(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?><!-- c --><r><!-- inner --><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 1 {
		t.Errorf("children = %d", len(doc.Children))
	}
}

func TestParseStripsNamespacePrefixes(t *testing.T) {
	doc, err := ParseString(`<ns:r xmlns:ns="http://x"><ns:a>1</ns:a></ns:r>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "r" || doc.Child("a") == nil {
		t.Errorf("namespace handling: root=%q", doc.Name)
	}
	for _, a := range doc.Attrs {
		if strings.Contains(a.Name, "xmlns") {
			t.Errorf("xmlns attribute leaked: %v", a)
		}
	}
}

func TestSerializeCompactRoundTrip(t *testing.T) {
	in := `<catalog><book id="b1"><title>T &amp; A</title><price>12.5</price></book><book id="b2"/></catalog>`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	out := SerializeString(doc, 0)
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if doc2.CountElements() != doc.CountElements() {
		t.Errorf("element count changed: %d -> %d", doc.CountElements(), doc2.CountElements())
	}
	if doc2.Text() != doc.Text() {
		t.Errorf("text changed: %q -> %q", doc.Text(), doc2.Text())
	}
}

func TestSerializeIndented(t *testing.T) {
	doc, _ := ParseString(`<r><a>1</a></r>`)
	out := SerializeString(doc, 2)
	if !strings.Contains(out, "\n  <a>") {
		t.Errorf("indented output = %q", out)
	}
	var sb strings.Builder
	if err := Serialize(&sb, doc, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Error("Serialize with indent should end with newline")
	}
}

// randomTree builds a random element tree for the round-trip property.
func randomTree(r *rand.Rand, depth int) *xmldm.Node {
	b := xmldm.NewBuilder()
	var build func(d int) *xmldm.Node
	names := []string{"a", "b", "item", "rec"}
	build = func(d int) *xmldm.Node {
		var kids []any
		if r.Intn(3) == 0 {
			kids = append(kids, xmldm.Attr{Name: "k", Value: randText(r)})
		}
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			if d > 0 && r.Intn(2) == 0 {
				kids = append(kids, build(d-1))
			} else if txt := randText(r); strings.TrimSpace(txt) != "" {
				kids = append(kids, txt)
			}
		}
		return b.Elem(names[r.Intn(len(names))], kids...)
	}
	root := build(depth)
	xmldm.Finalize(root)
	return root
}

func randText(r *rand.Rand) string {
	chars := "abc <>&\"xyz"
	n := r.Intn(8)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(chars[r.Intn(len(chars))])
	}
	return sb.String()
}

func TestParseNeverPanics_Property(t *testing.T) {
	pieces := []string{"<", ">", "</", "/>", "a", "b", `="x"`, "&amp;", "&", "text", " ", "<!--", "-->", "<?x?>", "\x00", "é"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		n := r.Intn(30)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("Parse panicked on %q: %v", sb.String(), rec)
			}
		}()
		doc, err := ParseString(sb.String())
		if err == nil && doc == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSerializeParseRoundTrip_Property(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		out := SerializeString(tree, 0)
		back, err := ParseString(out)
		if err != nil {
			t.Logf("serialize %q failed reparse: %v", out, err)
			return false
		}
		if back.CountElements() != tree.CountElements() {
			t.Logf("element count %d -> %d for %q", tree.CountElements(), back.CountElements(), out)
			return false
		}
		// Text can differ only by whitespace-only segments dropped at parse.
		if strings.TrimSpace(back.Text()) != strings.TrimSpace(tree.Text()) {
			// Inner whitespace between elements may be dropped; compare
			// with all spaces removed as the weaker invariant.
			a := strings.ReplaceAll(tree.Text(), " ", "")
			bt := strings.ReplaceAll(back.Text(), " ", "")
			if a != bt {
				t.Logf("text %q -> %q", tree.Text(), back.Text())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
