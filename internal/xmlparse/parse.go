// Package xmlparse converts between XML text and the xmldm node model.
// It is the boundary through which XML documents enter the integration
// system — from XML sources, from wire requests, and from stored
// materialized views.
package xmlparse

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode"

	"repro/internal/xmldm"
)

// ErrNoRoot is returned when the input contains no root element.
var ErrNoRoot = errors.New("xmlparse: document has no root element")

// Parse reads one XML document from r and returns its root element with
// parent pointers and document ordinals assigned. Whitespace-only text
// between elements is dropped; all other character data is kept in
// document order. Comments and processing instructions are skipped.
func Parse(r io.Reader) (*xmldm.Node, error) {
	dec := xml.NewDecoder(r)
	var root *xmldm.Node
	var stack []*xmldm.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlparse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name := localName(t.Name)
			if !isXMLName(name) {
				// encoding/xml lets some invalid local names through in
				// namespaced form (e.g. <a:0>); reject them here so
				// every parsed document re-serializes to valid XML.
				return nil, fmt.Errorf("xmlparse: invalid element name %q", name)
			}
			n := &xmldm.Node{Name: name}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				an := localName(a.Name)
				if !isXMLName(an) {
					return nil, fmt.Errorf("xmlparse: invalid attribute name %q", an)
				}
				n.Attrs = append(n.Attrs, xmldm.Attr{Name: an, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmlparse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmlparse: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, xmldm.String(s))
		}
	}
	if root == nil {
		return nil, ErrNoRoot
	}
	if len(stack) != 0 {
		return nil, errors.New("xmlparse: unexpected end of input inside element")
	}
	xmldm.Finalize(root)
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*xmldm.Node, error) { return Parse(strings.NewReader(s)) }

func localName(n xml.Name) string {
	// The integration engine works with local names: mediated schemas
	// define their own vocabulary, and sources' namespace prefixes are
	// metadata handled at the mapping layer.
	return n.Local
}

// isXMLName checks the (simplified, ASCII-leaning plus general Unicode
// letters) XML Name production: names must start with a letter or '_'
// and continue with letters, digits, '-', '.', or '_'.
func isXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || unicode.IsLetter(r)
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

// Serialize writes n as XML to w, optionally indented. indent <= 0 means
// compact output.
func Serialize(w io.Writer, n *xmldm.Node, indent int) error {
	var sb strings.Builder
	writeNode(&sb, n, indent, 0)
	if indent > 0 {
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// SerializeString renders n as an XML string, indented by indent spaces
// per level (compact when indent <= 0).
func SerializeString(n *xmldm.Node, indent int) string {
	var sb strings.Builder
	writeNode(&sb, n, indent, 0)
	return sb.String()
}

func writeNode(sb *strings.Builder, n *xmldm.Node, indent, depth int) {
	pad := func(d int) {
		if indent > 0 {
			if sb.Len() > 0 {
				sb.WriteByte('\n')
			}
			for i := 0; i < d*indent; i++ {
				sb.WriteByte(' ')
			}
		}
	}
	pad(depth)
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		xml.EscapeText(sb, []byte(a.Value))
		sb.WriteByte('"')
	}
	if len(n.Children) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	onlyText := true
	for _, c := range n.Children {
		if _, ok := c.(*xmldm.Node); ok {
			onlyText = false
			break
		}
	}
	for _, c := range n.Children {
		switch v := c.(type) {
		case *xmldm.Node:
			writeNode(sb, v, indent, depth+1)
		default:
			xml.EscapeText(sb, []byte(xmldm.Stringify(v)))
		}
	}
	if !onlyText {
		pad(depth)
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}
