package xmlparse

import "testing"

// FuzzParse is the native fuzz target for the XML reader: inputs that
// parse must re-serialize and re-parse to the same element count. Run
// with:
//
//	go test -fuzz=FuzzParse ./internal/xmlparse
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a b="c">text<d/>more</a>`,
		`<r><a>1</a><a>2</a></r>`,
		`<x>&lt;escaped&gt;</x>`,
		`<ns:a xmlns:ns="u"><ns:b/></ns:a>`,
		`<broken>`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return
		}
		out := SerializeString(doc, 0)
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of serialized form failed: %v\nin: %q\nout: %q", err, src, out)
		}
		if back.CountElements() != doc.CountElements() {
			t.Fatalf("element count changed %d -> %d\nin: %q\nout: %q",
				doc.CountElements(), back.CountElements(), src, out)
		}
	})
}
