package sources

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/xmldm"
)

// DirectorySource is a hierarchical source in the style of an LDAP or
// IMS legacy system: data lives in a tree of entries addressed by
// slash-separated paths, and the only native query is a path lookup
// (optionally with a trailing wildcard selecting all children). It
// advertises KeyLookupOnly, so the optimizer knows that anything beyond
// a path lookup must be evaluated in the mediator.
type DirectorySource struct {
	name string

	mu   sync.RWMutex
	root *entry
}

type entry struct {
	name     string
	attrs    map[string]string
	children []*entry
}

// NewDirectorySource creates an empty hierarchical source with the given
// root entry name.
func NewDirectorySource(name, rootEntry string) *DirectorySource {
	return &DirectorySource{name: name, root: &entry{name: rootEntry, attrs: map[string]string{}}}
}

// Put creates (or updates) the entry at the slash-separated path,
// creating intermediate entries as needed, and sets its attributes.
func (s *DirectorySource) Put(path string, attrs map[string]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := splitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("sources: empty path")
	}
	cur := s.root
	for _, p := range parts {
		var next *entry
		for _, c := range cur.children {
			if c.name == p {
				next = c
				break
			}
		}
		if next == nil {
			next = &entry{name: p, attrs: map[string]string{}}
			cur.children = append(cur.children, next)
		}
		cur = next
	}
	for k, v := range attrs {
		cur.attrs[k] = v
	}
	return nil
}

func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Name implements catalog.Source.
func (s *DirectorySource) Name() string { return s.name }

// Capabilities implements catalog.Source.
func (s *DirectorySource) Capabilities() catalog.Capabilities {
	return catalog.Capabilities{KeyLookupOnly: true}
}

// Fetch implements catalog.Source. Request.Native is a path: "a/b/c"
// returns that entry's subtree; "a/b/*" returns all children of a/b; an
// empty path exports the whole directory.
func (s *DirectorySource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	if err := ctx.Err(); err != nil {
		return nil, catalog.Cost{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	targets := []*entry{s.root}
	if req.Native != "" {
		parts := splitPath(req.Native)
		cur := []*entry{s.root}
		for _, p := range parts {
			var next []*entry
			for _, e := range cur {
				for _, c := range e.children {
					if p == "*" || c.name == p {
						next = append(next, c)
					}
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		targets = cur
	}
	root := &xmldm.Node{Name: s.name}
	count := 0
	for _, e := range targets {
		n := entryToNode(e, &count)
		n.Parent = root
		root.Children = append(root.Children, n)
	}
	xmldm.Finalize(root)
	return root, catalog.Cost{RowsReturned: count, BytesMoved: count * 32}, nil
}

func entryToNode(e *entry, count *int) *xmldm.Node {
	*count++
	n := &xmldm.Node{Name: e.name}
	// Attributes export as child elements so patterns can bind them the
	// same way as relational columns.
	keys := make([]string, 0, len(e.attrs))
	for k := range e.attrs {
		keys = append(keys, k)
	}
	// Deterministic order for stable documents.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		c := &xmldm.Node{Name: k, Parent: n, Children: []xmldm.Value{xmldm.String(e.attrs[k])}}
		n.Children = append(n.Children, c)
	}
	for _, child := range e.children {
		cn := entryToNode(child, count)
		cn.Parent = n
		n.Children = append(n.Children, cn)
	}
	return n
}
