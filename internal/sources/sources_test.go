package sources

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/rdb"
	"repro/internal/xmldm"
)

func newCRM(t testing.TB) *rdb.Database {
	t.Helper()
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada', 'London'), (2, 'Alan', 'London'), (3, 'Grace', 'New York')`)
	db.MustExec(`CREATE INDEX ON customers (city)`)
	return db
}

func TestRelationalSourceDescriptors(t *testing.T) {
	s := NewRelationalSource("crmdb", newCRM(t))
	ds := s.Descriptors()
	if len(ds) != 1 {
		t.Fatalf("descriptors = %d", len(ds))
	}
	d := ds[0]
	if d.RowElement != "customer" {
		t.Errorf("row element = %q", d.RowElement)
	}
	if d.KeyColumn != "id" {
		t.Errorf("key = %q", d.KeyColumn)
	}
	if len(d.IndexedColumns) != 2 {
		t.Errorf("indexed = %v", d.IndexedColumns)
	}
	if d.ColumnElements["city"] != "city" {
		t.Errorf("columns = %v", d.ColumnElements)
	}
	caps := s.Capabilities()
	if !caps.Selection || !caps.Join || !caps.Ordering || !caps.Projection {
		t.Errorf("capabilities = %+v", caps)
	}
}

func TestRelationalSourceFullExport(t *testing.T) {
	s := NewRelationalSource("crmdb", newCRM(t))
	doc, cost, err := s.Fetch(context.Background(), catalog.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "crmdb" {
		t.Errorf("root = %q", doc.Name)
	}
	rows := doc.ChildrenNamed("customer")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if got := rows[0].Child("name").Text(); got != "Ada" {
		t.Errorf("first name = %q", got)
	}
	if cost.RowsReturned != 3 {
		t.Errorf("cost = %+v", cost)
	}
}

func TestRelationalSourceSQLFragment(t *testing.T) {
	s := NewRelationalSource("crmdb", newCRM(t))
	doc, cost, err := s.Fetch(context.Background(), catalog.Request{
		Native:     `SELECT name FROM customers WHERE city = 'London'`,
		Collection: "customers",
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := doc.ChildrenNamed("customer")
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Child("name") == nil || rows[0].Child("city") != nil {
		t.Error("projection not respected in export")
	}
	if cost.RowsReturned != 2 {
		t.Errorf("cost = %+v", cost)
	}
	// Bad SQL surfaces as an error naming the source.
	if _, _, err := s.Fetch(context.Background(), catalog.Request{Native: "garbage"}); err == nil || !strings.Contains(err.Error(), "crmdb") {
		t.Errorf("bad SQL error = %v", err)
	}
}

func TestSingular(t *testing.T) {
	cases := map[string]string{
		"customers": "customer", "orders": "order", "address": "address",
		"s": "s", "data": "data", "Boss": "boss", // 'ss' endings are kept

	}
	for in, want := range cases {
		if got := singular(in); got != want {
			t.Errorf("singular(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDirectorySource(t *testing.T) {
	d := NewDirectorySource("ldap", "org")
	if err := d.Put("eng/alice", map[string]string{"mail": "alice@x.com", "role": "dev"}); err != nil {
		t.Fatal(err)
	}
	d.Put("eng/bob", map[string]string{"mail": "bob@x.com"})
	d.Put("sales/carol", map[string]string{"mail": "carol@x.com"})
	if err := d.Put("", nil); err == nil {
		t.Error("empty path should fail")
	}
	if !d.Capabilities().KeyLookupOnly {
		t.Error("directory must be key-lookup-only")
	}

	// Whole export.
	doc, cost, err := d.Fetch(context.Background(), catalog.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "ldap" || doc.Child("org") == nil {
		t.Errorf("export root = %s", doc.Name)
	}
	if cost.RowsReturned < 5 {
		t.Errorf("cost = %+v", cost)
	}

	// Path lookup.
	doc, _, err = d.Fetch(context.Background(), catalog.Request{Native: "eng/alice"})
	if err != nil {
		t.Fatal(err)
	}
	alice := doc.Child("alice")
	if alice == nil || alice.Child("mail").Text() != "alice@x.com" {
		t.Errorf("path lookup = %s", doc.String())
	}

	// Wildcard.
	doc, _, _ = d.Fetch(context.Background(), catalog.Request{Native: "eng/*"})
	if len(doc.ChildElements()) != 2 {
		t.Errorf("wildcard children = %d", len(doc.ChildElements()))
	}

	// Miss.
	doc, _, _ = d.Fetch(context.Background(), catalog.Request{Native: "nosuch/path"})
	if len(doc.ChildElements()) != 0 {
		t.Error("missing path should return empty document")
	}

	// Update merges attributes.
	d.Put("eng/alice", map[string]string{"role": "lead"})
	doc, _, _ = d.Fetch(context.Background(), catalog.Request{Native: "eng/alice"})
	if doc.Child("alice").Child("role").Text() != "lead" {
		t.Error("attribute update lost")
	}
}

func TestXMLSource(t *testing.T) {
	s, err := NewXMLSource("bib", `<bib><book><title>T</title></book></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, _, err := s.Fetch(context.Background(), catalog.Request{})
	if err != nil || doc.Child("book") == nil {
		t.Errorf("fetch = %v, %v", doc, err)
	}
	if _, err := NewXMLSource("bad", `<a><b></a>`); err == nil {
		t.Error("bad XML should fail")
	}
}

func TestCSVSource(t *testing.T) {
	csvText := "id,Name,City\n1,Ada,London\n2,Alan,\n"
	s, err := NewCSVSource("feed", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	doc, _, _ := s.Fetch(context.Background(), catalog.Request{})
	rows := doc.ChildrenNamed("row")
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Child("name").Text() != "Ada" {
		t.Error("header not lower-cased or data wrong")
	}
	if rows[1].Child("city").Text() != "" {
		t.Error("empty field should be empty element")
	}
	if _, err := NewCSVSource("empty", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := NewCSVSource("ragged", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV should fail")
	}
}

func TestNetworkSimAvailability(t *testing.T) {
	base := catalog.NewStaticSource("s", mustElem())
	sim := NewNetworkSim(base, 0, 0.5, 42)
	ok, fail := 0, 0
	for i := 0; i < 200; i++ {
		_, _, err := sim.Fetch(context.Background(), catalog.Request{})
		if errors.Is(err, ErrUnavailable) {
			fail++
		} else if err == nil {
			ok++
		} else {
			t.Fatal(err)
		}
	}
	if ok < 60 || fail < 60 {
		t.Errorf("availability skew: ok=%d fail=%d", ok, fail)
	}
	calls, failures, _ := sim.Stats()
	if calls != 200 || failures != fail {
		t.Errorf("stats = %d, %d", calls, failures)
	}
}

func TestNetworkSimLatencyAccounting(t *testing.T) {
	base := catalog.NewStaticSource("s", mustElem())
	sim := NewNetworkSim(base, 5*time.Millisecond, 1.0, 1)
	sim.Sleep = false // account only
	for i := 0; i < 3; i++ {
		if _, _, err := sim.Fetch(context.Background(), catalog.Request{}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, simulated := sim.Stats()
	if simulated != 15*time.Millisecond {
		t.Errorf("simulated = %v", simulated)
	}
}

// TestNetworkSimInjectedSleep pins the sleep path to an injected
// sleeper instead of racing real wall-clock deadlines (the old version
// compared a 5ms context against a 2ms sleep and flaked under load).
func TestNetworkSimInjectedSleep(t *testing.T) {
	base := catalog.NewStaticSource("s", mustElem())
	sim := NewNetworkSim(base, 2*time.Millisecond, 1.0, 1)
	var slept []time.Duration
	sim.SleepFn = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	if _, _, err := sim.Fetch(context.Background(), catalog.Request{}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Millisecond {
		t.Errorf("slept = %v, want one 2ms sleep", slept)
	}
	// A sleeper observing cancellation aborts the fetch with the
	// context's error — no wall-clock wait involved.
	sim.Latency = time.Second
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sim.Fetch(ctx, catalog.Request{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancel err = %v", err)
	}
	if len(slept) != 2 || slept[1] != time.Second {
		t.Errorf("slept = %v, want the 1s attempt recorded", slept)
	}
}

func TestTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrUnavailable, true},
		{ErrMalformed, true},
		{fmt.Errorf("wrapped: %w", ErrUnavailable), true},
		{fmt.Errorf("wrapped: %w", ErrMalformed), true},
		{errors.New("schema mismatch"), false},
		{context.Canceled, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDowned(t *testing.T) {
	d := NewDowned(catalog.NewStaticSource("s", mustElem()))
	if d.Name() != "s" {
		t.Errorf("name = %q", d.Name())
	}
	if _, _, err := d.Fetch(context.Background(), catalog.Request{}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v", err)
	}
}

func mustElem() *xmldm.Node {
	b := xmldm.NewBuilder()
	return b.Elem("doc", b.Elem("item", "1"))
}

func TestInstrumentedSource(t *testing.T) {
	inner, err := NewXMLSource("feed", `<feed><a>1</a></feed>`)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	src := Instrument(inner, reg)
	if src.Name() != "feed" {
		t.Errorf("name = %s", src.Name())
	}
	if w, ok := src.(interface{ Inner() catalog.Source }); !ok || w.Inner() != catalog.Source(inner) {
		t.Error("Instrumented must expose Inner() for descriptor unwrapping")
	}
	if _, _, err := src.Fetch(context.Background(), catalog.Request{}); err != nil {
		t.Fatal(err)
	}
	down := Instrument(NewDowned(inner), reg)
	if _, _, err := down.Fetch(context.Background(), catalog.Request{}); err == nil {
		t.Fatal("downed fetch should fail")
	}
	if n := reg.Counter("nimble_source_fetch_total", "source", "feed", "outcome", "ok").Value(); n != 1 {
		t.Errorf("ok fetches = %d", n)
	}
	if n := reg.Counter("nimble_source_fetch_total", "source", "feed", "outcome", "unavailable").Value(); n != 1 {
		t.Errorf("unavailable fetches = %d", n)
	}
	if c := reg.Histogram("nimble_source_fetch_seconds", "source", "feed").Count(); c != 2 {
		t.Errorf("latency observations = %d", c)
	}
	// Nil registry: pass-through, no wrapper.
	if got := Instrument(inner, nil); got != catalog.Source(inner) {
		t.Error("nil registry should return the source unchanged")
	}
}
