package sources

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
)

// ErrUnavailable marks a source that did not answer — offline, or no
// network connectivity (§3.4). The execution layer treats it as a
// partial-results event rather than a query failure.
var ErrUnavailable = errors.New("sources: source unavailable")

// ErrMalformed marks a source whose answer could not be used — a
// truncated transfer or a garbled document. Like unavailability it is
// transient (the next attempt may decode cleanly), so the execution
// layer retries it and, under PolicyPartial, degrades it to a flagged
// partial result instead of failing the query.
var ErrMalformed = errors.New("sources: malformed response")

// Transient reports whether err is a transient transport/decode
// failure — one a retry might cure and the partial-results policy may
// absorb. Anything else (bad SQL, unknown collection) is a deterministic
// request error that retrying cannot fix.
func Transient(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrMalformed)
}

// XMLSource is a source over a parsed XML document. It cannot evaluate
// queries (Capabilities zero), so every fetch returns the document.
type XMLSource struct {
	*catalog.StaticSource
}

// NewXMLSource parses the document text and wraps it as a source.
func NewXMLSource(name, xmlText string) (*XMLSource, error) {
	doc, err := xmlparse.ParseString(xmlText)
	if err != nil {
		return nil, err
	}
	return &XMLSource{StaticSource: catalog.NewStaticSource(name, doc)}, nil
}

// NewCSVSource reads CSV data (first record is the header) and exposes
// it as a document <name><row><col>…</col></row>…</name> — the flat-file
// legacy feed common in the paper's customer scenarios.
func NewCSVSource(name string, r io.Reader) (*catalog.StaticSource, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sources: csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("sources: csv %s: empty input", name)
	}
	header := records[0]
	for i := range header {
		header[i] = strings.TrimSpace(strings.ToLower(header[i]))
	}
	root := &xmldm.Node{Name: name}
	for _, rec := range records[1:] {
		row := &xmldm.Node{Name: "row", Parent: root}
		for i, field := range rec {
			if i >= len(header) {
				break
			}
			c := &xmldm.Node{Name: header[i], Parent: row}
			if field != "" {
				c.Children = append(c.Children, xmldm.String(field))
			}
			row.Children = append(row.Children, c)
		}
		root.Children = append(root.Children, row)
	}
	xmldm.Finalize(root)
	return catalog.NewStaticSource(name, root), nil
}

// NetworkSim wraps a source with simulated transport behaviour: a fixed
// per-request latency, per-byte transfer time, and an availability
// probability. It substitutes for the WAN and flaky back ends of the
// paper's deployments: "they may be offline, or network connectivity may
// not be available" (§3.4).
type NetworkSim struct {
	inner catalog.Source

	// Latency is the per-request round-trip added to every fetch.
	Latency time.Duration
	// PerKB is added per kilobyte moved.
	PerKB time.Duration
	// Availability is the probability a request succeeds (1.0 = always).
	Availability float64
	// Sleep actually sleeps when true; otherwise the simulated time is
	// only accounted (fast benches use accounting, latency-sensitive
	// experiments use real sleeps).
	Sleep bool
	// SleepFn, when set, replaces the real wall-clock sleep — tests
	// inject a fake clock here so latency behaviour is exercised without
	// wall-clock waits (set before first use; not synchronized).
	SleepFn func(ctx context.Context, d time.Duration) error

	mu        sync.Mutex
	rng       *rand.Rand
	simulated time.Duration
	calls     int
	failures  int
}

// NewNetworkSim wraps inner; seed fixes the availability coin flips so
// experiments are reproducible.
func NewNetworkSim(inner catalog.Source, latency time.Duration, availability float64, seed int64) *NetworkSim {
	return &NetworkSim{
		inner:        inner,
		Latency:      latency,
		Availability: availability,
		Sleep:        latency > 0,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Name implements catalog.Source.
func (n *NetworkSim) Name() string { return n.inner.Name() }

// Capabilities implements catalog.Source.
func (n *NetworkSim) Capabilities() catalog.Capabilities { return n.inner.Capabilities() }

// Inner returns the wrapped source.
func (n *NetworkSim) Inner() catalog.Source { return n.inner }

// Fetch implements catalog.Source with the simulated transport applied.
func (n *NetworkSim) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	n.mu.Lock()
	n.calls++
	up := n.Availability >= 1 || n.rng.Float64() < n.Availability
	if !up {
		n.failures++
	}
	n.mu.Unlock()
	if !up {
		return nil, catalog.Cost{}, fmt.Errorf("%w: %s", ErrUnavailable, n.inner.Name())
	}
	doc, cost, err := n.inner.Fetch(ctx, req)
	if err != nil {
		return nil, cost, err
	}
	delay := n.Latency + time.Duration(cost.BytesMoved/1024)*n.PerKB
	n.mu.Lock()
	n.simulated += delay
	n.mu.Unlock()
	if n.Sleep && delay > 0 {
		if err := n.doSleep(ctx, delay); err != nil {
			return nil, cost, err
		}
	}
	return doc, cost, nil
}

// doSleep waits for the simulated delay, honouring cancellation, via
// SleepFn when injected and the wall clock otherwise.
func (n *NetworkSim) doSleep(ctx context.Context, d time.Duration) error {
	if n.SleepFn != nil {
		return n.SleepFn(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats reports calls, simulated failures, and accumulated simulated
// transfer time.
func (n *NetworkSim) Stats() (calls, failures int, simulated time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls, n.failures, n.simulated
}

// Instrumented wraps a source and records raw source-side fetch metrics
// (distinct from the execution layer's nimble_fetch_* series, which also
// cover the local store and schema materialization): call counts by
// outcome, bytes moved, and I/O latency.
type Instrumented struct {
	inner catalog.Source
	reg   *obs.Registry
}

// Instrument wraps src so every fetch is recorded into reg. A nil
// registry returns src unchanged.
func Instrument(src catalog.Source, reg *obs.Registry) catalog.Source {
	if reg == nil {
		return src
	}
	return &Instrumented{inner: src, reg: reg}
}

// Name implements catalog.Source.
func (s *Instrumented) Name() string { return s.inner.Name() }

// Capabilities implements catalog.Source.
func (s *Instrumented) Capabilities() catalog.Capabilities { return s.inner.Capabilities() }

// Inner returns the wrapped source (the optimizer unwraps through this
// to reach relational descriptors).
func (s *Instrumented) Inner() catalog.Source { return s.inner }

// Fetch implements catalog.Source with metric recording.
func (s *Instrumented) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	start := time.Now()
	doc, cost, err := s.inner.Fetch(ctx, req)
	name := strings.ToLower(s.inner.Name())
	outcome := "ok"
	switch {
	case errors.Is(err, ErrUnavailable):
		outcome = "unavailable"
	case err != nil:
		outcome = "error"
	}
	s.reg.Counter("nimble_source_fetch_total", "source", name, "outcome", outcome).Inc()
	s.reg.Counter("nimble_source_bytes_total", "source", name).Add(int64(cost.BytesMoved))
	s.reg.Histogram("nimble_source_fetch_seconds", "source", name).Observe(time.Since(start).Seconds())
	return doc, cost, err
}

// Downed is a source that is always unavailable; experiments use it to
// model a hard-down backend.
type Downed struct {
	inner catalog.Source
}

// NewDowned wraps inner as permanently unavailable.
func NewDowned(inner catalog.Source) *Downed { return &Downed{inner: inner} }

// Name implements catalog.Source.
func (d *Downed) Name() string { return d.inner.Name() }

// Capabilities implements catalog.Source.
func (d *Downed) Capabilities() catalog.Capabilities { return d.inner.Capabilities() }

// Fetch implements catalog.Source and always fails with ErrUnavailable.
func (d *Downed) Fetch(context.Context, catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	return nil, catalog.Cost{}, fmt.Errorf("%w: %s", ErrUnavailable, d.inner.Name())
}
