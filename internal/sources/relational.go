// Package sources implements the source wrappers of the integration
// system: relational (SQL-speaking), hierarchical (path lookups only),
// XML document, and CSV sources, plus simulation wrappers that inject
// network latency and unavailability so the experiments can reproduce
// §3.4's source-availability behaviour without a real WAN.
package sources

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/rdb"
	"repro/internal/xmldm"
)

// RelationalSource wraps an embedded rdb.Database as an integration
// source. It accepts SQL fragments (Request.Native) and exports results
// as XML documents: <table><row><col>v</col>…</row>…</table>. Without a
// fragment it exports whole tables, the behaviour the mediator falls
// back to when nothing can be pushed down.
type RelationalSource struct {
	name string
	db   *rdb.Database
	desc []catalog.RelationalDescriptor
}

// NewRelationalSource wraps db. Export descriptors are derived from the
// database schema: each table exports rows as <RowElement> elements
// (singularized table name) with one child element per column.
func NewRelationalSource(name string, db *rdb.Database) *RelationalSource {
	s := &RelationalSource{name: name, db: db}
	for _, tn := range db.TableNames() {
		t, err := db.Table(tn)
		if err != nil {
			continue
		}
		d := catalog.RelationalDescriptor{
			Table:          tn,
			RowElement:     singular(tn),
			ColumnElements: make(map[string]string),
		}
		for i, c := range t.Schema.Columns {
			d.ColumnElements[strings.ToLower(c.Name)] = strings.ToLower(c.Name)
			if i == t.Schema.PrimaryKey {
				d.KeyColumn = strings.ToLower(c.Name)
				d.IndexedColumns = append(d.IndexedColumns, strings.ToLower(c.Name))
			} else if db.HasIndex(tn, c.Name) {
				d.IndexedColumns = append(d.IndexedColumns, strings.ToLower(c.Name))
			}
		}
		s.desc = append(s.desc, d)
	}
	return s
}

// singular derives a row element name from a table name: customers →
// customer; a trailing 's' is stripped unless that would empty the name.
func singular(table string) string {
	t := strings.ToLower(table)
	if len(t) > 1 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") {
		return t[:len(t)-1]
	}
	return t
}

// Name implements catalog.Source.
func (s *RelationalSource) Name() string { return s.name }

// Capabilities implements catalog.Source: SQL sources evaluate
// selections, projections, joins and ordering.
func (s *RelationalSource) Capabilities() catalog.Capabilities {
	return catalog.Capabilities{Selection: true, Projection: true, Join: true, Ordering: true}
}

// Descriptors implements catalog.Relational.
func (s *RelationalSource) Descriptors() []catalog.RelationalDescriptor { return s.desc }

// DB exposes the underlying database for test fixtures and update
// streams in experiments.
func (s *RelationalSource) DB() *rdb.Database { return s.db }

// Fetch implements catalog.Source. With a SQL fragment, the result
// columns become child elements named by the output column; without one,
// the whole named table (or all tables) export in full.
func (s *RelationalSource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	if err := ctx.Err(); err != nil {
		return nil, catalog.Cost{}, err
	}
	if req.Native != "" {
		res, err := s.db.Exec(req.Native)
		if err != nil {
			return nil, catalog.Cost{}, fmt.Errorf("sources: %s: %w", s.name, err)
		}
		rowElem := "row"
		if req.Collection != "" {
			rowElem = singular(req.Collection)
		}
		doc := resultToXML(s.name, rowElem, res)
		cost := catalog.Cost{RowsReturned: len(res.Rows), BytesMoved: len(res.Rows) * len(res.Columns) * 16}
		return doc, cost, nil
	}
	// Full export of one table or all tables.
	root := &xmldm.Node{Name: s.name}
	rows := 0
	cols := 0
	for _, d := range s.desc {
		if req.Collection != "" && !strings.EqualFold(req.Collection, d.Table) {
			continue
		}
		res, err := s.db.Exec("SELECT * FROM " + d.Table)
		if err != nil {
			return nil, catalog.Cost{}, fmt.Errorf("sources: %s: %w", s.name, err)
		}
		appendResultRows(root, d.RowElement, res)
		rows += len(res.Rows)
		cols = len(res.Columns)
	}
	xmldm.Finalize(root)
	return root, catalog.Cost{RowsReturned: rows, BytesMoved: rows * (cols + 1) * 16}, nil
}

// resultToXML converts a SQL result into <source><rowElem>…</rowElem>…</source>.
func resultToXML(rootName, rowElem string, res *rdb.Result) *xmldm.Node {
	root := &xmldm.Node{Name: rootName}
	appendResultRows(root, rowElem, res)
	xmldm.Finalize(root)
	return root
}

func appendResultRows(root *xmldm.Node, rowElem string, res *rdb.Result) {
	for _, row := range res.Rows {
		r := &xmldm.Node{Name: rowElem, Parent: root}
		for i, col := range res.Columns {
			c := &xmldm.Node{Name: col, Parent: r}
			if row[i] != nil && row[i].Kind() != xmldm.KindNull {
				c.Children = append(c.Children, xmldm.String(xmldm.Stringify(row[i])))
			}
			r.Children = append(r.Children, c)
		}
		root.Children = append(root.Children, r)
	}
}
