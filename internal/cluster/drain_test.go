package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestDrainWaitsForInFlight: drain stops routing immediately but only
// removes the instance after its in-flight queries finish.
func TestDrainWaitsForInFlight(t *testing.T) {
	e0, gate := gatedEngine(t)
	c := New(Config{Policy: RoundRobin}, e0, newEngine(t, nil))

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background(), 0) }()

	// Draining: unrouted but not yet removed, and new queries flow to
	// the survivor.
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Instances[0].State != "draining" {
		if time.Now().After(deadline) {
			t.Fatalf("state = %q, want draining", c.Status().Instances[0].State)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Loads()[1]; got != 3 {
		t.Errorf("survivor ran %d queries, want 3", got)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned with a query in flight: %v", err)
	default:
	}

	// The in-flight query finishes; drain completes and removes.
	close(gate)
	if err := <-held; err != nil {
		t.Fatalf("held query: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := c.Status().Instances[0].State; got != "removed" {
		t.Errorf("state = %q after drain, want removed", got)
	}
}

// TestDrainTimeout: a drain bounded by a context reports the deadline
// while the instance stays draining (still unrouted).
func TestDrainTimeout(t *testing.T) {
	e0, gate := gatedEngine(t)
	defer close(gate)
	c := New(Config{Policy: RoundRobin}, e0, newEngine(t, nil))

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx, 0); err != context.DeadlineExceeded {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	if got := c.Status().Instances[0].State; got != "draining" {
		t.Errorf("state = %q after timed-out drain", got)
	}
}

// TestRestoreAfterDrain: a drained instance can rejoin the fleet.
func TestRestoreAfterDrain(t *testing.T) {
	c := New(Config{Policy: RoundRobin}, newEngines(t, 2)...)
	if err := c.Drain(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Status().Instances[0].State; got != "removed" {
		t.Fatalf("state = %q", got)
	}
	c.Restore(0)
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Fatalf("state = %q after restore", got)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Loads()[0]; got != 2 {
		t.Errorf("restored instance ran %d of 4 queries, want 2", got)
	}
}

// TestDrainAll empties the whole fleet (the daemon shutdown path).
func TestDrainAll(t *testing.T) {
	c := New(Config{Policy: RoundRobin}, newEngines(t, 3)...)
	if err := c.DrainAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, inst := range c.Status().Instances {
		if inst.State != "removed" {
			t.Errorf("instance %d state = %q", inst.ID, inst.State)
		}
	}
}

// TestClusterStorm is the -race stress test: concurrent queries, health
// probes against a chaos-flapping instance, drains, restores, and
// status snapshots all interleave. Correctness bar: no data race, no
// deadlock, and every query either succeeds or sheds with a typed
// overload error.
func TestClusterStorm(t *testing.T) {
	fc := chaos.NewFakeClock()
	reg := obs.NewRegistry()
	flappy := newEngine(t, chaos.Flap{Up: 3, Down: 2})
	engines := []*core.Engine{flappy}
	for i := 0; i < 3; i++ {
		engines = append(engines, newEngine(t, nil))
	}
	c := New(Config{
		Policy:        LeastOutstanding,
		Capacity:      4,
		QueueLimit:    64,
		ProbeInterval: time.Second,
		EjectAfter:    2,
		ReadmitAfter:  3 * time.Second,
		Clock:         fc,
		Metrics:       reg,
		Seed:          7,
	}, engines...)
	c.SetProbe(0, QueryProbe(flappy, testQuery))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Query storm.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := c.Query(ctx, testQuery)
				if err != nil {
					var oe *OverloadError
					if ctx.Err() != nil || errors.As(err, &oe) {
						continue
					}
					t.Errorf("query: %v", err)
					return
				}
				_ = res
			}
		}()
	}
	// Prober.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			fc.Advance(time.Second)
			c.ProbeNow(ctx)
		}
	}()
	// Drain/restore churn on instance 3.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			dctx, dcancel := context.WithTimeout(ctx, 100*time.Millisecond)
			_ = c.Drain(dctx, 3)
			dcancel()
			c.Restore(3)
		}
	}()
	// Inspector churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = c.Status()
			_ = c.Healthy()
			_ = c.Queued()
			_ = c.CacheStats()
		}
	}()
	wg.Wait()

	// The fleet settles: restore everything, and a final query works.
	for i := 0; i < c.Instances(); i++ {
		c.Restore(i)
	}
	if _, err := c.Query(context.Background(), testQuery); err != nil {
		t.Fatalf("query after storm: %v", err)
	}
}

// TestClusterSmoke is the `make cluster-smoke` target: a compact
// end-to-end pass over every policy with a chaos-faulted instance being
// ejected and readmitted along the way.
func TestClusterSmoke(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, LeastOutstanding, PowerOfTwo, CacheAffinity} {
		t.Run(policy.String(), func(t *testing.T) {
			fc := chaos.NewFakeClock()
			sick := newEngine(t, chaos.Fail(2))
			engines := []*core.Engine{sick}
			for i := 0; i < 3; i++ {
				engines = append(engines, newEngine(t, nil))
			}
			c := New(Config{
				Policy:        policy,
				Capacity:      4,
				QueueLimit:    32,
				ProbeInterval: time.Second,
				EjectAfter:    2,
				ReadmitAfter:  3 * time.Second,
				Clock:         fc,
				Seed:          11,
			}, engines...)
			c.SetProbe(0, QueryProbe(sick, testQuery))
			ctx := context.Background()

			// Eject the sick instance.
			c.ProbeNow(ctx)
			fc.Advance(time.Second)
			c.ProbeNow(ctx)
			if c.Healthy() != 3 {
				t.Fatalf("healthy = %d after ejection, want 3", c.Healthy())
			}
			// Zero failed requests while ejected.
			for i := 0; i < 12; i++ {
				res, err := c.Query(ctx, testQuery)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if !res.Completeness.Complete {
					t.Fatalf("query %d incomplete: routed to ejected instance", i)
				}
			}
			// Recover and readmit.
			fc.Advance(3 * time.Second)
			c.ProbeNow(ctx)
			if c.Healthy() != 4 {
				t.Fatalf("healthy = %d after readmission, want 4", c.Healthy())
			}
			// Drain one healthy instance and keep serving.
			if err := c.Drain(ctx, 1); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				if _, err := c.Query(ctx, testQuery); err != nil {
					t.Fatalf("query after drain: %v", err)
				}
			}
			if got := c.Status().Instances[1].State; got != "removed" {
				t.Errorf("drained instance state = %q", got)
			}
		})
	}
}
