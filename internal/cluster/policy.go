package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"
)

// Policy selects how the cluster routes a query to an instance. All
// policies route only among eligible instances — healthy, not draining,
// not removed, and (when capped) with a free concurrency slot — so a
// caller never queues behind one saturated instance while another
// idles.
type Policy int

const (
	// RoundRobin cycles through eligible instances.
	RoundRobin Policy = iota
	// LeastOutstanding picks the instance with the fewest outstanding
	// queries, counting admitted callers from the moment their slot is
	// granted (the old balancer counted only queries already executing,
	// so queued callers piled invisibly onto a saturated pick). Ties
	// rotate round-robin instead of always breaking toward instance 0.
	LeastOutstanding
	// PowerOfTwo samples two distinct eligible instances and takes the
	// less loaded — near-least-outstanding balance at O(1) cost, and
	// without the thundering-herd of every router agreeing on one
	// coldest instance.
	PowerOfTwo
	// CacheAffinity routes by rendezvous (highest-random-weight)
	// hashing on the normalized query text: a repeated query lands on
	// the same instance, whose result cache is warm. When that instance
	// is saturated or unhealthy the next-highest-weight instance takes
	// over (bounded spill), and when membership changes only the keys
	// owned by the changed instance move.
	CacheAffinity
)

// String names the policy as shown in Status and metrics.
func (p Policy) String() string {
	switch p {
	case LeastOutstanding:
		return "least-outstanding"
	case PowerOfTwo:
		return "power-of-two"
	case CacheAffinity:
		return "cache-affinity"
	default:
		return "round-robin"
	}
}

// ParsePolicy reads a policy name as accepted by the -route flag:
// "rr"/"round-robin", "least"/"least-outstanding" (also the old
// "least-loaded"), "p2c"/"power-of-two", "affinity"/"cache-affinity".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "least", "least-outstanding", "least-loaded":
		return LeastOutstanding, nil
	case "rr", "round-robin", "roundrobin":
		return RoundRobin, nil
	case "p2c", "power-of-two", "power2":
		return PowerOfTwo, nil
	case "affinity", "cache-affinity":
		return CacheAffinity, nil
	default:
		return 0, fmt.Errorf("cluster: unknown routing policy %q (want rr, least, p2c, or affinity)", s)
	}
}

// pickLocked selects an eligible instance per the policy, or nil when
// none has a free slot. Caller holds c.mu and increments active.
func (c *Cluster) pickLocked(key string) *member {
	n := len(c.members)
	eligible := func(m *member) bool {
		if m.removed || m.draining || m.ejected {
			return false
		}
		return m.capacity <= 0 || m.active < m.capacity
	}
	switch c.cfg.Policy {
	case LeastOutstanding:
		var best *member
		// Scan from the rotating offset so equal loads spread instead
		// of always settling on instance 0.
		for i := 0; i < n; i++ {
			m := c.members[(c.tie+i)%n]
			if !eligible(m) {
				continue
			}
			if best == nil || m.active < best.active {
				best = m
			}
		}
		if best != nil {
			c.tie = (best.id + 1) % n
		}
		return best
	case PowerOfTwo:
		var sample [2]*member
		k := 0
		// Reservoir-sample two distinct eligible members.
		seen := 0
		for _, m := range c.members {
			if !eligible(m) {
				continue
			}
			seen++
			if k < 2 {
				sample[k] = m
				k++
				continue
			}
			if j := int(c.rng.next() % uint64(seen)); j < 2 {
				sample[j] = m
			}
		}
		switch k {
		case 0:
			return nil
		case 1:
			return sample[0]
		}
		if sample[1].active < sample[0].active {
			return sample[1]
		}
		if sample[1].active == sample[0].active && c.rng.next()&1 == 1 {
			// Fair coin on ties: the reservoir fills sample[0] first, so
			// always preferring it would starve the instance that only
			// ever lands in sample[1].
			return sample[1]
		}
		return sample[0]
	case CacheAffinity:
		var best *member
		var bestW uint64
		for _, m := range c.members {
			if !eligible(m) {
				continue
			}
			if w := rendezvousWeight(key, m.name); best == nil || w > bestW {
				best, bestW = m, w
			}
		}
		return best
	default: // RoundRobin
		for i := 0; i < n; i++ {
			m := c.members[(c.rr+i)%n]
			if eligible(m) {
				c.rr = (m.id + 1) % n
				return m
			}
		}
		return nil
	}
}

// rendezvousWeight scores (key, instance) for highest-random-weight
// hashing: each instance gets an independent pseudo-random weight per
// key, and the key's owner is the maximum — so removing an instance
// reassigns only the keys it owned.
func rendezvousWeight(key, instance string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(instance))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// AffinityOwner reports which instance the policy would route key to
// when all instances are eligible (tests and capacity planning).
func (c *Cluster) AffinityOwner(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	best, bestW := -1, uint64(0)
	for _, m := range c.members {
		if w := rendezvousWeight(key, m.name); best < 0 || w > bestW {
			best, bestW = m.id, w
		}
	}
	return best
}

// splitmix is a tiny deterministic PRNG (SplitMix64) for the
// power-of-two sampler; seeded, so experiment runs reproduce.
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{state: seed} }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// realClock is the production Clock (exec.Clock shape).
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
