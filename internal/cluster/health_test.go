package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
)

// TestChaosEjectionAndReadmission is the end-to-end health story: a
// chaos-faulted instance fails consecutive probes and is ejected; while
// ejected it serves zero user queries and every request succeeds on the
// healthy survivor; once the fault clears and the cooldown elapses, a
// half-open probe readmits it. All on a fake clock — no wall time.
func TestChaosEjectionAndReadmission(t *testing.T) {
	fc := chaos.NewFakeClock()
	// Instance 0's source fails its first two fetches then recovers.
	sick := newEngine(t, chaos.Fail(2))
	well := newEngine(t, nil)
	c := New(Config{
		Policy:        RoundRobin,
		ProbeInterval: time.Second,
		EjectAfter:    2,
		ReadmitAfter:  5 * time.Second,
		Clock:         fc,
	}, sick, well)
	c.SetProbe(0, QueryProbe(sick, testQuery))
	ctx := context.Background()

	// Two failed probes eject instance 0.
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Fatalf("after 1 failed probe state = %q, want healthy", got)
	}
	fc.Advance(time.Second)
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "ejected" {
		t.Fatalf("after 2 failed probes state = %q, want ejected", got)
	}
	if c.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1", c.Healthy())
	}

	// While ejected: every user query succeeds, none touches instance 0.
	loads0 := c.Loads()[0]
	for i := 0; i < 6; i++ {
		res, err := c.Query(ctx, testQuery)
		if err != nil {
			t.Fatalf("query %d failed during ejection: %v", i, err)
		}
		if !res.Completeness.Complete {
			t.Fatalf("query %d incomplete during ejection: routed to the sick instance?", i)
		}
	}
	if got := c.Loads()[0]; got != loads0 {
		t.Errorf("ejected instance ran %d user queries", got-loads0)
	}

	// Cooldown not yet elapsed: the probe is withheld.
	fc.Advance(2 * time.Second)
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "ejected" {
		t.Fatalf("probed before cooldown: state = %q", got)
	}

	// Past the cooldown the half-open probe runs; the chaos script has
	// spent its faults, so it succeeds and readmits the instance.
	fc.Advance(4 * time.Second)
	if got := c.Status().Instances[0].State; got != "half-open" {
		t.Fatalf("state = %q, want half-open once cooldown elapsed", got)
	}
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Fatalf("state = %q after recovery probe, want healthy", got)
	}
	if c.Healthy() != 2 {
		t.Errorf("healthy = %d, want 2", c.Healthy())
	}
	// Traffic flows to it again.
	loads0 = c.Loads()[0]
	for i := 0; i < 4; i++ {
		if _, err := c.Query(ctx, testQuery); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Loads()[0]; got != loads0+2 {
		t.Errorf("readmitted instance ran %d of 4 round-robin queries, want 2", got-loads0)
	}
}

// TestHalfOpenFailureRestartsCooldown: a failed half-open probe re-ejects
// with a fresh cooldown instead of hammering the sick instance.
func TestHalfOpenFailureRestartsCooldown(t *testing.T) {
	fc := chaos.NewFakeClock()
	sick := newEngine(t, chaos.Fail(3)) // fails eject probes 1,2 AND the first half-open probe
	c := New(Config{
		Policy:        RoundRobin,
		ProbeInterval: time.Second,
		EjectAfter:    2,
		ReadmitAfter:  5 * time.Second,
		Clock:         fc,
	}, sick, newEngine(t, nil))
	c.SetProbe(0, QueryProbe(sick, testQuery))
	ctx := context.Background()

	c.ProbeNow(ctx)
	fc.Advance(time.Second)
	c.ProbeNow(ctx) // ejected
	fc.Advance(5 * time.Second)
	c.ProbeNow(ctx) // half-open probe fails: fresh cooldown
	if got := c.Status().Instances[0].State; got != "ejected" {
		t.Fatalf("state = %q after failed half-open probe, want ejected", got)
	}
	fc.Advance(2 * time.Second) // old cooldown would have expired by now
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "ejected" {
		t.Fatalf("cooldown did not restart: state = %q", got)
	}
	fc.Advance(4 * time.Second)
	c.ProbeNow(ctx) // fault budget spent: recovers
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Errorf("state = %q, want healthy", got)
	}
}

// TestBreakerProbeEjects wires PR-4's circuit breakers into health: an
// instance whose source breaker is open fails its probes and is
// ejected; once the breaker closes it is readmitted.
func TestBreakerProbeEjects(t *testing.T) {
	fc := chaos.NewFakeClock()
	e := newEngine(t, nil)
	bs := exec.NewBreakerSet(1, time.Minute, fc, nil)
	c := New(Config{
		Policy:        RoundRobin,
		ProbeInterval: time.Second,
		EjectAfter:    1,
		ReadmitAfter:  5 * time.Second,
		Clock:         fc,
	}, e, newEngine(t, nil))
	c.SetProbe(0, BreakerProbe(bs, "db"))
	c.SetBreakers(0, bs)
	ctx := context.Background()

	// Breaker closed: probe passes.
	bs.For("db").Success()
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Fatalf("state = %q with closed breaker", got)
	}

	// Open the breaker (threshold 1): next probe ejects.
	bs.For("db").Failure()
	fc.Advance(time.Second)
	c.ProbeNow(ctx)
	st := c.Status().Instances[0]
	if st.State != "ejected" {
		t.Fatalf("state = %q with open breaker, want ejected", st.State)
	}
	if st.Breakers["db"] != "open" {
		t.Errorf("inspector breakers = %v", st.Breakers)
	}

	// Close the breaker; after the cooldown the instance is readmitted.
	bs.For("db").Success()
	fc.Advance(5 * time.Second)
	c.ProbeNow(ctx)
	if got := c.Status().Instances[0].State; got != "healthy" {
		t.Errorf("state = %q after breaker closed, want healthy", got)
	}
}

// TestUserFailuresNeverEject: health is probe-driven only — a flood of
// failing user queries must not change instance state.
func TestUserFailuresNeverEject(t *testing.T) {
	c := New(Config{Policy: RoundRobin}, newEngines(t, 2)...)
	c.SetProbe(0, func(context.Context) error { return nil })
	for i := 0; i < 10; i++ {
		// A malformed query fails on whatever instance it routes to.
		if _, err := c.Query(context.Background(), "NOT A QUERY"); err == nil {
			t.Fatal("malformed query did not fail")
		}
	}
	if c.Healthy() != 2 {
		t.Errorf("healthy = %d after user-query failures, want 2", c.Healthy())
	}
}

// TestEjectAllThenRecover: with every instance ejected there is no
// routable capacity — callers wait (or shed on deadline) rather than
// erroring on a dead instance — and recovery drains the queue.
func TestEjectAllThenRecover(t *testing.T) {
	fc := chaos.NewFakeClock()
	e := newEngine(t, nil)
	c := New(Config{
		Policy:       RoundRobin,
		ReadmitAfter: 5 * time.Second,
		Clock:        fc,
	}, e)
	c.SetProbe(0, QueryProbe(e, testQuery))
	c.Eject(0)
	if c.Healthy() != 0 {
		t.Fatalf("healthy = %d after Eject", c.Healthy())
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued against a fully ejected cluster")
		}
		time.Sleep(time.Millisecond)
	}

	// Readmission dispatches the queued caller.
	fc.Advance(5 * time.Second)
	c.ProbeNow(context.Background())
	if err := <-done; err != nil {
		t.Fatalf("queued query after readmission: %v", err)
	}
}

// TestStartProbing drives the background prober on the real clock with
// a tiny interval — the daemon path.
func TestStartProbing(t *testing.T) {
	sick := newEngine(t, chaos.Fail(1000))
	c := New(Config{
		Policy:        RoundRobin,
		ProbeInterval: time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  time.Minute,
	}, sick, newEngine(t, nil))
	c.SetProbe(0, QueryProbe(sick, testQuery))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.StartProbing(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for c.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("background prober never ejected the sick instance")
		}
		time.Sleep(time.Millisecond)
	}
}
