// Package cluster is the health-aware front end over a fleet of engine
// instances — the tier §2.1 sketches when it says "multiple instances of
// the integration engine can be run simultaneously on one or more
// servers" behind load balancing. It subsumes the old in-process
// server.Balancer with a real cluster layer:
//
//   - an instance registry: each member wraps a core.Engine with health
//     state (healthy → ejected → half-open → healthy) driven by probes
//     on an injectable clock (chaos.FakeClock in tests), so a
//     chaos-faulted instance is ejected and readmitted after recovery;
//   - routing policies: round-robin, least-outstanding, power-of-two-
//     choices, and cache-affinity via rendezvous hashing on the
//     normalized query text, so repeated queries land on the instance
//     whose result cache is warm;
//   - admission control: a bounded global wait queue with deadline-aware
//     shedding (callers whose deadline would expire while queued are
//     refused immediately with a Retry-After hint) and per-instance
//     concurrency caps. Crucially the queue is global: a caller waits
//     for the first slot to free anywhere, never behind one saturated
//     instance while others idle (the head-of-line defect of the old
//     balancer, which picked an instance before acquiring its slot);
//   - graceful drain: stop routing to an instance, wait for its
//     in-flight queries, then remove it from the registry.
//
// Everything is observable: nimble_cluster_* metrics, and a Status
// snapshot served on /debug/cluster.
package cluster

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/sched"
	"repro/internal/xmlql"
)

// Clock abstracts time for health probing and queue-wait estimation;
// chaos.FakeClock satisfies it (it is exec.Clock, shared with the fetch
// resilience layer so one fake clock drives both).
type Clock = exec.Clock

// Defaults for the health prober and the admission estimator.
const (
	// DefaultProbeInterval spaces health probes of a healthy instance.
	DefaultProbeInterval = 2 * time.Second
	// DefaultEjectAfter is how many consecutive probe failures eject an
	// instance.
	DefaultEjectAfter = 3
	// DefaultReadmitAfter is the cooldown before an ejected instance
	// gets a half-open probe.
	DefaultReadmitAfter = 10 * time.Second
	// defaultServiceEstimate seeds the queue-wait estimator before any
	// query has completed.
	defaultServiceEstimate = 10 * time.Millisecond
)

// Config tunes a Cluster.
type Config struct {
	// Policy is the routing policy (default RoundRobin).
	Policy Policy
	// Capacity caps concurrent queries per instance (0 = unbounded).
	Capacity int
	// QueueLimit bounds the global admission queue once every instance
	// is saturated; excess callers are shed with an OverloadError
	// (0 = unbounded queue).
	QueueLimit int
	// ProbeInterval spaces health probes of healthy instances
	// (0 = DefaultProbeInterval).
	ProbeInterval time.Duration
	// EjectAfter is the consecutive probe failures that eject an
	// instance (0 = DefaultEjectAfter).
	EjectAfter int
	// ReadmitAfter is the cooldown before an ejected instance is probed
	// half-open (0 = DefaultReadmitAfter).
	ReadmitAfter time.Duration
	// Clock drives probe scheduling and wait estimation; nil = real
	// time. Tests inject chaos.FakeClock for determinism.
	Clock Clock
	// Metrics receives the nimble_cluster_* series; nil disables
	// metrics.
	Metrics *obs.Registry
	// Seed seeds the power-of-two-choices sampler (0 = 1), so runs are
	// reproducible.
	Seed int64
	// Logger receives structured admission/health/drain events with
	// trace correlation (nil discards them).
	Logger *slog.Logger
}

// OverloadError is returned when admission control sheds a query: the
// queue is full, or the caller's deadline would expire before a slot
// could free. The HTTP front end maps it to 503 with a Retry-After
// header.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

// RetryAfterSeconds renders the hint for a Retry-After header, rounded
// up and never below one second.
func (e *OverloadError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// member is one registered engine instance.
type member struct {
	id     int
	name   string
	engine *core.Engine

	cache    *qcache.Cache    // optional per-instance result cache (affinity's target)
	probe    Probe            // optional health probe
	breakers *exec.BreakerSet // optional, surfaced in Status

	capacity int  // guarded by Cluster.mu; 0 = unbounded
	active   int  // guarded by Cluster.mu; granted slots (queued callers count from grant)
	draining bool // guarded by Cluster.mu
	removed  bool // guarded by Cluster.mu

	drainDone chan struct{} // guarded by Cluster.mu; closed when active hits 0 while draining

	// health state machine, guarded by Cluster.mu.
	ejected   bool
	fails     int       // consecutive probe failures
	probing   bool      // a probe for this member is in flight
	lastProbe time.Time // when the last probe started
	readmitAt time.Time // when an ejected member may be probed half-open
	lastErr   string    // last probe failure, for the inspector

	mRequests    *obs.Counter
	mEjections   *obs.Counter
	mReadmission *obs.Counter
}

// waiter is one caller parked in the global admission queue.
type waiter struct {
	key     string
	ch      chan *member // buffered; receives the granted member
	enq     time.Time
	granted bool // guarded by Cluster.mu
}

// Cluster routes queries across registered engine instances.
type Cluster struct {
	cfg   Config
	clock Clock
	log   *slog.Logger // immutable after New; never nil

	mu      sync.Mutex
	members []*member  // guarded by mu (slice immutable; element state guarded)
	waiters *list.List // guarded by mu; FIFO of *waiter
	queued  int        // guarded by mu
	rr      int        // guarded by mu; round-robin cursor
	tie     int        // guarded by mu; rotating tie-break offset
	rng     *splitmix  // guarded by mu; p2c sampler
	ewmaNs  float64    // guarded by mu; service-time EWMA

	shedQueueFull int64 // guarded by mu
	shedDeadline  int64 // guarded by mu

	mShedQueueFull *obs.Counter
	mShedDeadline  *obs.Counter
	mQueueWait     *obs.Histogram

	sched *sched.Scheduler // guarded by mu; surfaced on /debug/cluster
}

// SetScheduler attaches the shared inter-query worker scheduler so its
// accounting appears in the /debug/cluster snapshot. The two admission
// layers compose without double-counting: cluster capacity slots bound
// how many *queries* run per instance, scheduler slots bound how many
// extra *workers* all running queries may spread across, process-wide.
// A query holds one cluster slot for its whole run and a worker grant
// that breathes (downgrades, upgrades, batch-yield) at operator
// boundaries inside that run.
func (c *Cluster) SetScheduler(s *sched.Scheduler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sched = s
}

// New builds a cluster over the given engine instances. Instance names
// come from core.Engine.ID when set, else the index.
func New(cfg Config, engines ...*core.Engine) *Cluster {
	if len(engines) == 0 {
		panic("cluster: at least one engine instance required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = DefaultReadmitAfter
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	c := &Cluster{
		cfg:     cfg,
		clock:   clock,
		log:     log,
		waiters: list.New(),
		rng:     newSplitmix(uint64(seed)),
	}
	for i, e := range engines {
		name := e.ID()
		if name == "" {
			name = strconv.Itoa(i)
		}
		c.members = append(c.members, &member{
			id:       i,
			name:     name,
			engine:   e,
			capacity: cfg.Capacity,
		})
	}
	if reg := cfg.Metrics; reg != nil {
		c.mShedQueueFull = reg.Counter("nimble_cluster_shed_total", "reason", "queue_full")
		c.mShedDeadline = reg.Counter("nimble_cluster_shed_total", "reason", "deadline")
		c.mQueueWait = reg.Histogram("nimble_cluster_queue_wait_seconds")
		reg.GaugeFunc("nimble_cluster_queue_depth", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.queued)
		})
		for _, m := range c.members {
			m := m
			m.mRequests = reg.Counter("nimble_cluster_requests_total", "instance", m.name)
			m.mEjections = reg.Counter("nimble_cluster_ejections_total", "instance", m.name)
			m.mReadmission = reg.Counter("nimble_cluster_readmissions_total", "instance", m.name)
			reg.GaugeFunc("nimble_cluster_inflight", func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(m.active)
			}, "instance", m.name)
			reg.GaugeFunc("nimble_cluster_healthy", func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				if m.ejected || m.draining || m.removed {
					return 0
				}
				return 1
			}, "instance", m.name)
		}
	}
	return c
}

// SetCache gives instance i its own result cache: under the
// CacheAffinity policy, repeated queries rendezvous-hash to the same
// instance and answer from this cache without touching the engine.
func (c *Cluster) SetCache(i int, cache *qcache.Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[i].cache = cache
}

// SetProbe installs instance i's health probe (see QueryProbe and
// BreakerProbe for the common shapes). Without a probe the instance is
// always considered healthy.
func (c *Cluster) SetProbe(i int, p Probe) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[i].probe = p
}

// SetBreakers attaches instance i's circuit-breaker set so the
// inspector can show per-source breaker positions alongside instance
// health.
func (c *Cluster) SetBreakers(i int, bs *exec.BreakerSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[i].breakers = bs
}

// SetCapacity bounds every instance to n concurrent queries (0 removes
// the bound). Safe to call concurrently with queries; waiting callers
// are re-dispatched when capacity grows.
func (c *Cluster) SetCapacity(n int) {
	if n < 0 {
		n = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Capacity = n
	for _, m := range c.members {
		m.capacity = n
	}
	c.dispatchLocked()
}

// Instances reports the number of registered instances (drained
// instances included; see Status for their state).
func (c *Cluster) Instances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

// Engine exposes instance i's engine (experiments and the management
// endpoints need per-instance control).
func (c *Cluster) Engine(i int) *core.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[i].engine
}

// InFlight reports instance i's outstanding queries: granted slots,
// counting admitted callers from the moment they are assigned, not just
// those already executing.
func (c *Cluster) InFlight(i int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.members[i].active)
}

// Queued reports the callers currently parked in the admission queue.
func (c *Cluster) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// Loads reports per-instance completed query counts.
func (c *Cluster) Loads() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.members))
	for i, m := range c.members {
		out[i] = m.engine.QueriesRun()
	}
	return out
}

// CacheStats aggregates the per-instance result caches (zero value when
// no instance has one).
func (c *Cluster) CacheStats() qcache.Stats {
	c.mu.Lock()
	caches := make([]*qcache.Cache, 0, len(c.members))
	for _, m := range c.members {
		if m.cache != nil {
			caches = append(caches, m.cache)
		}
	}
	c.mu.Unlock()
	var agg qcache.Stats
	for _, q := range caches {
		st := q.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Entries += st.Entries
	}
	return agg
}

// Query routes one query to an instance per the policy, through
// admission control and the instance's cache when it has one.
func (c *Cluster) Query(ctx context.Context, q string) (*core.Result, error) {
	return c.QueryOpt(ctx, q, core.QueryOptions{})
}

// QueryOpt is Query with per-query options (the profile/explain path,
// which bypasses per-instance caches so reports reflect a real
// execution).
func (c *Cluster) QueryOpt(ctx context.Context, q string, qo core.QueryOptions) (*core.Result, error) {
	key := qcache.Key(q)
	// The cluster hop hangs under the caller's span (nil-safe: without a
	// front-end trace the whole chain degrades to no-ops) and records
	// the routing decision and cache outcome.
	ctx, sp := obs.StartSpan(ctx, "cluster")
	defer sp.Finish()
	m, err := c.acquire(ctx, key)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	sp.SetAttr("route_policy", c.cfg.Policy.String())
	sp.SetAttr("instance", m.name)
	start := c.clock.Now()
	defer func() { c.release(m, c.clock.Now().Sub(start)) }()
	m.mRequests.Inc()
	bypassCache := qo.Profile || qo.Explain
	if m.cache != nil && !bypassCache {
		if hit, ok := m.cache.Get(key); ok {
			sp.SetBool("cache_hit", true)
			res := &core.Result{Values: hit.Values}
			res.Completeness.Complete = true
			return res, nil
		}
		sp.SetBool("cache_hit", false)
	}
	res, err := m.engine.QueryOpt(ctx, q, qo)
	if err == nil && res.Completeness.Complete && m.cache != nil && !bypassCache {
		m.cache.Put(key, qcache.Result{Values: res.Values, Sources: cacheTags(q, res)})
	}
	return res, err
}

// cacheTags lists every name a cached result depends on: the sources
// that actually answered (post-unfolding) plus the schemas the query
// text references, so invalidating either evicts the entry.
func cacheTags(q string, res *core.Result) []string {
	var srcs []string
	for _, st := range res.Completeness.Statuses {
		srcs = append(srcs, st.Source)
	}
	if parsed, err := xmlql.Parse(q); err == nil {
		srcs = append(srcs, catalog.QueryDeps(parsed)...)
	}
	return srcs
}

// acquire admits the caller and grants an instance slot: an immediate
// grant when some eligible instance has capacity, otherwise a wait in
// the global FIFO queue — unless admission control sheds the request.
func (c *Cluster) acquire(ctx context.Context, key string) (*member, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The admission span brackets the whole wait, so queue time shows up
	// as a distinct segment of the trace rather than vanishing into the
	// cluster span.
	spAdm := obs.FromContext(ctx).StartChild("admission")
	defer spAdm.Finish()
	m, w, elem, err := c.admit(ctx, key)
	if err != nil {
		var oe *OverloadError
		if errors.As(err, &oe) {
			spAdm.SetAttr("shed", oe.Reason)
			c.log.WarnContext(ctx, "admission shed",
				"reason", oe.Reason, "retry_after", oe.RetryAfter.String())
		}
		spAdm.SetAttr("error", err.Error())
		return nil, err
	}
	if m != nil {
		spAdm.SetAttr("outcome", "immediate")
		return m, nil
	}
	spAdm.AddEvent("enqueued")
	spAdm.SetAttr("outcome", "queued")

	select {
	case m := <-w.ch:
		wait := c.clock.Now().Sub(w.enq)
		c.mQueueWait.Observe(wait.Seconds())
		spAdm.AddEvent("granted", "instance", m.name)
		spAdm.SetInt("wait_us", wait.Microseconds())
		return m, nil
	case <-ctx.Done():
		c.mu.Lock()
		if !w.granted {
			c.waiters.Remove(elem)
			c.queued--
			c.mu.Unlock()
			spAdm.SetAttr("error", ctx.Err().Error())
			return nil, ctx.Err()
		}
		c.mu.Unlock()
		// The grant raced the cancellation: hand the slot back.
		c.release(<-w.ch, -1)
		spAdm.SetAttr("error", ctx.Err().Error())
		return nil, ctx.Err()
	}
}

// admit is acquire's locked half: it returns a granted member, or the
// waiter it parked in the global queue, or the shed error admission
// control decided on.
func (c *Cluster) admit(ctx context.Context, key string) (*member, *waiter, *list.Element, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.pickLocked(key); m != nil {
		m.active++
		return m, nil, nil, nil
	}
	// Saturated (or no healthy instance): admission control.
	est := c.estimateWaitLocked()
	if c.cfg.QueueLimit > 0 && c.queued >= c.cfg.QueueLimit {
		c.shedQueueFull++
		c.mShedQueueFull.Inc()
		return nil, nil, nil, &OverloadError{Reason: "queue full", RetryAfter: est}
	}
	now := c.clock.Now()
	if dl, ok := ctx.Deadline(); ok && now.Add(est).After(dl) {
		c.shedDeadline++
		c.mShedDeadline.Inc()
		return nil, nil, nil, &OverloadError{Reason: "deadline shorter than queue wait", RetryAfter: est}
	}
	w := &waiter{key: key, ch: make(chan *member, 1), enq: now}
	elem := c.waiters.PushBack(w)
	c.queued++
	return nil, w, elem, nil
}

// release returns a slot and re-dispatches the queue. dur < 0 skips the
// service-time EWMA (cancelled grants carry no signal).
func (c *Cluster) release(m *member, dur time.Duration) {
	c.mu.Lock()
	m.active--
	if dur >= 0 {
		ns := float64(dur.Nanoseconds())
		if c.ewmaNs == 0 {
			c.ewmaNs = ns
		} else {
			c.ewmaNs = 0.8*c.ewmaNs + 0.2*ns
		}
	}
	if m.draining && m.active == 0 && m.drainDone != nil {
		close(m.drainDone)
		m.drainDone = nil
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// dispatchLocked grants freed capacity to queued callers in FIFO order.
func (c *Cluster) dispatchLocked() {
	for c.waiters.Len() > 0 {
		front := c.waiters.Front()
		w := front.Value.(*waiter)
		m := c.pickLocked(w.key)
		if m == nil {
			return
		}
		m.active++
		w.granted = true
		c.waiters.Remove(front)
		c.queued--
		w.ch <- m
	}
}

// estimateWaitLocked predicts how long a newly queued caller would wait:
// queue position times the service-time EWMA, divided by the healthy
// capacity draining the queue.
func (c *Cluster) estimateWaitLocked() time.Duration {
	slots := 0
	for _, m := range c.members {
		if m.removed || m.draining || m.ejected {
			continue
		}
		if m.capacity <= 0 {
			// An unbounded healthy instance never queues callers for
			// capacity; the only wait is health recovery.
			return 0
		}
		slots += m.capacity
	}
	if slots == 0 {
		// No healthy capacity at all: recovery is bounded below by the
		// readmission cooldown.
		return c.cfg.ReadmitAfter
	}
	svc := time.Duration(c.ewmaNs)
	if svc <= 0 {
		svc = defaultServiceEstimate
	}
	turns := (c.queued + slots) / slots // ceil((queued+1)/slots)
	return time.Duration(turns) * svc
}

// Drain gracefully removes instance i: stop routing to it, wait for its
// in-flight queries to finish (or ctx to expire — the instance stays
// draining and unrouted either way), then drop it from the registry.
func (c *Cluster) Drain(ctx context.Context, i int) error {
	c.mu.Lock()
	m := c.members[i]
	if m.removed {
		c.mu.Unlock()
		return nil
	}
	m.draining = true
	active := m.active
	if m.active == 0 {
		m.removed = true
		c.mu.Unlock()
		obs.FromContext(ctx).AddEvent("drain", "instance", m.name, "waited_for", "0")
		c.log.InfoContext(ctx, "instance drained", "instance", m.name, "waited_for", 0)
		return nil
	}
	if m.drainDone == nil {
		m.drainDone = make(chan struct{})
	}
	done := m.drainDone
	c.mu.Unlock()
	obs.FromContext(ctx).AddEvent("drain wait", "instance", m.name, "active", strconv.Itoa(active))
	c.log.InfoContext(ctx, "draining instance", "instance", m.name, "active", active)

	select {
	case <-done:
	case <-ctx.Done():
		c.log.WarnContext(ctx, "drain interrupted", "instance", m.name, "error", ctx.Err().Error())
		return ctx.Err()
	}
	c.mu.Lock()
	m.removed = true
	c.mu.Unlock()
	obs.FromContext(ctx).AddEvent("drain", "instance", m.name, "waited_for", strconv.Itoa(active))
	c.log.InfoContext(ctx, "instance drained", "instance", m.name, "waited_for", active)
	return nil
}

// DrainAll drains every instance (shutdown path).
func (c *Cluster) DrainAll(ctx context.Context) error {
	for i, n := 0, c.Instances(); i < n; i++ {
		if err := c.Drain(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// Restore re-registers a drained (or ejected) instance as healthy —
// the rolling-restart counterpart of Drain.
func (c *Cluster) Restore(i int) {
	c.mu.Lock()
	m := c.members[i]
	m.draining = false
	m.removed = false
	m.ejected = false
	m.probing = false
	m.fails = 0
	m.lastErr = ""
	c.dispatchLocked()
	c.mu.Unlock()
	c.log.Info("instance restored", "instance", m.name)
}

// InstanceStatus is one instance's row in the /debug/cluster inspector.
type InstanceStatus struct {
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	State      string  `json:"state"` // healthy | ejected | half-open | draining | removed
	Active     int     `json:"active"`
	Capacity   int     `json:"capacity"`
	QueriesRun int64   `json:"queries_run"`
	ProbeFails int     `json:"probe_fails,omitempty"`
	LastProbeE string  `json:"last_probe_error,omitempty"`
	CacheHits  int64   `json:"cache_hits,omitempty"`
	CacheRate  float64 `json:"cache_hit_rate,omitempty"`
	// Breakers maps the instance's per-source circuit breakers to their
	// position, when a breaker set is attached.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// Status is the cluster snapshot served on /debug/cluster.
type Status struct {
	Policy        string           `json:"policy"`
	Capacity      int              `json:"capacity"`
	QueueLimit    int              `json:"queue_limit"`
	Queued        int              `json:"queued"`
	ShedQueueFull int64            `json:"shed_queue_full"`
	ShedDeadline  int64            `json:"shed_deadline"`
	AvgServiceMS  float64          `json:"avg_service_ms"`
	Instances     []InstanceStatus `json:"instances"`
	// Sched is the shared worker scheduler's accounting, when one is
	// attached (SetScheduler).
	Sched *sched.Snapshot `json:"sched,omitempty"`
}

// Status snapshots the registry for the inspector.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	st := Status{
		Policy:        c.cfg.Policy.String(),
		Capacity:      c.cfg.Capacity,
		QueueLimit:    c.cfg.QueueLimit,
		Queued:        c.queued,
		ShedQueueFull: c.shedQueueFull,
		ShedDeadline:  c.shedDeadline,
		AvgServiceMS:  c.ewmaNs / 1e6,
	}
	now := c.clock.Now()
	type probe struct {
		cache    *qcache.Cache
		breakers *exec.BreakerSet
	}
	extras := make([]probe, len(c.members))
	for i, m := range c.members {
		extras[i] = probe{m.cache, m.breakers}
		st.Instances = append(st.Instances, InstanceStatus{
			ID:         m.id,
			Name:       m.name,
			State:      m.stateLocked(now),
			Active:     m.active,
			Capacity:   m.capacity,
			QueriesRun: m.engine.QueriesRun(),
			ProbeFails: m.fails,
			LastProbeE: m.lastErr,
		})
	}
	schd := c.sched
	c.mu.Unlock()
	if schd != nil {
		snap := schd.Snap()
		st.Sched = &snap
	}
	// Cache and breaker snapshots take their own locks; collect outside.
	for i := range st.Instances {
		if q := extras[i].cache; q != nil {
			cs := q.Stats()
			st.Instances[i].CacheHits = cs.Hits
			st.Instances[i].CacheRate = cs.HitRate()
		}
		if bs := extras[i].breakers; bs != nil {
			st.Instances[i].Breakers = bs.States()
		}
	}
	return st
}

// stateLocked names the member's routing state.
func (m *member) stateLocked(now time.Time) string {
	switch {
	case m.removed:
		return "removed"
	case m.draining:
		return "draining"
	case m.ejected && !now.Before(m.readmitAt):
		return "half-open"
	case m.ejected:
		return "ejected"
	default:
		return "healthy"
	}
}
