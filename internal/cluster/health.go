package cluster

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Probe checks one instance's health; nil error means healthy. Probes
// are the only input to the health state machine — user-query failures
// never eject an instance (a bad query is not a bad instance).
type Probe func(ctx context.Context) error

// QueryProbe probes an instance by running a canary query on its
// engine. An error or an incomplete answer (some source did not
// respond — the shape a chaos-faulted or partitioned instance shows
// under PolicyPartial) is a probe failure.
func QueryProbe(e *core.Engine, q string) Probe {
	return func(ctx context.Context) error {
		res, err := e.Query(ctx, q)
		if err != nil {
			return err
		}
		if !res.Completeness.Complete {
			return fmt.Errorf("probe incomplete: sources %v unavailable", res.Completeness.FailedSources())
		}
		return nil
	}
}

// BreakerProbe reports failure while any of the listed sources' circuit
// breakers is open — the integration point with the fetch resilience
// layer: when chaos (or a real outage) opens an instance's breakers,
// the cluster ejects the instance rather than routing queries into
// fail-fast errors. With no sources listed, every tracked breaker is
// checked.
func BreakerProbe(bs *exec.BreakerSet, sources ...string) Probe {
	return func(context.Context) error {
		states := bs.States()
		check := sources
		if len(check) == 0 {
			for s := range states {
				check = append(check, s)
			}
		}
		for _, s := range check {
			if states[s] == exec.BreakerOpen.String() {
				return fmt.Errorf("breaker open for source %q", s)
			}
		}
		return nil
	}
}

// ProbeNow runs every due health probe synchronously and applies the
// results: a healthy instance accumulates consecutive failures until
// EjectAfter ejects it; an ejected instance is probed half-open once
// ReadmitAfter has elapsed, readmitted on success, and re-ejected (with
// a fresh cooldown) on failure. Deterministic drivers (tests on
// chaos.FakeClock) advance the clock and call this directly; daemons
// use StartProbing.
func (c *Cluster) ProbeNow(ctx context.Context) {
	now := c.clock.Now()
	c.mu.Lock()
	var due []*member
	for _, m := range c.members {
		if m.probe == nil || m.removed || m.probing {
			continue
		}
		if m.ejected {
			if now.Before(m.readmitAt) {
				continue // still cooling down
			}
		} else if !m.lastProbe.IsZero() && now.Sub(m.lastProbe) < c.cfg.ProbeInterval {
			continue
		}
		m.probing = true
		m.lastProbe = now
		due = append(due, m)
	}
	c.mu.Unlock()

	for _, m := range due {
		err := m.probe(ctx)
		// The probe ran under the caller's context: when an admin drives
		// ProbeNow from a traced request, the outcome lands on that span.
		sp := obs.FromContext(ctx)
		c.mu.Lock()
		m.probing = false
		if err != nil {
			m.fails++
			m.lastErr = err.Error()
			fails := m.fails
			if m.ejected {
				// Half-open probe failed: a fresh cooldown.
				m.readmitAt = c.clock.Now().Add(c.cfg.ReadmitAfter)
				c.mu.Unlock()
				sp.AddEvent("probe failed", "instance", m.name, "state", "ejected")
				c.log.WarnContext(ctx, "half-open probe failed", "instance", m.name, "error", err.Error())
			} else if fails >= c.cfg.EjectAfter {
				m.ejected = true
				m.readmitAt = c.clock.Now().Add(c.cfg.ReadmitAfter)
				m.mEjections.Inc()
				c.mu.Unlock()
				sp.AddEvent("instance ejected", "instance", m.name)
				c.log.WarnContext(ctx, "instance ejected", "instance", m.name,
					"fails", fails, "error", err.Error())
			} else {
				c.mu.Unlock()
				sp.AddEvent("probe failed", "instance", m.name, "fails", strconv.Itoa(fails))
				c.log.InfoContext(ctx, "probe failed", "instance", m.name,
					"fails", fails, "error", err.Error())
			}
		} else {
			readmitted := false
			if m.ejected {
				m.ejected = false
				m.mReadmission.Inc()
				readmitted = true
				// Readmission created routable capacity.
				c.dispatchLocked()
			}
			m.fails = 0
			m.lastErr = ""
			c.mu.Unlock()
			if readmitted {
				sp.AddEvent("instance readmitted", "instance", m.name)
				c.log.InfoContext(ctx, "instance readmitted", "instance", m.name)
			}
		}
	}
}

// StartProbing launches a background prober that runs due probes every
// ProbeInterval until ctx is done. Meant for daemons on the real clock;
// tests on chaos.FakeClock (whose Sleep returns immediately) should
// drive ProbeNow directly instead.
func (c *Cluster) StartProbing(ctx context.Context) {
	interval := c.cfg.ProbeInterval
	go func() {
		for {
			if err := c.clock.Sleep(ctx, interval); err != nil {
				return
			}
			c.ProbeNow(ctx)
		}
	}()
}

// Healthy counts instances currently routable (healthy, not draining,
// not removed).
func (c *Cluster) Healthy() int {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.members {
		if m.stateLocked(now) == "healthy" {
			n++
		}
	}
	return n
}

// Eject forces instance i out of rotation until cooldown+probe readmit
// it (operational kill switch; the admin drain endpoint uses Drain for
// the graceful variant).
func (c *Cluster) Eject(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.members[i]
	if m.ejected {
		return
	}
	m.ejected = true
	m.readmitAt = c.clock.Now().Add(c.cfg.ReadmitAfter)
	m.mEjections.Inc()
}
