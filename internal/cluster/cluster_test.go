package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/qcache"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

const testQuery = `WHERE <t>$x</t> IN "db" CONSTRUCT <r>$x</r>`

// newEngine builds one engine over its own catalog with an XML source
// "db"; a non-nil schedule wraps the source in chaos faults. Separate
// catalogs per instance let a test fault one instance while the rest of
// the fleet stays healthy — the scenario a real cluster sees.
func newEngine(t testing.TB, sched chaos.Schedule) *core.Engine {
	t.Helper()
	cat := catalog.New()
	src, err := sources.NewXMLSource("db", `<db><t>one</t><t>two</t></db>`)
	if err != nil {
		t.Fatal(err)
	}
	var s catalog.Source = src
	if sched != nil {
		s = chaos.Wrap(src, sched)
	}
	if err := cat.AddSource(s); err != nil {
		t.Fatal(err)
	}
	return core.New(cat)
}

// newEngines builds n healthy engines.
func newEngines(t testing.TB, n int) []*core.Engine {
	t.Helper()
	es := make([]*core.Engine, n)
	for i := range es {
		es[i] = newEngine(t, nil)
	}
	return es
}

// gatedSource blocks every fetch until the gate closes — the handle the
// concurrency tests use to hold a slot open deterministically.
type gatedSource struct {
	name string
	gate chan struct{}
}

func (g *gatedSource) Name() string                       { return g.name }
func (g *gatedSource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (g *gatedSource) Fetch(ctx context.Context, _ catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, catalog.Cost{}, ctx.Err()
	}
	b := xmldm.NewBuilder()
	return b.Elem("db", b.Elem("t", "held")), catalog.Cost{RowsReturned: 1}, nil
}

// gatedEngine builds an engine whose source blocks until the returned
// gate is closed.
func gatedEngine(t testing.TB) (*core.Engine, chan struct{}) {
	t.Helper()
	cat := catalog.New()
	gate := make(chan struct{})
	if err := cat.AddSource(&gatedSource{name: "db", gate: gate}); err != nil {
		t.Fatal(err)
	}
	return core.New(cat), gate
}

// waitInFlight spins until instance i holds want slots.
func waitInFlight(t testing.TB, c *Cluster, i int, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.InFlight(i) != want {
		if time.Now().After(deadline) {
			t.Fatalf("instance %d never reached %d in flight (have %d)", i, want, c.InFlight(i))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	c := New(Config{Policy: RoundRobin}, newEngines(t, 3)...)
	for i := 0; i < 9; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range c.Loads() {
		if n != 3 {
			t.Errorf("instance %d ran %d queries, want 3 (loads %v)", i, n, c.Loads())
		}
	}
}

// TestLeastOutstandingTieRotation is the regression test for the old
// balancer's tie-breaking: with every instance idle, ties always broke
// toward instance 0, so sequential (non-overlapping) traffic piled onto
// one instance. Ties must rotate.
func TestLeastOutstandingTieRotation(t *testing.T) {
	c := New(Config{Policy: LeastOutstanding}, newEngines(t, 3)...)
	for i := 0; i < 9; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range c.Loads() {
		if n != 3 {
			t.Errorf("sequential ties did not rotate: instance %d ran %d, want 3 (loads %v)", i, n, c.Loads())
		}
	}
}

// TestNoHeadOfLineBlocking is the regression test for the old
// balancer's admission order: it picked an instance first and acquired
// the capacity slot after, so a caller could queue behind a saturated
// instance while another instance sat idle. In the cluster, eligibility
// includes a free slot: with instance 0 wedged at its cap, a new query
// must run immediately on instance 1.
func TestNoHeadOfLineBlocking(t *testing.T) {
	e0, gate := gatedEngine(t)
	e1 := newEngine(t, nil)
	// Round-robin would pick instance 0 next if capacity were ignored.
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e0, e1)

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	// Instance 0 is saturated; this query must not wait behind it.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, testQuery); err != nil {
		t.Fatalf("query blocked behind saturated instance: %v", err)
	}
	if n := c.Loads()[1]; n != 1 {
		t.Errorf("instance 1 ran %d queries, want 1", n)
	}

	close(gate)
	if err := <-held; err != nil {
		t.Fatalf("held query: %v", err)
	}
}

// TestGlobalQueueDrainsToFirstFreeSlot: a caller queued while the whole
// fleet is saturated takes the first slot that frees anywhere, not a
// slot on some pre-picked instance.
func TestGlobalQueueDrainsToFirstFreeSlot(t *testing.T) {
	e0, gate0 := gatedEngine(t)
	e1, gate1 := gatedEngine(t)
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e0, e1)

	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Query(context.Background(), testQuery)
			errs <- err
		}()
	}
	waitInFlight(t, c, 0, 1)
	waitInFlight(t, c, 1, 1)

	// Third caller queues globally.
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		errs <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("caller never queued (queued=%d)", c.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	// Free instance 1 only: the queued caller must land there.
	close(gate1)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil { // queued caller, now on instance 1
		t.Fatal(err)
	}
	if got := c.Loads()[1]; got != 2 {
		t.Errorf("instance 1 ran %d queries, want 2 (queued caller must take the freed slot)", got)
	}
	close(gate0)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoSpreadsUnderLoad(t *testing.T) {
	c := New(Config{Policy: PowerOfTwo, Seed: 42}, newEngines(t, 4)...)
	for i := 0; i < 64; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range c.Loads() {
		if n == 0 {
			t.Errorf("instance %d never chosen (loads %v)", i, c.Loads())
		}
	}
}

func TestCacheAffinityRoutesRepeatsToOwner(t *testing.T) {
	c := New(Config{Policy: CacheAffinity}, newEngines(t, 4)...)
	queries := []string{
		`WHERE <t>$x</t> IN "db" CONSTRUCT <a>$x</a>`,
		`WHERE <t>$x</t> IN "db" CONSTRUCT <b>$x</b>`,
		`WHERE <t>$x</t> IN "db" CONSTRUCT <c>$x</c>`,
	}
	for round := 0; round < 5; round++ {
		for _, q := range queries {
			if _, err := c.Query(context.Background(), q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every repeat of a query must have landed on its rendezvous owner.
	counts := map[int]int64{}
	for _, q := range queries {
		counts[c.AffinityOwner(qcache.Key(q))] += 5
	}
	for i, n := range c.Loads() {
		if n != counts[i] {
			t.Errorf("instance %d ran %d queries, want %d (affinity must pin repeats)", i, n, counts[i])
		}
	}
}

func TestAffinityKeyNormalization(t *testing.T) {
	c := New(Config{Policy: CacheAffinity}, newEngines(t, 4)...)
	a := qcache.Key(`WHERE <t>$x</t> IN "db"  CONSTRUCT <r>$x</r>`)
	b := qcache.Key("WHERE <t>$x</t>\n\tIN \"db\" CONSTRUCT <r>$x</r>")
	if a != b {
		t.Fatalf("keys differ: %q vs %q", a, b)
	}
	if c.AffinityOwner(a) != c.AffinityOwner(b) {
		t.Error("whitespace variants hash to different owners")
	}
}

// TestAffinitySpillsWhenOwnerSaturated: when the owner has no free
// slot, the query runs on the next-best instance rather than queueing —
// affinity is a preference, not a hard pin.
func TestAffinitySpillsWhenOwnerSaturated(t *testing.T) {
	// Two instances; wedge whichever owns the test query.
	e0, gate0 := gatedEngine(t)
	e1, gate1 := gatedEngine(t)
	c := New(Config{Policy: CacheAffinity, Capacity: 1}, e0, e1)
	owner := c.AffinityOwner(qcache.Key(testQuery))
	gates := []chan struct{}{gate0, gate1}

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, owner, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	close(gates[1-owner])
	if _, err := c.Query(ctx, testQuery); err != nil {
		t.Fatalf("query did not spill off saturated owner: %v", err)
	}
	if got := c.Loads()[1-owner]; got != 1 {
		t.Errorf("spill instance ran %d queries, want 1", got)
	}
	close(gates[owner])
	if err := <-held; err != nil {
		t.Fatal(err)
	}
}

// TestPerInstanceCacheHits: with per-instance caches and affinity
// routing, a repeated query answers from the owner's warm cache without
// touching the engine again.
func TestPerInstanceCacheHits(t *testing.T) {
	c := New(Config{Policy: CacheAffinity}, newEngines(t, 2)...)
	for i := 0; i < c.Instances(); i++ {
		c.SetCache(i, qcache.New(16, 0))
	}
	for i := 0; i < 4; i++ {
		res, err := c.Query(context.Background(), testQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) == 0 || !res.Completeness.Complete {
			t.Fatalf("round %d: bad result %+v", i, res)
		}
	}
	st := c.CacheStats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 3 hits / 1 miss", st)
	}
	var total int64
	for _, n := range c.Loads() {
		total += n
	}
	if total != 1 {
		t.Errorf("engines ran %d queries, want 1 (repeats must hit the cache)", total)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"":             LeastOutstanding,
		"least":        LeastOutstanding,
		"least-loaded": LeastOutstanding,
		"rr":           RoundRobin,
		"round-robin":  RoundRobin,
		"p2c":          PowerOfTwo,
		"affinity":     CacheAffinity,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) did not fail")
	}
}

func TestStatusSnapshot(t *testing.T) {
	c := New(Config{Policy: CacheAffinity, Capacity: 4, QueueLimit: 8}, newEngines(t, 2)...)
	c.SetCache(0, qcache.New(4, 0))
	if _, err := c.Query(context.Background(), testQuery); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Policy != "cache-affinity" || st.Capacity != 4 || st.QueueLimit != 8 {
		t.Errorf("status header wrong: %+v", st)
	}
	if len(st.Instances) != 2 {
		t.Fatalf("instances = %d", len(st.Instances))
	}
	for _, inst := range st.Instances {
		if inst.State != "healthy" {
			t.Errorf("instance %d state = %q", inst.ID, inst.State)
		}
	}
}

func TestLeastOutstandingPrefersIdleInstance(t *testing.T) {
	e0, gate := gatedEngine(t)
	c := New(Config{Policy: LeastOutstanding}, e0, newEngine(t, nil))

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	// With one outstanding on 0, every new query must prefer idle 1.
	for i := 0; i < 4; i++ {
		if _, err := c.Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Loads()[1]; got != 4 {
		t.Errorf("idle instance ran %d queries, want 4 (loads %v)", got, c.Loads())
	}
	close(gate)
	if err := <-held; err != nil {
		t.Fatal(err)
	}
}

// Engines carry their configured IDs into instance names.
func TestInstanceNamesFromEngineID(t *testing.T) {
	es := newEngines(t, 2)
	es[0].SetID("alpha")
	es[1].SetID("beta")
	c := New(Config{}, es...)
	st := c.Status()
	if st.Instances[0].Name != "alpha" || st.Instances[1].Name != "beta" {
		t.Errorf("names = %q, %q", st.Instances[0].Name, st.Instances[1].Name)
	}
	// Rendezvous hashing keys off the name, so distinct names must not
	// all collapse onto one owner for a spread of keys.
	owners := map[int]bool{}
	for i := 0; i < 32; i++ {
		owners[c.AffinityOwner(fmt.Sprintf("query-%d", i))] = true
	}
	if len(owners) != 2 {
		t.Errorf("32 keys landed on %d owners, want 2", len(owners))
	}
}
