package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueueFullSheds: once every slot is held and the wait queue is at
// its bound, further callers shed immediately with an OverloadError
// carrying a usable Retry-After hint.
func TestQueueFullSheds(t *testing.T) {
	e, gate := gatedEngine(t)
	c := New(Config{Policy: RoundRobin, Capacity: 1, QueueLimit: 1}, e)

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	queued := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		queued <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is at its bound: the third caller is refused immediately.
	_, err := c.Query(context.Background(), testQuery)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if oe.Reason != "queue full" {
		t.Errorf("reason = %q", oe.Reason)
	}
	if s := oe.RetryAfterSeconds(); s < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", s)
	}
	if st := c.Status(); st.ShedQueueFull != 1 {
		t.Errorf("shed_queue_full = %d, want 1", st.ShedQueueFull)
	}

	close(gate)
	if err := <-held; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineSheds: a caller whose deadline would expire while queued
// is refused up front instead of waiting just to time out.
func TestDeadlineSheds(t *testing.T) {
	e, gate := gatedEngine(t)
	defer close(gate)
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e)

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	// The estimator's floor is defaultServiceEstimate (10ms); a 5ms
	// deadline cannot cover the predicted queue wait (but is live long
	// enough to reach the admission check).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := c.Query(ctx, testQuery)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if oe.Reason != "deadline shorter than queue wait" {
		t.Errorf("reason = %q", oe.Reason)
	}
	if st := c.Status(); st.ShedDeadline != 1 {
		t.Errorf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
}

// TestCancelWhileQueued: a queued caller whose context dies leaves the
// queue with the context's error and without leaking its queue slot.
func TestCancelWhileQueued(t *testing.T) {
	e, gate := gatedEngine(t)
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e)

	held := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), testQuery)
		held <- err
	}()
	waitInFlight(t, c, 0, 1)

	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, testQuery)
		waiting <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Queued() != 0 {
		t.Errorf("queued = %d after cancellation", c.Queued())
	}

	// The slot was not corrupted: release and reuse it.
	close(gate)
	if err := <-held; err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), testQuery); err != nil {
		t.Fatalf("slot unusable after cancelled waiter: %v", err)
	}
}

// TestUnboundedQueueNeverSheds: with no QueueLimit, saturated callers
// wait instead of shedding.
func TestUnboundedQueueNeverSheds(t *testing.T) {
	e, gate := gatedEngine(t)
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e)

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Query(context.Background(), testQuery)
			errs <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 3", c.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if c.Queued() != 0 {
		t.Errorf("queued = %d after drain", c.Queued())
	}
}

// TestSetCapacityReleasesWaiters: growing capacity re-dispatches the
// queue without waiting for a release.
func TestSetCapacityReleasesWaiters(t *testing.T) {
	e, gate := gatedEngine(t)
	c := New(Config{Policy: RoundRobin, Capacity: 1}, e)

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Query(context.Background(), testQuery)
			errs <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 1", c.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	c.SetCapacity(2)
	waitInFlight(t, c, 0, 2)
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
