// Query introspection: the active-query registry (pg_stat_activity
// style — what is running right now, and in which phase) and the
// slow-query log (a bounded ring of the slowest executions with their
// rendered EXPLAIN plans). Both are engine-level, shareable across
// instances, nil-safe, and safe for concurrent use so the management
// surface can poll them while queries run.
package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ActiveQuery is one in-flight query execution. The phase string tracks
// the lifecycle stage the query is currently in ("unfold", "plan",
// "prefetch", "eval", "construct", "sort").
type ActiveQuery struct {
	id    int64
	text  string
	start time.Time

	mu    sync.Mutex
	phase string // guarded by mu
}

// SetPhase records the lifecycle stage the query just entered (nil-safe,
// so untracked executions instrument unconditionally).
func (a *ActiveQuery) SetPhase(p string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.phase = p
	a.mu.Unlock()
}

// Phase returns the current lifecycle stage.
func (a *ActiveQuery) Phase() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.phase
}

// ActiveQueryInfo is the wire snapshot of one in-flight query.
type ActiveQueryInfo struct {
	ID        int64     `json:"id"`
	Query     string    `json:"query"`
	Phase     string    `json:"phase"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// ActiveRegistry tracks in-flight queries. One registry may be shared by
// several engine instances (the deployment-level /debug/queries view).
type ActiveRegistry struct {
	nextID atomic.Int64

	mu     sync.Mutex
	active map[int64]*ActiveQuery // guarded by mu
}

// NewActiveRegistry creates an empty registry.
func NewActiveRegistry() *ActiveRegistry {
	return &ActiveRegistry{active: make(map[int64]*ActiveQuery)}
}

// Register tracks a starting query and returns its handle; Finish must
// be called when the query completes. A nil registry returns a nil
// handle (whose methods are no-ops).
func (r *ActiveRegistry) Register(text string) *ActiveQuery {
	if r == nil {
		return nil
	}
	a := &ActiveQuery{id: r.nextID.Add(1), text: text, start: time.Now(), phase: "start"}
	r.mu.Lock()
	r.active[a.id] = a
	r.mu.Unlock()
	return a
}

// Finish removes a completed query from the registry.
func (r *ActiveRegistry) Finish(a *ActiveQuery) {
	if r == nil || a == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, a.id)
	r.mu.Unlock()
}

// Len reports the number of in-flight queries.
func (r *ActiveRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Snapshot lists the in-flight queries, oldest first.
func (r *ActiveRegistry) Snapshot() []ActiveQueryInfo {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	qs := make([]*ActiveQuery, 0, len(r.active))
	for _, a := range r.active {
		qs = append(qs, a)
	}
	r.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool {
		if !qs[i].start.Equal(qs[j].start) {
			return qs[i].start.Before(qs[j].start)
		}
		return qs[i].id < qs[j].id
	})
	out := make([]ActiveQueryInfo, len(qs))
	for i, a := range qs {
		out[i] = ActiveQueryInfo{
			ID:        a.id,
			Query:     a.text,
			Phase:     a.Phase(),
			Start:     a.start,
			ElapsedMS: float64(now.Sub(a.start)) / float64(time.Millisecond),
		}
	}
	return out
}

// SlowEntry is one retained slow-query record.
type SlowEntry struct {
	Query string `json:"query"`
	// TraceID joins the entry to its trace: when the execution was
	// traced and kept, /debug/traces and the structured log stream carry
	// the same id.
	TraceID    string    `json:"trace_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Tuples     int64     `json:"tuples"`
	Complete   bool      `json:"complete"`
	Error      string    `json:"error,omitempty"`
	// Plan is the rendered EXPLAIN ANALYZE tree of the execution.
	Plan string `json:"plan,omitempty"`
}

// SlowLog retains the N slowest queries at or above a threshold. Like
// the active registry it may be shared across engine instances.
type SlowLog struct {
	limit     int           // immutable after NewSlowLog
	threshold time.Duration // immutable after NewSlowLog

	mu      sync.Mutex
	entries []SlowEntry // guarded by mu; sorted slowest first
}

// DefaultSlowLogSize is the retention used when no limit is given.
const DefaultSlowLogSize = 16

// NewSlowLog creates a slow log keeping the limit slowest queries whose
// duration is at least threshold (limit < 1 uses DefaultSlowLogSize; a
// zero threshold retains the slowest of all queries).
func NewSlowLog(limit int, threshold time.Duration) *SlowLog {
	if limit < 1 {
		limit = DefaultSlowLogSize
	}
	return &SlowLog{limit: limit, threshold: threshold}
}

// Threshold reports the minimum duration recorded.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record offers one completed query to the log (nil-safe). Entries below
// the threshold, or faster than every retained entry of a full log, are
// dropped.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || e.DurationMS < float64(l.threshold)/float64(time.Millisecond) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].DurationMS < e.DurationMS
	})
	if i >= l.limit {
		return
	}
	l.entries = append(l.entries, SlowEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.limit {
		l.entries = l.entries[:l.limit]
	}
}

// Entries returns the retained entries, slowest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len reports the number of retained entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
