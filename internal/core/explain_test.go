package core

import (
	"context"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// scrubTimes replaces wall-clock figures and the unfolder's process-
// global variable counter in a rendered EXPLAIN tree, so golden
// comparisons see only the deterministic structure and counts.
var (
	timeRE = regexp.MustCompile(`time=[0-9.]+ms`)
	unfRE  = regexp.MustCompile(`_u[0-9]+_`)
	// Leaf Match workers claim candidate elements atomically, so their
	// per-worker row split is scheduling-dependent even though the output
	// is deterministic; golden comparisons scrub the split.
	rowsPerWorkerRE = regexp.MustCompile(`rows/worker=\[[^\]]*\]`)
)

func scrubTimes(s string) string {
	return unfRE.ReplaceAllString(timeRE.ReplaceAllString(s, "time=?ms"), "_uN_")
}

func scrubWorkerRows(s string) string {
	return rowsPerWorkerRE.ReplaceAllString(s, "rows/worker=[?]")
}

const twoSourceJoinQL = `
	WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
	      <ticket><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
	CONSTRUCT <r><who>$w</who><subject>$s</subject></r>`

func TestExplainGoldenTwoSourceJoin(t *testing.T) {
	e, _ := newTestEngine(t)
	e.SetParallelism(1) // pin the serial plan shape on multi-core runners
	slow := NewSlowLog(4, 0)
	active := NewActiveRegistry()
	e.SetIntrospection(slow, active)

	res, err := e.Query(context.Background(), twoSourceJoinQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %d, want 3", len(res.Values))
	}
	if res.Explain == nil {
		t.Fatal("Explain = nil (instrumentation must be on by default)")
	}
	got := scrubTimes(res.Explain.Render())
	want := strings.TrimPrefix(`
Query [rewrites=1] out=3 in=3 time=?ms
├─ Select [($i = $_uN_i)] out=3 in=9 time=?ms
│  └─ HashJoin out=9 in=6 time=?ms peak=5
│     ├─ FuncScan [pushdown crmdb: SELECT city AS v__uN_c, id AS v__uN_i, name AS v__uN_n FROM customers] out=3 time=?ms
│     └─ Match [fetch tickets <ticket>] out=3 in=1 time=?ms peak=2
│        └─ Singleton out=1 time=?ms
├─ Fetch [crmdb fetches=1 bytes=144] out=3 time=?ms
└─ Fetch [tickets fetches=1 bytes=240] out=10 time=?ms
`, "\n")
	if got != want {
		t.Errorf("explain tree:\n%s\nwant:\n%s", got, want)
	}

	// The execution also lands in the slow log (threshold 0) with the
	// same rendered plan, and the active registry is drained.
	entries := slow.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow entries = %d", len(entries))
	}
	if entries[0].Plan != res.Explain.Render() {
		t.Error("slow entry plan differs from the result's explain tree")
	}
	if !entries[0].Complete || entries[0].Tuples != res.Stats.TuplesEmitted {
		t.Errorf("slow entry = %+v", entries[0])
	}
	if !strings.Contains(entries[0].Query, "<ticket>") {
		t.Errorf("slow entry query = %q", entries[0].Query)
	}
	if active.Len() != 0 {
		t.Errorf("active queries after completion = %d", active.Len())
	}
	if res.Stats.OperatorsRun <= 0 || res.Stats.DrainNanos <= 0 {
		t.Errorf("stats = %+v (drain accounting missing)", res.Stats)
	}
}

// TestExplainParallelPlanShape: at parallelism 2 the planner lifts the
// residual Select into an Exchange and swaps the join for its
// partitioned variant; the answer (and its EXPLAIN row counts) must
// match the serial plan exactly, and the parallel operators must report
// per-worker stats.
func TestExplainParallelPlanShape(t *testing.T) {
	e, _ := newTestEngine(t)
	e.SetParallelism(2)

	res, err := e.Query(context.Background(), twoSourceJoinQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %d, want 3", len(res.Values))
	}
	ex := res.Explain.Find("Exchange")
	if ex == nil {
		t.Fatalf("no Exchange node in:\n%s", res.Explain.Render())
	}
	if !strings.Contains(ex.Detail, "runs Select") || !strings.Contains(ex.Detail, "workers=2") {
		t.Errorf("Exchange detail = %q", ex.Detail)
	}
	if ex.RowsOut != 3 {
		t.Errorf("Exchange rows out = %d, want 3", ex.RowsOut)
	}
	phj := res.Explain.Find("ParallelHashJoin")
	if phj == nil {
		t.Fatalf("no ParallelHashJoin node in:\n%s", res.Explain.Render())
	}
	if phj.RowsOut != 9 {
		t.Errorf("ParallelHashJoin rows out = %d, want 9 (serial HashJoin count)", phj.RowsOut)
	}
	if len(phj.Workers) != 2 {
		t.Errorf("ParallelHashJoin worker stats = %+v, want 2 workers", phj.Workers)
	}
	var rows int64
	for _, w := range phj.Workers {
		rows += w.Rows
	}
	if rows != 9 {
		t.Errorf("worker rows sum = %d, want 9", rows)
	}
	if res.Stats.ParallelWorkers == 0 {
		t.Error("Stats.ParallelWorkers = 0, want > 0")
	}
	if !strings.Contains(res.Explain.Render(), "rows/worker=") {
		t.Errorf("rendered tree lacks per-worker rows:\n%s", res.Explain.Render())
	}

	// Same answer as the serial engine, byte for byte.
	serial, _ := newTestEngine(t)
	serial.SetParallelism(1)
	sres, err := serial.Query(context.Background(), twoSourceJoinQL)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Document().String(), sres.Document().String(); got != want {
		t.Errorf("parallel result differs from serial:\n%s\nwant:\n%s", got, want)
	}
	if res.Stats.TuplesEmitted != sres.Stats.TuplesEmitted {
		t.Errorf("TuplesEmitted = %d, serial %d", res.Stats.TuplesEmitted, sres.Stats.TuplesEmitted)
	}
}

// TestExplainGoldenSchedulerBudgetWorkers: SetParallelism(0) — "use the
// machine" — resolves through the shared scheduler's budget, not
// through GOMAXPROCS at query time. With a budget of 2, a lone query's
// EXPLAIN must show workers=2 regardless of the host's core count, and
// the granted degree must return to the pool at completion. This is the
// regression test for the granted-vs-requested EXPLAIN contract.
func TestExplainGoldenSchedulerBudgetWorkers(t *testing.T) {
	e, _ := newTestEngine(t)
	schd := sched.New(sched.Config{Budget: 2})
	e.SetScheduler(schd)
	e.SetParallelism(0) // auto: whatever the scheduler grants

	res, err := e.Query(context.Background(), twoSourceJoinQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %d, want 3", len(res.Values))
	}
	got := scrubWorkerRows(scrubTimes(res.Explain.Render()))
	want := strings.TrimPrefix(`
Query [rewrites=1] out=3 in=3 time=?ms
├─ Exchange [runs Select(($i = $_uN_i)) workers=2 round-robin] out=3 in=9 time=?ms workers=2 rows/worker=[?]
│  └─ ParallelHashJoin [workers=2] out=9 in=6 time=?ms peak=5 workers=2 rows/worker=[?]
│     ├─ FuncScan [pushdown crmdb: SELECT city AS v__uN_c, id AS v__uN_i, name AS v__uN_n FROM customers] out=3 time=?ms
│     └─ Match [fetch tickets <ticket>] out=3 in=1 time=?ms peak=2 workers=2 rows/worker=[?]
│        └─ Singleton out=1 time=?ms
├─ Fetch [crmdb fetches=1 bytes=144] out=3 time=?ms
└─ Fetch [tickets fetches=1 bytes=240] out=10 time=?ms
`, "\n")
	if got != want {
		t.Errorf("explain tree:\n%s\nwant:\n%s", got, want)
	}

	// The grant went back at completion: the whole budget is free again
	// and nothing is queued.
	snap := schd.Snap()
	if snap.Granted != 0 || snap.Queries != 0 || snap.Waiting != 0 {
		t.Errorf("scheduler not idle after query: %+v", snap)
	}
	if snap.Budget != 2 || snap.Free != 2 {
		t.Errorf("budget accounting = %+v, want budget 2 fully free", snap)
	}

	// Same answer as the serial twin, byte for byte.
	serial, _ := newTestEngine(t)
	serial.SetParallelism(1)
	sres, err := serial.Query(context.Background(), twoSourceJoinQL)
	if err != nil {
		t.Fatal(err)
	}
	if gotDoc, wantDoc := res.Document().String(), sres.Document().String(); gotDoc != wantDoc {
		t.Errorf("budget-granted result differs from serial:\n%s\nwant:\n%s", gotDoc, wantDoc)
	}
}

func TestSlowLogThresholdAndOrder(t *testing.T) {
	l := NewSlowLog(2, 5*time.Millisecond)
	l.Record(SlowEntry{Query: "fast", DurationMS: 1})
	l.Record(SlowEntry{Query: "slow", DurationMS: 50})
	l.Record(SlowEntry{Query: "slower", DurationMS: 80})
	l.Record(SlowEntry{Query: "mid", DurationMS: 20})
	entries := l.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Query != "slower" || entries[1].Query != "slow" {
		t.Errorf("order = %q, %q", entries[0].Query, entries[1].Query)
	}
}

func TestActiveRegistrySnapshot(t *testing.T) {
	r := NewActiveRegistry()
	a := r.Register("WHERE ... CONSTRUCT ...")
	a.SetPhase("eval")
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Phase != "eval" || snap[0].Query != "WHERE ... CONSTRUCT ..." {
		t.Fatalf("snapshot = %+v", snap)
	}
	r.Finish(a)
	if r.Len() != 0 {
		t.Errorf("len after finish = %d", r.Len())
	}
	// Nil receivers are inert.
	var nilReg *ActiveRegistry
	if aq := nilReg.Register("x"); aq != nil {
		t.Error("nil registry must return nil handle")
	}
	var nilAQ *ActiveQuery
	nilAQ.SetPhase("eval")
	var nilLog *SlowLog
	nilLog.Record(SlowEntry{DurationMS: 100})
}
