package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
)

// newTestEngine assembles the canonical test deployment: a relational
// CRM database, a relational sales database, an XML support-ticket feed,
// and a mediated schema "customers" that integrates the two customer
// tables (the paper's scattered-customer scenario).
func newTestEngine(t testing.TB) (*Engine, *sources.RelationalSource) {
	t.Helper()
	crm := rdb.NewDatabase("crm")
	crm.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	crm.MustExec(`INSERT INTO customers VALUES
		(1, 'Ada Lovelace', 'London'),
		(2, 'Alan Turing', 'Cambridge'),
		(3, 'Grace Hopper', 'New York')`)
	crm.MustExec(`CREATE INDEX ON customers (city)`)

	sales := rdb.NewDatabase("sales")
	sales.MustExec(`CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, total FLOAT)`)
	sales.MustExec(`INSERT INTO orders VALUES
		(100, 1, 250.0), (101, 1, 75.5), (102, 2, 120.0), (103, 3, 310.25)`)

	cat := catalog.New()
	crmSrc := sources.NewRelationalSource("crmdb", crm)
	if err := cat.AddSource(crmSrc); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(sources.NewRelationalSource("salesdb", sales)); err != nil {
		t.Fatal(err)
	}
	tickets, err := sources.NewXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Engine overheats</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Manual unclear</subject></ticket>
		<ticket pri="high"><cust>3</cust><subject>Crash on start</subject></ticket>
	</tickets>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(tickets); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineViewQL("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	return New(cat), crmSrc
}

func texts(vals []xmldm.Value) []string {
	var out []string
	for _, v := range vals {
		out = append(out, xmldm.Stringify(v))
	}
	return out
}

func TestQueryDirectSource(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb", $c = "London"
		CONSTRUCT <r>$n</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Ada Lovelace" {
		t.Errorf("values = %v", texts(res.Values))
	}
	if !res.Completeness.Complete {
		t.Error("query should be complete")
	}
	// Pushdown should have produced a SQL fragment.
	joined := strings.Join(res.Stats.Explain, "\n")
	if !strings.Contains(joined, "SELECT") || !strings.Contains(joined, "London") {
		t.Errorf("explain = %v", res.Stats.Explain)
	}
}

func TestQueryMediatedSchema(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "New York"
		CONSTRUCT <hit>$w</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Grace Hopper" {
		t.Errorf("values = %v", texts(res.Values))
	}
	if res.Stats.Rewrites != 1 {
		t.Errorf("rewrites = %d", res.Stats.Rewrites)
	}
	// Unfolding + pushdown: the predicate must reach the SQL.
	joined := strings.Join(res.Stats.Explain, "\n")
	if !strings.Contains(joined, "New York") {
		t.Errorf("predicate did not reach the source: %v", res.Stats.Explain)
	}
}

func TestQueryJoinAcrossSources(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
		      <order><cust>$i</cust><total>$t</total></order> IN "salesdb",
		      $t > 200
		CONSTRUCT <big><name>$w</name><amount>$t</amount></big>
		ORDER-BY $t DESCENDING`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %v", texts(res.Values))
	}
	first := res.Values[0].(*xmldm.Node)
	if first.Child("name").Text() != "Grace Hopper" {
		t.Errorf("order wrong: %s", first.String())
	}
	if first.Child("amount").Text() != "310.25" {
		t.Errorf("amount = %s", first.Child("amount").Text())
	}
}

func TestQueryJoinRelationalWithXML(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb",
		      <ticket pri="high"><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
		CONSTRUCT <esc><who>$n</who><what>$s</what></esc>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %v", texts(res.Values))
	}
}

func TestQueryNestedGrouping(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <portfolio><owner>$n</owner>
			{ WHERE <order><cust>$i</cust><total>$t</total></order> IN "salesdb"
			  CONSTRUCT <amt>$t</amt> }
		</portfolio>
		ORDER-BY $n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %d", len(res.Values))
	}
	ada := res.Values[0].(*xmldm.Node)
	if ada.Child("owner").Text() != "Ada Lovelace" {
		t.Fatalf("first portfolio = %s", ada.String())
	}
	if got := len(ada.ChildrenNamed("amt")); got != 2 {
		t.Errorf("Ada's orders = %d, want 2", got)
	}
}

func TestQueryAggregates(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <summary who=$n>
			<orders>{ count({ WHERE <order><cust>$i</cust></order> IN "salesdb" CONSTRUCT <o/> }) }</orders>
			<spend>{ sum({ WHERE <order><cust>$i</cust><total>$t</total></order> IN "salesdb" CONSTRUCT <v>$t</v> }) }</spend>
		</summary>
		ORDER-BY $n`)
	if err != nil {
		t.Fatal(err)
	}
	ada := res.Values[0].(*xmldm.Node)
	if ada.Child("orders").Text() != "2" {
		t.Errorf("orders = %q", ada.Child("orders").Text())
	}
	if ada.Child("spend").Text() != "325.5" {
		t.Errorf("spend = %q", ada.Child("spend").Text())
	}
}

func TestCorrelatedSubqueryThroughUnfolding(t *testing.T) {
	// Regression: a nested query correlated on a variable that the outer
	// query binds through an unfolded mediated schema must keep the
	// correlation after substitution (pattern positions rewrite too).
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers"
		CONSTRUCT <profile name=$w>
			<n>{ count({ WHERE <order><cust>$i</cust></order> IN "salesdb" CONSTRUCT <o/> }) }</n>
		</profile>
		ORDER-BY $w`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, v := range res.Values {
		n := v.(*xmldm.Node)
		name, _ := n.Attr("name")
		counts[name] = n.Child("n").Text()
	}
	want := map[string]string{"Ada Lovelace": "2", "Alan Turing": "1", "Grace Hopper": "1"}
	for name, c := range want {
		if counts[name] != c {
			t.Errorf("%s orders = %q, want %q (correlation lost?)", name, counts[name], c)
		}
	}
}

func TestPartialResults(t *testing.T) {
	e, _ := newTestEngine(t)
	// Take salesdb down.
	src, _ := e.Catalog().Source("salesdb")
	down := sources.NewDowned(src)
	cat2 := catalog.New()
	crmSrc, _ := e.Catalog().Source("crmdb")
	cat2.AddSource(crmSrc)
	cat2.AddSource(down)
	e2 := New(cat2)

	q := `WHERE <customer><name>$n</name></customer> IN "crmdb",
	      <order><total>$t</total></order> IN "salesdb"
	      CONSTRUCT <r>$n</r>`

	// Partial policy: answer from the live source, flag incomplete.
	res, err := e2.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completeness.Complete {
		t.Error("result should be flagged incomplete")
	}
	failed := res.Completeness.FailedSources()
	if len(failed) != 1 || failed[0] != "salesdb" {
		t.Errorf("failed = %v", failed)
	}
	// The join with an unavailable side yields no rows — but no error.
	if len(res.Values) != 0 {
		t.Errorf("values = %v", texts(res.Values))
	}

	// Fail policy: the query errors.
	pf := exec.PolicyFail
	if _, err := e2.QueryOpt(context.Background(), q, QueryOptions{Policy: &pf}); err == nil {
		t.Error("fail policy should surface the unavailability")
	}
}

func TestOnUnavailablePrelude(t *testing.T) {
	// §3.4's open question — "whether and how to allow the query to
	// specify behavior when data sources are unavailable" — answered by
	// the ON-UNAVAILABLE prelude.
	cat := catalog.New()
	live, _ := sources.NewXMLSource("live", `<d><row><v>1</v></row></d>`)
	cat.AddSource(live)
	dead, _ := sources.NewXMLSource("deadsrc", `<x><row><v>2</v></row></x>`)
	cat.AddSource(sources.NewDowned(dead))
	e := New(cat)
	e.SetPolicy(exec.PolicyPartial) // engine default

	base := `WHERE <row><v>$a</v></row> IN "live", <row><v>$b</v></row> IN "deadsrc" CONSTRUCT <r>$a</r>`

	// The query's FAIL prelude overrides the engine's partial default.
	if _, err := e.Query(context.Background(), "ON-UNAVAILABLE FAIL "+base); err == nil {
		t.Error("ON-UNAVAILABLE FAIL should surface the error")
	}
	// And PARTIAL overrides a fail-default engine.
	e.SetPolicy(exec.PolicyFail)
	res, err := e.Query(context.Background(), "ON-UNAVAILABLE PARTIAL "+base)
	if err != nil {
		t.Fatalf("ON-UNAVAILABLE PARTIAL: %v", err)
	}
	if res.Completeness.Complete {
		t.Error("should be flagged incomplete")
	}
	// An explicit per-call option beats the prelude.
	pp := exec.PolicyFail
	if _, err := e.QueryOpt(context.Background(), "ON-UNAVAILABLE PARTIAL "+base, QueryOptions{Policy: &pp}); err == nil {
		t.Error("per-call option should override the prelude")
	}
}

func TestPartialResultsUnionStillAnswers(t *testing.T) {
	// Two views feed one schema; one backing source is down. The live
	// half answers, flagged incomplete.
	crm := rdb.NewDatabase("crm")
	crm.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
	crm.MustExec(`INSERT INTO customers VALUES (1, 'Ada')`)
	cat := catalog.New()
	cat.AddSource(sources.NewRelationalSource("crmdb", crm))
	legacy, _ := sources.NewXMLSource("legacy", `<legacy><client><nm>Zed</nm></client></legacy>`)
	cat.AddSource(sources.NewDowned(legacy))
	cat.DefineViewQL("customers", `WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <cust><who>$n</who></cust>`)
	cat.DefineViewQL("customers", `WHERE <client><nm>$n</nm></client> IN "legacy" CONSTRUCT <cust><who>$n</who></cust>`)
	e := New(cat)
	res, err := e.Query(context.Background(), `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Ada" {
		t.Errorf("values = %v", texts(res.Values))
	}
	if res.Completeness.Complete {
		t.Error("should be incomplete")
	}
}

func TestFallbackMaterialization(t *testing.T) {
	e, _ := newTestEngine(t)
	// ELEMENT_AS cannot unfold; the schema document is materialized and
	// matched in the mediator.
	res, err := e.Query(context.Background(), `
		WHERE <cust><where>"London"</where></cust> ELEMENT_AS $e IN "customers"
		CONSTRUCT <hit>$e</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 {
		t.Fatalf("values = %v", texts(res.Values))
	}
	hit := res.Values[0].(*xmldm.Node)
	if hit.Child("cust") == nil || hit.Child("cust").Child("who").Text() != "Ada Lovelace" {
		t.Errorf("materialized element = %s", hit.String())
	}
}

func TestHierarchicalSchemaQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	// A second-level schema over "customers".
	if err := e.Catalog().DefineViewQL("vips", `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <vip><name>$w</name></vip>`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), `WHERE <vip><name>$n</name></vip> IN "vips" CONSTRUCT <r>$n</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Ada Lovelace" {
		t.Errorf("values = %v", texts(res.Values))
	}
}

func TestCustomFunctionInQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterFunc("initials", func(args []xmldm.Value) (xmldm.Value, error) {
		parts := strings.Fields(xmldm.Stringify(args[0]))
		var sb strings.Builder
		for _, p := range parts {
			sb.WriteByte(p[0])
		}
		return xmldm.String(sb.String()), nil
	})
	res, err := e.Query(context.Background(), `
		WHERE <customer><name>$n</name></customer> IN "crmdb", initials($n) = "AL"
		CONSTRUCT <r>$n</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Ada Lovelace" {
		t.Errorf("values = %v", texts(res.Values))
	}
}

func TestResultDocument(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <r>$n</r> ORDER-BY $n`)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	if doc.Name != "results" || len(doc.ChildrenNamed("r")) != 3 {
		t.Errorf("document = %s", doc.String())
	}
	// Serializes cleanly.
	if _, err := xmlparse.ParseString(xmlparse.SerializeString(doc, 0)); err != nil {
		t.Errorf("round trip: %v", err)
	}
}

func TestIncompleteResultDocumentFlagged(t *testing.T) {
	cat := catalog.New()
	legacy, _ := sources.NewXMLSource("legacy", `<l/>`)
	cat.AddSource(sources.NewDowned(legacy))
	e := New(cat)
	res, err := e.Query(context.Background(), `WHERE <x>$v</x> IN "legacy" CONSTRUCT <r>$v</r>`)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	if v, ok := doc.Attr("complete"); !ok || v != "false" {
		t.Errorf("document not flagged: %s", doc.String())
	}
}

func TestPlannerOptionsAblateToSameAnswer(t *testing.T) {
	e, _ := newTestEngine(t)
	q := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
	      CONSTRUCT <r>$w</r>`
	res1, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPlannerOptions(opt.Options{}) // no pushdown at all
	res2, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Values) != len(res2.Values) {
		t.Fatalf("pushdown changed the answer: %d vs %d", len(res1.Values), len(res2.Values))
	}
	for i := range res1.Values {
		if xmldm.Stringify(res1.Values[i]) != xmldm.Stringify(res2.Values[i]) {
			t.Errorf("answer %d differs", i)
		}
	}
}

func TestOrderByAcrossUnion(t *testing.T) {
	cat := catalog.New()
	a, _ := sources.NewXMLSource("sa", `<d><item><v>30</v></item><item><v>10</v></item></d>`)
	b, _ := sources.NewXMLSource("sb", `<d><row><w>20</w></row></d>`)
	cat.AddSource(a)
	cat.AddSource(b)
	cat.DefineViewQL("all", `WHERE <item><v>$x</v></item> IN "sa" CONSTRUCT <u><n>$x</n></u>`)
	cat.DefineViewQL("all", `WHERE <row><w>$x</w></row> IN "sb" CONSTRUCT <u><n>$x</n></u>`)
	e := New(cat)
	res, err := e.Query(context.Background(), `
		WHERE <u><n>$n</n></u> IN "all" CONSTRUCT <r>$n</r> ORDER-BY $n`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(res.Values)
	if len(got) != 3 || got[0] != "10" || got[1] != "20" || got[2] != "30" {
		t.Errorf("global order across union = %v", got)
	}
}

func TestTagVariableQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.Query(context.Background(), `
		WHERE <ticket><cust>$c</cust></ticket> ELEMENT_AS $e IN "tickets",
		      <$t>$s</$t> IN $e, $t = "subject"
		CONSTRUCT <out>$s</out> ORDER-BY $s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %v", texts(res.Values))
	}
	if xmldm.Stringify(res.Values[0]) != "Crash on start" {
		t.Errorf("first = %v", res.Values[0])
	}
}

func TestContextCancellation(t *testing.T) {
	e, _ := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, `WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <r>$n</r>`); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestQueryParseError(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Query(context.Background(), `not a query`); err == nil {
		t.Error("parse error should surface")
	}
}

func TestUnknownSource(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Query(context.Background(), `WHERE <a>$x</a> IN "nosuch" CONSTRUCT <r>$x</r>`); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	e, _ := newTestEngine(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 20; j++ {
				_, err := e.Query(context.Background(), `
					WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if e.QueriesRun() != 160 {
		t.Errorf("queries run = %d", e.QueriesRun())
	}
}

func TestLocalStoreShortCircuitsSource(t *testing.T) {
	e, _ := newTestEngine(t)
	// Install a local copy of the "customers" schema document.
	doc, _, err := e.MaterializeSchema(context.Background(), "customers")
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	e.SetObserver(func(string, catalog.Request, catalog.Cost, error) { fetches++ })
	e.SetLocalStore(
		func(source string, _ catalog.Request) (*xmldm.Node, bool) {
			if source == "customers" {
				return doc, true
			}
			return nil, false
		},
		func(schema string) bool { return schema == "customers" },
	)
	res, err := e.Query(context.Background(), `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || xmldm.Stringify(res.Values[0]) != "Ada Lovelace" {
		t.Errorf("values = %v", texts(res.Values))
	}
	if fetches != 0 {
		t.Errorf("remote fetches = %d, want 0 (answered locally)", fetches)
	}
	// Status marks the local answer.
	found := false
	for _, st := range res.Completeness.Statuses {
		if st.Source == "customers" && st.Local {
			found = true
		}
	}
	if !found {
		t.Errorf("local status missing: %+v", res.Completeness.Statuses)
	}
}
