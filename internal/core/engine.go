// Package core assembles the Nimble integration engine: the query
// lifecycle of Figure 1. A query is parsed (xmlql), rewritten over the
// mediated schemas (mediator), compiled into per-source fragments and a
// physical plan (opt + sqlgen), executed with parallel source access and
// the availability policy (exec + algebra), and finally constructed into
// result XML.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// maxDepth bounds recursion through nested queries and schema
// materialization; well-formed catalogs stay far below it.
const maxDepth = 64

// Engine is one instance of the integration engine. It is safe for
// concurrent queries; configuration methods are not meant to race with
// queries.
type Engine struct {
	cat    *catalog.Catalog
	runner *exec.Runner

	mu         sync.RWMutex
	opts       opt.Options                                         // guarded by mu
	par        int                                                 // guarded by mu
	scheduler  *sched.Scheduler                                    // guarded by mu; nil = sched.Default()
	class      sched.Class                                         // guarded by mu; default query class
	policy     exec.Policy                                         // guarded by mu
	funcs      map[string]func([]xmldm.Value) (xmldm.Value, error) // guarded by mu
	skipUnfold func(string) bool                                   // guarded by mu
	metrics    *obs.Registry                                       // guarded by mu
	traces     *obs.TraceStore                                     // guarded by mu
	slow       *SlowLog                                            // guarded by mu
	active     *ActiveRegistry                                     // guarded by mu

	queriesRun atomic.Int64

	// id names this instance in the cluster registry, /debug/cluster,
	// and the per-instance metric labels.
	idMu sync.RWMutex
	id   string // guarded by idMu


	// inflight guards against cyclic schema materialization: per query
	// execution (per Access), the set of schemas being materialized.
	inflightMu sync.Mutex
	inflight   map[*exec.Access]map[string]bool // guarded by inflightMu
}

// New creates an engine over a catalog.
func New(cat *catalog.Catalog) *Engine {
	e := &Engine{
		cat:      cat,
		opts:     opt.DefaultOptions(),
		policy:   exec.PolicyPartial,
		funcs:    map[string]func([]xmldm.Value) (xmldm.Value, error){},
		inflight: map[*exec.Access]map[string]bool{},
		metrics:  obs.Default(),
	}
	e.runner = &exec.Runner{Cat: cat, Materialize: e.materializeSchema, Metrics: e.metrics}
	return e
}

// SetMetrics redirects the engine's metrics (default obs.Default()) to
// the given registry; nil disables recording.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metrics = reg
	e.runner.Metrics = reg
}

// SetTraceStore installs the trace store: when the engine starts its
// own trace (no caller span in the context), the finished span tree is
// offered to the store's sampler. When a front end already owns the
// trace, the engine only hangs its work under the caller's span and the
// owner records it. Nil disables recording; ?profile still works.
func (e *Engine) SetTraceStore(t *obs.TraceStore) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.traces = t
}

// SetIntrospection installs the slow-query log and active-query registry
// this engine reports into. Both may be shared across engine instances
// (the cluster front end wires every engine to one pair) and either may be nil to
// disable that surface.
func (e *Engine) SetIntrospection(slow *SlowLog, active *ActiveRegistry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slow = slow
	e.active = active
}

// SetResilience installs the fetch resilience configuration: per-attempt
// timeouts and retry/backoff (res), the per-source circuit-breaker set
// (breakers, shareable across engine instances so all queries agree on
// which sources are quarantined; nil disables breakers), and the clock
// backoff sleeps run on (nil keeps the current clock — real time by
// default; tests inject fake time for determinism).
func (e *Engine) SetResilience(res exec.Resilience, breakers *exec.BreakerSet, clock exec.Clock) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runner.Resilience = res
	e.runner.Breakers = breakers
	if clock != nil {
		e.runner.Clock = clock
	}
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// SetPolicy sets the default source-availability policy.
func (e *Engine) SetPolicy(p exec.Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policy = p
}

// SetPlannerOptions replaces the optimizer options (ablation knob).
func (e *Engine) SetPlannerOptions(o opt.Options) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts = o
}

// SetParallelism sets the intra-query degree of parallelism a query
// *requests*: n > 1 asks the planner to place exchange operators and
// partitioned joins so a single query's pipelines run on up to n worker
// goroutines; 1 forces serial plans (the pre-parallelism behavior);
// 0 — the default — requests the scheduler's whole worker budget
// (GOMAXPROCS unless configured otherwise). The degree actually used is
// admitted per query by the shared scheduler (SetScheduler), which
// grants min(desired, 1+available) with a floor of 1, so concurrent
// queries share the budget instead of each claiming n workers. EXPLAIN
// `workers=N` reflects the granted, not requested, degree. Parallel
// plans produce output byte-identical to their serial twins at any
// granted degree.
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.par = n
}

// SetScheduler attaches the shared inter-query scheduler this engine
// admits query parallelism against. All engine instances of a process
// normally share one scheduler (nimble.New wires this); nil — the
// default — falls back to the process-wide sched.Default().
func (e *Engine) SetScheduler(s *sched.Scheduler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scheduler = s
}

// Scheduler reports the scheduler queries are admitted against.
func (e *Engine) Scheduler() *sched.Scheduler {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.scheduler != nil {
		return e.scheduler
	}
	return sched.Default()
}

// SetQueryClass sets the default scheduling class for this engine's
// queries (interactive unless set); QueryOptions.Class overrides it per
// query.
func (e *Engine) SetQueryClass(c sched.Class) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.class = c
}

// RegisterFunc adds a scalar function visible to queries — the hook
// through which the cleaning subsystem exposes normalization functions
// for dynamic, query-time cleaning (§3.2).
func (e *Engine) RegisterFunc(name string, fn func([]xmldm.Value) (xmldm.Value, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.funcs[name] = fn
}

// SetLocalStore installs the local materialized store consulted before
// any remote fetch, and the predicate naming schemas that should not be
// unfolded because the store holds them.
func (e *Engine) SetLocalStore(local func(source string, req catalog.Request) (*xmldm.Node, bool), skipUnfold func(string) bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runner.Local = local
	e.skipUnfold = skipUnfold
}

// SetObserver installs a fetch observer (the materialization advisor's
// feed).
func (e *Engine) SetObserver(fn func(source string, req catalog.Request, cost catalog.Cost, err error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runner.Observe = fn
}

// QueriesRun reports the number of top-level queries executed (the
// cluster front end uses it for per-instance load accounting).
func (e *Engine) QueriesRun() int64 { return e.queriesRun.Load() }

// SetID names this engine instance; the cluster registry, inspector,
// and per-instance metrics use it. Empty (the default) lets the
// cluster fall back to the registration index.
func (e *Engine) SetID(id string) {
	e.idMu.Lock()
	defer e.idMu.Unlock()
	e.id = id
}

// ID reports the instance identity set by SetID.
func (e *Engine) ID() string {
	e.idMu.RLock()
	defer e.idMu.RUnlock()
	return e.id
}

// Stats summarizes one query's execution.
type Stats struct {
	Rewrites       int
	Fetches        int
	TuplesEmitted  int64
	PatternMatches int64
	// DrainNanos / OperatorsRun aggregate operator-tree evaluation wall
	// time and tree sizes across the query (including subqueries).
	DrainNanos   int64
	OperatorsRun int64
	// ParallelWorkers / WorkerNanos count the parallel workers spawned
	// by exchange-style operators during the query and their cumulative
	// busy wall time (0 / 0 for serial plans).
	ParallelWorkers int64
	WorkerNanos     int64
	Explain         []string
}

// ExplainTree is the per-operator statistics tree of one execution (the
// EXPLAIN ANALYZE report): a synthetic Query root, one instrumented plan
// per rewrite, and per-source Fetch attribution nodes.
type ExplainTree = algebra.ExplainNode

// Result is a query's answer.
type Result struct {
	// Values are the constructed result elements, in result order.
	Values []xmldm.Value
	// Completeness reports which sources answered (§3.4).
	Completeness exec.Completeness
	Stats        Stats
	// Explain is the per-operator statistics tree; instrumentation is
	// always on, so it is populated for every query.
	Explain *ExplainTree
	// Trace is the execution span tree, set when QueryOptions.Profile
	// was requested.
	Trace *obs.Span
}

// Document wraps the result values under a <results> element.
func (r *Result) Document() *xmldm.Node {
	root := &xmldm.Node{Name: "results"}
	if !r.Completeness.Complete {
		root.Attrs = append(root.Attrs, xmldm.Attr{Name: "complete", Value: "false"})
		for _, s := range r.Completeness.FailedSources() {
			root.Attrs = append(root.Attrs, xmldm.Attr{Name: "failed", Value: s})
			break // first failed source in the attribute; full list in Completeness
		}
	}
	for _, v := range r.Values {
		if n, ok := v.(*xmldm.Node); ok {
			c := algebra.CopyNode(n)
			c.Parent = root
			root.Children = append(root.Children, c)
		} else {
			root.Children = append(root.Children, v)
		}
	}
	xmldm.Finalize(root)
	return root
}

// QueryOptions tune one query execution.
type QueryOptions struct {
	// Policy overrides the engine default when set.
	Policy *exec.Policy
	// Profile requests the execution span tree in Result.Trace (the
	// ?profile=1 query option of the HTTP front end).
	Profile bool
	// Explain requests that the caller-facing surface (HTTP, CLI) render
	// Result.Explain. The tree itself is always collected; this flag only
	// gates output.
	Explain bool
	// Class overrides the engine's default scheduling class for this
	// query: "interactive" or "batch" (empty keeps the engine default).
	// The HTTP front end maps the X-Nimble-Class header here.
	Class string
}

// Query parses and executes an XML-QL query.
func (e *Engine) Query(ctx context.Context, src string) (*Result, error) {
	return e.QueryOpt(ctx, src, QueryOptions{})
}

// QueryOpt is Query with per-query options.
func (e *Engine) QueryOpt(ctx context.Context, src string, qo QueryOptions) (*Result, error) {
	q, err := xmlql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.queryAST(ctx, q, qo, src)
}

// QueryAST executes a parsed query.
func (e *Engine) QueryAST(ctx context.Context, q *xmlql.Query, qo QueryOptions) (*Result, error) {
	return e.queryAST(ctx, q, qo, q.String())
}

// queryAST executes a parsed query; text is the query's source form, as
// reported by the active-query registry and the slow-query log.
func (e *Engine) queryAST(ctx context.Context, q *xmlql.Query, qo QueryOptions, text string) (*Result, error) {
	e.queriesRun.Add(1)
	e.mu.RLock()
	policy := e.policy
	funcs := e.funcs
	metrics := e.metrics
	traces := e.traces
	slow := e.slow
	activeReg := e.active
	schd := e.scheduler
	class := e.class
	par := e.par
	e.mu.RUnlock()
	if schd == nil {
		schd = sched.Default()
	}
	if qo.Class != "" {
		c, err := sched.ParseClass(qo.Class)
		if err != nil {
			return nil, err
		}
		class = c
	}
	// Precedence: the query's own ON-UNAVAILABLE prelude overrides the
	// engine default; an explicit per-call option overrides both.
	switch q.OnUnavailable {
	case "fail":
		policy = exec.PolicyFail
	case "partial":
		policy = exec.PolicyPartial
	}
	if qo.Policy != nil {
		policy = *qo.Policy
	}

	start := time.Now()
	aq := activeReg.Register(text)
	defer activeReg.Finish(aq)
	// When a caller (the HTTP front end, via the cluster hop) already
	// carries a span, the engine's work hangs under it — one TraceID end
	// to end — and the caller records the finished trace. Only when the
	// engine is the outermost tier does it start (and record) its own
	// root trace.
	var root *obs.Span
	ownRoot := false
	if parent := obs.FromContext(ctx); parent != nil {
		root = parent.StartChild("engine")
	} else if qo.Profile || traces != nil {
		root = traces.NewRoot("engine", obs.TraceContext{})
		ownRoot = true
	}
	if root != nil {
		root.SetAttr("policy", policy.String())
		if id := e.ID(); id != "" {
			root.SetAttr("instance", id)
		}
		ctx = obs.ContextWithSpan(ctx, root)
	}

	// Admission: the query's desired degree (SetParallelism; 0 = the
	// scheduler's whole budget) is granted against the shared worker
	// pool. Release is deferred unconditionally — it is idempotent, so
	// completion, error, cancellation, and panic paths all return the
	// slots exactly once.
	grant := schd.Acquire(par, class)
	defer grant.Release()
	if root != nil {
		spGrant := root.StartChild("sched.grant")
		spGrant.SetAttr("class", class.String())
		spGrant.SetInt("desired", int64(grant.Desired()))
		spGrant.SetInt("granted", int64(grant.Degree()))
		spGrant.SetBool("downgraded", grant.Degree() < grant.Desired())
		spGrant.Finish()
	}

	access := e.runner.NewAccess(ctx, policy)
	actx := &algebra.Context{Funcs: funcs, Trace: root}
	workersGauge := metrics.Gauge("nimble_parallel_workers")
	actx.OnWorkers = func(delta int) { workersGauge.Add(float64(delta)) }
	res := &Result{Explain: &ExplainTree{Op: "Query"}}
	actx.SubqueryEval = func(subq *xmlql.Query, outer algebra.Binding) ([]xmldm.Value, error) {
		return e.run(ctx, subq, outer, access, actx, 1, nil, nil, nil, grant)
	}
	values, err := e.run(ctx, q, nil, access, actx, 0, &res.Stats, aq, res.Explain, grant)
	elapsed := time.Since(start)

	metrics.Counter("nimble_queries_total").Inc()
	// The latency observation carries the trace id as a bucket exemplar:
	// a bad percentile on the histogram links straight to a kept trace.
	metrics.Histogram("nimble_query_seconds").ObserveExemplar(elapsed.Seconds(), root.TraceID().String())
	if err != nil {
		metrics.Counter("nimble_query_errors_total").Inc()
		res.Explain.Finalize()
		attachFetchStats(res.Explain, access.FetchStats(), elapsed)
		slow.Record(SlowEntry{
			Query:      text,
			TraceID:    root.TraceID().String(),
			Start:      start,
			DurationMS: float64(elapsed) / float64(time.Millisecond),
			Error:      err.Error(),
			Plan:       res.Explain.Render(),
		})
		root.SetAttr("error", err.Error())
		root.Finish()
		if ownRoot {
			traces.Record(root)
		}
		return nil, err
	}
	res.Values = values
	res.Completeness = access.Report()
	snap := actx.Snapshot()
	res.Stats.TuplesEmitted = snap.TuplesEmitted
	res.Stats.PatternMatches = snap.PatternMatches
	res.Stats.DrainNanos = snap.DrainNanos
	res.Stats.OperatorsRun = snap.OperatorsRun
	res.Stats.ParallelWorkers = snap.WorkersSpawned
	res.Stats.WorkerNanos = snap.WorkerNanos
	res.Explain.RowsOut = int64(len(values))
	res.Explain.Finalize()
	attachFetchStats(res.Explain, access.FetchStats(), elapsed)
	slow.Record(SlowEntry{
		Query:      text,
		TraceID:    root.TraceID().String(),
		Start:      start,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Tuples:     snap.TuplesEmitted,
		Complete:   res.Completeness.Complete,
		Plan:       res.Explain.Render(),
	})
	if root != nil {
		root.SetInt("results", int64(len(values)))
		root.SetInt("tuples", snap.TuplesEmitted)
		root.SetBool("complete", res.Completeness.Complete)
		root.Finish()
		if ownRoot {
			traces.Record(root)
		}
		if qo.Profile {
			res.Trace = root
		}
	}
	return res, nil
}

// attachFetchStats appends one synthetic Fetch node per accessed source
// under the Query root and stamps the root with the query's wall time.
// Call it after Finalize so the root's rows-in stays the sum of the plan
// roots' output, not of fetched source rows.
func attachFetchStats(ex *ExplainTree, fetches []exec.SourceFetchStat, elapsed time.Duration) {
	ex.NextNanos = elapsed.Nanoseconds()
	for _, fs := range fetches {
		detail := fmt.Sprintf("%s fetches=%d", fs.Source, fs.Fetches)
		if fs.Bytes > 0 {
			detail += fmt.Sprintf(" bytes=%d", fs.Bytes)
		}
		if fs.Retries > 0 {
			detail += fmt.Sprintf(" retries=%d", fs.Retries)
		}
		if fs.Breaker != "" {
			detail += " breaker=" + fs.Breaker
		}
		if fs.Local {
			detail += " local"
		}
		if fs.Err != "" {
			detail += " error=" + fs.Err
		}
		ex.Children = append(ex.Children, &algebra.ExplainNode{
			Op:        "Fetch",
			Detail:    detail,
			RowsOut:   int64(fs.Rows),
			NextNanos: fs.Nanos,
		})
	}
}

// run executes one query (possibly correlated under an outer binding)
// and returns the constructed values in result order. aq (the active-
// query handle) and ex (the EXPLAIN tree collecting one instrumented
// plan per rewrite) are set only for the top-level query; both are
// nil-safe to thread through. grant is the query's admitted degree of
// parallelism from the shared scheduler; nil plans serially (the
// materialization paths).
func (e *Engine) run(ctx context.Context, q *xmlql.Query, outer algebra.Binding,
	access *exec.Access, actx *algebra.Context, depth int, stats *Stats,
	aq *ActiveQuery, ex *algebra.ExplainNode, grant *sched.Grant) ([]xmldm.Value, error) {

	if depth > maxDepth {
		return nil, fmt.Errorf("core: query nesting exceeds %d levels (cyclic schema definitions?)", maxDepth)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	skip := e.skipUnfold
	opts := e.opts
	e.mu.RUnlock()
	// degree reads the granted degree of parallelism at an operator
	// boundary — a point where none of this query's plan operators are
	// running, so degree changes are safe. Only the top-level query
	// checkpoints (batch queries yield slack to interactive demand
	// there); subquery evaluation can run while outer-plan operators are
	// live, so it only observes the current degree.
	degree := func() int {
		if depth == 0 {
			return grant.Checkpoint()
		}
		return grant.Degree()
	}

	sp := obs.FromContext(ctx)
	aq.SetPhase("unfold")
	spUnfold := sp.StartChild("unfold")
	rewrites, err := mediator.UnfoldSkip(e.cat, q, skip)
	if err != nil {
		spUnfold.SetAttr("error", err.Error())
		spUnfold.Finish()
		return nil, err
	}
	spUnfold.SetInt("rewrites", int64(len(rewrites)))
	spUnfold.Finish()
	if stats != nil {
		stats.Rewrites = len(rewrites)
	}
	if ex != nil {
		ex.Detail = fmt.Sprintf("rewrites=%d", len(rewrites))
	}

	type item struct {
		value xmldm.Value
		keys  []xmldm.Value
	}
	var items []item
	orderPushed := len(rewrites) == 1

	for ri, rw := range rewrites {
		var spRw *obs.Span
		if sp != nil {
			spRw = sp.StartChild(fmt.Sprintf("rewrite[%d]", ri))
		}
		// Every rewrite is re-admitted: the stamped degree picks up
		// upgrades granted since the last boundary and, for batch
		// queries, yields slack reclaimed by interactive arrivals.
		opts.Parallelism = degree()
		planner := opt.New(e.cat, access)
		planner.Opts = opts
		var preBound []string
		var input algebra.Operator
		if outer != nil {
			preBound = outer.Names()
			input = &algebra.TupleScan{Tuples: []algebra.Binding{outer}}
		}
		aq.SetPhase("plan")
		spPlan := spRw.StartChild("plan")
		plan, err := planner.Plan(rw, preBound, input)
		if err != nil {
			spPlan.SetAttr("error", err.Error())
			spPlan.Finish()
			spRw.Finish()
			return nil, err
		}
		spPlan.SetInt("fetches", int64(len(plan.Fetches)))
		spPlan.SetAttr("sources", strings.Join(plan.Sources, ","))
		spPlan.Finish()
		if stats != nil {
			stats.Fetches += len(plan.Fetches)
			stats.Explain = append(stats.Explain, plan.Explain...)
		}
		if !plan.OrderPushed {
			orderPushed = false
		}
		specs := make([]exec.FetchSpec, len(plan.Fetches))
		for i, f := range plan.Fetches {
			specs[i] = exec.FetchSpec{Source: f.Source, Req: f.Req}
		}
		aq.SetPhase("prefetch")
		spPre := spRw.StartChild("prefetch")
		spPre.SetInt("fetches", int64(len(specs)))
		if err := access.Prefetch(specs); err != nil {
			spPre.Finish()
			spRw.Finish()
			return nil, err
		}
		spPre.Finish()
		// The plan is instrumented before draining — per-operator stats
		// accumulate into the EXPLAIN tree under the query root. The
		// shims are transparent (1:1 Open/Next/Close delegation), so
		// lifecycle invariants and span names are unaffected.
		planRoot := plan.Root
		if ex != nil {
			var node *algebra.ExplainNode
			planRoot, node = algebra.Instrument(plan.Root, plan.Labels)
			ex.Children = append(ex.Children, node)
		}
		// Operator evaluation records its span under this rewrite; the
		// previous parent (the query root, or an outer rewrite during
		// correlated subquery evaluation) is restored afterwards.
		prevTrace := actx.Trace
		if spRw != nil {
			actx.Trace = spRw
		}
		aq.SetPhase("eval")
		bindings, err := algebra.Drain(actx, planRoot)
		actx.Trace = prevTrace
		if err != nil {
			spRw.Finish()
			return nil, err
		}
		aq.SetPhase("construct")
		spCons := spRw.StartChild("construct")
		for _, b := range bindings {
			it := item{}
			for _, k := range plan.OrderBy {
				v, err := algebra.Eval(actx, k.Expr, b)
				if err != nil {
					spCons.Finish()
					spRw.Finish()
					return nil, err
				}
				it.keys = append(it.keys, v)
			}
			v, err := algebra.BuildResult(actx, plan.Construct, b)
			if err != nil {
				spCons.Finish()
				spRw.Finish()
				return nil, err
			}
			it.value = v
			items = append(items, it)
		}
		spCons.SetInt("values", int64(len(bindings)))
		spCons.Finish()
		spRw.Finish()
	}

	if len(q.OrderBy) > 0 && !orderPushed {
		aq.SetPhase("sort")
		descs := make([]bool, len(q.OrderBy))
		for i, k := range q.OrderBy {
			descs[i] = k.Desc
		}
		// Keys were precomputed serially during construction, so the
		// comparator only reads them — safe for the parallel chunk sorts
		// of StableSortIndices, whose index tie-break reproduces exactly
		// the sort.SliceStable order.
		perm := algebra.StableSortIndices(len(items), degree(), func(i, j int) int {
			for k := range descs {
				if k >= len(items[i].keys) || k >= len(items[j].keys) {
					return 0
				}
				c := xmldm.Compare(items[i].keys[k], items[j].keys[k])
				if c == 0 {
					continue
				}
				if descs[k] {
					return -c
				}
				return c
			}
			return 0
		})
		sorted := make([]item, len(items))
		for i, p := range perm {
			sorted[i] = items[p]
		}
		items = sorted
	}

	out := make([]xmldm.Value, len(items))
	for i, it := range items {
		out[i] = it.value
	}
	return out, nil
}

// materializeSchema computes a mediated schema's full document by
// running each of its view definitions; it is the fallback for patterns
// that could not be unfolded, and the producer for the materialized
// store.
func (e *Engine) materializeSchema(ctx context.Context, schema string, access *exec.Access) (*xmldm.Node, error) {
	e.inflightMu.Lock()
	set := e.inflight[access]
	if set == nil {
		set = map[string]bool{}
		e.inflight[access] = set
	}
	if set[schema] {
		e.inflightMu.Unlock()
		return nil, fmt.Errorf("core: cyclic materialization of schema %q", schema)
	}
	set[schema] = true
	e.inflightMu.Unlock()
	defer func() {
		e.inflightMu.Lock()
		delete(set, schema)
		if len(set) == 0 {
			delete(e.inflight, access)
		}
		e.inflightMu.Unlock()
	}()

	views, err := e.cat.Views(schema)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	funcs := e.funcs
	e.mu.RUnlock()
	actx := &algebra.Context{Funcs: funcs}
	actx.SubqueryEval = func(subq *xmlql.Query, outer algebra.Binding) ([]xmldm.Value, error) {
		return e.run(ctx, subq, outer, access, actx, maxDepth/2+1, nil, nil, nil, nil)
	}
	root := &xmldm.Node{Name: schema}
	for _, vd := range views {
		vals, err := e.run(ctx, vd.Query, nil, access, actx, maxDepth/2+1, nil, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			if n, ok := v.(*xmldm.Node); ok {
				n.Parent = root
				root.Children = append(root.Children, n)
			}
		}
	}
	xmldm.Finalize(root)
	return root, nil
}

// MaterializeSchema computes and returns a schema's document with a
// fresh access (public entry for the materialized-view manager).
func (e *Engine) MaterializeSchema(ctx context.Context, schema string) (*xmldm.Node, exec.Completeness, error) {
	e.mu.RLock()
	policy := e.policy
	e.mu.RUnlock()
	access := e.runner.NewAccess(ctx, policy)
	doc, err := e.materializeSchema(ctx, schema, access)
	if err != nil {
		return nil, access.Report(), err
	}
	return doc, access.Report(), nil
}
