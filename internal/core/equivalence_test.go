package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/rdb"
	"repro/internal/sched"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// The unfolding equivalence property: for any query over a mediated
// schema, executing the unfolded rewrite against the sources must
// produce the same multiset of results as matching the original query
// against the fully materialized schema document. This is the soundness
// + completeness statement for the mediator's GAV rewriting — the core
// of the paper's system — checked over a randomized space of view
// shapes and query shapes.

// randomDeployment builds an engine with a random relational dataset and
// a random (but unfoldable) view over it.
func randomDeployment(t *testing.T, rng *rand.Rand) (*Engine, string) {
	t.Helper()
	db := rdb.NewDatabase("d")
	db.MustExec(`CREATE TABLE items (id INT PRIMARY KEY, cat VARCHAR, val INT, label VARCHAR)`)
	cats := []string{"a", "b", "c"}
	n := 10 + rng.Intn(30)
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO items VALUES (%d, '%s', %d, 'L%d')`,
			i, cats[rng.Intn(len(cats))], rng.Intn(50), rng.Intn(8)))
	}
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("db", db)); err != nil {
		t.Fatal(err)
	}

	// Random view shape: a subset of columns under varying nesting.
	views := []string{
		`WHERE <item><id>$i</id><cat>$c</cat><val>$v</val></item> IN "db"
		 CONSTRUCT <rec><key>$i</key><group>$c</group><score>$v</score></rec>`,
		`WHERE <item><id>$i</id><cat>$c</cat><val>$v</val><label>$l</label></item> IN "db"
		 CONSTRUCT <rec key=$i><group>$c</group><info><score>$v</score><tag>$l</tag></info></rec>`,
		`WHERE <item><id>$i</id><val>$v</val></item> IN "db", $v > 10
		 CONSTRUCT <rec><key>$i</key><score>$v</score></rec>`,
	}
	view := views[rng.Intn(len(views))]
	if err := cat.DefineViewQL("recs", view); err != nil {
		t.Fatal(err)
	}
	return New(cat), view
}

// randomQuery builds a query over the "recs" schema compatible with all
// view shapes above (key/score always exist; group/info may not bind).
func randomQuery(rng *rand.Rand, viewHasAttrKey bool) string {
	preds := []string{
		``,
		`, $s > 25`,
		`, $s >= 10, $s < 40`,
	}
	pred := preds[rng.Intn(len(preds))]
	key := `<key>$k</key>`
	if viewHasAttrKey {
		key = `` // the attr-key view has no <key> element; bind score only
	}
	order := ``
	if rng.Intn(2) == 0 {
		order = ` ORDER-BY $s DESCENDING, $k`
	}
	return `WHERE <rec>` + key + `<//score>$s</></rec> IN "recs"` + pred + `
		CONSTRUCT <out><k>$k</k><s>$s</s></out>` + order
}

// materializedAnswer answers the query by materializing the schema
// document into a static source and querying that — the semantic
// reference implementation.
func materializedAnswer(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	doc, comp, err := e.MaterializeSchema(context.Background(), "recs")
	if err != nil || !comp.Complete {
		t.Fatalf("materialize: %v %+v", err, comp)
	}
	refCat := catalog.New()
	if err := refCat.AddSource(catalog.NewStaticSource("recs", doc)); err != nil {
		t.Fatal(err)
	}
	ref := New(refCat)
	res, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	return renderAll(res.Values)
}

func renderAll(vals []xmldm.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

func TestUnfoldingEquivalence_Property(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, view := randomDeployment(t, rng)
		attrKey := rng.Intn(10) < 3 && view != "" && containsAttrKey(view)
		q := randomQuery(rng, attrKey)

		got, err := e.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("seed %d: unfolded query failed: %v\nquery: %s", seed, err, q)
		}
		want := materializedAnswer(t, e, q)
		gotS := renderAll(got.Values)

		// Ordered comparison when the query orders; multiset otherwise.
		ordered := len(got.Values) > 0 && hasOrderBy(q)
		if !ordered {
			sort.Strings(gotS)
			sort.Strings(want)
		}
		if len(gotS) != len(want) {
			t.Fatalf("seed %d: %d vs %d results\nquery: %s\nview: %s\ngot: %v\nwant: %v",
				seed, len(gotS), len(want), q, view, head(gotS), head(want))
		}
		for i := range gotS {
			if gotS[i] != want[i] {
				t.Fatalf("seed %d: result %d differs\nquery: %s\nview: %s\ngot:  %s\nwant: %s",
					seed, i, q, view, gotS[i], want[i])
			}
		}
	}
}

// The serial/parallel differential property: for any query, a plan run
// at parallelism N must produce output byte-identical to the serial
// plan — same XML, same order, same completeness, same work counters.
// Serial execution is the oracle; the generator reuses the randomized
// deployment/query space of the unfolding property above.

// parallelDegrees are the degrees the differential suite exercises:
// serial oracle, minimal parallelism, and more workers than cores.
var parallelDegrees = []int{1, 2, 8}

// runAt executes q on e at the given degree of parallelism and returns
// the serialized result document plus the result itself.
func runAt(t *testing.T, e *Engine, q string, par int) (string, *Result) {
	t.Helper()
	e.SetParallelism(par)
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("parallelism %d: %v\nquery: %s", par, err, q)
	}
	return res.Document().String(), res
}

func TestParallelEquivalence_Differential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, view := randomDeployment(t, rng)
		q := randomQuery(rng, false)

		oracle, ores := runAt(t, e, q, 1)
		for _, par := range parallelDegrees[1:] {
			got, res := runAt(t, e, q, par)
			if got != oracle {
				t.Fatalf("seed %d parallelism %d: output differs from serial\nquery: %s\nview: %s\ngot:  %s\nwant: %s",
					seed, par, q, view, got, oracle)
			}
			if res.Completeness.Complete != ores.Completeness.Complete {
				t.Fatalf("seed %d parallelism %d: completeness %v vs serial %v",
					seed, par, res.Completeness.Complete, ores.Completeness.Complete)
			}
			if res.Stats.TuplesEmitted != ores.Stats.TuplesEmitted ||
				res.Stats.PatternMatches != ores.Stats.PatternMatches {
				t.Fatalf("seed %d parallelism %d: stats (tuples=%d matches=%d) vs serial (tuples=%d matches=%d)",
					seed, par, res.Stats.TuplesEmitted, res.Stats.PatternMatches,
					ores.Stats.TuplesEmitted, ores.Stats.PatternMatches)
			}
		}
	}
}

// TestParallelEquivalence_Workload runs the fixed multi-source workload
// queries (joins across relational and XML sources, IN-$var chaining,
// residual predicates, ORDER-BY) through every parallel degree.
func TestParallelEquivalence_Workload(t *testing.T) {
	workload := []string{
		// Two-source join with a residual cross-source predicate.
		`WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
		       <ticket><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
		 CONSTRUCT <r><who>$w</who><subject>$s</subject></r>`,
		// Relational-relational join with ORDER-BY (exercises the
		// parallel final sort) and a selection.
		`WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb",
		       <order><cust>$i</cust><total>$t</total></order> IN "salesdb",
		       $t > 100
		 CONSTRUCT <big><who>$n</who><total>$t</total></big> ORDER-BY $t DESCENDING`,
		// Mediated-schema scan with attribute pattern and predicate.
		`WHERE <ticket pri=$p><subject>$s</subject></ticket> IN "tickets", $p = "high"
		 CONSTRUCT <hot>$s</hot>`,
		// Three-way join across all sources.
		`WHERE <cust><cid>$i</cid><who>$w</who><where>$c</where></cust> IN "customers",
		       <order><cust>$i</cust><total>$t</total></order> IN "salesdb",
		       <ticket><cust>$i</cust></ticket> IN "tickets"
		 CONSTRUCT <row><who>$w</who><city>$c</city><total>$t</total></row> ORDER-BY $w, $t`,
	}
	e, _ := newTestEngine(t)
	for qi, q := range workload {
		oracle, ores := runAt(t, e, q, 1)
		if len(ores.Values) == 0 {
			t.Fatalf("workload %d: oracle produced no rows (weak test)", qi)
		}
		for _, par := range parallelDegrees[1:] {
			got, res := runAt(t, e, q, par)
			if got != oracle {
				t.Fatalf("workload %d parallelism %d: output differs from serial\ngot:  %s\nwant: %s",
					qi, par, got, oracle)
			}
			if res.Completeness.Complete != ores.Completeness.Complete {
				t.Fatalf("workload %d parallelism %d: completeness differs", qi, par)
			}
			if res.Stats.TuplesEmitted != ores.Stats.TuplesEmitted {
				t.Fatalf("workload %d parallelism %d: tuples %d vs serial %d",
					qi, par, res.Stats.TuplesEmitted, ores.Stats.TuplesEmitted)
			}
			if par > 1 && res.Stats.ParallelWorkers == 0 {
				t.Fatalf("workload %d parallelism %d: no parallel workers spawned (plan not parallelized?)", qi, par)
			}
		}
	}
}

// The scheduler differential property: whatever degree the shared
// scheduler grants — full, downgraded to the floor, or upgraded at a
// rewrite boundary — the answer must stay byte-identical to the serial
// oracle, and every grant must be back in the pool when the query
// completes. Serial execution (no scheduler involvement beyond the free
// floor) is the oracle; budgets bracket the interesting regimes: 1
// (everything downgraded), 2 (partial grants), 8 (demand fully met).
func TestSchedulerGrantEquivalence_Differential(t *testing.T) {
	for _, budget := range []int{1, 2, 8} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e, view := randomDeployment(t, rng)
			q := randomQuery(rng, false)
			oracle, ores := runAt(t, e, q, 1)

			schd := sched.New(sched.Config{Budget: budget})
			e.SetScheduler(schd)
			// 0 = auto (resolves to the budget), then explicit degrees
			// below, at, and above what the budget can grant.
			for _, desired := range []int{0, 2, 8} {
				got, res := runAt(t, e, q, desired)
				if got != oracle {
					t.Fatalf("budget %d seed %d desired %d: output differs from serial\nquery: %s\nview: %s\ngot:  %s\nwant: %s",
						budget, seed, desired, q, view, got, oracle)
				}
				if res.Stats.TuplesEmitted != ores.Stats.TuplesEmitted {
					t.Fatalf("budget %d seed %d desired %d: tuples %d vs serial %d",
						budget, seed, desired, res.Stats.TuplesEmitted, ores.Stats.TuplesEmitted)
				}
				snap := schd.Snap()
				if snap.Granted != 0 || snap.Queries != 0 || snap.Waiting != 0 {
					t.Fatalf("budget %d seed %d desired %d: scheduler not idle after query: %+v",
						budget, seed, desired, snap)
				}
				if snap.Free != snap.Budget {
					t.Fatalf("budget %d seed %d desired %d: %d of %d slots leaked",
						budget, seed, desired, snap.Budget-snap.Free, snap.Budget)
				}
			}
		}
	}
}

// Mixed classes over one shared scheduler: concurrent interactive and
// batch queries racing for a tiny budget must each still produce the
// serial answer, and the pool must balance to zero when they all finish.
func TestSchedulerGrantEquivalence_MixedClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := randomDeployment(t, rng)
	q := randomQuery(rng, false)
	oracle, _ := runAt(t, e, q, 1)

	schd := sched.New(sched.Config{Budget: 2})
	e.SetScheduler(schd)
	e.SetParallelism(4)
	classes := []string{"interactive", "batch", "", "batch", "interactive", "batch"}
	results := make([]string, len(classes))
	errs := make([]error, len(classes))
	var wg sync.WaitGroup
	for i, class := range classes {
		wg.Add(1)
		go func(i int, class string) {
			defer wg.Done()
			res, err := e.QueryOpt(context.Background(), q, QueryOptions{Class: class})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res.Document().String()
		}(i, class)
	}
	wg.Wait()
	for i := range classes {
		if errs[i] != nil {
			t.Fatalf("query %d (%q): %v", i, classes[i], errs[i])
		}
		if results[i] != oracle {
			t.Fatalf("query %d (%q): output differs from serial\ngot:  %s\nwant: %s",
				i, classes[i], results[i], oracle)
		}
	}
	snap := schd.Snap()
	if snap.Granted != 0 || snap.Queries != 0 || snap.Waiting != 0 || snap.Free != snap.Budget {
		t.Fatalf("scheduler not idle after mixed-class run: %+v", snap)
	}
	if snap.Starved != 0 {
		t.Fatalf("interactive starvation detected: %+v", snap)
	}
}

func containsAttrKey(view string) bool {
	return false // randomQuery always uses the element-key form; kept for clarity
}

func hasOrderBy(q string) bool {
	for i := 0; i+8 <= len(q); i++ {
		if q[i:i+8] == "ORDER-BY" {
			return true
		}
	}
	return false
}

func head(s []string) []string {
	if len(s) > 4 {
		return s[:4]
	}
	return s
}
