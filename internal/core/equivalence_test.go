package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// The unfolding equivalence property: for any query over a mediated
// schema, executing the unfolded rewrite against the sources must
// produce the same multiset of results as matching the original query
// against the fully materialized schema document. This is the soundness
// + completeness statement for the mediator's GAV rewriting — the core
// of the paper's system — checked over a randomized space of view
// shapes and query shapes.

// randomDeployment builds an engine with a random relational dataset and
// a random (but unfoldable) view over it.
func randomDeployment(t *testing.T, rng *rand.Rand) (*Engine, string) {
	t.Helper()
	db := rdb.NewDatabase("d")
	db.MustExec(`CREATE TABLE items (id INT PRIMARY KEY, cat VARCHAR, val INT, label VARCHAR)`)
	cats := []string{"a", "b", "c"}
	n := 10 + rng.Intn(30)
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO items VALUES (%d, '%s', %d, 'L%d')`,
			i, cats[rng.Intn(len(cats))], rng.Intn(50), rng.Intn(8)))
	}
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("db", db)); err != nil {
		t.Fatal(err)
	}

	// Random view shape: a subset of columns under varying nesting.
	views := []string{
		`WHERE <item><id>$i</id><cat>$c</cat><val>$v</val></item> IN "db"
		 CONSTRUCT <rec><key>$i</key><group>$c</group><score>$v</score></rec>`,
		`WHERE <item><id>$i</id><cat>$c</cat><val>$v</val><label>$l</label></item> IN "db"
		 CONSTRUCT <rec key=$i><group>$c</group><info><score>$v</score><tag>$l</tag></info></rec>`,
		`WHERE <item><id>$i</id><val>$v</val></item> IN "db", $v > 10
		 CONSTRUCT <rec><key>$i</key><score>$v</score></rec>`,
	}
	view := views[rng.Intn(len(views))]
	if err := cat.DefineViewQL("recs", view); err != nil {
		t.Fatal(err)
	}
	return New(cat), view
}

// randomQuery builds a query over the "recs" schema compatible with all
// view shapes above (key/score always exist; group/info may not bind).
func randomQuery(rng *rand.Rand, viewHasAttrKey bool) string {
	preds := []string{
		``,
		`, $s > 25`,
		`, $s >= 10, $s < 40`,
	}
	pred := preds[rng.Intn(len(preds))]
	key := `<key>$k</key>`
	if viewHasAttrKey {
		key = `` // the attr-key view has no <key> element; bind score only
	}
	order := ``
	if rng.Intn(2) == 0 {
		order = ` ORDER-BY $s DESCENDING, $k`
	}
	return `WHERE <rec>` + key + `<//score>$s</></rec> IN "recs"` + pred + `
		CONSTRUCT <out><k>$k</k><s>$s</s></out>` + order
}

// materializedAnswer answers the query by materializing the schema
// document into a static source and querying that — the semantic
// reference implementation.
func materializedAnswer(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	doc, comp, err := e.MaterializeSchema(context.Background(), "recs")
	if err != nil || !comp.Complete {
		t.Fatalf("materialize: %v %+v", err, comp)
	}
	refCat := catalog.New()
	if err := refCat.AddSource(catalog.NewStaticSource("recs", doc)); err != nil {
		t.Fatal(err)
	}
	ref := New(refCat)
	res, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	return renderAll(res.Values)
}

func renderAll(vals []xmldm.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

func TestUnfoldingEquivalence_Property(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, view := randomDeployment(t, rng)
		attrKey := rng.Intn(10) < 3 && view != "" && containsAttrKey(view)
		q := randomQuery(rng, attrKey)

		got, err := e.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("seed %d: unfolded query failed: %v\nquery: %s", seed, err, q)
		}
		want := materializedAnswer(t, e, q)
		gotS := renderAll(got.Values)

		// Ordered comparison when the query orders; multiset otherwise.
		ordered := len(got.Values) > 0 && hasOrderBy(q)
		if !ordered {
			sort.Strings(gotS)
			sort.Strings(want)
		}
		if len(gotS) != len(want) {
			t.Fatalf("seed %d: %d vs %d results\nquery: %s\nview: %s\ngot: %v\nwant: %v",
				seed, len(gotS), len(want), q, view, head(gotS), head(want))
		}
		for i := range gotS {
			if gotS[i] != want[i] {
				t.Fatalf("seed %d: result %d differs\nquery: %s\nview: %s\ngot:  %s\nwant: %s",
					seed, i, q, view, gotS[i], want[i])
			}
		}
	}
}

func containsAttrKey(view string) bool {
	return false // randomQuery always uses the element-key form; kept for clarity
}

func hasOrderBy(q string) bool {
	for i := 0; i+8 <= len(q); i++ {
		if q[i:i+8] == "ORDER-BY" {
			return true
		}
	}
	return false
}

func head(s []string) []string {
	if len(s) > 4 {
		return s[:4]
	}
	return s
}
