package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestProfileSpanTree checks the acceptance contract of the profile
// option: the span tree returned by Profile agrees with the
// completeness report (same sources, rows, local/error flags), and the
// tree carries the planning/prefetch/eval structure.
func TestProfileSpanTree(t *testing.T) {
	eng, _ := newTestEngine(t)
	eng.SetMetrics(obs.NewRegistry())
	res, err := eng.QueryOpt(context.Background(),
		`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`,
		QueryOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Trace
	if root == nil || root.Name() != "engine" {
		t.Fatalf("trace root = %v", root)
	}
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Error("profile root should carry trace identity")
	}
	if root.Duration() <= 0 {
		t.Error("root span should be finished")
	}

	// Per-source fetch spans agree with the completeness report.
	fetches := root.FindAll("fetch ")
	if len(fetches) != len(res.Completeness.Statuses) {
		t.Fatalf("fetch spans = %d, statuses = %d", len(fetches), len(res.Completeness.Statuses))
	}
	for _, st := range res.Completeness.Statuses {
		found := false
		for _, sp := range fetches {
			src, _ := sp.Attr("source")
			if !strings.EqualFold(src, st.Source) {
				continue
			}
			found = true
			if rows, _ := sp.Attr("rows"); rows != fmt.Sprint(st.Rows) {
				t.Errorf("%s rows = %s, want %d", st.Source, rows, st.Rows)
			}
			if local, _ := sp.Attr("local"); local != fmt.Sprint(st.Local) {
				t.Errorf("%s local = %s, want %v", st.Source, local, st.Local)
			}
			if _, hasErr := sp.Attr("error"); hasErr != (st.Err != "") {
				t.Errorf("%s error presence = %v, want %v", st.Source, hasErr, st.Err != "")
			}
		}
		if !found {
			t.Errorf("no fetch span for source %s", st.Source)
		}
	}

	// Structural spans from every layer.
	for _, prefix := range []string{"unfold", "rewrite[0]", "plan", "prefetch", "eval ", "construct"} {
		if len(root.FindAll(prefix)) == 0 {
			t.Errorf("missing %q span in tree", prefix)
		}
	}
	if v, ok := root.Attr("complete"); !ok || v != "true" {
		t.Errorf("complete attr = %q %v", v, ok)
	}
}

// TestTracerRetainsQueries checks that an installed trace store records
// every query even without Profile, and that metrics count them.
func TestTracerRetainsQueries(t *testing.T) {
	eng, _ := newTestEngine(t)
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	tr := obs.NewTraceStore(obs.StoreConfig{Limit: 4})
	eng.SetTraceStore(tr)
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	for i := 0; i < 3; i++ {
		res, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace != nil {
			t.Error("Trace should only be set under Profile")
		}
	}
	if tr.Len() != 3 {
		t.Errorf("tracer retained %d traces", tr.Len())
	}
	if n := reg.Counter("nimble_queries_total").Value(); n != 3 {
		t.Errorf("queries_total = %d", n)
	}
	if c := reg.Histogram("nimble_query_seconds").Count(); c != 3 {
		t.Errorf("latency observations = %d", c)
	}
	// A failing query is traced with an error attribute and counted.
	if _, err := eng.Query(context.Background(), `WHERE <a>$x</a> IN "nosuch" CONSTRUCT <r>$x</r>`); err == nil {
		t.Fatal("query over unknown source should fail")
	}
	if n := reg.Counter("nimble_query_errors_total").Value(); n != 1 {
		t.Errorf("query_errors_total = %d", n)
	}
	last := tr.Last(1)
	if len(last) != 1 {
		t.Fatal("failed query not traced")
	}
	if _, ok := last[0].Attr("error"); !ok {
		t.Error("failed query trace missing error attr")
	}
}
