package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// E8Algebra microbenchmarks the physical algebra on the two data shapes
// §3.1's hybrid model is designed for: tuple streams (relational) and
// element trees (XML). Operators: tuple scan + select, hash join, tree
// pattern match, and construct. Metric: items processed per second.
func E8Algebra(s Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Physical algebra operator throughput",
		Header: []string{"operator", "input", "items/sec"},
	}
	n := s.Customers * 10

	// Tuple scan + select on a binding stream (relational shape).
	tuples := make([]algebra.Binding, n)
	for i := range tuples {
		tuples[i] = xmldm.NewTuple(
			xmldm.Field{Name: "id", Value: xmldm.Int(int64(i))},
			xmldm.Field{Name: "v", Value: xmldm.Int(int64(i % 100))},
		)
	}
	pred := xmlql.MustParse(`WHERE <a>$q</a> IN "s", $v < 50 CONSTRUCT <r/>`).Where[1].(*xmlql.PredicateCond).Expr
	t.AddRow("select (tuples)", fmt.Sprintf("%d tuples", n), ratePerSec(n, func() {
		op := &algebra.Select{Input: &algebra.TupleScan{Tuples: tuples}, Pred: pred}
		if _, err := algebra.Drain(&algebra.Context{}, op); err != nil {
			panic(err)
		}
	}))

	// Hash join of two binding streams on a shared variable.
	left := make([]algebra.Binding, n/2)
	right := make([]algebra.Binding, n/2)
	for i := range left {
		left[i] = xmldm.NewTuple(xmldm.Field{Name: "k", Value: xmldm.Int(int64(i))},
			xmldm.Field{Name: "l", Value: xmldm.String("x")})
		right[i] = xmldm.NewTuple(xmldm.Field{Name: "k", Value: xmldm.Int(int64(i))},
			xmldm.Field{Name: "r", Value: xmldm.String("y")})
	}
	t.AddRow("hash join", fmt.Sprintf("%d x %d", n/2, n/2), ratePerSec(n, func() {
		op := &algebra.HashJoin{
			Left:  &algebra.TupleScan{Tuples: left},
			Right: &algebra.TupleScan{Tuples: right},
		}
		if _, err := algebra.Drain(&algebra.Context{}, op); err != nil {
			panic(err)
		}
	}))

	// Tree pattern match (XML shape): a document of n/10 records.
	b := xmldm.NewBuilder()
	var kids []any
	for i := 0; i < n/10; i++ {
		kids = append(kids, b.Elem("book",
			xmldm.Attr{Name: "year", Value: fmt.Sprint(1990 + i%20)},
			b.Elem("title", fmt.Sprintf("Title %d", i)),
			b.Elem("price", fmt.Sprint(10+i%90)),
		))
	}
	doc := b.Elem("bib", kids...)
	pat := xmlql.MustParse(`WHERE <book year=$y><title>$t</title><price>$p</price></book> IN "b" CONSTRUCT <r/>`).
		Where[0].(*xmlql.PatternCond).Pattern
	t.AddRow("pattern match (tree)", fmt.Sprintf("%d elements", doc.CountElements()), ratePerSec(n/10, func() {
		if _, err := algebra.MatchPattern(&algebra.Context{}, doc, pat, xmldm.NewTuple()); err != nil {
			panic(err)
		}
	}))

	// Construct: build result elements from bindings.
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s" CONSTRUCT <out id=$id><val>$v</val></out>`).Construct
	t.AddRow("construct", fmt.Sprintf("%d results", n/10), ratePerSec(n/10, func() {
		for i := 0; i < n/10; i++ {
			if _, err := algebra.BuildResult(&algebra.Context{}, tmpl, tuples[i]); err != nil {
				panic(err)
			}
		}
	}))

	t.Notes = append(t.Notes,
		"tuple-shaped data avoids tree matching entirely — the efficiency argument behind §3.1's hybrid model")
	return t
}

// ratePerSec runs fn (which processes items) enough times to time it,
// returning items per second as a formatted string.
func ratePerSec(items int, fn func()) string {
	// Warm once, then time a few runs.
	fn()
	const runs = 3
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	elapsed := time.Since(start) / runs
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	rate := float64(items) / elapsed.Seconds()
	switch {
	case rate >= 1e6:
		return fmt.Sprintf("%.1fM", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.0fk", rate/1e3)
	default:
		return fmt.Sprintf("%.0f", rate)
	}
}
