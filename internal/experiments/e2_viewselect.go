package experiments

import (
	"context"
	"strings"
	"sync/atomic"

	nimble "repro"
	"repro/internal/catalog"
	"repro/internal/matview"
	"repro/internal/sources"
	"repro/internal/workload"
	"repro/internal/xmlql"
)

// E2ViewSelection exercises §3.3's research challenge: "algorithms that
// decide which data (and over which sources) need to be materialized ...
// we may need to adjust the set of materialized views over time
// depending on the query load". Two mediated schemas back on two remote
// sources; the query mix starts east-heavy and shifts west-heavy halfway
// through. Policies: materialize nothing, materialize everything, and
// the greedy adaptive advisor under a budget that fits only one schema.
// Metric: remote fetches (what materialization is meant to save) and
// bytes moved.
func E2ViewSelection(s Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Adaptive view selection under a shifting query load",
		Header: []string{"policy", "remote fetches", "bytes moved", "store changes"},
	}
	for _, policy := range []string{"none", "all", "advisor"} {
		sys := nimble.New(nimble.Config{})
		east := workload.CustomerDB("east", s.Customers/2, 2, 1)
		west := workload.CustomerDB("west", s.Customers/2, 2, 2)
		simEast := sources.NewNetworkSim(sources.NewRelationalSource("eastdb", east), 0, 1.0, 1)
		simWest := sources.NewNetworkSim(sources.NewRelationalSource("westdb", west), 0, 1.0, 2)
		if err := sys.AddSource(simEast); err != nil {
			panic(err)
		}
		if err := sys.AddSource(simWest); err != nil {
			panic(err)
		}
		for schema, src := range map[string]string{"eastcust": "eastdb", "westcust": "westdb"} {
			if err := sys.DefineSchema(schema, `
				WHERE <customer><name>$n</name><city>$c</city></customer> IN "`+src+`"
				CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`); err != nil {
				panic(err)
			}
		}
		var bytes atomic.Int64
		var fetches atomic.Int64
		sys.Engine(0).SetObserver(func(_ string, _ catalog.Request, cost catalog.Cost, err error) {
			fetches.Add(1)
			bytes.Add(int64(cost.BytesMoved))
		})
		ctx := context.Background()
		advisor := matview.NewAdvisor(sys.Engine(0).Catalog())
		mgr := sys.Views()

		changes := 0
		switch policy {
		case "all":
			for _, schema := range []string{"eastcust", "westcust"} {
				if err := sys.Materialize(ctx, schema); err != nil {
					panic(err)
				}
				changes++
			}
		}

		eastQ := `WHERE <cust><who>$w</who></cust> IN "eastcust" CONSTRUCT <r>$w</r>`
		westQ := `WHERE <cust><who>$w</who></cust> IN "westcust" CONSTRUCT <r>$w</r>`
		half := s.Queries / 2
		// The schemas' sizes are comparable; the budget fits one.
		budget := s.Customers * 6

		for i := 0; i < s.Queries; i++ {
			// Shifted mix: 90/10 east in the first half, 10/90 after.
			q := eastQ
			hot := i%10 != 0
			if (i < half) != hot {
				q = westQ
			}
			if policy == "advisor" {
				parsed := xmlql.MustParse(q)
				advisor.NoteQuery(parsed)
				// Re-decide every 20 queries (the advisor's window).
				if i%20 == 19 {
					advisor.EndWindow()
					n, err := advisor.Apply(ctx, mgr, advisor.Decide(budget))
					if err != nil {
						panic(err)
					}
					changes += n
					for _, e := range mgr.Entries() {
						advisor.NoteSize(e.Schema, e.Elements)
					}
				}
			}
			res, err := sys.Query(ctx, q)
			if err != nil {
				panic(err)
			}
			if policy == "advisor" {
				for _, st := range res.Completeness.Statuses {
					if !st.Local {
						for _, dep := range []string{"eastcust", "westcust"} {
							if containsFold(q, dep) {
								advisor.NoteCost(dep, st.Bytes)
							}
						}
					}
				}
			}
		}
		t.AddRow(policy, fetches.Load(), bytes.Load(), changes)
	}
	t.Notes = append(t.Notes,
		"budget fits one schema; the advisor should follow the hot schema across the shift",
		"'all' avoids remote fetches entirely but needs double the storage budget")
	return t
}

func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}
