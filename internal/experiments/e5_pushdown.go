package experiments

import (
	"context"
	"fmt"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
)

// E5Pushdown measures the compiler's fragment translation (§2.1): "the
// compiler generates SQL ... considers both the type of the underlying
// source, information concerning the layout of the data within the
// sources, and the presence of indices on the data".
//
// Part 1 (rows "pushdown on/off"): a selection of swept selectivity runs
// against a relational source with and without pushdown. Metrics: rows
// moved across the (simulated) network and simulated transfer time.
//
// Part 2 (rows "index on/off"): the same generated SQL fragment executes
// at the source with and without an index on the selection column;
// metric: source-side rows scanned (the executor's ExecStats), showing
// why the compiler tracks index presence.
func E5Pushdown(s Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Pushdown compilation and source indexes",
		Header: []string{"case", "selectivity", "rows moved", "sim transfer (ms)", "source rows scanned", "answer rows"},
	}
	n := s.Customers

	// Part 1: pushdown vs mediator-side evaluation.
	for _, sel := range []float64{0.01, 0.1, 0.5} {
		limit := int(float64(n) * sel)
		for _, push := range []bool{true, false} {
			sys := nimble.New(nimble.Config{DisablePushdown: !push})
			db := workload.CustomerDB("crm", n, 0, 5)
			sim := sources.NewNetworkSim(sources.NewRelationalSource("crmdb", db), time.Millisecond, 1.0, 5)
			sim.Sleep = false // account simulated time, keep the bench fast
			sim.PerKB = time.Millisecond
			if err := sys.AddSource(sim); err != nil {
				panic(err)
			}
			mustDefineCustomerSchema(sys)

			q := fmt.Sprintf(`WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers", $i < %d CONSTRUCT <r>$w</r>`, limit)
			res, err := sys.Query(context.Background(), q)
			if err != nil {
				panic(err)
			}
			rowsMoved := 0
			for _, st := range res.Completeness.Statuses {
				rowsMoved += st.Rows
			}
			_, _, simTime := sim.Stats()
			label := "pushdown on"
			if !push {
				label = "pushdown off"
			}
			t.AddRow(label, sel, rowsMoved,
				float64(simTime.Microseconds())/1000, "-", len(res.Values))
		}
	}

	// Part 2: the same fragment at the source, with and without an index
	// on the selection column (tier: three distinct values).
	for _, indexed := range []bool{true, false} {
		db := workload.CustomerDB("crm", n, 0, 6)
		if indexed {
			db.MustExec(`CREATE INDEX ON customers (tier)`)
		}
		scanned := 0
		var answer int
		for i := 0; i < 5; i++ {
			res := db.MustExec(`SELECT id, name FROM customers WHERE tier = 'gold'`)
			scanned += res.Stats.RowsScanned
			answer = len(res.Rows)
		}
		label := "index on tier"
		if !indexed {
			label = "no index"
		}
		t.AddRow(label, "~0.33", "-", "-", scanned/5, answer)
	}

	t.Notes = append(t.Notes,
		"with pushdown the rows moved track the selectivity; without it the whole table crosses the network every time",
		"with a source index the scan touches only the matching rows — the layout/index metadata §2.1 says the compiler must consider")
	return t
}
