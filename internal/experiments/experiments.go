// Package experiments implements the evaluation harness. The paper is an
// industrial abstract with no quantitative tables, so each experiment
// operationalizes one of its measurable claims (see DESIGN.md §4 and
// EXPERIMENTS.md): the harness regenerates a table per claim, and the
// root bench_test.go wraps the same code in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cols ...any) {
	row := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale selects experiment sizes: Quick for CI/benchmarks, Full for the
// EXPERIMENTS.md numbers.
type Scale struct {
	Customers int // customer-table size
	Queries   int // queries per configuration
	Trials    int // repetitions for stochastic experiments
}

// QuickScale keeps every experiment under a second or two.
func QuickScale() Scale { return Scale{Customers: 300, Queries: 60, Trials: 3} }

// FullScale is what EXPERIMENTS.md reports.
func FullScale() Scale { return Scale{Customers: 2000, Queries: 400, Trials: 10} }

// All runs every experiment at the given scale, in order.
func All(s Scale) []*Table {
	return []*Table{
		F1Architecture(s),
		E1WarehousingVsVirtual(s),
		E2ViewSelection(s),
		E3QueryCache(s),
		E4PartialResults(s),
		E5Pushdown(s),
		E6Cleaning(s),
		E7LoadBalance(s),
		E8Algebra(s),
		E9Hierarchy(s),
	}
}
