package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment smoke tests run every table at quick scale and verify
// the qualitative shape the paper claims — who wins, in which direction —
// rather than absolute numbers.

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func cellF(tb testing.TB, t *Table, row, col int) float64 {
	tb.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, row, col), "%"), 64)
	if err != nil {
		tb.Fatalf("%s row %d col %d: %q not numeric", t.ID, row, col, cell(t, row, col))
	}
	return v
}

func findRow(t *Table, col int, val string) int {
	for i, r := range t.Rows {
		if r[col] == val {
			return i
		}
	}
	return -1
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(42, "y")
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	if !strings.Contains(s, "== X: demo ==") || !strings.Contains(s, "1.500") || !strings.Contains(s, "note: a note") {
		t.Errorf("render:\n%s", s)
	}
}

func TestF1ArchitectureRuns(t *testing.T) {
	tbl := F1Architecture(QuickScale())
	if len(tbl.Rows) < 8 {
		t.Fatalf("rows = %d:\n%s", len(tbl.Rows), tbl)
	}
	joined := tbl.String()
	for _, want := range []string{"SELECT", "rewrite", "engine instances", "materialization"} {
		if !strings.Contains(joined, want) {
			t.Errorf("F1 missing %q:\n%s", want, joined)
		}
	}
}

func TestE1Shape(t *testing.T) {
	tbl := E1WarehousingVsVirtual(QuickScale())
	// For each ratio: virtual latency > warehouse latency; warehouse has
	// stale answers at low query:update ratios; virtual and hybrid never
	// stale.
	for _, ratio := range []string{"1:1", "5:1", "20:1"} {
		var vLat, wLat, hLat float64
		var vStale, wStale, hStale string
		for _, row := range tbl.Rows {
			if row[0] != ratio {
				continue
			}
			lat, _ := strconv.ParseFloat(row[2], 64)
			switch row[1] {
			case "virtual":
				vLat, vStale = lat, row[3]
			case "warehouse":
				wLat, wStale = lat, row[3]
			case "hybrid":
				hLat, hStale = lat, row[3]
			}
		}
		if vLat <= wLat {
			t.Errorf("%s: virtual (%.2fms) should be slower than warehouse (%.2fms)", ratio, vLat, wLat)
		}
		if !strings.HasPrefix(vStale, "0/") {
			t.Errorf("%s: virtual must never be stale, got %s", ratio, vStale)
		}
		if !strings.HasPrefix(hStale, "0/") {
			t.Errorf("%s: hybrid must never be stale, got %s", ratio, hStale)
		}
		if ratio == "1:1" && strings.HasPrefix(wStale, "0/") {
			t.Errorf("warehouse at 1:1 should see stale answers, got %s", wStale)
		}
		_ = hLat
	}
}

func TestE2Shape(t *testing.T) {
	tbl := E2ViewSelection(QuickScale())
	none := findRow(tbl, 0, "none")
	all := findRow(tbl, 0, "all")
	adv := findRow(tbl, 0, "advisor")
	if none < 0 || all < 0 || adv < 0 {
		t.Fatalf("rows:\n%s", tbl)
	}
	fNone := cellF(t, tbl, none, 1)
	fAll := cellF(t, tbl, all, 1)
	fAdv := cellF(t, tbl, adv, 1)
	// Materialize-all only fetches at materialization time; the advisor
	// lands between none and all.
	if !(fAll < fAdv && fAdv < fNone) {
		t.Errorf("fetches: none=%v advisor=%v all=%v (want all < advisor < none)", fNone, fAdv, fAll)
	}
	// The advisor adapts: at least 2 store changes (initial + shift).
	if cellF(t, tbl, adv, 3) < 2 {
		t.Errorf("advisor changes = %s", cell(tbl, adv, 3))
	}
}

func TestE3Shape(t *testing.T) {
	tbl := E3QueryCache(QuickScale())
	// Within each skew: bigger cache, higher hit rate, lower latency.
	for _, theta := range []string{"0.5", "0.9", "1.3"} {
		var rows []int
		for i, r := range tbl.Rows {
			if r[0] == theta {
				rows = append(rows, i)
			}
		}
		if len(rows) != 3 {
			t.Fatalf("theta %s rows = %d", theta, len(rows))
		}
		off, small, full := rows[0], rows[1], rows[2]
		if cellF(t, tbl, off, 2) != 0 {
			t.Errorf("cache off should have 0 hit rate")
		}
		if !(cellF(t, tbl, small, 2) <= cellF(t, tbl, full, 2)) {
			t.Errorf("theta %s: hit rate should grow with cache size", theta)
		}
		if !(cellF(t, tbl, full, 3) < cellF(t, tbl, off, 3)) {
			t.Errorf("theta %s: full cache should cut latency", theta)
		}
	}
	// Higher skew helps the small cache.
	smallLow, smallHigh := -1, -1
	for i, r := range tbl.Rows {
		if r[1] != "off" && r[1] != strconv.Itoa(len(tbl.Rows)) {
			if r[0] == "0.5" && smallLow < 0 && r[1] != "off" {
				smallLow = i
			}
			if r[0] == "1.3" && r[1] == tbl.Rows[1][1] {
				smallHigh = i
			}
		}
	}
	if smallLow >= 0 && smallHigh >= 0 {
		if cellF(t, tbl, smallHigh, 2) < cellF(t, tbl, smallLow, 2) {
			t.Errorf("higher skew should raise the small-cache hit rate")
		}
	}
}

func TestE4Shape(t *testing.T) {
	tbl := E4PartialResults(QuickScale())
	for _, row := range tbl.Rows {
		n, _ := strconv.Atoi(row[0])
		theory, _ := strconv.ParseFloat(row[2], 64)
		// Partial mode always answers.
		parts := strings.Split(row[4], "/")
		if parts[0] != parts[1] {
			t.Errorf("partial mode should answer all queries: %v", row)
		}
		// Average completeness is far above the all-up probability for
		// large N.
		comp, _ := strconv.ParseFloat(row[5], 64)
		if n >= 10 && comp <= theory {
			t.Errorf("completeness %v should beat P(all up) %v at N=%d", comp, theory, n)
		}
		if comp < 0.5 {
			t.Errorf("completeness %v suspiciously low: %v", comp, row)
		}
	}
	// Fail-policy success degrades as N grows at fixed p.
	firstN2 := findRow(tbl, 0, "2")
	lastN20 := findRow(tbl, 0, "20")
	okOf := func(i int) float64 {
		parts := strings.Split(cell(tbl, i, 3), "/")
		num, _ := strconv.ParseFloat(parts[0], 64)
		den, _ := strconv.ParseFloat(parts[1], 64)
		return num / den
	}
	if okOf(lastN20) > okOf(firstN2) {
		t.Errorf("fail-policy success should degrade with N: %v vs %v", okOf(firstN2), okOf(lastN20))
	}
}

func TestE5Shape(t *testing.T) {
	tbl := E5Pushdown(QuickScale())
	// At every selectivity, pushdown moves fewer rows.
	for _, sel := range []string{"0.010", "0.100", "0.500"} {
		var on, off float64 = -1, -1
		for _, row := range tbl.Rows {
			if row[1] != sel {
				continue
			}
			moved, _ := strconv.ParseFloat(row[2], 64)
			if row[0] == "pushdown on" {
				on = moved
			} else if row[0] == "pushdown off" {
				off = moved
			}
		}
		if on < 0 || off < 0 {
			t.Fatalf("missing rows for sel %s:\n%s", sel, tbl)
		}
		if on >= off {
			t.Errorf("sel %s: pushdown moved %v rows, no-pushdown %v", sel, on, off)
		}
	}
	// Index scan touches fewer rows than full scan.
	idx := findRow(tbl, 0, "index on tier")
	no := findRow(tbl, 0, "no index")
	if cellF(t, tbl, idx, 4) >= cellF(t, tbl, no, 4) {
		t.Errorf("index should reduce rows scanned:\n%s", tbl)
	}
}

func TestE6Shape(t *testing.T) {
	tbl := E6Cleaning(QuickScale())
	rows := map[string]int{}
	for i, r := range tbl.Rows {
		rows[r[0]] = i
	}
	mining := rows["flow + oracle (mining)"]
	extraction := rows["extraction (reuse)"]
	auto := rows["flow auto-only"]
	mp := rows["merge/purge w=5"]

	// Mining with the oracle reaches the best F1.
	if cellF(t, tbl, mining, 3) < cellF(t, tbl, auto, 3) {
		t.Errorf("oracle should not hurt F1:\n%s", tbl)
	}
	if cellF(t, tbl, mining, 3) < cellF(t, tbl, mp, 3) {
		t.Errorf("flow+oracle should beat merge/purge:\n%s", tbl)
	}
	// Extraction reproduces mining quality with zero questions.
	if cell(tbl, extraction, 5) != "0" {
		t.Errorf("extraction asked questions:\n%s", tbl)
	}
	if cellF(t, tbl, extraction, 3) < cellF(t, tbl, mining, 3)-1e-9 {
		t.Errorf("extraction should match mining F1:\n%s", tbl)
	}
	if cellF(t, tbl, extraction, 6) == 0 {
		t.Errorf("extraction should hit the concordance DB:\n%s", tbl)
	}
}

func TestE7Shape(t *testing.T) {
	tbl := E7LoadBalance(QuickScale())
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Cacheless throughput scales with the fleet: 4 instances beat 1.
	tp1 := cellF(t, tbl, 0, 3)
	tp4 := cellF(t, tbl, 2, 3)
	if tp4 <= tp1 {
		t.Errorf("4 instances (%.0f q/s) should beat 1 (%.0f q/s)", tp4, tp1)
	}
	// Every policy row at 4 instances keeps load roughly spread: no
	// instance takes the whole workload.
	for row := 2; row <= 4; row++ {
		if share := cell(tbl, row, 6); share == "100%" {
			t.Errorf("policy %s sent everything to one instance:\n%s", cell(tbl, row, 1), tbl)
		}
	}
	// With per-instance caches, cache-affinity's hit rate beats
	// round-robin's on the same zipf workload.
	rrHit := cellF(t, tbl, 5, 5)
	affHit := cellF(t, tbl, 6, 5)
	if affHit <= rrHit {
		t.Errorf("affinity hit rate %.0f%% should beat round-robin %.0f%%:\n%s", affHit, rrHit, tbl)
	}
}

func TestE9Shape(t *testing.T) {
	tbl := E9Hierarchy(QuickScale())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	answer := cell(tbl, 0, 4)
	for _, row := range tbl.Rows {
		if row[3] != "yes" {
			t.Errorf("pushdown must survive unfolding at depth %s:\n%s", row[0], tbl)
		}
		if row[4] != answer {
			t.Errorf("answer must be depth-independent:\n%s", tbl)
		}
	}
	// Unfold cost grows with depth but stays small (< 10ms at depth 8).
	if cellF(t, tbl, 3, 1) < cellF(t, tbl, 0, 1) {
		t.Errorf("deeper stacks should cost more to unfold:\n%s", tbl)
	}
	if cellF(t, tbl, 3, 1) > 10000 {
		t.Errorf("unfold cost exploded: %s µs", cell(tbl, 3, 1))
	}
}

func TestE8Runs(t *testing.T) {
	tbl := E8Algebra(QuickScale())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[2] == "" || r[2] == "0" {
			t.Errorf("zero throughput: %v", r)
		}
	}
}
