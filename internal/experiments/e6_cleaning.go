package experiments

import (
	"fmt"

	"repro/internal/clean"
	"repro/internal/concord"
	"repro/internal/lineage"
	"repro/internal/workload"
)

// truthOracle answers from the generator's ground truth — the scripted
// stand-in for §3.2's human disambiguation (see DESIGN.md substitutions).
type truthOracle struct {
	truth map[[2]string]bool
}

func (o *truthOracle) SamePair(a, b clean.Record) bool {
	ka, kb := a.Key(), b.Key()
	if ka > kb {
		ka, kb = kb, ka
	}
	return o.truth[[2]string{ka, kb}]
}

// e6Flow is the customer cleaning flow under test: translate the
// address-field mismatch, normalize names/addresses/phones, block on the
// city token of the address, and match on a weighted composite.
func e6Flow() *clean.Flow {
	return &clean.Flow{
		Name:      "customers",
		Translate: clean.TranslateAddressFields,
		Normalize: map[string]clean.Normalizer{
			"name":    clean.NormalizeName,
			"address": clean.NormalizeAddress,
			"phone":   clean.NormalizePhone,
		},
		BlockKey: func(r clean.Record) string {
			// Last token of the normalized address is the city name.
			addr := r.Get("address")
			for i := len(addr) - 1; i >= 0; i-- {
				if addr[i] == ' ' {
					return addr[i+1:]
				}
			}
			return addr
		},
		Matcher: clean.CompositeMatcher([]clean.FieldWeight{
			{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 2},
			{Field: "address", Matcher: clean.JaccardTokens, Weight: 1},
			{Field: "phone", Matcher: clean.LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.92,
		ReviewThreshold: 0.70,
	}
}

// E6Cleaning compares the paper's concordance-based two-phase cleaning
// (§3.2) with the merge/purge sorted-neighborhood baseline it cites
// ([Hernández & Stolfo]). Dataset: synthetic dirty customers across two
// sources with known duplicate pairs (typos, nicknames, abbreviations,
// missing phones, and the single-vs-multi-field address translation
// problem). Methods:
//
//   - merge/purge w=5, 2 keys: the batch baseline;
//   - flow, auto only: the declarative flow without a human;
//   - flow + oracle (mining): ambiguous pairs go to the "human";
//   - extraction (reuse): a re-run with no oracle — recorded decisions
//     reapply through the concordance database.
//
// Metrics: precision / recall / F1 against ground truth, pairs compared,
// oracle questions, concordance hits, trapped exceptions.
func E6Cleaning(s Scale) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Data cleaning: concordance-based flow vs merge/purge baseline",
		Header: []string{"method", "precision", "recall", "F1", "pairs compared",
			"oracle asked", "concordance hits", "exceptions"},
	}
	set := workload.DirtyCustomers(s.Customers, 0.3, 11)
	flow := e6Flow()

	// Baseline: merge/purge over pre-normalized records.
	var norm []clean.Record
	for _, r := range set.Records {
		w := clean.TranslateAddressFields(r)
		for f, fn := range flow.Normalize {
			if v := w.Fields[f]; v != "" {
				w.Fields[f] = fn(v)
			}
		}
		norm = append(norm, w)
	}
	mp := &clean.MergePurge{
		Keys: []func(clean.Record) string{
			func(r clean.Record) string { return r.Get("name") },
			func(r clean.Record) string { return r.Get("phone") },
		},
		Window:    5,
		Matcher:   flow.Matcher,
		Threshold: 0.92,
	}
	mpRes := mp.Run(norm)
	p, r, f1 := clean.PRF(clean.PairsOf(mpRes.Clusters), set.Truth)
	t.AddRow("merge/purge w=5", p, r, f1, mpRes.PairsCompared, 0, 0, 0)

	// Flow without oracle.
	cdb1 := concord.New()
	auto, err := flow.Run(set.Records, cdb1, nil, nil)
	if err != nil {
		panic(err)
	}
	p, r, f1 = clean.PRF(clean.PairsOf(auto.Clusters), set.Truth)
	t.AddRow("flow auto-only", p, r, f1, auto.PairsCompared, 0, auto.ConcordanceHits, len(auto.Exceptions))

	// Mining phase with the oracle.
	cdb := concord.New()
	log := lineage.New()
	oracle := &clean.BudgetedOracle{Inner: &truthOracle{truth: set.Truth}, Budget: 1 << 20}
	mining, err := flow.Run(set.Records, cdb, oracle, log)
	if err != nil {
		panic(err)
	}
	p, r, f1 = clean.PRF(clean.PairsOf(mining.Clusters), set.Truth)
	t.AddRow("flow + oracle (mining)", p, r, f1, mining.PairsCompared,
		mining.OracleAsked, mining.ConcordanceHits, len(mining.Exceptions))

	// Extraction phase: no oracle, decisions reapplied.
	extraction, err := flow.Run(set.Records, cdb, nil, log)
	if err != nil {
		panic(err)
	}
	p, r, f1 = clean.PRF(clean.PairsOf(extraction.Clusters), set.Truth)
	t.AddRow("extraction (reuse)", p, r, f1, extraction.PairsCompared,
		extraction.OracleAsked, extraction.ConcordanceHits, len(extraction.Exceptions))

	reuse := 0.0
	if mining.OracleAsked > 0 {
		reuse = float64(extraction.ConcordanceHits) / float64(mining.OracleAsked+mining.AutoMatches)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("decision-reuse: extraction re-answered %d pairs from the concordance DB (%.0f%% of mining determinations) with zero questions",
			extraction.ConcordanceHits, reuse*100),
		fmt.Sprintf("lineage: %d events recorded, human decisions included", log.Len()),
		"merge/purge quality depends on key choice and window; the flow's blocking compares all same-city pairs")
	return t
}
