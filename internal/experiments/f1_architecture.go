package experiments

import (
	"context"
	"fmt"
	"strings"

	nimble "repro"
	"repro/internal/workload"
)

// F1Architecture reproduces Figure 1 (the only figure in the paper): it
// assembles every component the architecture diagram shows — sources of
// three kinds behind wrappers, the metadata server with hierarchical
// mediated schemas, the integration engine with compiler/optimizer/
// executor, materialization, caching, cleaning functions, lenses, and
// load-balanced instances — and drives one query through the whole
// stack, reporting what each layer did.
func F1Architecture(s Scale) *Table {
	t := &Table{
		ID:     "F1",
		Title:  "Architecture walk-through (Figure 1): one query through every layer",
		Header: []string{"layer", "evidence"},
	}
	sys := nimble.New(nimble.Config{Instances: 2, CacheEntries: 16})

	// Sources: relational x2, XML feed, hierarchical directory.
	crm := workload.CustomerDB("crm", s.Customers/2, 2, 21)
	if err := sys.AddRelationalSource("crmdb", crm); err != nil {
		panic(err)
	}
	sales := workload.CustomerDB("sales", s.Customers/2, 2, 22)
	if err := sys.AddRelationalSource("salesdb", sales); err != nil {
		panic(err)
	}
	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>escalation</subject></ticket>
	</tickets>`); err != nil {
		panic(err)
	}
	dir, err := sys.AddDirectorySource("staff", "org")
	if err != nil {
		panic(err)
	}
	dir.Put("support/lead", map[string]string{"name": "Eva"})

	// Metadata server: hierarchical mediated schemas.
	mustDefineCustomerSchema(sys)
	if err := sys.DefineSchema("goldcust", `
		WHERE <cust><who>$w</who><where>$c</where><tier>"gold"</tier></cust> IN "customers"
		CONSTRUCT <vip><name>$w</name><city>$c</city></vip>`); err != nil {
		panic(err)
	}

	// Lens front end.
	if err := sys.PublishLens(&nimble.Lens{
		Name:    "vips",
		Title:   "Gold customers",
		Queries: []string{`WHERE <vip><name>$n</name><city>$c</city></vip> IN "goldcust", $c = "${city}" CONSTRUCT <hit><name>$n</name></hit>`},
		Params:  []nimble.LensParam{{Name: "city", Required: true}},
	}); err != nil {
		panic(err)
	}

	ctx := context.Background()
	q := `WHERE <vip><name>$n</name><city>$c</city></vip> IN "goldcust", $c = "Seattle" CONSTRUCT <hit>$n</hit>`
	res, err := sys.Query(ctx, q)
	if err != nil {
		panic(err)
	}

	t.AddRow("sources", fmt.Sprintf("%d registered: %s", len(sys.Sources()), strings.Join(sys.Sources(), ", ")))
	t.AddRow("metadata server", fmt.Sprintf("schemas %s (goldcust is a view over customers — hierarchical GAV)", strings.Join(sys.Schemas(), ", ")))
	t.AddRow("mediator", fmt.Sprintf("%d rewrite(s), two unfolding levels collapsed to source patterns", res.Stats.Rewrites))
	pushed := 0
	for _, e := range res.Stats.Explain {
		if strings.Contains(e, "SELECT") {
			pushed++
		}
	}
	t.AddRow("compiler", fmt.Sprintf("%d SQL fragment(s) generated, e.g. %q", pushed, firstSQL(res.Stats.Explain)))
	t.AddRow("executor", fmt.Sprintf("%d source fetches, %d tuples through the algebra", res.Stats.Fetches, res.Stats.TuplesEmitted))
	t.AddRow("results", fmt.Sprintf("%d gold customers in Seattle, complete=%v", len(res.Values), res.Complete))

	// Cache layer.
	if _, err := sys.Query(ctx, q); err != nil {
		panic(err)
	}
	t.AddRow("query cache", fmt.Sprintf("repeat query: %d hit(s)", sys.CacheStats().Hits))

	// Materialization layer.
	if err := sys.Materialize(ctx, "goldcust"); err != nil {
		panic(err)
	}
	t.AddRow("materialization", fmt.Sprintf("goldcust stored locally: %v", sys.Materialized()))

	// Lens + device formatting.
	html, err := sys.RenderLens(ctx, "vips", map[string]string{"city": "Seattle"}, nimble.DeviceWeb, "")
	if err != nil {
		panic(err)
	}
	t.AddRow("lens front end", fmt.Sprintf("web rendering %d bytes of HTML", len(html)))

	// Dynamic cleaning functions inside a query.
	res2, err := sys.Query(ctx, `
		WHERE <cust><who>$w</who></cust> IN "customers", normalize_name($w) = normalize_name(" DR. " + $w)
		CONSTRUCT <ok>$w</ok>`)
	if err != nil {
		panic(err)
	}
	t.AddRow("dynamic cleaning", fmt.Sprintf("normalize_name() evaluated in-query over %d customers", len(res2.Values)))

	// Load balancing.
	loads := sys.Cluster().Loads()
	t.AddRow("load balancing", fmt.Sprintf("%d engine instances, per-instance queries %v", sys.Instances(), loads))
	return t
}

func firstSQL(explain []string) string {
	for _, e := range explain {
		if i := strings.Index(e, "SELECT"); i >= 0 {
			s := e[i:]
			if len(s) > 60 {
				s = s[:57] + "..."
			}
			return s
		}
	}
	return "(none)"
}
