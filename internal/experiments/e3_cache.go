package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
)

// E3QueryCache measures the query-result cache of §3.3/§4 ([Adali et
// al.]'s mediator caching): a Zipf-skewed query stream over a remote
// source at three skews and three cache sizes. Metrics: hit rate and
// mean latency over a simulated 2 ms/request network.
func E3QueryCache(s Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Query caching: hit rate and latency vs cache size and skew",
		Header: []string{"zipf theta", "cache entries", "hit rate", "mean latency (ms)"},
	}
	const latency = 2 * time.Millisecond
	nCities := len(workload.Cities())
	for _, theta := range []float64{0.5, 0.9, 1.3} {
		for _, size := range []int{0, nCities / 3, nCities} {
			sys := nimble.New(nimble.Config{CacheEntries: size})
			db := workload.CustomerDB("crm", s.Customers, 1, 3)
			sim := sources.NewNetworkSim(sources.NewRelationalSource("crmdb", db), latency, 1.0, 3)
			if err := sys.AddSource(sim); err != nil {
				panic(err)
			}
			mustDefineCustomerSchema(sys)

			queries := workload.CityQueries(s.Queries, theta, 7)
			ctx := context.Background()
			start := time.Now()
			for _, q := range queries {
				if _, err := sys.Query(ctx, q); err != nil {
					panic(err)
				}
			}
			elapsed := time.Since(start)
			st := sys.CacheStats()
			hitRate := st.HitRate()
			label := fmt.Sprintf("%d", size)
			if size == 0 {
				label = "off"
				hitRate = 0
			}
			t.AddRow(
				strings.TrimRight(fmt.Sprintf("%.1f", theta), "0"),
				label,
				hitRate,
				float64(elapsed.Microseconds())/float64(len(queries))/1000,
			)
		}
	}
	t.Notes = append(t.Notes,
		"higher skew concentrates the stream on few queries, so small caches already pay off",
		"a cache covering the whole template space approaches zero remote traffic after warmup")
	return t
}
