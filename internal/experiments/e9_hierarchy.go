package experiments

import (
	"context"
	"fmt"
	"time"

	nimble "repro"
	"repro/internal/mediator"
	"repro/internal/workload"
	"repro/internal/xmlql"
)

// E9Hierarchy measures the cost of hierarchical schema composition (§2:
// "we can define successive schemas as views over other underlying
// schemas ... it can be done in an incremental fashion"). A stack of D
// mediated schemas, each a view over the previous, sits over one
// relational source; the query runs against the top. Metrics: unfold
// time (the per-query rewriting overhead incremental integration adds),
// end-to-end latency, and whether the predicate still reaches the
// source as SQL after D levels of unfolding.
func E9Hierarchy(s Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Hierarchical schema composition: per-query cost vs depth",
		Header: []string{"depth", "unfold (µs)", "query (ms)", "pushdown survives", "answer rows"},
	}
	for _, depth := range []int{1, 2, 4, 8} {
		sys := nimble.New(nimble.Config{})
		db := workload.CustomerDB("crm", s.Customers, 0, 31)
		if err := sys.AddRelationalSource("crmdb", db); err != nil {
			panic(err)
		}
		// Level 1 over the source; levels 2..depth each rename the
		// schema's vocabulary — the kind of per-department re-exposure
		// §2 describes.
		if err := sys.DefineSchema("l1", `
			WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
			CONSTRUCT <rec1><f1>$n</f1><g1>$c</g1></rec1>`); err != nil {
			panic(err)
		}
		for d := 2; d <= depth; d++ {
			view := fmt.Sprintf(`
				WHERE <rec%d><f%d>$n</f%d><g%d>$c</g%d></rec%d> IN "l%d"
				CONSTRUCT <rec%d><f%d>$n</f%d><g%d>$c</g%d></rec%d>`,
				d-1, d-1, d-1, d-1, d-1, d-1, d-1, d, d, d, d, d, d)
			if err := sys.DefineSchema(fmt.Sprintf("l%d", d), view); err != nil {
				panic(err)
			}
		}
		top := fmt.Sprintf("l%d", depth)
		q := fmt.Sprintf(`WHERE <rec%d><f%d>$n</f%d><g%d>$c</g%d></rec%d> IN "%s", $c = "Seattle"
			CONSTRUCT <r>$n</r>`, depth, depth, depth, depth, depth, depth, top)

		// Unfold cost in isolation.
		parsed := xmlql.MustParse(q)
		cat := sys.Engine(0).Catalog()
		const unfoldRuns = 50
		start := time.Now()
		for i := 0; i < unfoldRuns; i++ {
			if _, err := mediator.Unfold(cat, parsed); err != nil {
				panic(err)
			}
		}
		unfoldUS := float64(time.Since(start).Microseconds()) / unfoldRuns

		// End-to-end.
		ctx := context.Background()
		const queryRuns = 10
		var res *nimble.Result
		var err error
		qStart := time.Now()
		for i := 0; i < queryRuns; i++ {
			res, err = sys.Query(ctx, q)
			if err != nil {
				panic(err)
			}
		}
		queryMS := float64(time.Since(qStart).Microseconds()) / queryRuns / 1000

		pushed := "no"
		for _, line := range res.Stats.Explain {
			if containsFold(line, "Seattle") && containsFold(line, "SELECT") {
				pushed = "yes"
			}
		}
		t.AddRow(depth, fmt.Sprintf("%.0f", unfoldUS), queryMS, pushed, len(res.Values))
	}
	t.Notes = append(t.Notes,
		"unfolding collapses the whole stack into one SQL fragment: the predicate reaches the source at every depth",
		"per-query rewriting cost grows roughly linearly with depth and stays microseconds — incremental integration is free at query time")
	return t
}
