package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
)

// e7Run is one E7 configuration: a routing policy over a fleet size,
// with or without per-instance result caches.
type e7Run struct {
	instances int
	policy    string
	perCache  bool
}

// E7LoadBalance measures §2.1's scalability claim: "load balancing is
// provided; multiple instances of the integration engine can be run
// simultaneously on one or more servers". It sweeps the cluster's
// routing policies over fleet sizes: bounded per-instance capacity
// (2 concurrent queries), clients far exceeding it, and a simulated
// 2 ms source round trip per query. The cacheless rows show throughput
// scaling with instances; the per-instance-cache rows show why the
// cache-affinity policy exists — rendezvous-hashing repeated queries to
// one owner keeps its cache warm, where round-robin spreads the same
// workload across every cache and pays the cold misses repeatedly.
func E7LoadBalance(s Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Routing policy × instances (bounded capacity, zipf query mix)",
		Header: []string{"instances", "policy", "cache", "throughput (q/s)", "p95 (ms)", "hit rate", "max instance share"},
	}
	const clients = 8
	const capacity = 2
	const latency = 2 * time.Millisecond
	total := s.Queries

	runs := []e7Run{
		{1, "least", false},
		{2, "least", false},
		{4, "least", false},
		{4, "rr", false},
		{4, "p2c", false},
		{4, "rr", true},
		{4, "affinity", true},
	}
	for _, run := range runs {
		cfg := nimble.Config{
			Instances:        run.instances,
			RoutePolicy:      run.policy,
			InstanceCapacity: capacity,
		}
		if run.perCache {
			cfg.CacheEntries = 256
			cfg.CachePerInstance = true
		}
		sys := nimble.New(cfg)
		db := workload.CustomerDB("crm", s.Customers/2, 1, 9)
		sim := sources.NewNetworkSim(sources.NewRelationalSource("crmdb", db), latency, 1.0, 9)
		if err := sys.AddSource(sim); err != nil {
			panic(err)
		}
		mustDefineCustomerSchema(sys)

		// Zipf-skewed repeats: the workload where affinity's warm caches
		// pay off.
		queries := workload.CityQueries(total, 0.9, 13)
		ctx := context.Background()
		if run.perCache {
			// Warm each distinct query once before timing, so the hit
			// rates compare steady-state routing behavior (where does a
			// repeat land relative to the cache that holds it?) instead
			// of cold-start races — eight clients missing concurrently on
			// the same hot key made the margin noisy on small machines.
			// Both cached rows pay the same warm-up misses.
			seen := map[string]bool{}
			for _, q := range queries {
				if seen[q] {
					continue
				}
				seen[q] = true
				if _, err := sys.Query(ctx, q); err != nil {
					panic(err)
				}
			}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		durs := make([]time.Duration, 0, total)
		work := make(chan string)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			//lint:ignore ctxbefore benchmark harness drives a fixed closed workload to completion; there is no cancellation to observe
			go func() {
				defer wg.Done()
				for q := range work {
					qs := time.Now()
					if _, err := sys.Query(ctx, q); err != nil {
						panic(err)
					}
					mu.Lock()
					durs = append(durs, time.Since(qs))
					mu.Unlock()
				}
			}()
		}
		for _, q := range queries {
			work <- q
		}
		close(work)
		wg.Wait()
		elapsed := time.Since(start)

		loads := sys.Cluster().Loads()
		var sum, max int64
		for _, l := range loads {
			sum += l
			if l > max {
				max = l
			}
		}
		share := 0.0
		if sum > 0 {
			share = float64(max) / float64(sum)
		}
		cacheCol := "off"
		hitCol := "-"
		if run.perCache {
			cacheCol = "per-inst"
			hitCol = fmt.Sprintf("%.0f%%", sys.CacheStats().HitRate()*100)
		}
		t.AddRow(run.instances, run.policy, cacheCol,
			float64(total)/elapsed.Seconds(),
			float64(p95(durs).Microseconds())/1000,
			hitCol,
			fmt.Sprintf("%.0f%%", share*100))
	}
	t.Notes = append(t.Notes,
		"8 clients, per-instance capacity 2, 2 ms simulated source latency, zipf(0.9) city queries",
		"cacheless rows: throughput scales with instances; max share near 1/instances shows even spread",
		"cached rows: affinity pins each repeated query to its rendezvous owner, so its hit rate beats round-robin spreading the same keys over every cache")
	return t
}

// p95 is the 95th-percentile duration.
func p95(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
