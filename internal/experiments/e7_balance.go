package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
)

// E7LoadBalance measures §2.1's scalability claim: "load balancing is
// provided; multiple instances of the integration engine can be run
// simultaneously on one or more servers". Each instance has a bounded
// per-process capacity (2 concurrent queries), clients far exceed it,
// and every query pays a simulated 2 ms source round trip; throughput
// should scale with the instance count until clients saturate.
func E7LoadBalance(s Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Throughput vs engine instances (bounded per-instance capacity)",
		Header: []string{"instances", "clients", "queries", "throughput (q/s)", "max instance share"},
	}
	const clients = 8
	const capacity = 2
	const latency = 2 * time.Millisecond
	total := s.Queries

	for _, instances := range []int{1, 2, 4} {
		sys := nimble.New(nimble.Config{Instances: instances})
		db := workload.CustomerDB("crm", s.Customers/2, 1, 9)
		sim := sources.NewNetworkSim(sources.NewRelationalSource("crmdb", db), latency, 1.0, 9)
		if err := sys.AddSource(sim); err != nil {
			panic(err)
		}
		mustDefineCustomerSchema(sys)
		sys.LoadBalancer().SetCapacity(capacity)

		queries := workload.CityQueries(total, 0.9, 13)
		var wg sync.WaitGroup
		work := make(chan string)
		ctx := context.Background()
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			//lint:ignore ctxbefore benchmark harness drives a fixed closed workload to completion; there is no cancellation to observe
			go func() {
				defer wg.Done()
				for q := range work {
					if _, err := sys.Query(ctx, q); err != nil {
						panic(err)
					}
				}
			}()
		}
		for _, q := range queries {
			work <- q
		}
		close(work)
		wg.Wait()
		elapsed := time.Since(start)

		loads := sys.LoadBalancer().Loads()
		var sum, max int64
		for _, l := range loads {
			sum += l
			if l > max {
				max = l
			}
		}
		share := 0.0
		if sum > 0 {
			share = float64(max) / float64(sum)
		}
		t.AddRow(instances, clients, total,
			float64(total)/elapsed.Seconds(),
			fmt.Sprintf("%.0f%%", share*100))
	}
	t.Notes = append(t.Notes,
		"per-instance capacity 2 concurrent queries; sources add 2 ms latency per fetch",
		"max instance share near 1/instances shows the least-loaded dispatcher spreading work evenly")
	return t
}
