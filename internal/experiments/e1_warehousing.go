package experiments

import (
	"context"
	"fmt"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
	"repro/internal/xmldm"
)

// E1WarehousingVsVirtual reproduces the §3.3 tradeoff: "the main
// advantage of the warehousing approach is the performance of query
// processing. The main disadvantages are that the data may not be
// fresh"; virtual querying is fresh but pays "a considerable performance
// penalty because we need to contact the sources for every query"; the
// paper's compound architecture materializes views over the mediated
// schema with on-demand refresh and should get (most of) both.
//
// Workload: interleaved queries and source-side inserts at swept
// query:update ratios. Configurations: virtual, warehouse (periodic
// refresh every 50 operations), hybrid (materialized view, refreshed on
// demand when the source changed). Metrics: mean query latency over a
// simulated 8 ms/request network (a WAN-ish round trip; at LAN
// latencies local pattern matching over a large materialized document
// rivals the pushdown path — a crossover EXPERIMENTS.md discusses), and
// the fraction of queries that returned stale answers.
func E1WarehousingVsVirtual(s Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Warehousing vs virtual vs hybrid (latency / freshness)",
		Header: []string{"q:u ratio", "config", "mean latency (ms)", "stale answers", "source fetches"},
	}
	ratios := []struct {
		name    string
		queries int // queries per update
	}{
		{"1:1", 1}, {"5:1", 5}, {"20:1", 20},
	}
	const latency = 8 * time.Millisecond

	for _, ratio := range ratios {
		for _, config := range []string{"virtual", "warehouse", "hybrid"} {
			sys := nimble.New(nimble.Config{})
			db := workload.CustomerDB("crm", s.Customers, 2, 1)
			rel := sources.NewRelationalSource("crmdb", db)
			sim := sources.NewNetworkSim(rel, latency, 1.0, 1)
			if err := sys.AddSource(sim); err != nil {
				panic(err)
			}
			mustDefineCustomerSchema(sys)
			ctx := context.Background()

			if config != "virtual" {
				if err := sys.Materialize(ctx, "customers"); err != nil {
					panic(err)
				}
			}

			liveCount := func() int {
				res := db.MustExec(`SELECT count(*) FROM customers WHERE city = 'Seattle'`)
				n, _ := xmldm.ToInt(res.Rows[0][0])
				return int(n)
			}
			query := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <hit>$w</hit>`

			nextID := 1_000_000
			dirty := false
			ops := 0
			stale := 0
			queries := 0
			var total time.Duration
			for queries < s.Queries {
				// Update phase: one insert per `ratio.queries` queries.
				if ops%(ratio.queries+1) == 0 {
					db.MustExec(fmt.Sprintf(`INSERT INTO customers VALUES (%d, 'New Customer', 'Seattle', 'bronze')`, nextID))
					nextID++
					dirty = true
					ops++
					continue
				}
				ops++
				// Periodic refresh for the warehouse config.
				if config == "warehouse" && ops%50 == 0 {
					if err := sys.Refresh(ctx, "customers"); err != nil {
						panic(err)
					}
					dirty = false
				}
				// On-demand refresh for the hybrid config: the paper's
				// "refreshed on demand" — the system knows the source
				// changed and refreshes before answering.
				if config == "hybrid" && dirty {
					if err := sys.Refresh(ctx, "customers"); err != nil {
						panic(err)
					}
					dirty = false
				}
				start := time.Now()
				res, err := sys.Query(ctx, query)
				if err != nil {
					panic(err)
				}
				total += time.Since(start)
				queries++
				if len(res.Values) != liveCount() {
					stale++
				}
			}
			calls, _, _ := sim.Stats()
			t.AddRow(ratio.name, config,
				float64(total.Microseconds())/float64(queries)/1000,
				fmt.Sprintf("%d/%d", stale, queries),
				calls)
		}
	}
	t.Notes = append(t.Notes,
		"virtual: fresh but pays the network on every query",
		"warehouse: fast but stale between periodic refreshes",
		"hybrid: materialized view over the mediated schema, refreshed on demand (§3.3)")
	return t
}

func mustDefineCustomerSchema(sys *nimble.System) {
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		panic(err)
	}
}
