package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	nimble "repro"
	"repro/internal/sources"
	"repro/internal/workload"
)

// Bench9Schema names the BENCH_9.json layout so future runs can detect
// an incompatible report before comparing numbers. Bump on any field
// change.
const Bench9Schema = "nimble/bench9/v1"

// Bench9Report is the machine-readable payload `nimble-bench -bench9`
// writes to BENCH_9.json: one run per parallelism degree over the E7
// city workload, plus the serial-vs-parallel ratios future PRs compare
// against. The schema is documented in EXPERIMENTS.md.
type Bench9Report struct {
	Schema     string      `json:"schema"`
	Scale      string      `json:"scale"` // "quick" or "full"
	Customers  int         `json:"customers"`
	Queries    int         `json:"queries"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Runs       []Bench9Run `json:"runs"`
	// SpeedupP50 and SpeedupRows compare the last run (highest
	// parallelism) against the first (serial): serial p50 / parallel
	// p50, and parallel rows/sec / serial rows/sec. >1 means the
	// parallel plans won; near 1 is expected on a single-core runner.
	SpeedupP50  float64 `json:"speedup_p50"`
	SpeedupRows float64 `json:"speedup_rows_per_sec"`
}

// Bench9Run is one parallelism degree's measurements.
type Bench9Run struct {
	Parallelism int     `json:"parallelism"`
	Queries     int     `json:"queries"`
	Rows        int64   `json:"rows"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	WallMs      float64 `json:"wall_ms"`
}

// bench9Degrees: serial baseline vs a fixed fan-out. The degree is
// fixed (not GOMAXPROCS) so the parallel plan shape is exercised even
// on one core and reports stay comparable across runners.
var bench9Degrees = []int{1, 4}

// Bench9Parallel measures intra-query parallel execution on the E7
// workload: zipf-skewed city queries over a simulated 2 ms-latency
// relational source, one sequential client (intra-query speedup, not
// throughput — E7 covers inter-query scaling). Each degree gets its own
// system so no cache or fetch state leaks between runs.
func Bench9Parallel(s Scale, scaleLabel string) *Bench9Report {
	rep := &Bench9Report{
		Schema:     Bench9Schema,
		Scale:      scaleLabel,
		Customers:  s.Customers,
		Queries:    s.Queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	const latency = 2 * time.Millisecond
	queries := workload.CityQueries(s.Queries, 0.9, 13)
	ctx := context.Background()

	for _, par := range bench9Degrees {
		sys := nimble.New(nimble.Config{Parallelism: par})
		db := workload.CustomerDB("crm", s.Customers/2, 1, 9)
		sim := sources.NewNetworkSim(sources.NewRelationalSource("crmdb", db), latency, 1.0, 9)
		if err := sys.AddSource(sim); err != nil {
			panic(err)
		}
		mustDefineCustomerSchema(sys)

		var rows int64
		durs := make([]time.Duration, 0, len(queries))
		start := time.Now()
		for _, q := range queries {
			qs := time.Now()
			res, err := sys.Query(ctx, q)
			if err != nil {
				panic(err)
			}
			durs = append(durs, time.Since(qs))
			rows += int64(len(res.Values))
		}
		elapsed := time.Since(start)
		sys.Close()

		rep.Runs = append(rep.Runs, Bench9Run{
			Parallelism: par,
			Queries:     len(queries),
			Rows:        rows,
			P50Ms:       float64(pctl(durs, 50).Microseconds()) / 1000,
			P95Ms:       float64(pctl(durs, 95).Microseconds()) / 1000,
			RowsPerSec:  float64(rows) / elapsed.Seconds(),
			WallMs:      float64(elapsed.Microseconds()) / 1000,
		})
	}

	first, last := rep.Runs[0], rep.Runs[len(rep.Runs)-1]
	if last.P50Ms > 0 {
		rep.SpeedupP50 = first.P50Ms / last.P50Ms
	}
	if first.RowsPerSec > 0 {
		rep.SpeedupRows = last.RowsPerSec / first.RowsPerSec
	}
	return rep
}

// Table renders the report as a nimble-bench table for the console.
func (r *Bench9Report) Table() *Table {
	t := &Table{
		ID:     "B9",
		Title:  "Intra-query parallelism: latency and rows/sec vs degree (E7 city workload)",
		Header: []string{"parallelism", "p50 (ms)", "p95 (ms)", "rows/sec", "wall (ms)"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Parallelism, run.P50Ms, run.P95Ms, run.RowsPerSec, run.WallMs)
	}
	t.Notes = append(t.Notes,
		"one sequential client, 2 ms simulated source latency, zipf(0.9) city queries",
		"speedups (last vs first run): p50 "+trimFloat(r.SpeedupP50)+"x, rows/sec "+trimFloat(r.SpeedupRows)+"x",
		"written to BENCH_9.json by `nimble-bench -bench9`; schema in EXPERIMENTS.md")
	return t
}

func trimFloat(f float64) string { return fmt.Sprintf("%.2f", f) }

// pctl is the p-th percentile duration (nearest-rank).
func pctl(durs []time.Duration, p int) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) * p) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
