package experiments

import (
	"context"
	"fmt"
	"math"

	nimble "repro"
	"repro/internal/sources"
)

// E4PartialResults reproduces §3.4: "in the worst case, there may be so
// many data sources that the probability that they are all available
// simultaneously is nearly zero"; the system must "behave intelligently
// in this situation by providing partial results, and indicating to the
// user that the results were not complete". One mediated schema unions N
// sources with per-source availability p. Under the fail policy a query
// succeeds only when every source answers; under the partial policy it
// always answers, with measured average completeness.
func E4PartialResults(s Scale) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Partial results under source unavailability",
		Header: []string{"sources", "availability", "P(all up) theory",
			"fail-policy success", "partial answers", "avg completeness"},
	}
	for _, n := range []int{2, 5, 10, 20} {
		for _, p := range []float64{0.90, 0.99} {
			runs := s.Trials * 10
			theory := math.Pow(p, float64(n))

			build := func(failPolicy bool, seed int64) *nimble.System {
				sys := nimble.New(nimble.Config{FailOnUnavailable: failPolicy})
				for i := 0; i < n; i++ {
					name := fmt.Sprintf("src%d", i)
					inner, err := sources.NewXMLSource(name,
						fmt.Sprintf(`<%s><row><v>%d</v></row></%s>`, name, i, name))
					if err != nil {
						panic(err)
					}
					if err := sys.AddSource(sources.NewNetworkSim(inner, 0, p, seed+int64(i))); err != nil {
						panic(err)
					}
					if err := sys.DefineSchema("all", fmt.Sprintf(`
						WHERE <row><v>$x</v></row> IN "%s" CONSTRUCT <u><n>$x</n></u>`, name)); err != nil {
						panic(err)
					}
				}
				return sys
			}
			q := `WHERE <u><n>$x</n></u> IN "all" CONSTRUCT <r>$x</r>`
			ctx := context.Background()

			failOK := 0
			sysF := build(true, 100)
			for i := 0; i < runs; i++ {
				res, err := sysF.Query(ctx, q)
				if err == nil && res.Complete {
					failOK++
				}
			}

			partialOK := 0
			completeness := 0.0
			sysP := build(false, 100)
			for i := 0; i < runs; i++ {
				res, err := sysP.Query(ctx, q)
				if err != nil {
					continue
				}
				partialOK++
				answered := n - len(res.FailedSources)
				completeness += float64(answered) / float64(n)
			}
			t.AddRow(n, p, theory,
				fmt.Sprintf("%d/%d", failOK, runs),
				fmt.Sprintf("%d/%d", partialOK, runs),
				completeness/float64(runs))
		}
	}
	t.Notes = append(t.Notes,
		"fail-policy success tracks p^N and collapses as N grows — §3.4's motivation",
		"partial policy always answers; completeness stays near p and results carry the incomplete flag")
	return t
}
