// Control-flow graphs for one function body. The old analyzers
// approximated paths by source position ("a Finish between the creation
// and the return"); the CFG makes paths explicit — branch, loop, defer,
// and panic edges — so the dataflow analyses in dataflow.go can prove a
// fact along every path instead of guessing along the straight line.
//
// Granularity: blocks hold simple statements and the expressions a
// branch evaluates (an if condition, a range operand, a switch tag) in
// execution order. Compound statements never appear as block nodes —
// the single exception is *ast.RangeStmt, kept whole in its head block
// so analyses can see the key/value bindings; its Body is walked via
// the graph, not the node (see visitNode).
//
// Edges carry the branch condition that selects them (Cond, with Negate
// set on the false edge), so an analysis can refine facts per edge —
// "on the err != nil edge this Open did not succeed" is what makes the
// acquire/release analyses path-sensitive rather than merely
// path-insensitive over a graph.
package analysis

import (
	"go/ast"
)

// Edge is one control-flow successor link.
type Edge struct {
	To *Block
	// Cond, when non-nil, is the condition the branch evaluated; the
	// edge is taken when Cond is true, or false if Negate is set.
	Cond   ast.Expr
	Negate bool
}

// Block is one basic block.
type Block struct {
	Index int
	Kind  string     // builder's label, for debugging and tests
	Nodes []ast.Node // simple statements and evaluated expressions, in order
	Succs []Edge
	// Loop reports that the block executes inside a for/range body
	// (used by the close-the-opened-prefix idiom detection).
	Loop bool
}

// predEdge is an incoming edge, kept per block for the dataflow solver.
type predEdge struct {
	From *Block
	Edge Edge
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the synthetic join of every normal exit: explicit returns
	// and falling off the end of the body. Deferred calls run on edges
	// into Exit.
	Exit *Block
	// PanicExit is the synthetic join of explicit panic(...) statements.
	// Only deferred calls run on edges into PanicExit.
	PanicExit *Block
	Blocks    []*Block

	preds map[*Block][]predEdge
}

// Preds returns the incoming edges of b.
func (g *CFG) Preds(b *Block) []predEdge { return g.preds[b] }

// NewCFG builds the graph for a function body (a FuncDecl's or
// FuncLit's Body).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{preds: make(map[*Block][]predEdge)},
		labelBreak: make(map[string]*Block),
		labelCont:  make(map[string]*Block),
		labelGoto:  make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.PanicExit = b.newBlock("panic")
	b.cur = b.cfg.Entry
	b.stmt(body)
	if b.cur != nil {
		b.link(b.cur, Edge{To: b.cfg.Exit})
	}
	return b.cfg
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil when the current point is unreachable

	loopDepth int
	breakT    []*Block // innermost-last break targets
	contT     []*Block // innermost-last continue targets
	fallT     []*Block // fallthrough target inside a switch case

	pendingLabel string
	labelBreak   map[string]*Block
	labelCont    map[string]*Block
	labelGoto    map[string]*Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind, Loop: b.loopDepth > 0}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from *Block, e Edge) {
	from.Succs = append(from.Succs, e)
	b.cfg.preds[e.To] = append(b.cfg.preds[e.To], predEdge{From: from, Edge: e})
}

// ensure returns the current block, materializing an unreachable one for
// dead code (statements after a return) so its nodes still exist in the
// graph; with no predecessors its facts stay at the solver's
// "unreached" element.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending loop/switch label.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.List {
			b.stmt(inner)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		cond := b.ensure()
		then := b.newBlock("if.then")
		b.link(cond, Edge{To: then, Cond: st.Cond})
		after := b.newBlock("if.done")
		if st.Else != nil {
			els := b.newBlock("if.else")
			b.link(cond, Edge{To: els, Cond: st.Cond, Negate: true})
			b.cur = then
			b.stmt(st.Body)
			if b.cur != nil {
				b.link(b.cur, Edge{To: after})
			}
			b.cur = els
			b.stmt(st.Else)
			if b.cur != nil {
				b.link(b.cur, Edge{To: after})
			}
		} else {
			b.link(cond, Edge{To: after, Cond: st.Cond, Negate: true})
			b.cur = then
			b.stmt(st.Body)
			if b.cur != nil {
				b.link(b.cur, Edge{To: after})
			}
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock("for.head")
		b.link(b.ensure(), Edge{To: head})
		after := b.newBlock("for.done")
		b.loopDepth++
		body := b.newBlock("for.body")
		cont := head
		if st.Post != nil {
			cont = b.newBlock("for.post")
		}
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			b.link(head, Edge{To: body, Cond: st.Cond})
			b.link(head, Edge{To: after, Cond: st.Cond, Negate: true})
		} else {
			b.link(head, Edge{To: body})
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmt(st.Body)
		if b.cur != nil {
			b.link(b.cur, Edge{To: cont})
		}
		if st.Post != nil {
			b.cur = cont
			b.stmt(st.Post)
			if b.cur != nil {
				b.link(b.cur, Edge{To: head})
			}
		}
		b.popLoop(label)
		b.loopDepth--
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.link(b.ensure(), Edge{To: head})
		// The whole RangeStmt sits in the head block so analyses see the
		// key/value bindings; visitNode prunes its Body.
		head.Nodes = append(head.Nodes, st)
		after := b.newBlock("range.done")
		b.loopDepth++
		body := b.newBlock("range.body")
		b.link(head, Edge{To: body})
		b.link(head, Edge{To: after})
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(st.Body)
		if b.cur != nil {
			b.link(b.cur, Edge{To: head})
		}
		b.popLoop(label)
		b.loopDepth--
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchClauses(label, st.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.switchClauses(label, st.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.ensure()
		after := b.newBlock("select.done")
		b.pushBreak(label, after)
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.link(sel, Edge{To: blk})
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, inner := range cc.Body {
				b.stmt(inner)
			}
			if b.cur != nil {
				b.link(b.cur, Edge{To: after})
			}
		}
		b.popBreak(label)
		b.cur = after

	case *ast.LabeledStmt:
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = st.Label.Name
			b.stmt(st.Stmt)
		default:
			blk := b.gotoBlock(st.Label.Name)
			if b.cur != nil {
				b.link(b.cur, Edge{To: blk})
			}
			b.cur = blk
			b.stmt(st.Stmt)
		}

	case *ast.BranchStmt:
		b.add(st)
		cur := b.ensure()
		name := ""
		if st.Label != nil {
			name = st.Label.Name
		}
		switch st.Tok.String() {
		case "break":
			if t := b.breakTarget(name); t != nil {
				b.link(cur, Edge{To: t})
			}
		case "continue":
			if t := b.contTarget(name); t != nil {
				b.link(cur, Edge{To: t})
			}
		case "goto":
			b.link(cur, Edge{To: b.gotoBlock(name)})
		case "fallthrough":
			if len(b.fallT) > 0 && b.fallT[len(b.fallT)-1] != nil {
				b.link(cur, Edge{To: b.fallT[len(b.fallT)-1]})
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(st)
		b.link(b.ensure(), Edge{To: b.cfg.Exit})
		b.cur = nil

	case *ast.ExprStmt:
		b.add(st)
		switch terminatorKind(st.X) {
		case termPanic:
			b.link(b.ensure(), Edge{To: b.cfg.PanicExit})
			b.cur = nil
		case termExit:
			// os.Exit / log.Fatal*: the process ends, defers do not run;
			// obligations on this path vanish.
			b.cur = nil
		}

	default:
		// Simple statements: assignments, declarations, defer, go, send,
		// inc/dec, empty.
		if s != nil {
			b.add(s)
		}
	}
}

// switchClauses builds the shared switch/type-switch clause shape.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt,
	split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {

	cond := b.ensure()
	after := b.newBlock("switch.done")
	b.pushBreak(label, after)

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blocks[i] = b.newBlock("switch.case")
		nodes, _, isDefault := split(cc)
		blocks[i].Nodes = append(blocks[i].Nodes, nodes...)
		if isDefault {
			hasDefault = true
		}
		b.link(cond, Edge{To: blocks[i]})
	}
	if !hasDefault {
		b.link(cond, Edge{To: after})
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		_, stmts, _ := split(cc)
		next := (*Block)(nil)
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.fallT = append(b.fallT, next)
		b.cur = blocks[i]
		for _, inner := range stmts {
			b.stmt(inner)
		}
		if b.cur != nil {
			b.link(b.cur, Edge{To: after})
		}
		b.fallT = b.fallT[:len(b.fallT)-1]
	}
	b.popBreak(label)
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakT = append(b.breakT, brk)
	b.contT = append(b.contT, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakT = b.breakT[:len(b.breakT)-1]
	b.contT = b.contT[:len(b.contT)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

func (b *cfgBuilder) pushBreak(label string, brk *Block) {
	b.breakT = append(b.breakT, brk)
	if label != "" {
		b.labelBreak[label] = brk
	}
}

func (b *cfgBuilder) popBreak(label string) {
	b.breakT = b.breakT[:len(b.breakT)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
}

func (b *cfgBuilder) breakTarget(label string) *Block {
	if label != "" {
		return b.labelBreak[label]
	}
	if len(b.breakT) == 0 {
		return nil
	}
	return b.breakT[len(b.breakT)-1]
}

func (b *cfgBuilder) contTarget(label string) *Block {
	if label != "" {
		return b.labelCont[label]
	}
	if len(b.contT) == 0 {
		return nil
	}
	return b.contT[len(b.contT)-1]
}

func (b *cfgBuilder) gotoBlock(name string) *Block {
	if blk, ok := b.labelGoto[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labelGoto[name] = blk
	return blk
}

type termKind int

const (
	termNone termKind = iota
	termPanic
	termExit
)

// terminatorKind classifies calls that never return: the builtin panic
// (deferred calls still run — PanicExit edge) and os.Exit / log.Fatal*
// (nothing runs — dead end).
func terminatorKind(e ast.Expr) termKind {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return termNone
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return termPanic
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if id.Name == "os" && fun.Sel.Name == "Exit" {
				return termExit
			}
			if id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return termExit
			}
		}
	}
	return termNone
}

// visitNode walks the executable parts of a CFG block node with the
// ancestor stack (rooted at the node), pruning nested function literals
// (they execute elsewhere — analyses that care about defer/go bodies
// special-case those statements) and a RangeStmt's Body (walked via the
// graph).
func visitNode(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var rangeBody *ast.BlockStmt
	if rs, ok := root.(*ast.RangeStmt); ok {
		rangeBody = rs.Body
	}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		if rangeBody != nil && n == ast.Node(rangeBody) {
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// funcLitsIn collects function literals appearing anywhere under root
// that are not nested inside another literal under root (each literal is
// analyzed as its own unit, which then finds its own nested literals).
func funcLitsIn(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != root {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}
