// Package atest is an analysistest-style harness for the nimble-lint
// analyzers: it type-checks a corpus directory under testdata/ (which
// the go tool itself ignores), runs one analyzer, and matches its
// diagnostics against `// want "regexp"` comments in the corpus. Every
// want must be hit by a diagnostic on its line, and every diagnostic
// must be claimed by a want — so a corpus with wants fails loudly if
// the analyzer is disabled or regresses.
package atest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// Run checks the analyzer against the corpus directory.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	loader := analysis.NewLoader()
	target, err := loader.CheckDir(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	diags, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	// Collect want expectations from the corpus comments.
	wants := make(map[wantKey][]*regexp.Regexp)
	nwants := 0
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := target.Fset.Position(c.Pos())
				key := wantKey{file: pos.Filename, line: pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[key] = append(wants[key], re)
					nwants++
				}
			}
		}
	}
	if nwants == 0 {
		t.Fatalf("corpus %s has no // want comments; the test would pass with the analyzer disabled", dir)
	}

	// Match diagnostics to wants.
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		key := wantKey{file: pos.Filename, line: pos.Line}
		matched := false
		rest := wants[key][:0:0]
		for _, re := range wants[key] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", position(pos), d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, re.String())
		}
	}
}

func position(p token.Position) string {
	return p.String()
}
