package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a global lock-acquisition graph and reports cycles
// as potential deadlocks. Nodes are lock classes — a mutex identified
// by its owning struct type and field name (cluster.Cluster.mu) or, for
// package-level mutexes, by package and variable name. An edge A→B
// means some function acquires B while a must-analysis over its CFG
// proves A is held; edges also arise transitively, through calls to
// functions whose own paths acquire locks. Two classes on a cycle can
// deadlock under concurrency the race detector only probabilistically
// catches.
//
// The per-package Run pass records direct nesting edges, per-function
// acquisition summaries, and call sites made while holding locks; the
// suite-level Finish pass closes the call graph and reports each cycle
// once, at a witnessing acquisition. `guarded by` annotations seed the
// class universe so annotated mutexes participate even before any
// nesting is observed. Immediate re-acquisition of a held mutex
// through the same receiver expression (self-deadlock — sync.Mutex is
// not reentrant) is reported directly from Run.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the global lock-acquisition graph from guarded-by annotations and observed " +
		"Lock/RLock nesting; report acquisition cycles as potential deadlocks",
}

// Run and Finish refer back to LockOrder (for the session state key), so
// they are attached here rather than in the literal above.
func init() {
	LockOrder.Run = runLockOrder
	LockOrder.Finish = finishLockOrder
}

// lockMode distinguishes read and write acquisitions: re-acquiring a
// read lock is legal (if inadvisable); re-acquiring a write lock, or
// either around a write, deadlocks.
type lockMode uint8

const (
	lockRead  lockMode = 1
	lockWrite lockMode = 2
)

// lockEdge is one observed "B acquired while A held" nesting.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name for transitive edges, "" for direct nesting
}

// lockState is the suite-level accumulator.
type lockState struct {
	classes map[string]bool       // every lock class seen or annotated
	edges   []lockEdge            // direct nesting edges
	acq     map[string][]lockAcq  // function key -> locks its body acquires
	calls   map[string][]string   // function key -> module functions it calls
	pending []pendingCall         // calls made while holding locks
}

type lockAcq struct {
	class string
	pos   token.Pos
}

type pendingCall struct {
	held   []string
	callee string
	pos    token.Pos
}

func lockStateOf(s *Session) *lockState {
	return s.State(LockOrder, func() any {
		return &lockState{
			classes: make(map[string]bool),
			acq:     make(map[string][]lockAcq),
			calls:   make(map[string][]string),
		}
	}).(*lockState)
}

func runLockOrder(pass *Pass) error {
	st := lockStateOf(pass.Session)

	// Seed classes from `guarded by` annotations so annotated mutexes are
	// graph nodes even before any nesting touches them.
	for _, f := range pass.Files {
		seedGuardedClasses(pass, f, st)
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockCheckFunc(pass, fd, st)
		}
	}
	return nil
}

// lockClassOf names the lock class of the receiver of a Lock/RLock/
// Unlock/RUnlock call: "pkgpath.Type.field" for struct-field mutexes,
// "pkgpath.var" for package-level ones, "" for locals and unresolvable
// receivers (which cannot participate in a global order).
func lockClassOf(pass *Pass, recv ast.Expr) string {
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		if pass.TypesInfo != nil {
			if sel, ok := pass.TypesInfo.Selections[x]; ok {
				fld, ok := sel.Obj().(*types.Var)
				if !ok || fld.Pkg() == nil {
					return ""
				}
				owner := ownerTypeName(sel.Recv())
				if owner == "" {
					return ""
				}
				return fld.Pkg().Path() + "." + owner + "." + fld.Name()
			}
			// Package-qualified variable: pkg.mu.Lock().
			if id, ok := x.X.(*ast.Ident); ok {
				if path, isPkg := pass.pkgPathOf(id); isPkg {
					return path + "." + x.Sel.Name
				}
			}
		}
	case *ast.Ident:
		if obj := pass.objectOf(x); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	case *ast.ParenExpr:
		return lockClassOf(pass, x.X)
	}
	return ""
}

// ownerTypeName unwraps a receiver type to its named-type name.
func ownerTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// lockCallKind classifies a call as a mutex acquisition or release.
func lockCallKind(name string) (mode lockMode, acquire, release bool) {
	switch name {
	case "Lock":
		return lockWrite, true, false
	case "RLock":
		return lockRead, true, false
	case "Unlock":
		return lockWrite, false, true
	case "RUnlock":
		return lockRead, false, true
	}
	return 0, false, false
}

// heldLock is the per-class holding state: the mode bits and the
// receiver expression it was acquired through ("" when paths disagree
// or the expression is not a plain chain), which the self-deadlock
// check uses to tell re-locking c.mu from locking b.mu on a second
// instance of the same type.
type heldLock struct {
	mode lockMode
	recv string
}

// heldFact maps lock class -> holding state, for the must-analysis; the
// reached flag distinguishes "no path here yet" (join identity) from
// "reachable holding nothing".
type heldFact struct {
	reached bool
	locks   map[string]heldLock
}

func (f heldFact) clone() heldFact {
	out := heldFact{reached: f.reached, locks: make(map[string]heldLock, len(f.locks))}
	for k, v := range f.locks {
		out.locks[k] = v
	}
	return out
}

type lockLattice struct {
	p *Pass
}

func (l *lockLattice) entry() heldFact     { return heldFact{reached: true, locks: map[string]heldLock{}} }
func (l *lockLattice) unreached() heldFact { return heldFact{} }

// join intersects: a lock is held at a point only if held on every path
// to it (must-analysis — claiming A→B nesting needs certainty about A).
func (l *lockLattice) join(a, b heldFact) heldFact {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := heldFact{reached: true, locks: make(map[string]heldLock)}
	for k, va := range a.locks {
		if vb, ok := b.locks[k]; ok {
			merged := heldLock{mode: va.mode | vb.mode, recv: va.recv}
			if va.recv != vb.recv {
				merged.recv = ""
			}
			out.locks[k] = merged
		}
	}
	return out
}

func (l *lockLattice) equal(a, b heldFact) bool {
	if a.reached != b.reached || len(a.locks) != len(b.locks) {
		return false
	}
	for k, v := range a.locks {
		if bv, ok := b.locks[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (l *lockLattice) edgeFact(e Edge, out heldFact) heldFact { return out }

func (l *lockLattice) transfer(b *Block, in heldFact) heldFact {
	if !in.reached {
		return in
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		applyLockNode(l.p, n, &fact, nil, "", nil)
	}
	return fact
}

// applyLockNode interprets one block node's lock operations against the
// held set. When record is non-nil it also emits nesting edges, call
// edges, and acquisition summaries (the post-fixpoint reporting walk).
func applyLockNode(pass *Pass, n ast.Node, fact *heldFact, st *lockState, fnKey string, report func(format string, pos token.Pos, args ...any)) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		// defer mu.Unlock(): the lock is held until function exit; the
		// held set is unchanged from here on, which is exactly right for
		// nesting edges. Deferred calls are otherwise not interpreted.
		return
	}
	visitNode(n, func(m ast.Node, stack []ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, name, isMethod := pass.methodCall(call)
		if isMethod {
			if mode, acquire, release := lockCallKind(name); acquire || release {
				class := lockClassOf(pass, recv)
				if class == "" {
					return
				}
				if acquire {
					rs := exprString(recv)
					if held, ok := fact.locks[class]; ok {
						// Re-acquiring a held class: deadlock when the same
						// instance (matching receiver expression) and either
						// acquisition writes. Two instances of one type — a
						// two-tree merge — stay clean.
						if report != nil && rs != "" && rs == held.recv &&
							(held.mode&lockWrite != 0 || mode == lockWrite) {
							report("mutex %s is acquired while already held by this function (sync mutexes are not reentrant)",
								call.Pos(), shortLockClass(class))
						}
					}
					if st != nil {
						st.classes[class] = true
						for held := range fact.locks {
							if held != class {
								st.edges = append(st.edges, lockEdge{from: held, to: class, pos: call.Pos()})
							}
						}
						st.acq[fnKey] = append(st.acq[fnKey], lockAcq{class: class, pos: call.Pos()})
					}
					prev, was := fact.locks[class]
					next := heldLock{mode: mode, recv: rs}
					if was {
						next.mode |= prev.mode
						if prev.recv != rs {
							next.recv = ""
						}
					}
					fact.locks[class] = next
				} else {
					delete(fact.locks, class)
				}
				return
			}
		}
		// A call into module code while holding locks: the callee's own
		// acquisitions nest under the held set (resolved in Finish).
		if st == nil || len(fact.locks) == 0 {
			return
		}
		if key := calleeKey(pass, call); key != "" && key != fnKey {
			held := make([]string, 0, len(fact.locks))
			for c := range fact.locks {
				held = append(held, c)
			}
			sort.Strings(held)
			st.pending = append(st.pending, pendingCall{held: held, callee: key, pos: call.Pos()})
		}
	})
	// Call-graph edges are recorded regardless of held locks so Finish
	// can close summaries transitively.
	if st != nil {
		visitNode(n, func(m ast.Node, stack []ast.Node) {
			if call, ok := m.(*ast.CallExpr); ok {
				if key := calleeKey(pass, call); key != "" && key != fnKey {
					st.calls[fnKey] = append(st.calls[fnKey], key)
				}
			}
		})
	}
}

// calleeKey names a called function/method in module code
// ("pkgpath.Name" / "pkgpath.Type.Name"), or "" for out-of-module and
// unresolvable callees. Analysis state only tracks module functions —
// the stdlib does not call back into Nimble's locks.
func calleeKey(pass *Pass, call *ast.CallExpr) string {
	if pass.TypesInfo == nil {
		return ""
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if !moduleLocalPath(path) {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if owner := ownerTypeName(sig.Recv().Type()); owner != "" {
			return path + "." + owner + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

// moduleLocalPath reports whether an import path belongs to this module
// (or a lint corpus). Mirrors the module prefix used by ctxbefore.
func moduleLocalPath(path string) bool {
	return strings.HasPrefix(path, "repro") || strings.HasPrefix(path, "testdata")
}

// funcKey names a declared function the way calleeKey names a callee.
func funcKey(pass *Pass, fd *ast.FuncDecl) string {
	path := pass.Pkg.Path()
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if id, ok := baseTypeIdent(fd.Recv.List[0].Type); ok {
			return path + "." + id.Name + "." + fd.Name.Name
		}
	}
	return path + "." + fd.Name.Name
}

func lockCheckFunc(pass *Pass, fd *ast.FuncDecl, st *lockState) {
	g := NewCFG(fd.Body)
	lat := &lockLattice{p: pass}
	res := forward(g, lat)
	key := funcKey(pass, fd)

	// Reporting walk: replay each block from its stable in-fact, now
	// recording edges, summaries, and self-deadlocks.
	for _, b := range g.Blocks {
		in := res.in[b]
		if !in.reached {
			continue
		}
		fact := in.clone()
		for _, n := range b.Nodes {
			applyLockNode(pass, n, &fact, st, key, func(format string, pos token.Pos, args ...any) {
				pass.Reportf(pos, format, args...)
			})
		}
	}
}

// seedGuardedClasses registers a lock class for every `guarded by`
// struct-field annotation, reusing the guardedby analyzer's comment
// convention.
func seedGuardedClasses(pass *Pass, f *ast.File, st *lockState) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			stype, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, fld := range stype.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				// The annotation names a sibling field (or "mu" shorthand);
				// the class is that mutex field on this struct.
				mu = strings.TrimPrefix(mu, ts.Name.Name+".")
				if i := strings.LastIndex(mu, "."); i >= 0 {
					mu = mu[i+1:]
				}
				st.classes[pass.Pkg.Path()+"."+ts.Name.Name+"."+mu] = true
			}
		}
	}
}

// shortLockClass trims the module prefix for readable diagnostics:
// repro/internal/cluster.Cluster.mu -> cluster.Cluster.mu.
func shortLockClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

// finishLockOrder closes the acquisition summaries over the call graph,
// materializes transitive edges under the pending calls, and reports
// every cycle in the resulting class graph.
func finishLockOrder(s *Session) []Diagnostic {
	stAny, ok := s.state[LockOrder]
	if !ok {
		return nil
	}
	st := stAny.(*lockState)

	// Transitive closure: every lock class each function may acquire,
	// directly or through module calls.
	memo := make(map[string]map[string]lockAcq)
	var closure func(fn string, seen map[string]bool) map[string]lockAcq
	closure = func(fn string, seen map[string]bool) map[string]lockAcq {
		if m, ok := memo[fn]; ok {
			return m
		}
		if seen[fn] {
			return nil // call cycle: already contributing on the outer frame
		}
		seen[fn] = true
		out := make(map[string]lockAcq)
		for _, a := range st.acq[fn] {
			if _, ok := out[a.class]; !ok {
				out[a.class] = a
			}
		}
		for _, callee := range st.calls[fn] {
			for class, a := range closure(callee, seen) {
				if _, ok := out[class]; !ok {
					out[class] = lockAcq{class: class, pos: a.pos}
				}
			}
		}
		delete(seen, fn)
		memo[fn] = out
		return out
	}

	edges := append([]lockEdge(nil), st.edges...)
	for _, pc := range st.pending {
		for class := range closure(pc.callee, make(map[string]bool)) {
			for _, held := range pc.held {
				if held != class {
					edges = append(edges, lockEdge{from: held, to: class, pos: pc.pos, via: shortFuncKey(pc.callee)})
				}
			}
		}
	}

	// Deduplicate edges per (from, to), keeping the earliest witness.
	type edgeKey struct{ from, to string }
	best := make(map[edgeKey]lockEdge)
	adj := make(map[string][]string)
	for _, e := range edges {
		k := edgeKey{e.from, e.to}
		if old, ok := best[k]; !ok || e.pos < old.pos {
			best[k] = e
		}
	}
	keys := make([]edgeKey, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		adj[k.from] = append(adj[k.from], k.to)
	}

	// Find cycles: for each class in deterministic order, search for the
	// lexicographically-first simple path back to itself. Each cycle is
	// reported once, keyed by its canonical rotation.
	classes := make([]string, 0, len(adj))
	for c := range adj {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var diags []Diagnostic
	reported := make(map[string]bool)
	for _, start := range classes {
		path := findCycle(adj, start)
		if path == nil {
			continue
		}
		canon := canonicalCycle(path)
		if reported[canon] {
			continue
		}
		reported[canon] = true

		var steps []string
		var witness lockEdge
		for i := 0; i < len(path); i++ {
			from, to := path[i], path[(i+1)%len(path)]
			e := best[edgeKey{from, to}]
			if i == 0 {
				witness = e
			}
			step := shortLockClass(from) + " -> " + shortLockClass(to)
			if e.via != "" {
				step += " (via " + e.via + ")"
			}
			steps = append(steps, step)
		}
		diags = append(diags, Diagnostic{
			Pos:      witness.pos,
			Analyzer: LockOrder.Name,
			Message: fmt.Sprintf("lock-order cycle: %s; acquire these mutexes in one consistent order",
				strings.Join(steps, ", ")),
		})
	}
	return diags
}

// findCycle returns a simple cycle through start (start first), or nil.
func findCycle(adj map[string][]string, start string) []string {
	var path []string
	seen := make(map[string]bool)
	var dfs func(cur string) bool
	dfs = func(cur string) bool {
		for _, next := range adj[cur] {
			if next == start {
				return true
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			path = append(path, next)
			if dfs(next) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	seen[start] = true
	if dfs(start) {
		return append([]string{start}, path...)
	}
	return nil
}

// canonicalCycle rotates the cycle to start at its smallest class so
// each cycle is reported exactly once.
func canonicalCycle(path []string) string {
	min := 0
	for i := range path {
		if path[i] < path[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), path[min:]...), path[:min]...)
	return strings.Join(rot, "|")
}

// shortFuncKey trims the module prefix from a function key.
func shortFuncKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
