package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func TestSpanFinish(t *testing.T) {
	atest.Run(t, "testdata/src/spanfinish", analysis.SpanFinish)
}

func TestOpClose(t *testing.T) {
	atest.Run(t, "testdata/src/opclose", analysis.OpClose)
}

func TestCtxBefore(t *testing.T) {
	atest.Run(t, "testdata/src/ctxbefore", analysis.CtxBefore)
}

func TestGuardedBy(t *testing.T) {
	atest.Run(t, "testdata/src/guardedby", analysis.GuardedBy)
}

func TestLockOrder(t *testing.T) {
	atest.Run(t, "testdata/src/lockorder", analysis.LockOrder)
}

func TestSlotLeak(t *testing.T) {
	atest.Run(t, "testdata/src/slotleak", analysis.SlotLeak)
}

func TestSQLSafe(t *testing.T) {
	atest.Run(t, "testdata/src/sqlsafe", analysis.SQLSafe)
}

// TestSuppression checks the //lint:ignore directive end to end: the
// corpus provokes two identical spanfinish findings, one under a
// well-formed directive (suppressed) and one under a reasonless
// directive (kept — the reason is mandatory).
func TestSuppression(t *testing.T) {
	target, err := analysis.NewLoader().CheckDir("testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	diags, err := analysis.Run(target, []*analysis.Analyzer{analysis.SpanFinish})
	if err != nil {
		t.Fatalf("running spanfinish: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d raw diagnostics, want 2: %+v", len(diags), diags)
	}
	kept, suppressed := analysis.Filter(target.Fset, target.Files, diags)
	if len(kept) != 1 || len(suppressed) != 1 {
		t.Fatalf("got %d kept / %d suppressed, want 1 / 1", len(kept), len(suppressed))
	}
	// The kept finding must be the one under the reasonless directive.
	keptLine := target.Fset.Position(kept[0].Pos).Line
	supLine := target.Fset.Position(suppressed[0].Pos).Line
	if keptLine <= supLine {
		t.Errorf("kept diagnostic at line %d, suppressed at line %d; expected the reasonless (later) one kept", keptLine, supLine)
	}
}

// TestLoaderTypes checks that the source loader produces complete type
// information for a real module package.
func TestLoaderTypes(t *testing.T) {
	targets, err := analysis.NewLoader().LoadTargets([]string{"repro/internal/obs"})
	if err != nil {
		t.Fatalf("LoadTargets: %v", err)
	}
	if len(targets) != 1 {
		t.Fatalf("got %d targets, want 1", len(targets))
	}
	tg := targets[0]
	if tg.Path != "repro/internal/obs" {
		t.Errorf("target path = %q", tg.Path)
	}
	if len(tg.TypeErrors) != 0 {
		t.Errorf("type errors: %v", tg.TypeErrors)
	}
	if len(tg.Info.Uses) == 0 {
		t.Error("no uses recorded; type info is empty")
	}
}

// TestRegistry keeps the suite roster and name lookup honest.
func TestRegistry(t *testing.T) {
	want := []string{"spanfinish", "opclose", "ctxbefore", "guardedby", "lockorder", "slotleak", "sqlsafe"}
	var got []string
	for _, a := range analysis.Analyzers() {
		got = append(got, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run", a.Name)
		}
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Analyzers() = %v, want %v", got, want)
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}
