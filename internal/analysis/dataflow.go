// Forward dataflow over the CFG. One generic worklist solver serves
// both flavors the analyzers need:
//
//   - may-analyses (union join): "this span MAY still be unfinished
//     here" — spanfinish, opclose, slotleak, sqlsafe;
//   - must-analyses (intersection join): "this mutex IS held on every
//     path to here" — lockorder.
//
// A lattice supplies the transfer function per block and, crucially, an
// edge transfer: the solver hands each outgoing Edge (with its branch
// Cond) back to the lattice, which can refine facts — the true edge of
// `if err != nil` kills the "Open succeeded" site, the false edge of
// `if probe` kills the half-open token. That per-edge refinement is
// what the position-based heuristics could never express.
package analysis

import (
	"go/ast"
	"go/types"
)

// lattice describes one forward dataflow problem with fact type T.
type lattice[T any] interface {
	// entry is the fact at function entry.
	entry() T
	// unreached is the identity of join: the fact for a block no
	// processed predecessor reaches.
	unreached() T
	join(a, b T) T
	equal(a, b T) bool
	// transfer applies the whole block to the incoming fact.
	transfer(b *Block, in T) T
	// edgeFact refines the predecessor's out-fact along one edge; the
	// default refinement is the identity.
	edgeFact(e Edge, out T) T
}

type flowResult[T any] struct {
	in, out map[*Block]T
}

// forward solves the dataflow problem to a fixpoint with a worklist.
func forward[T any](g *CFG, l lattice[T]) flowResult[T] {
	res := flowResult[T]{in: make(map[*Block]T), out: make(map[*Block]T)}
	for _, b := range g.Blocks {
		res.out[b] = l.transfer(b, l.unreached())
		res.in[b] = l.unreached()
	}
	// Blocks are appended in roughly program order, so index order makes
	// a reasonable first pass; the worklist handles back edges.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := l.unreached()
		if b == g.Entry {
			in = l.entry()
		}
		for _, pe := range g.Preds(b) {
			in = l.join(in, l.edgeFact(pe.Edge, res.out[pe.From]))
		}
		res.in[b] = in
		out := l.transfer(b, in)
		if l.equal(out, res.out[b]) {
			continue
		}
		res.out[b] = out
		for _, e := range b.Succs {
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}

// ---- shared fact plumbing ----------------------------------------------

// siteFact maps a live site index to whether its error-variable
// association is still valid (usable for edge refinement). A nil map is
// the solver's unreached element; may-analyses join by union.
type siteFact map[int]bool

func (f siteFact) clone() siteFact {
	if f == nil {
		return nil
	}
	out := make(siteFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinSites(a, b siteFact) siteFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b {
		if have, ok := out[k]; ok {
			// Associations must agree on every path to stay usable.
			out[k] = have && v
		} else {
			out[k] = v
		}
	}
	return out
}

func equalSites(a, b siteFact) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// ---- edge condition refinement -----------------------------------------

// condAtom strips parens and negations, returning the core expression
// and whether the edge truth value was flipped an odd number of times.
func condAtom(cond ast.Expr, negate bool) (ast.Expr, bool) {
	for {
		switch e := cond.(type) {
		case *ast.ParenExpr:
			cond = e.X
		case *ast.UnaryExpr:
			if e.Op.String() == "!" {
				cond = e.X
				negate = !negate
				continue
			}
			return cond, negate
		default:
			return cond, negate
		}
	}
}

// edgeImpliesNonNil reports whether taking e implies the value of obj is
// non-nil (i.e. the condition is `obj != nil` on the true edge or
// `obj == nil` on the false edge).
func edgeImpliesNonNil(p *Pass, e Edge, obj types.Object) bool {
	return edgeNilCompare(p, e, obj, true)
}

// edgeImpliesNil is the complementary implication.
func edgeImpliesNil(p *Pass, e Edge, obj types.Object) bool {
	return edgeNilCompare(p, e, obj, false)
}

func edgeNilCompare(p *Pass, e Edge, obj types.Object, wantNonNil bool) bool {
	if e.Cond == nil {
		return false
	}
	atom, negate := condAtom(e.Cond, e.Negate)
	bin, ok := atom.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	op := bin.Op.String()
	if op != "==" && op != "!=" {
		return false
	}
	var id *ast.Ident
	if isNilIdent(bin.Y) {
		id, _ = bin.X.(*ast.Ident)
	} else if isNilIdent(bin.X) {
		id, _ = bin.Y.(*ast.Ident)
	}
	if id == nil {
		return false
	}
	if o := p.objectOf(id); o == nil || o != obj {
		return false
	}
	// Edge taken ⇒ condition is (negate ? false : true).
	condTrue := !negate
	isNeq := op == "!="
	nonNil := condTrue == isNeq
	return nonNil == wantNonNil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// edgeBool reports what taking e implies about a boolean variable: for
// `if probe` the true edge implies probe==true; for `if !ok` the true
// edge implies ok==false. known is false when the condition says
// nothing about obj.
func edgeBool(p *Pass, e Edge, obj types.Object) (val, known bool) {
	if e.Cond == nil {
		return false, false
	}
	atom, negate := condAtom(e.Cond, e.Negate)
	id, ok := atom.(*ast.Ident)
	if !ok {
		return false, false
	}
	if o := p.objectOf(id); o == nil || o != obj {
		return false, false
	}
	return !negate, true
}
