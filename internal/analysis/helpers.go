package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkStack visits every node under root, passing the ancestor stack
// (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// exprString renders an identifier or a selector chain ("j.Left.Close"
// style receivers); other expression forms yield "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return ""
}

// enclosingFunc returns the innermost function literal or declaration
// on the stack (the node itself counts when it is one).
func enclosingFunc(n ast.Node, stack []ast.Node) ast.Node {
	switch n.(type) {
	case *ast.FuncLit, *ast.FuncDecl:
		return n
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// inLoop reports whether the stack passes through a for or range
// statement.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// inDefer reports whether the stack passes through a defer statement.
func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// objectOf resolves an identifier nil-safely.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// pkgPathOf returns the import path when id names an imported package.
func (p *Pass) pkgPathOf(id *ast.Ident) (string, bool) {
	if pn, ok := p.objectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// typeStringOf returns the type of e as a string ("" when unknown).
func (p *Pass) typeStringOf(e ast.Expr) string {
	if p.TypesInfo == nil {
		return ""
	}
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return ""
}

// methodCall decomposes a call of the form recv.Name(...), returning
// the receiver expression and method name; ok is false for any other
// call shape (including package-qualified function calls when type
// information identifies the qualifier as a package name).
func (p *Pass) methodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := p.pkgPathOf(id); isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// sameIdent reports whether use refers to the same variable as def,
// preferring type information and falling back to name equality.
func (p *Pass) sameIdent(use *ast.Ident, def *ast.Ident) bool {
	uo, do := p.objectOf(use), p.objectOf(def)
	if uo != nil && do != nil {
		return uo == do
	}
	return use.Name == def.Name
}

// funcName names a declaration for diagnostics ("(*Engine).run" style
// for methods).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := baseTypeIdent(t); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// baseTypeIdent unwraps a receiver type expression to its base named
// type identifier (handles pointers and generic instantiations).
func baseTypeIdent(t ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// returnsIn collects every return statement within fn that exits the
// given enclosing function node.
func returnsIn(fd *ast.FuncDecl, owner ast.Node) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		r, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if enclosingFunc(n, stack) == owner {
			out = append(out, r)
		}
	})
	return out
}

// isDeclIdent reports whether the identifier occurrence is a
// declaration, not a use: a parameter/receiver/struct field name, a
// range variable, or a var-spec name. Declarations are neutral for
// escape analysis — they introduce the variable, they don't hand it to
// anyone.
func isDeclIdent(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.Field:
		return true
	case *ast.ValueSpec:
		for _, n := range parent.Names {
			if n == id {
				return true
			}
		}
	case *ast.RangeStmt:
		return parent.Key == ast.Expr(id) || parent.Value == ast.Expr(id)
	}
	return false
}

// funcUnit is one function body analyzed as its own CFG: a declaration
// or a function literal (literals run under their own control flow, so
// each gets its own graph; name is the enclosing declaration's, for
// diagnostics).
type funcUnit struct {
	body *ast.BlockStmt
	name string
	decl *ast.FuncDecl
}

// funcUnits enumerates every function body in the file.
func funcUnits(f *ast.File) []funcUnit {
	var out []funcUnit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcUnit{body: fd.Body, name: funcName(fd), decl: fd})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcUnit{body: lit.Body, name: funcName(fd), decl: fd})
			}
			return true
		})
	}
	return out
}

// walkUnit visits every node of one function unit with its ancestor
// stack, pruning nested function literals (they are separate units).
func walkUnit(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// lastNode returns the final node of a block (nil when empty).
func lastNode(b *Block) ast.Node {
	if len(b.Nodes) == 0 {
		return nil
	}
	return b.Nodes[len(b.Nodes)-1]
}

// deferredFuncLit returns the literal directly invoked by a defer
// statement (`defer func() { ... }()`), or nil.
func deferredFuncLit(n ast.Node) *ast.FuncLit {
	d, ok := n.(*ast.DeferStmt)
	if !ok {
		return nil
	}
	lit, _ := d.Call.Fun.(*ast.FuncLit)
	return lit
}

// methodCallOn reports whether the identifier occurrence is the
// receiver of a method call (`id.M(...)`), returning the selector and
// call when so.
func methodCallOn(id *ast.Ident, stack []ast.Node) (*ast.SelectorExpr, *ast.CallExpr, bool) {
	if len(stack) < 2 {
		return nil, nil, false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || sel.X != ast.Expr(id) {
		return nil, nil, false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != ast.Expr(sel) {
		return nil, nil, false
	}
	return sel, call, true
}

// isSelectorNonCall reports whether the identifier is the base of a
// selector that is not immediately called (a method value or field
// access handed along).
func isSelectorNonCall(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 1 {
		return false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || sel.X != ast.Expr(id) {
		return false
	}
	if len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
			return false
		}
	}
	return true
}

// isAssignLHS reports whether the identifier is an assignment target.
func isAssignLHS(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 1 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		if l == ast.Expr(id) {
			return true
		}
	}
	return false
}

// hasSuffixAny reports whether s ends with any of the suffixes.
func hasSuffixAny(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// posLine returns the 1-based line of pos.
func (p *Pass) posLine(pos token.Pos) int {
	return p.Fset.Position(pos).Line
}
