package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkStack visits every node under root, passing the ancestor stack
// (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// exprString renders an identifier or a selector chain ("j.Left.Close"
// style receivers); other expression forms yield "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return ""
}

// enclosingFunc returns the innermost function literal or declaration
// on the stack (the node itself counts when it is one).
func enclosingFunc(n ast.Node, stack []ast.Node) ast.Node {
	switch n.(type) {
	case *ast.FuncLit, *ast.FuncDecl:
		return n
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// inLoop reports whether the stack passes through a for or range
// statement.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// inDefer reports whether the stack passes through a defer statement.
func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// objectOf resolves an identifier nil-safely.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// pkgPathOf returns the import path when id names an imported package.
func (p *Pass) pkgPathOf(id *ast.Ident) (string, bool) {
	if pn, ok := p.objectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// typeStringOf returns the type of e as a string ("" when unknown).
func (p *Pass) typeStringOf(e ast.Expr) string {
	if p.TypesInfo == nil {
		return ""
	}
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return ""
}

// methodCall decomposes a call of the form recv.Name(...), returning
// the receiver expression and method name; ok is false for any other
// call shape (including package-qualified function calls when type
// information identifies the qualifier as a package name).
func (p *Pass) methodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := p.pkgPathOf(id); isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// sameIdent reports whether use refers to the same variable as def,
// preferring type information and falling back to name equality.
func (p *Pass) sameIdent(use *ast.Ident, def *ast.Ident) bool {
	uo, do := p.objectOf(use), p.objectOf(def)
	if uo != nil && do != nil {
		return uo == do
	}
	return use.Name == def.Name
}

// funcName names a declaration for diagnostics ("(*Engine).run" style
// for methods).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := baseTypeIdent(t); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// baseTypeIdent unwraps a receiver type expression to its base named
// type identifier (handles pointers and generic instantiations).
func baseTypeIdent(t ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// returnsIn collects every return statement within fn that exits the
// given enclosing function node.
func returnsIn(fd *ast.FuncDecl, owner ast.Node) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		r, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if enclosingFunc(n, stack) == owner {
			out = append(out, r)
		}
	})
	return out
}

// isDeclIdent reports whether the identifier occurrence is a
// declaration, not a use: a parameter/receiver/struct field name, a
// range variable, or a var-spec name. Declarations are neutral for
// escape analysis — they introduce the variable, they don't hand it to
// anyone.
func isDeclIdent(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.Field:
		return true
	case *ast.ValueSpec:
		for _, n := range parent.Names {
			if n == id {
				return true
			}
		}
	case *ast.RangeStmt:
		return parent.Key == ast.Expr(id) || parent.Value == ast.Expr(id)
	}
	return false
}

// hasSuffixAny reports whether s ends with any of the suffixes.
func hasSuffixAny(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// posLine returns the 1-based line of pos.
func (p *Pass) posLine(pos token.Pos) int {
	return p.Fset.Position(pos).Line
}
