package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// GuardedBy enforces documented lock discipline: a struct field whose
// comment says "guarded by <mu>" may only be touched through the
// receiver while <mu> is held. This catches the class of data race that
// `go test -race` only reports when a test happens to interleave the
// two accesses — the kind that instead interleaves for the first time
// under production load.
//
// Scope: accesses through the receiver of methods on the annotated
// struct. Helper methods whose name ends in "Locked" are exempt by
// convention (their contract is "caller holds the lock"). A deferred
// Unlock does not count as a release; an inline Unlock before the
// access does. The guard may be a dotted path rooted at the receiver —
// `guarded by s.mu` on a handle's field demands `h.s.mu.Lock()` — which
// covers handles protected by their owning object's mutex (the
// scheduler's Grant, the cluster's instance records).
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "check that fields annotated `// guarded by <mu>` are only accessed while <mu> is held " +
		"(methods named *Locked are exempt: caller holds the lock)",
	Run: runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)

// guardedField records one annotation: structName.fieldName needs mu.
type guardedField struct {
	structName string
	fieldName  string
	mu         string
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	byStruct := make(map[string]map[string]string) // struct -> field -> mu
	for _, g := range guards {
		if byStruct[g.structName] == nil {
			byStruct[g.structName] = make(map[string]string)
		}
		byStruct[g.structName][g.fieldName] = g.mu
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			recvType := fd.Recv.List[0].Type
			id, ok := baseTypeIdent(recvType)
			if !ok {
				continue
			}
			fields := byStruct[id.Name]
			if fields == nil || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recvName := fd.Recv.List[0].Names[0].Name
			if recvName == "_" || recvName == "" {
				continue
			}
			guardCheckFunc(pass, fd, recvName, fields)
		}
	}
	return nil
}

// collectGuards finds `// guarded by <mu>` annotations on struct fields.
func collectGuards(pass *Pass) []guardedField {
	var out []guardedField
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					out = append(out, guardedField{
						structName: ts.Name.Name,
						fieldName:  name.Name,
						mu:         mu,
					})
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// unlockExitsFunc reports whether the unlock call is immediately
// followed by a return in its enclosing block — the early-exit idiom
//
//	if !ok {
//		mu.Unlock()
//		return ...
//	}
//
// whose unlock never precedes any later access on the fallthrough path.
func unlockExitsFunc(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	es, ok := stack[len(stack)-1].(*ast.ExprStmt)
	if !ok || es.X != ast.Expr(call) {
		return false
	}
	block, ok := stack[len(stack)-2].(*ast.BlockStmt)
	if !ok {
		return false
	}
	for i, st := range block.List {
		if st == ast.Stmt(es) && i+1 < len(block.List) {
			_, isRet := block.List[i+1].(*ast.ReturnStmt)
			return isRet
		}
	}
	return false
}

// recvRelPath flattens a selector chain rooted at the receiver into its
// dotted field path: for receiver g, `g.s.mu` -> "s.mu"; for receiver
// s, `s.mu` -> "mu". Chains not rooted at the receiver report false.
func recvRelPath(e ast.Expr, recvName string) (string, bool) {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.Ident:
			if x.Name != recvName || len(parts) == 0 {
				return "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		default:
			return "", false
		}
	}
}

// lockEvent is one non-deferred Lock/Unlock call on the receiver's
// mutex, in source order.
type lockEvent struct {
	pos  ast.Node
	lock bool // true for Lock/RLock, false for Unlock/RUnlock
	mu   string
}

func guardCheckFunc(pass *Pass, fd *ast.FuncDecl, recvName string, fields map[string]string) {
	var events []lockEvent
	type access struct {
		sel   *ast.SelectorExpr
		field string
		mu    string
	}
	var accesses []access

	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			// recv.mu.Lock() / recv.mu.RLock() / ...Unlock()
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			var isLock bool
			switch sel.Sel.Name {
			case "Lock", "RLock":
				isLock = true
			case "Unlock", "RUnlock":
				isLock = false
			default:
				return
			}
			path, ok := recvRelPath(sel.X, recvName)
			if !ok {
				return
			}
			if !isLock && inDefer(stack) {
				return // a deferred Unlock releases at return, not here
			}
			if !isLock && unlockExitsFunc(x, stack) {
				return // unlock-then-return: no code after it runs unlocked
			}
			events = append(events, lockEvent{pos: x, lock: isLock, mu: path})
		case *ast.SelectorExpr:
			base, ok := x.X.(*ast.Ident)
			if !ok || base.Name != recvName {
				return
			}
			mu, guarded := fields[x.Sel.Name]
			if !guarded {
				return
			}
			accesses = append(accesses, access{sel: x, field: x.Sel.Name, mu: mu})
		}
	})

	for _, a := range accesses {
		held := false
		for _, e := range events {
			if e.mu != a.mu || e.pos.Pos() >= a.sel.Pos() {
				continue
			}
			held = e.lock
		}
		if !held {
			pass.Reportf(a.sel.Pos(),
				"%s.%s is guarded by %s but accessed in %s without holding it "+
					"(lock %s.%s first, or name the helper *Locked)",
				recvName, a.field, a.mu, funcName(fd), recvName, a.mu)
		}
	}
}
