package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SlotLeak enforces the acquire/release pairing of the cluster front
// end's admission control along every CFG path — the class of bug the
// head-of-line fix in the cluster PR was. Three resources are tracked:
//
//   - admission slots: `m, err := c.acquire(...)` must reach a
//     release(m, ...) call (or defer one, or hand m off) on every path
//     where the acquire succeeded, including cancel and shed paths;
//   - breaker half-open probe tokens: when `ok, probe := b.Allow()`
//     returns probe=true, the caller holds the single probe slot and
//     must resolve it with Success() or Failure() — leaking it wedges
//     the breaker in half-open forever;
//   - waiter queue entries: a list.PushBack element must be Remove()d
//     or retained (stored/returned) on every path, or cancelled waiters
//     accumulate in the queue.
//
// A may-analysis marks each site live from acquisition; edge refinement
// kills slot sites on `err != nil` branches and probe tokens on
// `!probe` branches.
var SlotLeak = &Analyzer{
	Name: "slotleak",
	Doc: "check acquire/release pairing along all paths for admission slots, " +
		"breaker half-open probe tokens, and waiter queue entries",
	Run: runSlotLeak,
}

type slotKind int

const (
	slotAcquire slotKind = iota // m, err := x.acquire(...) -> x.release(m, ...)
	slotProbe                   // ok, probe := b.Allow() -> b.Success()/b.Failure()
	slotQueue                   // elem := l.PushBack(v) -> l.Remove(elem)
	slotGrant                   // g := s.Acquire(...) -> g.Release()
)

// slotSite is one tracked acquisition.
type slotSite struct {
	idx  int
	kind slotKind
	call *ast.CallExpr

	res     *ast.Ident   // the resource variable (slot, element)
	errObj  types.Object // error guarding a slotAcquire (nil if none)
	boolObj types.Object // the probe bool of a slotProbe
	okObj   types.Object // the admit bool of a slotProbe (no admit ⇒ no token)
	recvObj types.Object // identifier receiver (a nil receiver grants nothing)
	recvStr string       // receiver expression, for Success/Failure matching
	relName string       // release method name for messages

	escapeEver bool
}

func runSlotLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, u := range funcUnits(f) {
			slotCheckUnit(pass, u)
		}
	}
	return nil
}

// classifySlotCall recognizes the three acquisition shapes from an
// assignment. Recognition is type-gated so ordinary methods that happen
// to share a name stay out: acquire needs a sibling release method on a
// module-local receiver, Allow needs (bool, bool) results plus
// Success/Failure siblings, PushBack needs a container/list receiver.
func classifySlotCall(pass *Pass, as *ast.AssignStmt) *slotSite {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	recv, name, ok := pass.methodCall(call)
	if !ok {
		return nil
	}
	recvType := func() types.Type {
		if pass.TypesInfo == nil {
			return nil
		}
		if tv, ok := pass.TypesInfo.Types[recv]; ok {
			return tv.Type
		}
		return nil
	}
	hasMethod := func(t types.Type, method string) bool {
		if t == nil {
			return false
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, method)
		_, isFunc := obj.(*types.Func)
		return isFunc
	}

	switch {
	case (name == "acquire" || name == "Acquire") && len(as.Lhs) >= 1:
		res, _ := as.Lhs[0].(*ast.Ident)
		if res == nil || res.Name == "_" {
			return nil
		}
		t := recvType()
		rel := "release"
		if name == "Acquire" {
			rel = "Release"
		}
		if hasMethod(t, rel) {
			if t != nil && !moduleLocalType(t) {
				return nil
			}
			s := &slotSite{kind: slotAcquire, call: call, res: res, recvStr: exprString(recv), relName: rel}
			if len(as.Lhs) >= 2 {
				if errID, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && errID.Name != "_" {
					s.errObj = pass.objectOf(errID)
				}
			}
			return s
		}
		// The scheduler grant shape: the receiver has no release sibling;
		// instead Acquire hands back a module-local handle that carries
		// its own Release method (sched.Scheduler.Acquire -> *sched.Grant).
		if name == "Acquire" && len(as.Lhs) == 1 && pass.TypesInfo != nil {
			if tv, ok := pass.TypesInfo.Types[call]; ok &&
				moduleLocalType(tv.Type) && hasMethod(tv.Type, "Release") {
				return &slotSite{kind: slotGrant, call: call, res: res,
					recvStr: exprString(recv), relName: "Release"}
			}
		}
		return nil

	case name == "Allow" && len(as.Lhs) == 2:
		t := recvType()
		if !hasMethod(t, "Success") || !hasMethod(t, "Failure") {
			return nil
		}
		probeID, ok := as.Lhs[1].(*ast.Ident)
		if !ok || probeID.Name == "_" {
			// Discarding the probe flag means a granted probe token can
			// never be resolved.
			pass.Reportf(call.Pos(),
				"probe result of %s.Allow is discarded: a granted half-open token is never resolved with Success or Failure",
				exprString(recv))
			return nil
		}
		s := &slotSite{kind: slotProbe, call: call, recvStr: exprString(recv), relName: "Success/Failure"}
		s.boolObj = pass.objectOf(probeID)
		if okID, ok := as.Lhs[0].(*ast.Ident); ok && okID.Name != "_" {
			// Allow's contract: a probe token is only granted alongside
			// admission, so the ok==false branch holds no token either.
			s.okObj = pass.objectOf(okID)
		}
		if recvID, ok := recv.(*ast.Ident); ok {
			// `if br != nil { ok, probe := br.Allow() }` ... `if br != nil
			// { resolve }`: on a br==nil edge no token can be outstanding,
			// which keeps the correlated-guard idiom clean.
			s.recvObj = pass.objectOf(recvID)
		}
		return s

	case name == "PushBack" && len(as.Lhs) == 1:
		t := recvType()
		if t == nil || !strings.Contains(t.String(), "container/list.List") {
			return nil
		}
		res, _ := as.Lhs[0].(*ast.Ident)
		if res == nil || res.Name == "_" {
			return nil
		}
		return &slotSite{kind: slotQueue, call: call, res: res, recvStr: exprString(recv), relName: "Remove"}
	}
	return nil
}

// moduleLocalType reports whether the (pointer) type is declared in
// module code — acquire/release pairing is a Nimble contract, not a
// general Go one.
func moduleLocalType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return moduleLocalPath(named.Obj().Pkg().Path())
}

func slotCheckUnit(pass *Pass, u funcUnit) {
	var sites []*slotSite
	anyLoopRelease := false

	walkUnit(u.body, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if s := classifySlotCall(pass, st); s != nil {
				s.idx = len(sites)
				sites = append(sites, s)
			}
		case *ast.CallExpr:
			if _, name, ok := pass.methodCall(st); ok && inLoop(stack) {
				switch name {
				case "release", "Release", "Remove", "Success", "Failure":
					anyLoopRelease = true
				}
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	g := NewCFG(u.body)
	lat := &slotLattice{p: pass, sites: sites}
	res := forward(g, lat)

	reported := make(map[int]bool)
	report := func(pe predEdge, panicPath bool) {
		out := res.out[pe.From]
		for _, s := range sites {
			if !out[s.idx] || s.escapeEver || reported[s.idx] {
				continue
			}
			if anyLoopRelease {
				continue // a release loop (drain/cleanup) covers the set
			}
			reported[s.idx] = true
			suffix := ""
			if panicPath {
				suffix = " (panic path)"
			}
			switch s.kind {
			case slotAcquire:
				pass.Reportf(s.call.Pos(),
					"slot %q from %s.%s may not be released on every path%s; pair it with %s or defer the release",
					s.res.Name, s.recvStr, calledName(s.call), suffix, s.relName)
			case slotGrant:
				pass.Reportf(s.call.Pos(),
					"grant %q from %s.Acquire may not be released on every path%s; defer %s.Release()",
					s.res.Name, s.recvStr, suffix, s.res.Name)
			case slotProbe:
				pass.Reportf(s.call.Pos(),
					"half-open probe token from %s.Allow may not be resolved on every path%s; call Success or Failure on all outcomes",
					s.recvStr, suffix)
			case slotQueue:
				pass.Reportf(s.call.Pos(),
					"queue entry %q from %s.PushBack may not be removed on every path%s (cancelled waiters must be Remove()d)",
					s.res.Name, s.recvStr, suffix)
			}
		}
	}
	for _, pe := range g.Preds(g.Exit) {
		report(pe, false)
	}
	for _, pe := range g.Preds(g.PanicExit) {
		report(pe, true)
	}
}

// calledName returns the method name of a call (for messages).
func calledName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "acquire"
}

type slotLattice struct {
	p     *Pass
	sites []*slotSite
}

func (l *slotLattice) entry() siteFact     { return siteFact{} }
func (l *slotLattice) unreached() siteFact { return nil }

func (l *slotLattice) join(a, b siteFact) siteFact { return joinSites(a, b) }
func (l *slotLattice) equal(a, b siteFact) bool    { return equalSites(a, b) }

// edgeFact kills slot sites on branches proving the acquire failed
// (err != nil) and probe tokens on branches proving probe is false.
func (l *slotLattice) edgeFact(e Edge, out siteFact) siteFact {
	if out == nil || e.Cond == nil {
		return out
	}
	var refined siteFact
	kill := func(idx int) {
		if refined == nil {
			refined = out.clone()
		}
		delete(refined, idx)
	}
	for _, s := range l.sites {
		valid, live := out[s.idx]
		if !live || !valid {
			continue
		}
		switch {
		case s.errObj != nil && edgeImpliesNonNil(l.p, e, s.errObj):
			kill(s.idx)
		case s.kind == slotProbe:
			if val, known := edgeBool(l.p, e, s.boolObj); known && !val {
				kill(s.idx)
				continue
			}
			if s.okObj != nil {
				if val, known := edgeBool(l.p, e, s.okObj); known && !val {
					kill(s.idx)
					continue
				}
			}
			if s.recvObj != nil && edgeImpliesNil(l.p, e, s.recvObj) {
				kill(s.idx)
			}
		}
	}
	if refined != nil {
		return refined
	}
	return out
}

func (l *slotLattice) transfer(b *Block, in siteFact) siteFact {
	if in == nil {
		return nil
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		for _, s := range l.sites {
			l.applyNode(n, s, fact)
		}
	}
	return fact
}

func (l *slotLattice) applyNode(n ast.Node, s *slotSite, fact siteFact) {
	// Literals: a deferred closure that releases counts as a release on
	// this path; other captures of the resource hand it off.
	deferredLit := deferredFuncLit(n)
	for _, lit := range funcLitsIn(n) {
		refs, releases := litSlotUse(l.p, lit, s)
		if releases && lit == deferredLit {
			delete(fact, s.idx)
			continue
		}
		if refs {
			if lit == deferredLit && releases {
				delete(fact, s.idx)
			} else {
				s.escapeEver = true
				delete(fact, s.idx)
			}
		}
	}

	genned := false
	invalidated := false
	visitNode(n, func(m ast.Node, stack []ast.Node) {
		switch mm := m.(type) {
		case *ast.CallExpr:
			if mm == s.call {
				genned = true
				return
			}
			if l.releasesSite(mm, s) {
				delete(fact, s.idx)
			}
		case *ast.Ident:
			if s.errObj != nil && l.p.objectOf(mm) == s.errObj && isAssignLHS(mm, stack) {
				invalidated = true
			}
			if s.res == nil {
				return
			}
			if mm == s.res || !l.p.sameIdent(mm, s.res) {
				return
			}
			if isDeclIdent(mm, stack) {
				return
			}
			if _, call, isRecv := methodCallOn(mm, stack); isRecv {
				_ = call
				return // methods on the resource are neutral
			}
			if isAssignLHS(mm, stack) {
				delete(fact, s.idx) // rebinding
				return
			}
			// Passed as an argument: if the callee is the release, the
			// releasesSite case above already killed the site — any other
			// use (return, store, other args) hands the resource off.
			if isArgOf(mm, stack, func(call *ast.CallExpr) bool { return l.releasesSite(call, s) }) {
				return
			}
			s.escapeEver = true
			delete(fact, s.idx)
		}
	})
	if genned {
		fact[s.idx] = true
	} else if invalidated {
		if valid, live := fact[s.idx]; live && valid {
			fact[s.idx] = false
		}
	}
}

// releasesSite reports whether the call releases the site's resource:
// a release/Release or Remove call taking the resource variable as an
// argument, or Success/Failure on the probe receiver.
func (l *slotLattice) releasesSite(call *ast.CallExpr, s *slotSite) bool {
	_, name, ok := l.p.methodCall(call)
	if !ok {
		return false
	}
	switch s.kind {
	case slotAcquire:
		if name != "release" && name != "Release" {
			return false
		}
	case slotGrant:
		// The grant releases itself: g.Release(), a method on the
		// resource rather than on the granting scheduler.
		if name != "Release" {
			return false
		}
		recv, _, _ := l.p.methodCall(call)
		id, ok := recv.(*ast.Ident)
		return ok && s.res != nil && l.p.sameIdent(id, s.res)
	case slotQueue:
		if name != "Remove" {
			return false
		}
	case slotProbe:
		if name != "Success" && name != "Failure" {
			return false
		}
		recv, _, _ := l.p.methodCall(call)
		return exprString(recv) == s.recvStr
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && l.p.sameIdent(id, s.res) {
			return true
		}
	}
	return false
}

// litSlotUse reports whether a literal references the site's resource
// (or probe receiver) and whether it releases it.
func litSlotUse(p *Pass, lit *ast.FuncLit, s *slotSite) (refs, releases bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.CallExpr:
			recv, name, ok := p.methodCall(m)
			if !ok {
				return true
			}
			switch s.kind {
			case slotAcquire:
				if name == "release" || name == "Release" {
					for _, arg := range m.Args {
						if id, ok := arg.(*ast.Ident); ok && s.res != nil && p.sameIdent(id, s.res) {
							releases = true
						}
					}
				}
			case slotGrant:
				if name == "Release" {
					if id, ok := recv.(*ast.Ident); ok && s.res != nil && p.sameIdent(id, s.res) {
						releases = true
					}
				}
			case slotQueue:
				if name == "Remove" {
					for _, arg := range m.Args {
						if id, ok := arg.(*ast.Ident); ok && s.res != nil && p.sameIdent(id, s.res) {
							releases = true
						}
					}
				}
			case slotProbe:
				if (name == "Success" || name == "Failure") && exprString(recv) == s.recvStr {
					releases = true
				}
			}
		case *ast.Ident:
			if s.res != nil && p.sameIdent(m, s.res) {
				refs = true
			}
		}
		return true
	})
	if s.kind == slotProbe {
		// Probe tokens have no resource variable; the literal "refers" to
		// the token when it resolves it.
		refs = releases
	}
	return refs, releases
}

// isArgOf reports whether the identifier is an argument of a call
// matching pred.
func isArgOf(id *ast.Ident, stack []ast.Node, pred func(*ast.CallExpr) bool) bool {
	if len(stack) < 1 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if arg == ast.Expr(id) {
			return pred(call)
		}
	}
	return false
}
