package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// parseSrc parses one synthetic file (no type checking — suppression is
// purely syntactic).
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// lineStart returns a Pos on the given 1-based line.
func lineStart(fset *token.FileSet, files []*ast.File, line int) token.Pos {
	return fset.File(files[0].Pos()).LineStart(line)
}

func diagAt(pos token.Pos, analyzer string) analysis.Diagnostic {
	return analysis.Diagnostic{Pos: pos, Analyzer: analyzer, Message: "synthetic"}
}

// TestFilterMultiAnalyzerDirective: one directive naming two analyzers
// suppresses findings from both on its line and the next, and nothing
// else.
func TestFilterMultiAnalyzerDirective(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore spanfinish,opclose both stem from the handoff in drain
var x = 1
`)
	dirLine, nextLine := 3, 4
	diags := []analysis.Diagnostic{
		diagAt(lineStart(fset, files, dirLine), "spanfinish"),
		diagAt(lineStart(fset, files, nextLine), "opclose"),
		diagAt(lineStart(fset, files, nextLine), "sqlsafe"), // not named: kept
	}
	kept, suppressed := analysis.Filter(fset, files, diags)
	if len(kept) != 1 || len(suppressed) != 2 {
		t.Fatalf("kept %d / suppressed %d, want 1 / 2", len(kept), len(suppressed))
	}
	if kept[0].Analyzer != "sqlsafe" {
		t.Errorf("kept %q, want the unnamed analyzer sqlsafe", kept[0].Analyzer)
	}
}

// TestFilterNewAnalyzerNames: the directive machinery works for the
// dataflow analyzers' names just like the original four.
func TestFilterNewAnalyzerNames(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore lockorder,slotleak,sqlsafe the probe is resolved by the janitor goroutine
var x = 1
`)
	pos := lineStart(fset, files, 4)
	diags := []analysis.Diagnostic{
		diagAt(pos, "lockorder"),
		diagAt(pos, "slotleak"),
		diagAt(pos, "sqlsafe"),
	}
	kept, suppressed := analysis.Filter(fset, files, diags)
	if len(kept) != 0 || len(suppressed) != 3 {
		t.Fatalf("kept %d / suppressed %d, want 0 / 3", len(kept), len(suppressed))
	}
}

// TestFilterScopeIsTwoLines: a directive does not reach past the line
// directly below it.
func TestFilterScopeIsTwoLines(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore slotleak cleanup happens in the caller
var x = 1
var y = 2
`)
	diags := []analysis.Diagnostic{diagAt(lineStart(fset, files, 5), "slotleak")}
	kept, suppressed := analysis.Filter(fset, files, diags)
	if len(kept) != 1 || len(suppressed) != 0 {
		t.Fatalf("kept %d / suppressed %d, want 1 / 0 (two lines past the directive)", len(kept), len(suppressed))
	}
}

// TestCheckDirectivesUnknownName: a typo in a directive's analyzer list
// is itself a finding; well-formed names are not.
func TestCheckDirectivesUnknownName(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore lockodrer the queue drains on close
var x = 1

//lint:ignore lockorder,sqlsafe the queue drains on close
var y = 2
`)
	diags := analysis.CheckDirectives(fset, files)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "suppress" {
		t.Errorf("analyzer = %q, want suppress", d.Analyzer)
	}
	if !strings.Contains(d.Message, `unknown analyzer "lockodrer"`) {
		t.Errorf("message = %q", d.Message)
	}
	if line := fset.Position(d.Pos).Line; line != 3 {
		t.Errorf("reported at line %d, want 3", line)
	}
}

// TestCheckDirectivesIgnoresReasonless: a reasonless directive already
// suppresses nothing, so its names are not checked either.
func TestCheckDirectivesIgnoresReasonless(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore nosuchanalyzer
var x = 1
`)
	if diags := analysis.CheckDirectives(fset, files); len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0 (reasonless directives are inert)", len(diags))
	}
}
