package analysis

import (
	"go/ast"
	"strings"
)

// CtxBefore enforces the fan-out discipline PR 1 introduced in
// exec.Prefetch: code that launches a goroutine performing source I/O
// (calls into catalog, sources, or rdb, or into the engine's fetch /
// materialize / query entry points) must consult its context.Context —
// ctx.Err() or ctx.Done() — before (or inside, ahead of the I/O) the
// spawn. A cancelled query must stop fanning out instead of launching
// the remaining fetches; -race never sees this, and under load it is
// the difference between shedding and amplifying.
var CtxBefore = &Analyzer{
	Name: "ctxbefore",
	Doc: "check that functions spawning source-I/O goroutines consult ctx.Err()/ctx.Done() " +
		"before the spawn (or inside the goroutine before the I/O)",
	Run: runCtxBefore,
}

// ioPkgSuffixes are the packages whose calls count as source I/O.
var ioPkgSuffixes = []string{
	"internal/catalog", "internal/sources", "internal/rdb",
}

// ioMethods are engine entry points that perform source I/O; a call to
// one of these on a repo-owned type inside a goroutine is a fan-out.
var ioMethods = map[string]bool{
	"fetch": true, "Fetch": true, "doFetch": true,
	"Materialize": true, "MaterializeSchema": true,
	"Refresh": true, "RefreshAll": true,
	"Query": true, "QueryOpt": true, "QueryAST": true,
}

func runCtxBefore(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxCheckFunc(pass, fd)
		}
	}
	return nil
}

// isIOCall reports whether call performs source I/O per the rules above.
func isIOCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-qualified function call.
	if id, ok := sel.X.(*ast.Ident); ok {
		if path, isPkg := pass.pkgPathOf(id); isPkg {
			return hasSuffixAny(path, ioPkgSuffixes...)
		}
		if pass.TypesInfo == nil || len(pass.TypesInfo.Uses) == 0 {
			// No type info: fall back to the conventional import names.
			switch id.Name {
			case "catalog", "sources", "rdb":
				return true
			}
		}
	}
	// Method calls: any method on a type owned by an I/O package counts
	// (catalog.Source.Fetch, rdb handles, ...); on other repo-owned
	// types only the known fan-out entry points do.
	if pass.TypesInfo != nil {
		if s, ok := pass.TypesInfo.Selections[sel]; ok {
			obj := s.Obj()
			if obj != nil && obj.Pkg() != nil {
				p := obj.Pkg().Path()
				if hasSuffixAny(p, ioPkgSuffixes...) {
					return true
				}
				if !ioMethods[sel.Sel.Name] {
					return false
				}
				// Repo-owned (module or corpus) types only: a stdlib method
				// that happens to be called Query (net/url) is not source I/O.
				return p == "repro" || strings.HasPrefix(p, "repro/") || strings.HasPrefix(p, "testdata/")
			}
		}
		if pass.typeStringOf(sel.X) != "" {
			return false // resolved to something without a matching selection
		}
	}
	return ioMethods[sel.Sel.Name]
}

// isCtxConsult reports whether call is ctx.Err() or ctx.Done() on a
// context.Context (by type when known, by conventional naming when not).
func isCtxConsult(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	if ts := pass.typeStringOf(sel.X); ts != "" {
		return ts == "context.Context"
	}
	return strings.Contains(exprString(sel.X), "ctx")
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if ts := pass.typeStringOf(p.Type); ts == "context.Context" {
			return true
		}
		if sel, ok := p.Type.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" && sel.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

func ctxCheckFunc(pass *Pass, fd *ast.FuncDecl) {
	// Consultation sites anywhere in the declaration, by position.
	var consults []ast.Node
	walkStack(fd, func(n ast.Node, _ []ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isCtxConsult(pass, call) {
			consults = append(consults, call)
		}
	})

	walkStack(fd, func(n ast.Node, _ []ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		// Where does the I/O happen inside the spawned work?
		var ioPos ast.Node
		if isIOCall(pass, gs.Call) {
			ioPos = gs.Call
		} else if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if ioPos != nil {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok && isIOCall(pass, call) {
					ioPos = call
				}
				return true
			})
		}
		if ioPos == nil {
			return
		}
		// Consulted before the spawn, or inside the goroutine before the
		// I/O call?
		for _, c := range consults {
			if c.Pos() < gs.Pos() || (c.Pos() > gs.Pos() && c.Pos() < ioPos.Pos()) {
				return
			}
		}
		if !hasCtxParam(pass, fd) && len(consults) == 0 {
			pass.Reportf(gs.Pos(),
				"%s launches a goroutine doing source I/O but has no context.Context to consult; "+
					"accept a ctx and check ctx.Err() before spawning", funcName(fd))
			return
		}
		pass.Reportf(gs.Pos(),
			"%s spawns source I/O without consulting the context first; "+
				"check ctx.Err() or ctx.Done() before launching the fetch", funcName(fd))
	})
}
