// Package analysis is nimble-lint's invariant-checking suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) carrying custom analyzers that
// encode Nimble's own plumbing rules — invariants go vet cannot see
// because they are about this codebase's contracts, not the language:
//
//   - spanfinish: every obs.Span started in a function is Finished on
//     all paths, or escapes to an owner who will finish it.
//   - opclose: every algebra operator whose Open succeeded has Close
//     reachable, including the error paths of later Opens.
//   - ctxbefore: goroutines that perform source I/O are only launched
//     by code that consulted its context.Context first.
//   - guardedby: struct fields annotated "guarded by <mu>" are only
//     touched while that mutex is held.
//
// The suite runs as `go run ./cmd/nimble-lint ./...` (wired into
// `make check` and CI) and is exercised by analysistest-style corpora
// under testdata/. Findings are suppressed, one at a time and with a
// recorded reason, by the directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real multichecker if the dependency ever becomes available.
type Analyzer struct {
	// Name is the identifier used in diagnostics, -only filters, and
	// suppression directives.
	Name string
	// Doc is the one-paragraph description shown by nimble-lint -list.
	Doc string
	// Run reports violations on the pass via Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SpanFinish, OpClose, CtxBefore, GuardedBy}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over one loaded package and returns the
// raw diagnostics sorted by position (suppression directives are NOT
// applied here; see Filter).
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
