// Package analysis is nimble-lint's invariant-checking suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) carrying custom analyzers that
// encode Nimble's own plumbing rules — invariants go vet cannot see
// because they are about this codebase's contracts, not the language:
//
//   - spanfinish: every obs.Span started in a function is Finished on
//     all paths, or escapes to an owner who will finish it.
//   - opclose: every algebra operator whose Open succeeded has Close
//     reachable, including the error paths of later Opens.
//   - ctxbefore: goroutines that perform source I/O are only launched
//     by code that consulted its context.Context first.
//   - guardedby: struct fields annotated "guarded by <mu>" are only
//     touched while that mutex is held.
//
// The suite runs as `go run ./cmd/nimble-lint ./...` (wired into
// `make check` and CI) and is exercised by analysistest-style corpora
// under testdata/. Findings are suppressed, one at a time and with a
// recorded reason, by the directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real multichecker if the dependency ever becomes available.
type Analyzer struct {
	// Name is the identifier used in diagnostics, -only filters, and
	// suppression directives.
	Name string
	// Doc is the one-paragraph description shown by nimble-lint -list.
	Doc string
	// Run reports violations on the pass via Pass.Reportf.
	Run func(*Pass) error
	// Finish, when set, runs once after every target in a Session has
	// been analyzed and reports suite-level diagnostics — conclusions
	// that need facts from more than one package, like lockorder's
	// lock-acquisition graph.
	Finish func(*Session) []Diagnostic
}

// Pass carries one package's syntax and types through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Session is the suite run this pass belongs to (never nil); Run
	// hooks use it to accumulate cross-package state for Finish.
	Session *Session

	diags []Diagnostic
}

// Session accumulates state across every target analyzed in one
// nimble-lint invocation so Finish hooks can draw whole-program
// conclusions.
type Session struct {
	Fset  *token.FileSet
	files []*ast.File

	state map[*Analyzer]any
}

// NewSession starts a suite run over targets sharing fset.
func NewSession(fset *token.FileSet) *Session {
	return &Session{Fset: fset, state: make(map[*Analyzer]any)}
}

// Files returns every file analyzed so far, for suite-level suppression
// filtering.
func (s *Session) Files() []*ast.File { return s.files }

// State returns the accumulator for a, creating it with mk on first use.
func (s *Session) State(a *Analyzer, mk func() any) any {
	v, ok := s.state[a]
	if !ok {
		v = mk()
		s.state[a] = v
	}
	return v
}

// RunTarget executes the analyzers over one loaded package, returning
// that package's diagnostics sorted by position (suppression directives
// are NOT applied here; see Filter).
func (s *Session) RunTarget(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	s.files = append(s.files, t.Files...)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			Session:   s,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		out = append(out, pass.diags...)
	}
	sortDiags(out)
	return out, nil
}

// FinishAll runs every Finish hook and returns the suite-level
// diagnostics, sorted.
func (s *Session) FinishAll(analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Finish != nil {
			out = append(out, a.Finish(s)...)
		}
	}
	sortDiags(out)
	return out
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SpanFinish, OpClose, CtxBefore, GuardedBy, LockOrder, SlotLeak, SQLSafe}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over one loaded package — including any
// Finish hooks, scoped to just this target — and returns the raw
// diagnostics sorted by position (suppression directives are NOT
// applied here; see Filter). Multi-target callers should drive a
// Session directly so Finish sees the whole program.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	s := NewSession(t.Fset)
	out, err := s.RunTarget(t, analyzers)
	if err != nil {
		return nil, err
	}
	out = append(out, s.FinishAll(analyzers)...)
	sortDiags(out)
	return out, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos < ds[j].Pos
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}
