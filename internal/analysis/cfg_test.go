package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgOf builds the CFG of the first function declared in src.
func cfgOf(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return NewCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reach returns the blocks reachable from Entry along Succs.
func reach(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			dfs(e.To)
		}
	}
	dfs(g.Entry)
	return seen
}

// blockWith returns the reachable block whose printed nodes contain
// the fragment.
func blockWith(t *testing.T, g *CFG, fragment string) *Block {
	t.Helper()
	for b := range reach(g) {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), fragment) {
				return b
			}
		}
	}
	t.Fatalf("no reachable block contains %q", fragment)
	return nil
}

// nodeText flattens a node to its identifiers and literals, enough for
// fragment matching in tests.
func nodeText(n ast.Node) string {
	var parts []string
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.Ident:
			parts = append(parts, x.Name)
		case *ast.BasicLit:
			parts = append(parts, x.Value)
		}
		return true
	})
	return strings.Join(parts, " ")
}

// reachablePreds counts incoming edges whose source is reachable from
// Entry (dead blocks still link to the exits so their nodes exist in
// the graph).
func reachablePreds(g *CFG, b *Block) int {
	r := reach(g)
	n := 0
	for _, pe := range g.Preds(b) {
		if r[pe.From] {
			n++
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g := cfgOf(t, `package p
func f() {
	x := 1
	_ = x
}`)
	r := reach(g)
	if !r[g.Exit] {
		t.Error("exit unreachable")
	}
	if r[g.PanicExit] {
		t.Error("panic exit reachable in panic-free function")
	}
	if n := len(g.Preds(g.Exit)); n != 1 {
		t.Errorf("exit preds = %d, want 1", n)
	}
}

func TestCFGIfElseEdges(t *testing.T) {
	g := cfgOf(t, `package p
func f(b bool) int {
	if b {
		return 1
	}
	return 2
}`)
	if n := len(g.Preds(g.Exit)); n != 2 {
		t.Fatalf("exit preds = %d, want 2 (both returns)", n)
	}
	// The branch block must emit one plain-condition edge and one
	// negated-condition edge.
	var pos, neg int
	for b := range reach(g) {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			if e.Negate {
				neg++
			} else {
				pos++
			}
		}
	}
	if pos != 1 || neg != 1 {
		t.Errorf("condition edges: %d plain / %d negated, want 1 / 1", pos, neg)
	}
}

func TestCFGPanicPath(t *testing.T) {
	g := cfgOf(t, `package p
func f(b bool) {
	if b {
		panic("x")
	}
	_ = b
}`)
	if n := len(g.Preds(g.PanicExit)); n != 1 {
		t.Errorf("panic-exit preds = %d, want 1", n)
	}
	if n := len(g.Preds(g.Exit)); n != 1 {
		t.Errorf("exit preds = %d, want 1 (the fallthrough)", n)
	}
	pb := blockWith(t, g, "panic")
	for _, e := range pb.Succs {
		if e.To == g.Exit {
			t.Error("panic block has an edge to the normal exit")
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}`)
	anyLoop, anyBack := false, false
	for b := range reach(g) {
		if b.Loop {
			anyLoop = true
		}
		for _, e := range b.Succs {
			if e.To.Index < b.Index {
				anyBack = true
			}
		}
	}
	if !anyLoop {
		t.Error("no block flagged Loop")
	}
	if !anyBack {
		t.Error("no back edge")
	}
	if !reach(g)[g.Exit] {
		t.Error("exit unreachable (loop may not terminate in the CFG)")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := cfgOf(t, `package p
func f() int {
	return 1
	_ = 2
}`)
	r := reach(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), "2") && r[b] {
				t.Error("statement after return is reachable")
			}
		}
	}
}

func TestCFGProcessExitIsTerminal(t *testing.T) {
	g := cfgOf(t, `package p
import "os"
func f(b bool) {
	if b {
		os.Exit(1)
	}
	_ = b
}`)
	eb := blockWith(t, g, "Exit")
	if len(eb.Succs) != 0 {
		t.Errorf("os.Exit block has %d successors, want 0", len(eb.Succs))
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) int {
	switch n {
	case 0:
		return 0
	}
	return 1
}`)
	if n := len(g.Preds(g.Exit)); n != 2 {
		t.Errorf("exit preds = %d, want 2 (case return and fallthrough return)", n)
	}
}

func TestCFGSelectBranches(t *testing.T) {
	g := cfgOf(t, `package p
func f(c chan int, done chan struct{}) int {
	select {
	case v := <-c:
		return v
	case <-done:
		return -1
	}
}`)
	if n := reachablePreds(g, g.Exit); n != 2 {
		t.Errorf("reachable exit preds = %d, want 2 (one per comm clause)", n)
	}
}

// TestForwardMayAnalysis smoke-tests the worklist solver with the span
// lattice shape: a site genned before a branch and killed on only one
// arm must still be live at the join.
func TestForwardMayAnalysis(t *testing.T) {
	g := cfgOf(t, `package p
func f(b bool) {
	x := gen()
	if b {
		kill(x)
	}
	_ = b
}`)
	lat := &testLattice{}
	res := forward[siteFact](g, lat)
	for _, pe := range g.Preds(g.Exit) {
		out := res.out[pe.From]
		if _, live := out[0]; !live {
			t.Error("site killed on one arm only, must still be live at exit (may-analysis)")
		}
	}
}

// testLattice gens site 0 at a call to gen and kills it at a call to
// kill.
type testLattice struct{}

func (l *testLattice) entry() siteFact                   { return siteFact{} }
func (l *testLattice) unreached() siteFact               { return nil }
func (l *testLattice) join(a, b siteFact) siteFact       { return joinSites(a, b) }
func (l *testLattice) equal(a, b siteFact) bool          { return equalSites(a, b) }
func (l *testLattice) edgeFact(e Edge, f siteFact) siteFact { return f }

func (l *testLattice) transfer(b *Block, in siteFact) siteFact {
	if in == nil {
		return nil
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "gen":
					fact[0] = true
				case "kill":
					delete(fact, 0)
				}
			}
			return true
		})
	}
	return fact
}
