package analysis

import (
	"go/ast"
	"strings"
)

// SpanFinish enforces the tracing contract of internal/obs: a span
// obtained from obs.NewSpan, obs.StartSpan, or (*obs.Span).StartChild
// must be Finished on every path out of the function that started it,
// or escape to an owner (returned, stored, or passed along) who takes
// over that obligation. An unfinished span reports a running duration
// forever and silently corrupts every trace that contains it.
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc: "check that every started obs.Span is Finished on all paths or escapes to an owner; " +
		"prefer `defer sp.Finish()` when the span covers the whole function",
	Run: runSpanFinish,
}

// span-creating callees, keyed by selector name.
var spanCreators = map[string]bool{
	"NewSpan":    true, // obs.NewSpan(name)
	"StartSpan":  true, // obs.StartSpan(ctx, name) -> (ctx, *Span)
	"StartChild": true, // (*Span).StartChild(name)
}

// spanCreation describes one tracked `sp := ...` site.
type spanCreation struct {
	ident *ast.Ident   // the variable the span is bound to
	call  *ast.CallExpr
	kind  string       // creator name, for messages
	owner ast.Node     // innermost enclosing function (lit or decl)
}

func runSpanFinish(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			spanCheckFunc(pass, fd)
		}
	}
	return nil
}

// spanCreatorKind classifies a call as span-creating ("" when not).
// Type information, when present, must agree; without it the selector
// name decides (the analyzer is meant to run with full types; the
// fallback keeps partial corpora useful).
func spanCreatorKind(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanCreators[sel.Sel.Name] {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if path, isPkg := pass.pkgPathOf(id); isPkg {
			// obs.NewSpan / obs.StartSpan: qualifier must be the obs package.
			if strings.HasSuffix(path, "internal/obs") {
				return name
			}
			return ""
		}
	}
	if name == "StartChild" {
		// Method form: when types resolve, the receiver must be *obs.Span.
		if ts := pass.typeStringOf(sel.X); ts != "" && !strings.HasSuffix(ts, "internal/obs.Span") {
			return ""
		}
		return name
	}
	// Package-qualified form without type info: accept the conventional
	// qualifier name only.
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "obs" {
		return name
	}
	return ""
}

// spanIdentFor returns the identifier a creation binds the span to
// (nil when the span immediately escapes into a non-ident target).
// discarded reports a blank-identifier binding.
func spanIdentFor(kind string, lhs []ast.Expr, rhsIndex, rhsLen int) (id *ast.Ident, discarded bool) {
	var target ast.Expr
	switch {
	case kind == "StartSpan" && rhsLen == 1 && len(lhs) == 2:
		target = lhs[1] // ctx, sp := obs.StartSpan(...)
	case rhsLen == len(lhs):
		target = lhs[rhsIndex]
	case rhsLen == 1 && len(lhs) == 1:
		target = lhs[0]
	default:
		return nil, false
	}
	ident, ok := target.(*ast.Ident)
	if !ok {
		return nil, false // sp stored into a field: escapes by construction
	}
	if ident.Name == "_" {
		return nil, true
	}
	return ident, false
}

func spanCheckFunc(pass *Pass, fd *ast.FuncDecl) {
	var creations []spanCreation

	// Pass 1: find creations (assignments, var specs, bare expression
	// statements).
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				kind := spanCreatorKind(pass, call)
				if kind == "" {
					continue
				}
				ident, discarded := spanIdentFor(kind, st.Lhs, i, len(st.Rhs))
				if discarded {
					pass.Reportf(call.Pos(), "result of %s is discarded: the span is never finished", kind)
					continue
				}
				if ident != nil {
					creations = append(creations, spanCreation{
						ident: ident, call: call, kind: kind,
						owner: enclosingFunc(st, stack),
					})
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if kind := spanCreatorKind(pass, call); kind != "" {
					pass.Reportf(call.Pos(), "result of %s is discarded: the span is never finished", kind)
				}
			}
		}
	})

	// Pass 2: for each creation, classify every other use of the variable.
	for _, c := range creations {
		var finishPos []ast.Node // Finish call sites
		deferredFinish := false
		escapes := false

		walkStack(fd, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || id == c.ident || !pass.sameIdent(id, c.ident) {
				return
			}
			if isDeclIdent(id, stack) {
				return // declaration of the variable: neutral
			}
			// Receiver of a method call?
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
						if sel.Sel.Name == "Finish" {
							finishPos = append(finishPos, call)
							if inDefer(stack) {
								deferredFinish = true
							}
						}
						return // method call on the span: neutral
					}
					// Selector but not a call (e.g. method value sp.Finish
					// passed along): treat as escape.
					escapes = true
					return
				}
			}
			// LHS of an assignment (rebinding) is neutral; everything else
			// (argument, return value, composite literal, send, ...) hands
			// the span to someone else.
			if len(stack) >= 1 {
				if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if l == ast.Expr(id) {
							return
						}
					}
				}
			}
			escapes = true
		})

		if escapes {
			continue
		}
		if len(finishPos) == 0 {
			pass.Reportf(c.call.Pos(),
				"span %q from %s is never finished (add `defer %s.Finish()` or finish it before every return)",
				c.ident.Name, c.kind, c.ident.Name)
			continue
		}
		if deferredFinish {
			continue
		}
		// No deferred Finish: every return leaving the creating function
		// after the creation must have a Finish somewhere between the
		// creation and the return (straight-line approximation).
		for _, ret := range returnsIn(fd, c.owner) {
			if ret.Pos() <= c.call.Pos() {
				continue
			}
			finished := false
			for _, fc := range finishPos {
				if fc.Pos() > c.call.Pos() && fc.Pos() < ret.Pos() {
					finished = true
					break
				}
			}
			if !finished {
				pass.Reportf(ret.Pos(),
					"span %q (started line %d) may not be finished on this return path; finish it before returning or use defer",
					c.ident.Name, pass.posLine(c.call.Pos()))
			}
		}
	}
}
