package analysis

import (
	"go/ast"
	"strings"
)

// SpanFinish enforces the tracing contract of internal/obs: a span
// obtained from obs.NewSpan, obs.StartSpan, or (*obs.Span).StartChild
// must be Finished on every path out of the function that started it,
// or escape to an owner (returned, stored, or passed along) who takes
// over that obligation. An unfinished span reports a running duration
// forever and silently corrupts every trace that contains it.
//
// The check is a may-analysis over the function's CFG: a span site is
// live from its creation until a Finish, a deferred Finish, or an
// escape kills it on that path. A site still live on an edge into the
// exit (or the panic exit — only deferred Finishes survive a panic) is
// a leak on that specific path.
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc: "check that every started obs.Span is Finished on all paths (including panic paths) " +
		"or escapes to an owner; prefer `defer sp.Finish()` when the span covers the whole function",
	Run: runSpanFinish,
}

// span-creating callees, keyed by selector name.
var spanCreators = map[string]bool{
	"NewSpan":     true, // obs.NewSpan(name)
	"NewRootSpan": true, // obs.NewRootSpan(name, tc)
	"StartSpan":   true, // obs.StartSpan(ctx, name) -> (ctx, *Span)
	"StartChild":  true, // (*Span).StartChild(name)
	"NewRoot":     true, // (*TraceStore).NewRoot(name, tc)
}

// spanSite is one tracked `sp := ...` creation inside one function unit.
type spanSite struct {
	idx   int
	ident *ast.Ident // the variable the span is bound to
	call  *ast.CallExpr
	kind  string // creator name, for messages

	finishEver bool // some path Finishes the span
	escapeEver bool // the span is handed to another owner somewhere
}

func runSpanFinish(pass *Pass) error {
	for _, f := range pass.Files {
		for _, u := range funcUnits(f) {
			spanCheckUnit(pass, u)
		}
	}
	return nil
}

// spanCreatorKind classifies a call as span-creating ("" when not).
// Type information, when present, must agree; without it the selector
// name decides (the analyzer is meant to run with full types; the
// fallback keeps partial corpora useful).
func spanCreatorKind(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanCreators[sel.Sel.Name] {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if path, isPkg := pass.pkgPathOf(id); isPkg {
			// obs.NewSpan / obs.StartSpan: qualifier must be the obs package.
			if strings.HasSuffix(path, "internal/obs") {
				return name
			}
			return ""
		}
	}
	switch name {
	case "StartChild":
		// Method form: when types resolve, the receiver must be *obs.Span.
		if ts := pass.typeStringOf(sel.X); ts != "" && !strings.HasSuffix(ts, "internal/obs.Span") {
			return ""
		}
		return name
	case "NewRoot":
		// Method form: the receiver must be *obs.TraceStore.
		if ts := pass.typeStringOf(sel.X); ts != "" && !strings.HasSuffix(ts, "internal/obs.TraceStore") {
			return ""
		}
		return name
	}
	// Package-qualified form without type info: accept the conventional
	// qualifier name only.
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "obs" {
		return name
	}
	return ""
}

// spanIdentFor returns the identifier a creation binds the span to
// (nil when the span immediately escapes into a non-ident target).
// discarded reports a blank-identifier binding.
func spanIdentFor(kind string, lhs []ast.Expr, rhsIndex, rhsLen int) (id *ast.Ident, discarded bool) {
	var target ast.Expr
	switch {
	case kind == "StartSpan" && rhsLen == 1 && len(lhs) == 2:
		target = lhs[1] // ctx, sp := obs.StartSpan(...)
	case rhsLen == len(lhs):
		target = lhs[rhsIndex]
	case rhsLen == 1 && len(lhs) == 1:
		target = lhs[0]
	default:
		return nil, false
	}
	ident, ok := target.(*ast.Ident)
	if !ok {
		return nil, false // sp stored into a field: escapes by construction
	}
	if ident.Name == "_" {
		return nil, true
	}
	return ident, false
}

func spanCheckUnit(pass *Pass, u funcUnit) {
	var sites []*spanSite

	// Find creations in this unit (assignments, bare expression
	// statements); nested literals are their own units.
	walkUnit(u.body, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				kind := spanCreatorKind(pass, call)
				if kind == "" {
					continue
				}
				ident, discarded := spanIdentFor(kind, st.Lhs, i, len(st.Rhs))
				if discarded {
					pass.Reportf(call.Pos(), "result of %s is discarded: the span is never finished", kind)
					continue
				}
				if ident != nil {
					sites = append(sites, &spanSite{idx: len(sites), ident: ident, call: call, kind: kind})
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if kind := spanCreatorKind(pass, call); kind != "" {
					pass.Reportf(call.Pos(), "result of %s is discarded: the span is never finished", kind)
				}
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	g := NewCFG(u.body)
	lat := &spanLattice{p: pass, sites: sites}
	res := forward[siteFact](g, lat)

	for _, s := range sites {
		if s.escapeEver {
			continue // a new owner takes over the obligation
		}
		if !s.finishEver {
			pass.Reportf(s.call.Pos(),
				"span %q from %s is never finished (add `defer %s.Finish()` or finish it before every return)",
				s.ident.Name, s.kind, s.ident.Name)
			continue
		}
		for _, pe := range g.Preds(g.Exit) {
			if !res.out[pe.From][s.idx] {
				continue
			}
			if ret, ok := lastNode(pe.From).(*ast.ReturnStmt); ok {
				pass.Reportf(ret.Pos(),
					"span %q (started line %d) may not be finished on this return path; finish it before returning or use defer",
					s.ident.Name, pass.posLine(s.call.Pos()))
			} else {
				pass.Reportf(s.call.Pos(),
					"span %q (started line %d) may not be finished on every path out of the function; finish it before returning or use defer",
					s.ident.Name, pass.posLine(s.call.Pos()))
			}
		}
		for _, pe := range g.Preds(g.PanicExit) {
			if !res.out[pe.From][s.idx] {
				continue
			}
			pos := s.call.Pos()
			if n := lastNode(pe.From); n != nil {
				pos = n.Pos()
			}
			pass.Reportf(pos,
				"span %q (started line %d) may not be finished on this panic path; a deferred Finish would survive the panic",
				s.ident.Name, pass.posLine(s.call.Pos()))
		}
	}
}

// spanLattice: may-analysis of still-unfinished span sites.
type spanLattice struct {
	p     *Pass
	sites []*spanSite
}

func (l *spanLattice) entry() siteFact         { return siteFact{} }
func (l *spanLattice) unreached() siteFact     { return nil }
func (l *spanLattice) join(a, b siteFact) siteFact  { return joinSites(a, b) }
func (l *spanLattice) equal(a, b siteFact) bool     { return equalSites(a, b) }
func (l *spanLattice) edgeFact(e Edge, out siteFact) siteFact { return out }

func (l *spanLattice) transfer(b *Block, in siteFact) siteFact {
	if in == nil {
		return nil
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		for _, s := range l.sites {
			l.applyNode(n, s, fact)
		}
	}
	return fact
}

// applyNode updates fact for one site across one block node: Finish,
// deferred Finish, escape, and rebinding all end the obligation on this
// path; the creation call (re)starts it.
func (l *spanLattice) applyNode(n ast.Node, s *spanSite, fact siteFact) {
	// Function literals inside the node: a literal that Finishes the span
	// under a defer is a (deferred) finish; any other captured use hands
	// the span to the closure's owner.
	deferredLit := deferredFuncLit(n)
	for _, lit := range funcLitsIn(n) {
		refs, finishes := litSpanUse(l.p, lit, s.ident)
		if !refs {
			continue
		}
		if lit == deferredLit && finishes {
			s.finishEver = true
		} else {
			s.escapeEver = true
		}
		delete(fact, s.idx)
	}

	genned := false
	visitNode(n, func(m ast.Node, stack []ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok && call == s.call {
			genned = true
			return
		}
		id, ok := m.(*ast.Ident)
		if !ok || id == s.ident || !l.p.sameIdent(id, s.ident) {
			return
		}
		if isDeclIdent(id, stack) {
			return
		}
		if sel, call, isRecv := methodCallOn(id, stack); isRecv {
			if sel.Sel.Name == "Finish" {
				s.finishEver = true
				delete(fact, s.idx)
				_ = call
			}
			return // other method calls on the span: neutral
		}
		if isSelectorNonCall(id, stack) {
			// Method value (sp.Finish passed along): escapes.
			s.escapeEver = true
			delete(fact, s.idx)
			return
		}
		if isAssignLHS(id, stack) {
			// Rebinding: this variable no longer holds the span.
			delete(fact, s.idx)
			return
		}
		// Argument, return value, composite literal, send, ...: escape.
		s.escapeEver = true
		delete(fact, s.idx)
	})
	if genned {
		fact[s.idx] = true
	}
}

// litSpanUse reports whether the literal references the span variable
// and whether it calls Finish on it.
func litSpanUse(p *Pass, lit *ast.FuncLit, def *ast.Ident) (refs, finishes bool) {
	walkStack(lit.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || !p.sameIdent(id, def) {
			return
		}
		refs = true
		if sel, _, isRecv := methodCallOn(id, stack); isRecv && sel.Sel.Name == "Finish" {
			finishes = true
		}
	})
	return refs, finishes
}
