// Suppression: a finding is silenced by an explicit, per-site directive
// that names the analyzer and records a reason, so every intentional
// escape from an invariant is documented where it happens:
//
//	//lint:ignore spanfinish the span escapes into the retained trace ring
//
// The directive applies to diagnostics on its own line and on the line
// directly below it (covering both the end-of-line and the
// comment-above placements). The reason is mandatory: a bare
// "//lint:ignore spanfinish" suppresses nothing.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore "

type directive struct {
	analyzers map[string]bool
	pos       token.Pos
	line      int
	reason    string
}

// directives extracts every well-formed suppression directive from the
// files' comments.
func directives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, ok := strings.Cut(rest, " ")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // reason is mandatory
				}
				d := directive{
					analyzers: make(map[string]bool),
					pos:       c.Pos(),
					line:      fset.Position(c.Pos()).Line,
					reason:    strings.TrimSpace(reason),
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.analyzers[n] = true
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Filter splits diagnostics into kept and suppressed according to the
// files' //lint:ignore directives.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	ds := directives(fset, files)
	if len(ds) == 0 {
		return diags, nil
	}
	// line (and line+1) of a directive naming the analyzer -> suppressed
	byLine := make(map[int]map[string]bool)
	add := func(line int, names map[string]bool) {
		m := byLine[line]
		if m == nil {
			m = make(map[string]bool)
			byLine[line] = m
		}
		for n := range names {
			m[n] = true
		}
	}
	for _, d := range ds {
		add(d.line, d.analyzers)
		add(d.line+1, d.analyzers)
	}
	for _, dg := range diags {
		line := fset.Position(dg.Pos).Line
		if m := byLine[line]; m != nil && m[dg.Analyzer] {
			suppressed = append(suppressed, dg)
			continue
		}
		kept = append(kept, dg)
	}
	return kept, suppressed
}

// CheckDirectives reports every //lint:ignore directive that names an
// analyzer not in the suite roster — a typo there silently un-suppresses
// nothing today and keeps suppressing nothing after the finding it was
// written for regresses, so it must be loud.
func CheckDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives(fset, files) {
		for name := range d.analyzers {
			if ByName(name) == nil {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: "suppress",
					Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q (see nimble-lint -list)", name),
				})
			}
		}
	}
	sortDiags(out)
	return out
}
