// The loader resolves package patterns to parsed, type-checked syntax
// using only the standard library: `go list` enumerates packages and
// their files, and go/types checks them with an importer that loads
// dependencies (standard library included) from source on demand.
// Dependencies are checked with IgnoreFuncBodies, so a full run over
// this repository plus its stdlib closure takes a few seconds.

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Target is one package selected by the patterns, ready for analysis.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints (analysis proceeds on
	// partial information; the build gate catches real compile errors).
	TypeErrors []error
}

// Loader parses and type-checks packages. It is not safe for
// concurrent use.
type Loader struct {
	Fset *token.FileSet

	module string              // module path of the working directory
	index  map[string]*listPkg // import path -> listing
	pkgs   map[string]*types.Package
	busy   map[string]bool // import-cycle guard
}

// sharedCache memoizes the expensive, loader-independent artifacts —
// the `go list` index and the declaration-only dependency packages —
// across every Loader in the process. Dependency packages are checked
// with IgnoreFuncBodies against the shared FileSet, so they are safe to
// reuse from any loader that also uses that FileSet; before the cache,
// each of the corpus tests re-checked the same stdlib closure from
// source (the analysis test suite drops from ~3.0s to ~0.6s with it).
// Disable with NIMBLE_LINT_NOCACHE=1 to measure or to rule the cache
// out when debugging.
var sharedCache = struct {
	fset  *token.FileSet
	index map[string]*listPkg
	pkgs  map[string]*types.Package
}{
	fset:  token.NewFileSet(),
	index: make(map[string]*listPkg),
	pkgs:  make(map[string]*types.Package),
}

// NewLoader creates a loader rooted at the current working directory
// (which must be inside the module, as `go list` requires). Unless
// NIMBLE_LINT_NOCACHE is set, loaders share one process-wide FileSet
// and dependency cache, so only the first loader pays for the stdlib
// closure.
func NewLoader() *Loader {
	if os.Getenv("NIMBLE_LINT_NOCACHE") != "" {
		return &Loader{
			Fset:  token.NewFileSet(),
			index: make(map[string]*listPkg),
			pkgs:  make(map[string]*types.Package),
			busy:  make(map[string]bool),
		}
	}
	return &Loader{
		Fset:  sharedCache.fset,
		index: sharedCache.index,
		pkgs:  sharedCache.pkgs,
		busy:  make(map[string]bool),
	}
}

// goList runs `go list -e -deps -json` for the patterns and merges the
// results into the index, returning this invocation's listings (the
// shared index may hold packages other loaders listed under other
// patterns, so callers resolving patterns must not scan it).
// CGO_ENABLED=0 keeps file lists pure Go so everything type-checks from
// source.
func (l *Loader) goList(patterns ...string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Imports,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var listed []*listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := &listPkg{}
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if old, ok := l.index[p.ImportPath]; !ok || (old.DepOnly && !p.DepOnly) {
			l.index[p.ImportPath] = p
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// modulePath returns the module path of the working directory ("" when
// outside a module).
func (l *Loader) modulePath() string {
	if l.module != "" {
		return l.module
	}
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}")
	out, err := cmd.Output()
	if err == nil {
		l.module = strings.TrimSpace(string(out))
	}
	return l.module
}

func (l *Loader) parse(p *listPkg) ([]*ast.File, error) {
	var files []*ast.File
	var firstErr error
	for _, f := range p.GoFiles {
		af, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if af != nil {
			files = append(files, af)
		}
	}
	return files, firstErr
}

func sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Import implements types.Importer: dependencies are type-checked from
// source, without function bodies, and memoized.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	lp, ok := l.index[path]
	if !ok {
		if _, err := l.goList(path); err != nil {
			return nil, err
		}
		if lp, ok = l.index[path]; !ok {
			return nil, fmt.Errorf("unknown package %q", path)
		}
	}
	l.busy[path] = true
	defer delete(l.busy, path)
	files, _ := l.parse(lp)
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Sizes:            sizes(),
		Error:            func(error) {}, // tolerate; declarations still land
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	l.pkgs[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// check type-checks files as one package with full bodies and info.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       sizes(),
		Error:       func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return pkg, info, errs
}

// LoadTargets resolves the patterns (e.g. "./...") to the module's own
// packages and type-checks each with full syntax and type information.
func (l *Loader) LoadTargets(patterns []string) ([]*Target, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	mod := l.modulePath()
	var targets []*Target
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if mod != "" && lp.ImportPath != mod && !strings.HasPrefix(lp.ImportPath, mod+"/") {
			continue
		}
		files, perr := l.parse(lp)
		pkg, info, errs := l.check(lp.ImportPath, files)
		if perr != nil {
			errs = append([]error{perr}, errs...)
		}
		targets = append(targets, &Target{
			Path:       lp.ImportPath,
			Fset:       l.Fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			TypeErrors: errs,
		})
	}
	sortTargets(targets)
	return targets, nil
}

// CheckDir parses and type-checks a single directory (used by the
// analysistest corpora, whose files live under testdata/ where the go
// tool does not list them). Imports resolve through the same on-demand
// importer, so corpora may import both the standard library and this
// module's packages.
func (l *Loader) CheckDir(dir string) (*Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	path := "testdata/" + filepath.Base(dir)
	pkg, info, errs := l.check(path, files)
	return &Target{Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info, TypeErrors: errs}, nil
}

func sortTargets(ts []*Target) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Path < ts[j].Path })
}
