// Corpus for the slotleak analyzer: admission slots, breaker half-open
// probe tokens, and waiter queue entries that may leak on some path —
// plus the clean pairing idioms, including the correlated nil-receiver
// guard the exec fetch layer uses.
package slotleak

import (
	"container/list"
	"context"
	"errors"
)

// ---- admission slots ----

type slot struct{ n int }

type pool struct{ sem chan struct{} }

func (p *pool) acquire(ctx context.Context) (*slot, error) {
	select {
	case p.sem <- struct{}{}:
		return &slot{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *pool) release(s *slot, delta int) { <-p.sem; _ = s; _ = delta }

func leakOnShedPath(ctx context.Context, p *pool, shed bool) error {
	s, err := p.acquire(ctx) // want "slot \"s\" from p.acquire may not be released on every path"
	if err != nil {
		return err
	}
	if shed {
		return errors.New("shed") // slot leaks here
	}
	p.release(s, 0)
	return nil
}

func leakOnPanicPath(ctx context.Context, p *pool, bad bool) {
	s, err := p.acquire(ctx) // want "slot \"s\" from p.acquire may not be released on every path \(panic path\)"
	if err != nil {
		return
	}
	if bad {
		panic("invariant")
	}
	p.release(s, 0)
}

func cleanAllPaths(ctx context.Context, p *pool, shed bool) error {
	s, err := p.acquire(ctx)
	if err != nil {
		return err
	}
	if shed {
		p.release(s, -1)
		return errors.New("shed")
	}
	p.release(s, 0)
	return nil
}

func cleanDeferredClosure(ctx context.Context, p *pool) error {
	s, err := p.acquire(ctx)
	if err != nil {
		return err
	}
	defer func() { p.release(s, 0) }()
	return nil
}

func cleanHandoff(ctx context.Context, p *pool) (*slot, error) {
	s, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil // the caller owns the slot now
}

// ---- scheduler grants (g := s.Acquire(...) -> g.Release()) ----

type grant struct{ n int }

func (g *grant) Release()        {}
func (g *grant) Checkpoint() int { return g.n }

type scheduler struct{}

func (s *scheduler) Acquire(desired int) *grant { return &grant{n: desired} }

func grantLeakOnErrorPath(s *scheduler, work func() error) error {
	g := s.Acquire(4) // want "grant \"g\" from s.Acquire may not be released on every path"
	if err := work(); err != nil {
		return err // grant leaks here
	}
	g.Release()
	return nil
}

func grantCleanDeferred(s *scheduler, work func() error) error {
	g := s.Acquire(4)
	defer g.Release()
	_ = g.Checkpoint() // other methods on the grant are neutral
	return work()
}

func grantCleanAllPaths(s *scheduler, work func() error) error {
	g := s.Acquire(2)
	if err := work(); err != nil {
		g.Release()
		return err
	}
	g.Release()
	return nil
}

func grantHandoff(s *scheduler) *grant {
	g := s.Acquire(1)
	return g // the caller owns the grant now
}

// ---- breaker half-open probe tokens ----

type breaker struct{ state int }

func (b *breaker) Allow() (bool, bool) { return true, b.state == 1 }
func (b *breaker) Success()            {}
func (b *breaker) Failure()            {}

func probeLeakOnSuccess(b *breaker, work func() error) error {
	ok, probe := b.Allow() // want "half-open probe token from b.Allow may not be resolved on every path"
	if !ok {
		return errors.New("breaker open")
	}
	if err := work(); err != nil {
		if probe {
			b.Failure()
		}
		return err
	}
	return nil // forgot to resolve the probe on the success path
}

func probeDiscarded(b *breaker) bool {
	ok, _ := b.Allow() // want "probe result of b.Allow is discarded"
	return ok
}

func probeClean(b *breaker, work func() error) error {
	ok, probe := b.Allow()
	if !ok {
		return errors.New("breaker open")
	}
	err := work()
	if probe {
		if err != nil {
			b.Failure()
		} else {
			b.Success()
		}
	}
	return err
}

// The exec fetch idiom: the breaker may be nil, and acquisition and
// resolution sit under separate `br != nil` guards. Edge refinement on
// the receiver's nilness keeps the br == nil join path clean.
func probeCorrelatedGuard(br *breaker, work func() error) error {
	ok := true
	probe := false
	if br != nil {
		ok, probe = br.Allow()
		if !ok {
			return errors.New("breaker open")
		}
	}
	err := work()
	if br != nil {
		if err != nil {
			br.Failure()
			_ = probe
			return err
		}
		br.Success()
	}
	return err
}

// ---- waiter queue entries ----

func waiterLeakOnCancel(q *list.List, w any, cancel <-chan struct{}) error {
	elem := q.PushBack(w) // want "queue entry \"elem\" from q.PushBack may not be removed on every path"
	select {
	case <-cancel:
		return errors.New("cancelled") // entry stays queued forever
	default:
	}
	q.Remove(elem)
	return nil
}

func waiterClean(q *list.List, w any, cancel <-chan struct{}) error {
	elem := q.PushBack(w)
	select {
	case <-cancel:
		q.Remove(elem)
		return errors.New("cancelled")
	default:
	}
	q.Remove(elem)
	return nil
}

func waiterRetained(q *list.List, w any) *list.Element {
	elem := q.PushBack(w)
	return elem // retained by the caller, who will Remove it
}
