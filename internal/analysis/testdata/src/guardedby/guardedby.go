// Corpus for the guardedby analyzer: annotated fields accessed with and
// without their mutex held.
package guardedby

import "sync"

type store struct {
	mu sync.Mutex

	// guarded by mu
	items map[string]int
	n     int // guarded by mu
}

// ---- flagged ----

func (s *store) bad(key string) int {
	return s.items[key] // want "without holding"
}

func (s *store) badAfterUnlock() {
	s.mu.Lock()
	s.items["x"] = 1
	s.mu.Unlock()
	s.n++ // want "without holding"
}

// ---- clean ----

func (s *store) good(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[key]
}

func (s *store) goodInline() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

func (s *store) addLocked(key string) {
	s.items[key]++
	s.n++
}

func (s *store) goodEarlyReturn(key string) int {
	s.mu.Lock()
	v, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return v + n
}

func (s *store) snapshotFunc() func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.n
	}
}

// ---- dotted guard paths: a handle guarded by its owner's mutex ----

type owner struct {
	mu sync.Mutex
}

type handle struct {
	o     *owner
	state int // guarded by o.mu
}

func (h *handle) badNoOwnerLock() int {
	return h.state // want "without holding"
}

func (h *handle) goodOwnerLock() int {
	h.o.mu.Lock()
	defer h.o.mu.Unlock()
	return h.state
}

func (h *handle) badOwnerUnlocked() {
	h.o.mu.Lock()
	h.state = 1
	h.o.mu.Unlock()
	h.state = 2 // want "without holding"
}
