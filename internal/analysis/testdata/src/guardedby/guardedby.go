// Corpus for the guardedby analyzer: annotated fields accessed with and
// without their mutex held.
package guardedby

import "sync"

type store struct {
	mu sync.Mutex

	// guarded by mu
	items map[string]int
	n     int // guarded by mu
}

// ---- flagged ----

func (s *store) bad(key string) int {
	return s.items[key] // want "without holding"
}

func (s *store) badAfterUnlock() {
	s.mu.Lock()
	s.items["x"] = 1
	s.mu.Unlock()
	s.n++ // want "without holding"
}

// ---- clean ----

func (s *store) good(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[key]
}

func (s *store) goodInline() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

func (s *store) addLocked(key string) {
	s.items[key]++
	s.n++
}

func (s *store) goodEarlyReturn(key string) int {
	s.mu.Lock()
	v, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return v + n
}

func (s *store) snapshotFunc() func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.n
	}
}
