// Corpus for the spanfinish analyzer: flagged leaks and clean idioms.
package spanfinish

import (
	"context"
	"errors"

	"repro/internal/obs"
)

type holder struct{ sp *obs.Span }

func sideEffect() {}

// ---- flagged ----

func leakNoFinish(parent *obs.Span) {
	sp := parent.StartChild("work") // want "never finished"
	sp.SetAttr("k", "v")
}

func leakEarlyReturn(parent *obs.Span, fail bool) error {
	sp := parent.StartChild("work")
	if fail {
		return errors.New("boom") // want "may not be finished on this return path"
	}
	sp.Finish()
	return nil
}

func leakDiscarded(parent *obs.Span) {
	parent.StartChild("work") // want "is discarded"
}

func leakBlank(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "step") // want "is discarded"
}

func leakRoot() {
	root := obs.NewSpan("query") // want "never finished"
	root.SetAttr("k", "v")
}

// ---- clean ----

func cleanDefer(parent *obs.Span) {
	sp := parent.StartChild("work")
	defer sp.Finish()
	sideEffect()
}

func cleanAllPaths(parent *obs.Span, fail bool) error {
	sp := parent.StartChild("work")
	if fail {
		sp.SetAttr("error", "boom")
		sp.Finish()
		return errors.New("boom")
	}
	sp.Finish()
	return nil
}

func cleanEscapeReturn(parent *obs.Span) *obs.Span {
	sp := parent.StartChild("work")
	return sp
}

func cleanEscapeStore(parent *obs.Span, sink *holder) {
	sp := parent.StartChild("work")
	sink.sp = sp
}

func cleanEscapeArg(parent *obs.Span, record func(*obs.Span)) {
	sp := parent.StartChild("work")
	record(sp)
}

func cleanClosureFinish(parent *obs.Span) {
	sp := parent.StartChild("work")
	done := func() { sp.Finish() }
	defer done()
	sideEffect()
}

// ---- path-sensitive cases (CFG-based analyzer) ----

func leakPanicPath(parent *obs.Span, bad bool) {
	sp := parent.StartChild("work")
	if bad {
		panic("invariant violated") // want "may not be finished on this panic path"
	}
	sp.Finish()
}

func leakSwitchReturn(parent *obs.Span, n int) error {
	sp := parent.StartChild("work")
	switch n {
	case 0:
		sp.Finish()
		return nil
	default:
		return errors.New("odd") // want "may not be finished on this return path"
	}
}

func cleanSwitchAllCases(parent *obs.Span, n int) {
	sp := parent.StartChild("work")
	switch n {
	case 0:
		sp.Finish()
	default:
		sp.Finish()
	}
}

func cleanLoopPerIteration(parent *obs.Span, n int) {
	for i := 0; i < n; i++ {
		sp := parent.StartChild("iter")
		sp.SetAttr("i", "x")
		sp.Finish()
	}
}

func cleanPanicWithDefer(parent *obs.Span, bad bool) {
	sp := parent.StartChild("work")
	defer sp.Finish()
	if bad {
		panic("invariant violated") // deferred Finish survives the panic
	}
}

// ---- root-span creators (trace store + traceparent joins) ----

func leakRootSpan() {
	sp := obs.NewRootSpan("request", obs.TraceContext{}) // want "never finished"
	sp.SetAttr("k", "v")
}

func leakStoreRoot(store *obs.TraceStore) {
	sp := store.NewRoot("request", obs.TraceContext{}) // want "never finished"
	sp.SetAttr("k", "v")
}

func leakStoreRootEarlyReturn(store *obs.TraceStore, fail bool) error {
	sp := store.NewRoot("request", obs.TraceContext{})
	if fail {
		return errors.New("boom") // want "may not be finished on this return path"
	}
	sp.Finish()
	return nil
}

func cleanStoreRootRecorded(store *obs.TraceStore) {
	sp := store.NewRoot("request", obs.TraceContext{})
	defer sp.Finish()
	sideEffect()
}

func cleanRootSpanEscapes(store *obs.TraceStore) *obs.Span {
	sp := store.NewRoot("request", obs.TraceContext{})
	return sp // caller owns the Finish obligation
}
