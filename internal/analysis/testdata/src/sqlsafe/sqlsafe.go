// Corpus for the sqlsafe analyzer: strings derived from XML-QL query
// nodes (all attacker-chosen) flowing into SQL sinks — a Fragment-style
// SQL field or an internal/rdb Exec call — with and without passing
// through a quoting helper. The map-keyed variable flow mirrors the
// real finding in sqlgen's projection-alias code.
package sqlsafe

import (
	"strings"

	"repro/internal/rdb"
	"repro/internal/xmlql"
)

type fragment struct{ SQL string }

// Corpus-local quoting helpers, recognized by name.
func sqlString(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

func sqlIdent(s string) string { return strings.Map(identRune, s) }

func identRune(r rune) rune {
	if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
		return r
	}
	return '_'
}

// ---- flagged ----

func rawVariable(v *xmlql.VarContent) *fragment {
	f := &fragment{}
	f.SQL = "SELECT " + v.Var + " FROM t" // want "query-derived string reaches the generated SQL statement"
	return f
}

func rawThroughBuilder(c *xmlql.TextContent) *fragment {
	var sb strings.Builder
	sb.WriteString("SELECT x FROM t WHERE x = ")
	sb.WriteString(c.Text) // taints sb
	f := &fragment{}
	f.SQL = sb.String() // want "query-derived string reaches the generated SQL statement"
	return f
}

// The sqlgen shape: variable names become map keys, are recovered by
// ranging over the map, and reach the statement through a join.
func rawMapKeys(pats []*xmlql.VarContent) *fragment {
	cols := map[string]string{}
	for _, p := range pats {
		cols[p.Var] = "safe_col"
	}
	var names []string
	for v := range cols {
		names = append(names, v)
	}
	f := &fragment{}
	f.SQL = "SELECT " + strings.Join(names, ", ") + " FROM t" // want "query-derived string reaches the generated SQL statement"
	return f
}

func rawExec(db *rdb.Database, tag *xmlql.TagTest) error {
	_, err := db.Exec("SELECT * FROM " + tag.Name) // want "query-derived string reaches a relational Exec/Query call"
	return err
}

// ---- clean ----

func quotedLiteral(c *xmlql.TextContent) *fragment {
	f := &fragment{}
	f.SQL = "SELECT x FROM t WHERE x = " + sqlString(c.Text)
	return f
}

func identAlias(v *xmlql.VarContent) *fragment {
	f := &fragment{}
	f.SQL = "SELECT c AS " + sqlIdent("v_"+strings.ToLower(v.Var)) + " FROM t"
	return f
}

func quotedExec(db *rdb.Database, tag *xmlql.TagTest) error {
	_, err := db.Exec("SELECT * FROM " + sqlIdent(tag.Name))
	return err
}

// Reading map VALUES is clean even when the map's keys are tainted:
// the key bit does not leak through a value read.
func mapValuesClean(pats []*xmlql.VarContent) *fragment {
	cols := map[string]string{}
	for _, p := range pats {
		cols[p.Var] = "safe_col"
	}
	var names []string
	for _, col := range cols {
		names = append(names, col)
	}
	f := &fragment{}
	f.SQL = "SELECT " + strings.Join(names, ", ") + " FROM t"
	return f
}

// A strong update to a clean value clears the variable's taint.
func reassigned(v *xmlql.VarContent) *fragment {
	name := v.Var
	name = "constant"
	f := &fragment{}
	f.SQL = "SELECT " + name + " FROM t"
	return f
}

// Untainted inputs (catalog descriptors, request parameters) may flow
// to Exec freely.
func nativeExec(db *rdb.Database, native string) error {
	_, err := db.Exec(native)
	return err
}
