// Corpus for the ctxbefore analyzer: goroutines doing source I/O with
// and without a context consultation before the spawn.
package ctxbefore

import (
	"context"
	"sync"

	"repro/internal/catalog"
)

type fetcher struct {
	cat *catalog.Catalog
}

// ---- flagged ----

func badNoCtx(f *fetcher, names []string) {
	var wg sync.WaitGroup
	for range names {
		wg.Add(1)
		go func() { // want "no context.Context"
			defer wg.Done()
			f.cat.Source("x")
		}()
	}
	wg.Wait()
}

func badHasCtxNoCheck(ctx context.Context, f *fetcher) error {
	_ = ctx
	go func() { // want "without consulting"
		f.cat.Source("x")
	}()
	return nil
}

// ---- clean ----

func goodChecksBefore(ctx context.Context, f *fetcher, names []string) {
	var wg sync.WaitGroup
	for range names {
		if err := ctx.Err(); err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.cat.Source("x")
		}()
	}
	wg.Wait()
}

func goodChecksInside(ctx context.Context, f *fetcher) {
	go func() {
		select {
		case <-ctx.Done():
			return
		default:
		}
		f.cat.Source("x")
	}()
}

func goodNoIO(done chan struct{}) {
	go func() {
		close(done)
	}()
}
