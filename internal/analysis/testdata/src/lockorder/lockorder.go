// Corpus for the lockorder analyzer: self-deadlocks, direct and
// call-transitive acquisition cycles, and the clean idioms that must
// stay quiet (consistent order, sequential reacquisition, two instances
// of one type, read locks).
package lockorder

import "sync"

// ---- flagged: self-deadlock ----

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) double() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "acquired while already held by this function"
	s.n++
	s.mu.Unlock()
}

// ---- flagged: direct lock-order cycle ----

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func abOrder(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock-order cycle: lockorder.A.mu -> lockorder.B.mu, lockorder.B.mu -> lockorder.A.mu"
	b.mu.Unlock()
}

func baOrder(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// ---- flagged: cycle through a call made while holding a lock ----

type C struct {
	mu sync.Mutex
	d  *D
}

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func (c *C) nested() {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(c.d) // want "lock-order cycle: lockorder.C.mu -> lockorder.D.mu \(via lockorder.lockD\), lockorder.D.mu -> lockorder.C.mu"
}

func (d *D) thenC(c *C) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// ---- clean ----

// Consistent order everywhere: E before F in both functions.
type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

func ef1(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

func ef2(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// Sequential reacquisition is not nesting.
func (s *S) sequential() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

// Two instances of one type: same lock class, different receivers — a
// legitimate (if order-sensitive) pattern, not a self-deadlock.
func merge(x, y *S) {
	x.mu.Lock()
	y.mu.Lock()
	y.n += x.n
	y.mu.Unlock()
	x.mu.Unlock()
}

// A branch that releases before the join: the must-analysis drops the
// lock from the held set, so the later Lock is a fresh acquisition.
func (s *S) branchy(quick bool) {
	s.mu.Lock()
	if quick {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// Read locks: RLock nesting under RLock on another class is ordinary
// ordering (covered above); re-RLocking the same instance is legal for
// sync.RWMutex, so only write-mode reacquisition is flagged.
type R struct {
	mu sync.RWMutex
	m  map[string]int
}

func (r *R) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// Package-level mutex: class is the package variable.
var registryMu sync.Mutex

var registry = map[string]int{}

func register(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = 1
}
