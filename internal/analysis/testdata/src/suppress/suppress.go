// Corpus for the suppression directive: a well-formed //lint:ignore
// silences the finding on the next line; a reasonless one does not.
package suppress

import "repro/internal/obs"

func intentional(parent *obs.Span) {
	//lint:ignore spanfinish span is retained by the trace ring and finished there
	sp := parent.StartChild("work")
	sp.SetAttr("k", "v")
}

func reasonless(parent *obs.Span) {
	//lint:ignore spanfinish
	sp := parent.StartChild("work")
	sp.SetAttr("k", "v")
}
