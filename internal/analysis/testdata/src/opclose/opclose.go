// Corpus for the opclose analyzer: operators left open on error paths
// and locally opened operators that are never closed.
package opclose

import "repro/internal/algebra"

// ---- flagged ----

type pairLeak struct {
	Left, Right algebra.Operator
}

func (p *pairLeak) Open(ctx *algebra.Context) error {
	if err := p.Left.Open(ctx); err != nil {
		return err
	}
	if err := p.Right.Open(ctx); err != nil { // want "leaves p.Left open"
		return err
	}
	return nil
}

func leakLocal(ctx *algebra.Context, op algebra.Operator) error {
	if err := op.Open(ctx); err != nil { // want "opened but never closed"
		return err
	}
	_, err := op.Next()
	return err
}

// ---- clean ----

type pairGood struct {
	Left, Right algebra.Operator
}

func (p *pairGood) Open(ctx *algebra.Context) error {
	if err := p.Left.Open(ctx); err != nil {
		return err
	}
	if err := p.Right.Open(ctx); err != nil {
		p.Left.Close()
		return err
	}
	return nil
}

func cleanDefer(ctx *algebra.Context, op algebra.Operator) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close()
	_, err := op.Next()
	return err
}

type wrapper struct{ Input algebra.Operator }

func (w *wrapper) Open(ctx *algebra.Context) error { return w.Input.Open(ctx) }

func cleanLoopClose(ctx *algebra.Context, inputs []algebra.Operator) error {
	for i, in := range inputs {
		if err := in.Open(ctx); err != nil {
			for _, prev := range inputs[:i] {
				prev.Close()
			}
			return err
		}
	}
	return nil
}

func cleanHandoff(ctx *algebra.Context, op algebra.Operator) (algebra.Operator, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	return op, nil
}

// ---- path-sensitive cases (CFG-based analyzer) ----

func leakPanicPath(ctx *algebra.Context, op algebra.Operator, bad bool) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	if bad {
		panic("invariant violated") // want "not closed on this panic path"
	}
	op.Close()
	return nil
}

func cleanBothBranches(ctx *algebra.Context, op algebra.Operator, alt bool) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	if alt {
		op.Close()
		return nil
	}
	_, err := op.Next()
	op.Close()
	return err
}

func cleanPanicWithDefer(ctx *algebra.Context, op algebra.Operator, bad bool) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close()
	if bad {
		panic("invariant violated")
	}
	return nil
}
