package analysis

import (
	"go/ast"
	"go/types"
)

// OpClose enforces the operator lifecycle contract of internal/algebra:
// Close is only guaranteed to be called by a consumer after a
// successful Open (drain() defers Close only once Open returns nil).
// So a function that opens several operators must, on the error path of
// each later Open, close the ones that already opened — and a locally
// opened operator must be closed (or handed off) before the function
// returns. Violations leak whatever resources a source-backed leaf
// holds (pull functions, cursors, network readers).
//
// The check is a may-analysis over the function's CFG. An open site is
// live from the Open call until a Close (direct or deferred), an
// escape, or — via edge refinement — the `err != nil` branch proving
// the Open itself failed. Sites still live on an edge into the exit are
// leaks on that path.
var OpClose = &Analyzer{
	Name: "opclose",
	Doc: "check that every operator whose Open succeeded has Close reachable on all paths, " +
		"including the error paths of subsequent Opens and panic paths",
	Run: runOpClose,
}

// openSite is one tracked `X.Open(...)` whose result is (possibly)
// checked against an error variable.
type openSite struct {
	idx     int
	recv    ast.Expr
	recvStr string
	call    *ast.CallExpr
	errObj  types.Object   // the error variable guarding this open (nil if none)
	errBody *ast.BlockStmt // error-path block of the guarded form (for attribution)
	isIdent bool           // receiver is a bare local identifier
	inLoop  bool           // open site sits inside a for/range statement

	escapeEver bool
}

func runOpClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, u := range funcUnits(f) {
			opCheckUnit(pass, u)
		}
	}
	return nil
}

// isOperatorOpen reports whether call is `recv.Open(...)` on a value
// that also has a Close method (ruling out os.Open-style package
// functions and unrelated Open methods on close-less types).
func isOperatorOpen(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	recv, name, ok := pass.methodCall(call)
	if !ok || name != "Open" {
		return nil, false
	}
	if pass.TypesInfo != nil {
		if tv, ok := pass.TypesInfo.Types[recv]; ok && tv.Type != nil {
			obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, "Close")
			if _, isFunc := obj.(*types.Func); !isFunc {
				return nil, false
			}
		}
	}
	return recv, true
}

func opCheckUnit(pass *Pass, u funcUnit) {
	var sites []*openSite
	anyLoopClose := false

	// Collect open sites and spot the close-the-opened-prefix idiom (a
	// Close inside a loop body).
	walkUnit(u.body, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			recv, ok := isOperatorOpen(pass, call)
			if !ok {
				return
			}
			s := &openSite{
				idx: len(sites), recv: recv, recvStr: exprString(recv),
				call: call, inLoop: inLoop(stack),
			}
			_, s.isIdent = recv.(*ast.Ident)
			if len(st.Lhs) == 1 {
				if errID, ok := st.Lhs[0].(*ast.Ident); ok && errID.Name != "_" {
					s.errObj = pass.objectOf(errID)
				}
			}
			// Guarded form `if err := X.Open(ctx); err != nil { ... }`:
			// remember the error block for rule-1 attribution.
			if len(stack) > 0 {
				if ifst, ok := stack[len(stack)-1].(*ast.IfStmt); ok && ifst.Init == ast.Stmt(st) {
					s.errBody = ifst.Body
				}
			}
			sites = append(sites, s)
		case *ast.CallExpr:
			if recv, name, ok := pass.methodCall(st); ok && name == "Close" && recv != nil && inLoop(stack) {
				anyLoopClose = true
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	g := NewCFG(u.body)
	lat := &opLattice{p: pass, sites: sites}
	res := forward(g, lat)

	reportedLocal := make(map[int]bool)  // rule-2 dedup, by site
	reportedPair := make(map[[2]int]bool) // rule-1 dedup, by (guard, leaked)

	for _, pe := range g.Preds(g.Exit) {
		out := res.out[pe.From]
		ret, _ := lastNode(pe.From).(*ast.ReturnStmt)
		for _, s := range sites {
			if !out[s.idx] || s.escapeEver {
				continue
			}
			// Rule 1: a return on the error path of a later guarded Open
			// leaves this (already successfully opened) operator behind.
			attributed := false
			if ret != nil {
				for _, guard := range sites {
					if guard == s || guard.errBody == nil || guard.recvStr == s.recvStr {
						continue
					}
					if ret.Pos() < guard.errBody.Pos() || ret.End() > guard.errBody.End() {
						continue
					}
					attributed = true
					key := [2]int{guard.idx, s.idx}
					if reportedPair[key] {
						continue
					}
					reportedPair[key] = true
					pass.Reportf(guard.call.Pos(),
						"error path of %s.Open leaves %s open (opened at line %d); close it before returning",
						guard.recvStr, s.recvStr, pass.posLine(s.call.Pos()))
				}
			}
			if attributed {
				continue
			}
			// Rule 2: a locally opened operator (bare identifier receiver)
			// must be closed or handed off before the function returns.
			// Field receivers elsewhere are the owner's responsibility.
			if !s.isIdent {
				continue
			}
			if s.inLoop && anyLoopClose {
				continue // the loop closes the opened prefix
			}
			if !reportedLocal[s.idx] {
				reportedLocal[s.idx] = true
				id := s.recv.(*ast.Ident)
				pass.Reportf(s.call.Pos(),
					"operator %q is opened but never closed in %s (add `defer %s.Close()` after a successful Open)",
					id.Name, u.name, id.Name)
			}
		}
	}

	// Panic paths: a locally opened operator with no deferred Close leaks
	// when the function panics.
	for _, pe := range g.Preds(g.PanicExit) {
		out := res.out[pe.From]
		for _, s := range sites {
			if !out[s.idx] || s.escapeEver || !s.isIdent || reportedLocal[s.idx] {
				continue
			}
			if s.inLoop && anyLoopClose {
				continue
			}
			reportedLocal[s.idx] = true
			pos := s.call.Pos()
			if n := lastNode(pe.From); n != nil {
				pos = n.Pos()
			}
			id := s.recv.(*ast.Ident)
			pass.Reportf(pos,
				"operator %q (opened line %d) is not closed on this panic path; a deferred Close would survive the panic",
				id.Name, pass.posLine(s.call.Pos()))
		}
	}
}

// opLattice: may-analysis of operators whose Open may have succeeded
// without a matching Close yet. The fact value carries whether the
// site's error-variable association is still valid for edge refinement.
type opLattice struct {
	p     *Pass
	sites []*openSite
}

func (l *opLattice) entry() siteFact     { return siteFact{} }
func (l *opLattice) unreached() siteFact { return nil }

func (l *opLattice) join(a, b siteFact) siteFact { return joinSites(a, b) }
func (l *opLattice) equal(a, b siteFact) bool    { return equalSites(a, b) }

// edgeFact kills a site along edges proving its own Open failed
// (`err != nil` true branch): nothing to close on that path.
func (l *opLattice) edgeFact(e Edge, out siteFact) siteFact {
	if out == nil || e.Cond == nil {
		return out
	}
	var refined siteFact
	for _, s := range l.sites {
		if s.errObj == nil {
			continue
		}
		if valid, live := out[s.idx]; live && valid && edgeImpliesNonNil(l.p, e, s.errObj) {
			if refined == nil {
				refined = out.clone()
			}
			delete(refined, s.idx)
		}
	}
	if refined != nil {
		return refined
	}
	return out
}

func (l *opLattice) transfer(b *Block, in siteFact) siteFact {
	if in == nil {
		return nil
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		for _, s := range l.sites {
			l.applyNode(n, s, fact, b.Loop)
		}
	}
	return fact
}

func (l *opLattice) applyNode(n ast.Node, s *openSite, fact siteFact, inLoopBlock bool) {
	// Function literals in the node: a deferred literal that closes the
	// receiver counts as a Close; any other capture of an ident receiver
	// hands the operator to the closure.
	deferredLit := deferredFuncLit(n)
	for _, lit := range funcLitsIn(n) {
		refs, closes := litCloseUse(l.p, lit, s.recvStr)
		if closes && (lit == deferredLit || !s.isIdent) {
			delete(fact, s.idx)
			continue
		}
		if refs && s.isIdent {
			if lit == deferredLit && closes {
				delete(fact, s.idx)
			} else {
				s.escapeEver = true
				delete(fact, s.idx)
			}
		}
	}

	genned := false
	assignedErr := false
	visitNode(n, func(m ast.Node, stack []ast.Node) {
		switch mm := m.(type) {
		case *ast.CallExpr:
			if mm == s.call {
				genned = true
				return
			}
			recv, name, ok := l.p.methodCall(mm)
			if !ok || name != "Close" {
				return
			}
			rs := exprString(recv)
			if rs != "" && rs == s.recvStr {
				delete(fact, s.idx)
			} else if inLoopBlock {
				// Close on another receiver inside a loop: the
				// close-the-opened-prefix idiom covers every earlier open.
				delete(fact, s.idx)
			}
		case *ast.Ident:
			if s.errObj != nil && l.p.objectOf(mm) == s.errObj && isAssignLHS(mm, stack) {
				assignedErr = true
			}
			if !s.isIdent {
				return
			}
			def, _ := s.recv.(*ast.Ident)
			if mm == def || !l.p.sameIdent(mm, def) {
				return
			}
			if isDeclIdent(mm, stack) {
				return
			}
			if _, _, isRecv := methodCallOn(mm, stack); isRecv {
				return // method calls (Next, Close handled above) are neutral
			}
			if isAssignLHS(mm, stack) {
				// Rebinding: the variable no longer holds this operator.
				delete(fact, s.idx)
				return
			}
			// Argument, return value, store, method value: a new owner.
			s.escapeEver = true
			delete(fact, s.idx)
		}
	})
	if genned {
		fact[s.idx] = true
	} else if assignedErr {
		// The error variable was reassigned by something else; its value
		// no longer witnesses this Open.
		if valid, live := fact[s.idx]; live && valid {
			fact[s.idx] = false
		}
	}
}

// litCloseUse reports whether the literal references the receiver and
// whether it calls Close on it (matched by expression string, so field
// receivers like p.Left work too).
func litCloseUse(p *Pass, lit *ast.FuncLit, recvStr string) (refs, closes bool) {
	if recvStr == "" {
		return false, false
	}
	walkStack(lit.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if recv, name, ok := p.methodCall(call); ok && name == "Close" && exprString(recv) == recvStr {
			closes = true
		}
	})
	// refs: does the literal mention the receiver identifier at all?
	base := recvStr
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			base = base[:i]
			break
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == base {
			refs = true
		}
		return true
	})
	return refs, closes
}
