package analysis

import (
	"go/ast"
	"go/types"
)

// OpClose enforces the operator lifecycle contract of internal/algebra:
// Close is only guaranteed to be called by a consumer after a
// successful Open (drain() defers Close only once Open returns nil).
// So a function that opens several operators must, on the error path of
// each later Open, close the ones that already opened — and a locally
// opened operator must be closed (or handed off) before the function
// returns. Violations leak whatever resources a source-backed leaf
// holds (pull functions, cursors, network readers).
var OpClose = &Analyzer{
	Name: "opclose",
	Doc: "check that every operator whose Open succeeded has Close reachable, " +
		"including the error paths of subsequent Opens",
	Run: runOpClose,
}

// openSite is one guarded `if err := X.Open(ctx); err != nil { ... }`.
type openSite struct {
	recv    ast.Expr
	recvStr string
	call    *ast.CallExpr
	errBody *ast.BlockStmt // error-path block (nil for unguarded opens)
	isIdent bool           // receiver is a bare local identifier
	inLoop  bool           // open site sits inside a for/range statement
}

func runOpClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			opCheckFunc(pass, fd)
		}
	}
	return nil
}

// isOperatorOpen reports whether call is `recv.Open(...)` on a value
// that also has a Close method (ruling out os.Open-style package
// functions and unrelated Open methods on close-less types).
func isOperatorOpen(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	recv, name, ok := pass.methodCall(call)
	if !ok || name != "Open" {
		return nil, false
	}
	if pass.TypesInfo != nil {
		if tv, ok := pass.TypesInfo.Types[recv]; ok && tv.Type != nil {
			obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, "Close")
			if _, isFunc := obj.(*types.Func); !isFunc {
				return nil, false
			}
		}
	}
	return recv, true
}

// closeCallsIn collects the receiver strings of `X.Close(...)` calls in
// n, and whether any Close happens inside a loop (the "close all the
// ones opened so far" idiom uses a range over a prefix).
func closeCallsIn(pass *Pass, n ast.Node) (recvs map[string]bool, inLoop bool) {
	recvs = make(map[string]bool)
	walkStack(n, func(node ast.Node, stack []ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, name, ok := pass.methodCall(call)
		if !ok || name != "Close" {
			return
		}
		if s := exprString(recv); s != "" {
			recvs[s] = true
		}
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
	})
	return recvs, inLoop
}

func opCheckFunc(pass *Pass, fd *ast.FuncDecl) {
	var sites []openSite

	// Collect open sites in source order. Guarded form:
	//	if err := X.Open(ctx); err != nil { <errBody> }
	// Unguarded forms (bare call, separate assignment) are tracked for
	// the local close requirement only.
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.IfStmt:
			as, ok := st.Init.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			recv, ok := isOperatorOpen(pass, call)
			if !ok {
				return
			}
			_, isIdent := recv.(*ast.Ident)
			sites = append(sites, openSite{
				recv: recv, recvStr: exprString(recv), call: call,
				errBody: st.Body, isIdent: isIdent, inLoop: inLoop(stack),
			})
		case *ast.AssignStmt:
			// `err = X.Open(ctx)` outside an if-init: track without an
			// error body. Skip assignments that are an IfStmt init (those
			// arrive via the IfStmt case).
			if len(stack) > 0 {
				if ifst, ok := stack[len(stack)-1].(*ast.IfStmt); ok && ifst.Init == ast.Stmt(st) {
					return
				}
			}
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			if recv, ok := isOperatorOpen(pass, call); ok {
				_, isIdent := recv.(*ast.Ident)
				sites = append(sites, openSite{recv: recv, recvStr: exprString(recv), call: call, isIdent: isIdent, inLoop: inLoop(stack)})
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	// Rule 1: the error path of open #i must close every earlier open.
	for i, s := range sites {
		if s.errBody == nil || !errPathReturns(s.errBody) {
			continue
		}
		closed, loopClose := closeCallsIn(pass, s.errBody)
		for _, prev := range sites[:i] {
			if prev.recvStr == "" || prev.recvStr == s.recvStr {
				continue
			}
			if closed[prev.recvStr] || loopClose {
				continue
			}
			pass.Reportf(s.call.Pos(),
				"error path of %s.Open leaves %s open (opened at line %d); close it before returning",
				s.recvStr, prev.recvStr, pass.posLine(prev.call.Pos()))
		}
	}

	// Rule 2: a locally opened operator (bare identifier receiver) must
	// have Close reachable in this function, or escape to a new owner.
	allClosed, anyLoopClose := closeCallsIn(pass, fd)
	for _, s := range sites {
		if !s.isIdent {
			continue // field receivers: the owner's Close is responsible
		}
		id := s.recv.(*ast.Ident)
		if allClosed[id.Name] {
			continue
		}
		if s.inLoop && anyLoopClose {
			continue // close-the-opened-prefix idiom: the loop closes them
		}
		if identEscapes(pass, fd, id) {
			continue
		}
		pass.Reportf(s.call.Pos(),
			"operator %q is opened but never closed in %s (add `defer %s.Close()` after a successful Open)",
			id.Name, funcName(fd), id.Name)
	}
}

// errPathReturns reports whether the block exits the function.
func errPathReturns(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// identEscapes reports whether the variable is handed to someone else:
// used as an argument, returned, stored into a structure, or assigned
// onward. Method calls on the variable do not count.
func identEscapes(pass *Pass, fd *ast.FuncDecl, def *ast.Ident) bool {
	escapes := false
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		if escapes {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || !pass.sameIdent(id, def) {
			return
		}
		if isDeclIdent(id, stack) {
			return // parameter / range-var declaration: neutral
		}
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
					return // method call: neutral
				}
			}
		}
		if len(stack) >= 1 {
			if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if l == ast.Expr(id) {
						return // rebinding target: neutral
					}
				}
			}
		}
		escapes = true
	})
	return escapes
}
