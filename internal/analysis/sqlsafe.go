package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SQLSafe is a forward taint analysis over the CFG guarding the SQL
// generation boundary: any string derived from an XML-QL query (fields
// of internal/xmlql types — variable names, literal text, tags, all of
// them hostile input) must pass through a quoting/ident helper
// (sqlString, sqlIdent, Quote*) before it reaches a SQL sink — an
// assignment to a field named SQL (the compiled Fragment) or an
// argument to an internal/rdb Exec/Query call. A raw flow is an
// injection: `WHERE name = '` + hostile + `'`.
//
// The policy is deliberately intraprocedural: sqlgen.Compile is the
// trust boundary, so it must sanitize everything it embeds; its
// Fragment output is then trusted downstream. Taint propagates through
// string concatenation, unknown calls (result tainted when any
// argument or the receiver is), map/slice element reads, and
// strings.Builder writes; map KEYS carry their own taint bit, picked up
// by `for k := range m`, so variable-name keys stay hot without
// poisoning column-value reads.
var SQLSafe = &Analyzer{
	Name: "sqlsafe",
	Doc: "taint analysis: strings derived from XML-QL queries must flow through " +
		"sqlString/sqlIdent-style quoting helpers before reaching SQL sinks",
	Run: runSQLSafe,
}

const (
	taintVal uint8 = 1 << iota // the value itself is query-derived
	taintKey                   // a map whose keys are query-derived
)

// sanitizers are the quoting/ident helpers that launder taint.
var sanitizers = map[string]bool{
	"sqlString": true, "sqlIdent": true,
	"SQLString": true, "SQLIdent": true,
	"QuoteString": true, "QuoteIdent": true,
	"quoteString": true, "quoteIdent": true,
}

// builderWrites are strings.Builder-style methods that taint their
// receiver when fed a tainted argument.
var builderWrites = map[string]bool{
	"WriteString": true, "Write": true, "WriteByte": true, "WriteRune": true,
}

// taintFact maps variable objects to taint bits; nil is unreached.
type taintFact map[types.Object]uint8

func (f taintFact) clone() taintFact {
	if f == nil {
		return nil
	}
	out := make(taintFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func runSQLSafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, u := range funcUnits(f) {
			sqlCheckUnit(pass, u)
		}
	}
	return nil
}

func sqlCheckUnit(pass *Pass, u funcUnit) {
	// Cheap pre-filter: a unit with no SQL sink needs no fixpoint.
	hasSink := false
	walkUnit(u.body, func(n ast.Node, stack []ast.Node) {
		switch m := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "SQL" {
					hasSink = true
				}
			}
		case *ast.CallExpr:
			if isRDBSink(pass, m) {
				hasSink = true
			}
		}
	})
	if !hasSink {
		return
	}

	g := NewCFG(u.body)
	lat := &taintLattice{p: pass}
	res := forward(g, lat)

	// Replay each block from its stable in-fact, reporting sinks.
	reported := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		in := res.in[b]
		if in == nil && b != g.Entry {
			continue
		}
		fact := in.clone()
		if fact == nil {
			fact = taintFact{}
		}
		for _, n := range b.Nodes {
			lat.applyNode(n, fact, func(pos token.Pos, what string) {
				if reported[pos] {
					return
				}
				reported[pos] = true
				pass.Reportf(pos,
					"query-derived string reaches %s without quoting; route it through sqlString/sqlIdent-style helpers",
					what)
			})
		}
	}
}

// isRDBSink reports whether the call executes SQL against a relational
// source: Exec/Query on a receiver declared in internal/rdb.
func isRDBSink(pass *Pass, call *ast.CallExpr) bool {
	recv, name, ok := pass.methodCall(call)
	if !ok || (name != "Exec" && name != "Query") || len(call.Args) == 0 {
		return false
	}
	ts := pass.typeStringOf(recv)
	return strings.Contains(ts, "internal/rdb.")
}

type taintLattice struct {
	p *Pass
}

func (l *taintLattice) entry() taintFact     { return taintFact{} }
func (l *taintLattice) unreached() taintFact { return nil }

func (l *taintLattice) join(a, b taintFact) taintFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func (l *taintLattice) equal(a, b taintFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (l *taintLattice) edgeFact(e Edge, out taintFact) taintFact { return out }

func (l *taintLattice) transfer(b *Block, in taintFact) taintFact {
	if in == nil {
		return nil
	}
	fact := in.clone()
	for _, n := range b.Nodes {
		l.applyNode(n, fact, nil)
	}
	return fact
}

// applyNode interprets one block node: assignments move taint,
// builder-writes taint their receiver, and (when report is non-nil)
// tainted values reaching sinks are flagged.
func (l *taintLattice) applyNode(n ast.Node, fact taintFact, report func(pos token.Pos, what string)) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		l.applyAssign(st, fact, report)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					bits := uint8(0)
					if i < len(vs.Values) {
						bits = l.exprTaint(vs.Values[i], fact)
					}
					l.setIdent(name, bits, fact)
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a key-tainted map taints the key variable; over a
		// value-tainted container, the value variable.
		xBits := l.exprTaint(st.X, fact)
		keyBits, valBits := uint8(0), xBits&taintVal
		if _, isMap := l.typeOf(st.X).(*types.Map); isMap {
			if xBits&taintKey != 0 {
				keyBits = taintVal
			}
		}
		if id, ok := st.Key.(*ast.Ident); ok {
			l.setIdent(id, keyBits, fact)
		}
		if id, ok := st.Value.(*ast.Ident); ok {
			l.setIdent(id, valBits, fact)
		}
	}

	// Calls with side effects and sinks, anywhere in the node.
	visitNode(n, func(m ast.Node, stack []ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if recv, name, isMethod := l.p.methodCall(call); isMethod && builderWrites[name] {
			if id, ok := baseIdent(recv); ok {
				for _, arg := range call.Args {
					if l.exprTaint(arg, fact)&taintVal != 0 {
						obj := l.p.objectOf(id)
						if obj != nil {
							fact[obj] |= taintVal
						}
					}
				}
			}
		}
		if report != nil && isRDBSink(l.p, call) {
			for _, arg := range call.Args {
				if l.exprTaint(arg, fact)&taintVal != 0 {
					report(call.Pos(), "a relational Exec/Query call")
				}
			}
		}
	})
}

func (l *taintLattice) applyAssign(st *ast.AssignStmt, fact taintFact, report func(pos token.Pos, what string)) {
	// RHS taints, evaluated against the pre-assignment fact.
	var rhsBits []uint8
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value call: every binding shares the call's taint.
		bits := l.exprTaint(st.Rhs[0], fact)
		for range st.Lhs {
			rhsBits = append(rhsBits, bits)
		}
	} else {
		for _, rhs := range st.Rhs {
			rhsBits = append(rhsBits, l.exprTaint(rhs, fact))
		}
	}
	for i, lhs := range st.Lhs {
		if i >= len(rhsBits) {
			break
		}
		bits := rhsBits[i]
		if st.Tok == token.ADD_ASSIGN {
			// s += x: the result carries both sides' taint.
			bits |= l.exprTaint(lhs, fact)
		}
		switch target := lhs.(type) {
		case *ast.Ident:
			l.setIdent(target, bits, fact)
		case *ast.IndexExpr:
			// m[k] = v: value taint accumulates on the container, key
			// taint on its key bit.
			if id, ok := baseIdent(target.X); ok {
				if obj := l.p.objectOf(id); obj != nil {
					if bits&taintVal != 0 {
						fact[obj] |= taintVal
					}
					if l.exprTaint(target.Index, fact)&taintVal != 0 {
						if _, isMap := l.typeOf(target.X).(*types.Map); isMap {
							fact[obj] |= taintKey
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if target.Sel.Name == "SQL" && bits&taintVal != 0 && report != nil {
				report(st.Pos(), "the generated SQL statement")
			}
			// Struct-carried taint: a tainted field taints the variable.
			if bits&taintVal != 0 {
				if id, ok := baseIdent(target.X); ok {
					if obj := l.p.objectOf(id); obj != nil {
						fact[obj] |= taintVal
					}
				}
			}
		}
	}
}

func (l *taintLattice) setIdent(id *ast.Ident, bits uint8, fact taintFact) {
	if id.Name == "_" {
		return
	}
	obj := l.p.objectOf(id)
	if obj == nil {
		return
	}
	if bits == 0 {
		delete(fact, obj) // strong update: clean assignment clears taint
	} else {
		fact[obj] = bits
	}
}

func (l *taintLattice) typeOf(e ast.Expr) types.Type {
	if l.p.TypesInfo == nil {
		return nil
	}
	if tv, ok := l.p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// exprTaint computes the taint bits of an expression under fact.
func (l *taintLattice) exprTaint(e ast.Expr, fact taintFact) uint8 {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := l.p.objectOf(x); obj != nil {
			return fact[obj]
		}
	case *ast.ParenExpr:
		return l.exprTaint(x.X, fact)
	case *ast.SelectorExpr:
		// A field read off an XML-QL node is THE taint source: every
		// string in a parsed query is attacker-chosen.
		if l.isXMLQLField(x) {
			return taintVal
		}
		return l.exprTaint(x.X, fact) & taintVal
	case *ast.IndexExpr:
		// Element read: map/slice VALUES carry the value bit; key taint
		// does not leak through a value read.
		return l.exprTaint(x.X, fact) & taintVal
	case *ast.TypeAssertExpr:
		return l.exprTaint(x.X, fact)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return (l.exprTaint(x.X, fact) | l.exprTaint(x.Y, fact)) & taintVal
		}
	case *ast.UnaryExpr:
		return l.exprTaint(x.X, fact)
	case *ast.StarExpr:
		return l.exprTaint(x.X, fact)
	case *ast.CompositeLit:
		var bits uint8
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				bits |= l.exprTaint(kv.Value, fact)
			} else {
				bits |= l.exprTaint(el, fact)
			}
		}
		return bits & taintVal
	case *ast.CallExpr:
		return l.callTaint(x, fact)
	}
	return 0
}

// callTaint: sanitizers return clean strings; conversions pass taint
// through; every other call — including closures and unknown module
// functions — returns taint when the receiver or any argument is
// value-tainted (strings.Join, append, fmt.Sprintf, sb.String, ...).
func (l *taintLattice) callTaint(call *ast.CallExpr, fact taintFact) uint8 {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if sanitizers[name] {
		return 0
	}
	var bits uint8
	if recv, _, isMethod := l.p.methodCall(call); isMethod {
		bits |= l.exprTaint(recv, fact)
	}
	for _, arg := range call.Args {
		bits |= l.exprTaint(arg, fact)
	}
	return bits & taintVal
}

// isXMLQLField reports whether the selector reads a field of a type
// declared in internal/xmlql.
func (l *taintLattice) isXMLQLField(sel *ast.SelectorExpr) bool {
	t := l.typeOf(sel.X)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/xmlql") {
		return false
	}
	// Fields only: methods are behavior, not data.
	if l.p.TypesInfo != nil {
		if s, ok := l.p.TypesInfo.Selections[sel]; ok {
			_, isField := s.Obj().(*types.Var)
			return isField
		}
	}
	return true
}

// baseIdent unwraps &x / (x) to the base identifier.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			return id, ok
		}
	}
}
