// Package catalog is the metadata server of the integration system
// (§2.1): it registers data sources with their capability descriptions,
// and holds the mediated schemas — global-as-view definitions written in
// XML-QL over sources or over other mediated schemas, composable
// hierarchically so that "we can define successive schemas as views over
// other underlying schemas".
package catalog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Capabilities describes the query processing a source can perform, so
// the optimizer can "address the varying query capabilities of different
// data sources" (§4).
type Capabilities struct {
	// Selection: the source can evaluate comparison predicates.
	Selection bool
	// Projection: the source can return a subset of fields.
	Projection bool
	// Join: the source can join its own collections (e.g. SQL joins).
	Join bool
	// Ordering: the source can sort results.
	Ordering bool
	// KeyLookupOnly: the source only supports lookups by key/path (e.g.
	// a hierarchical directory); full scans must be requested explicitly.
	KeyLookupOnly bool
}

// Request is a compiled query fragment for one source. For capable
// sources Native carries the fragment translated into the source's own
// language (SQL for relational sources, a path for hierarchical ones);
// for sources without query capability Native is empty and the source
// returns its whole document for the mediator to match.
type Request struct {
	Native string
	// Collection optionally narrows the request to one named collection
	// (table, subtree) of the source.
	Collection string
}

// Cost summarizes a source's answer for the optimizer's statistics.
type Cost struct {
	RowsReturned int
	BytesMoved   int
}

// Source is a wrapper around one external data source. Fetch returns the
// result as an XML document in the source's export schema.
type Source interface {
	// Name is the unique source name used in IN clauses and mappings.
	Name() string
	// Capabilities reports what the source can evaluate.
	Capabilities() Capabilities
	// Fetch executes a request. The returned node is owned by the caller
	// (sources return fresh trees or stable documents that callers must
	// not mutate).
	Fetch(ctx context.Context, req Request) (*xmldm.Node, Cost, error)
}

// RelationalDescriptor describes how a relational source exports a table
// as XML, which is what the compiler needs to translate pattern
// fragments to SQL: "the compiler considers both the type of the
// underlying source [and] information concerning the layout of the data
// within the sources" (§2.1).
type RelationalDescriptor struct {
	// Table is the SQL table name.
	Table string
	// RowElement is the element name each row is exported as.
	RowElement string
	// ColumnElements maps exported child-element names to column names.
	ColumnElements map[string]string
	// KeyColumn is the primary key column, if any.
	KeyColumn string
	// IndexedColumns lists columns with indexes (including the key).
	IndexedColumns []string
}

// Relational is implemented by sources that accept SQL; the compiler
// checks for it when translating fragments.
type Relational interface {
	Source
	// Descriptors lists the exported tables.
	Descriptors() []RelationalDescriptor
}

// ViewDef is one global-as-view definition: the mediated schema's
// content is defined by Query, whose IN clauses reference sources or
// other mediated schemas.
type ViewDef struct {
	// Name of the mediated schema this view contributes to.
	Schema string
	// Query computes (part of) the schema's document.
	Query *xmlql.Query
}

// Catalog registers sources and mediated schemas. Safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	sources map[string]Source
	views   map[string][]*ViewDef // by schema name
}

// ErrUnknownName is wrapped by lookups of unregistered sources/schemas.
var ErrUnknownName = errors.New("catalog: unknown source or schema")

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		sources: make(map[string]Source),
		views:   make(map[string][]*ViewDef),
	}
}

// AddSource registers a source; the name must be unused by sources and
// schemas alike.
func (c *Catalog) AddSource(s Source) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.Name())
	if key == "" {
		return errors.New("catalog: source must have a name")
	}
	if _, ok := c.sources[key]; ok {
		return fmt.Errorf("catalog: source %q already registered", s.Name())
	}
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("catalog: name %q already names a mediated schema", s.Name())
	}
	c.sources[key] = s
	return nil
}

// ReplaceSource swaps the registered source of the same name — used to
// wrap an already-registered source (instrumentation, network
// simulation) without re-running registration checks. The name must
// already be registered.
func (c *Catalog) ReplaceSource(s Source) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.Name())
	if _, ok := c.sources[key]; !ok {
		return fmt.Errorf("%w: source %q", ErrUnknownName, s.Name())
	}
	c.sources[key] = s
	return nil
}

// WrapAll replaces every registered source with wrap(source) — the bulk
// entry point instrumentation and fault-injection wrappers use. wrap
// must return a source reporting the same Name (lookups key on the
// registered name); returning nil keeps the original unwrapped.
func (c *Catalog) WrapAll(wrap func(Source) Source) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, s := range c.sources {
		if w := wrap(s); w != nil {
			c.sources[key] = w
		}
	}
}

// Source returns the named source.
func (c *Catalog) Source(name string) (Source, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sources[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: source %q", ErrUnknownName, name)
	}
	return s, nil
}

// DefineView adds a view definition to a mediated schema, creating the
// schema on first definition. Multiple definitions union: each
// contributes elements to the schema's document, which is how different
// parts of an organization integrate "in an incremental fashion" (§2).
func (c *Catalog) DefineView(schema string, q *xmlql.Query) error {
	if q == nil || q.Construct == nil {
		return errors.New("catalog: view definition needs a CONSTRUCT clause")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(schema)
	if key == "" {
		return errors.New("catalog: schema must have a name")
	}
	if _, ok := c.sources[key]; ok {
		return fmt.Errorf("catalog: name %q already names a source", schema)
	}
	c.views[key] = append(c.views[key], &ViewDef{Schema: schema, Query: q})
	return nil
}

// DefineViewQL parses src as XML-QL and defines it as a view.
func (c *Catalog) DefineViewQL(schema, src string) error {
	q, err := xmlql.Parse(src)
	if err != nil {
		return err
	}
	return c.DefineView(schema, q)
}

// DefineViewQLChecked defines a view and verifies the schema hierarchy
// stays acyclic, removing the new definition again if it would create a
// cycle — the safe entry point for management tools taking definitions
// at runtime.
func (c *Catalog) DefineViewQLChecked(schema, src string) error {
	if err := c.DefineViewQL(schema, src); err != nil {
		return err
	}
	if err := c.CheckAcyclic(); err != nil {
		c.mu.Lock()
		key := strings.ToLower(schema)
		if defs := c.views[key]; len(defs) > 0 {
			c.views[key] = defs[:len(defs)-1]
			if len(c.views[key]) == 0 {
				delete(c.views, key)
			}
		}
		c.mu.Unlock()
		return err
	}
	return nil
}

// Views returns the view definitions of a mediated schema.
func (c *Catalog) Views(schema string) ([]*ViewDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vs, ok := c.views[strings.ToLower(schema)]
	if !ok {
		return nil, fmt.Errorf("%w: schema %q", ErrUnknownName, schema)
	}
	return vs, nil
}

// IsSchema reports whether name names a mediated schema.
func (c *Catalog) IsSchema(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.views[strings.ToLower(name)]
	return ok
}

// IsSource reports whether name names a registered source.
func (c *Catalog) IsSource(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.sources[strings.ToLower(name)]
	return ok
}

// SourceNames returns the registered source names, sorted.
func (c *Catalog) SourceNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for _, s := range c.sources {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}

// SchemaNames returns the mediated schema names, sorted.
func (c *Catalog) SchemaNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for name, defs := range c.views {
		if len(defs) > 0 {
			names = append(names, defs[0].Schema)
		} else {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// CheckAcyclic verifies that no mediated schema depends on itself through
// its view definitions — hierarchical composition must be a DAG.
func (c *Catalog) CheckAcyclic() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string, trail []string) error
	visit = func(name string, trail []string) error {
		key := strings.ToLower(name)
		switch color[key] {
		case grey:
			return fmt.Errorf("catalog: cyclic schema definition: %s -> %s", strings.Join(trail, " -> "), name)
		case black:
			return nil
		}
		color[key] = grey
		for _, def := range c.views[key] {
			for _, dep := range queryDeps(def.Query) {
				if _, isView := c.views[strings.ToLower(dep)]; isView {
					if err := visit(dep, append(trail, name)); err != nil {
						return err
					}
				}
			}
		}
		color[key] = black
		return nil
	}
	for name := range c.views {
		if err := visit(name, nil); err != nil {
			return err
		}
	}
	return nil
}

// queryDeps returns the source/schema names a query references, at any
// nesting depth.
func queryDeps(q *xmlql.Query) []string {
	var out []string
	seen := map[string]bool{}
	var walkQuery func(*xmlql.Query)
	var walkTmpl func(*xmlql.TmplElem)
	var walkExpr func(xmlql.Expr)
	walkQuery = func(q *xmlql.Query) {
		for _, cond := range q.Where {
			switch x := cond.(type) {
			case *xmlql.PatternCond:
				if x.Source.Name != "" && !seen[strings.ToLower(x.Source.Name)] {
					seen[strings.ToLower(x.Source.Name)] = true
					out = append(out, x.Source.Name)
				}
			case *xmlql.PredicateCond:
				walkExpr(x.Expr)
			}
		}
		if q.Construct != nil {
			walkTmpl(q.Construct)
		}
	}
	walkTmpl = func(t *xmlql.TmplElem) {
		for _, c := range t.Content {
			switch x := c.(type) {
			case *xmlql.TmplChild:
				walkTmpl(x.Elem)
			case *xmlql.TmplQuery:
				walkQuery(x.Query)
			case *xmlql.TmplExpr:
				walkExpr(x.Expr)
			}
		}
	}
	walkExpr = func(e xmlql.Expr) {
		switch x := e.(type) {
		case *xmlql.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *xmlql.FuncExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *xmlql.AggExpr:
			walkQuery(x.Query)
		}
	}
	walkQuery(q)
	return out
}

// QueryDeps exposes queryDeps for other layers (the materializer uses it
// to know which sources a view touches).
func QueryDeps(q *xmlql.Query) []string { return queryDeps(q) }

// StaticSource is a Source over a fixed in-memory document; useful for
// XML file sources and tests.
type StaticSource struct {
	name string
	caps Capabilities

	mu  sync.RWMutex
	doc *xmldm.Node
}

// NewStaticSource wraps a document as a source with no query capability.
func NewStaticSource(name string, doc *xmldm.Node) *StaticSource {
	return &StaticSource{name: name, doc: doc}
}

// Name implements Source.
func (s *StaticSource) Name() string { return s.name }

// Capabilities implements Source.
func (s *StaticSource) Capabilities() Capabilities { return s.caps }

// Fetch implements Source.
func (s *StaticSource) Fetch(_ context.Context, _ Request) (*xmldm.Node, Cost, error) {
	s.mu.RLock()
	doc := s.doc
	s.mu.RUnlock()
	n := doc.CountElements()
	return doc, Cost{RowsReturned: n, BytesMoved: n * 24}, nil
}

// Replace swaps the document; used to simulate source-side updates in
// freshness experiments.
func (s *StaticSource) Replace(doc *xmldm.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doc = doc
}
