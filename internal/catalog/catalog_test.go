package catalog

import (
	"context"
	"strings"
	"testing"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

func TestAddAndLookupSource(t *testing.T) {
	c := New()
	doc := xmldm.NewBuilder().Elem("d")
	if err := c.AddSource(NewStaticSource("s1", doc)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(NewStaticSource("S1", doc)); err == nil {
		t.Error("duplicate source (case-insensitive) should fail")
	}
	if err := c.AddSource(NewStaticSource("", doc)); err == nil {
		t.Error("empty name should fail")
	}
	s, err := c.Source("s1")
	if err != nil || s.Name() != "s1" {
		t.Errorf("Source = %v, %v", s, err)
	}
	if _, err := c.Source("nope"); err == nil {
		t.Error("unknown source should fail")
	}
	if !c.IsSource("s1") || c.IsSource("nope") {
		t.Error("IsSource wrong")
	}
}

func TestDefineViewAndHierarchy(t *testing.T) {
	c := New()
	doc := xmldm.NewBuilder().Elem("d")
	if err := c.AddSource(NewStaticSource("base", doc)); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineViewQL("level1", `WHERE <a>$x</a> IN "base" CONSTRUCT <b>$x</b>`); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineViewQL("level2", `WHERE <b>$x</b> IN "level1" CONSTRUCT <c>$x</c>`); err != nil {
		t.Fatal(err)
	}
	if !c.IsSchema("level1") || !c.IsSchema("LEVEL2") {
		t.Error("IsSchema wrong")
	}
	vs, err := c.Views("level2")
	if err != nil || len(vs) != 1 {
		t.Fatalf("Views = %v, %v", vs, err)
	}
	if err := c.CheckAcyclic(); err != nil {
		t.Errorf("acyclic hierarchy flagged: %v", err)
	}
	// Multiple view defs union into one schema.
	if err := c.DefineViewQL("level1", `WHERE <z>$x</z> IN "base" CONSTRUCT <b>$x</b>`); err != nil {
		t.Fatal(err)
	}
	vs, _ = c.Views("level1")
	if len(vs) != 2 {
		t.Errorf("view defs = %d", len(vs))
	}
}

func TestNameCollisionsBetweenSourcesAndSchemas(t *testing.T) {
	c := New()
	doc := xmldm.NewBuilder().Elem("d")
	if err := c.AddSource(NewStaticSource("x", doc)); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineViewQL("x", `WHERE <a>$v</a> IN "x" CONSTRUCT <b>$v</b>`); err == nil {
		t.Error("schema with source name should fail")
	}
	if err := c.DefineViewQL("y", `WHERE <a>$v</a> IN "x" CONSTRUCT <b>$v</b>`); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(NewStaticSource("y", doc)); err == nil {
		t.Error("source with schema name should fail")
	}
}

func TestCheckAcyclicDetectsCycle(t *testing.T) {
	c := New()
	if err := c.DefineViewQL("a", `WHERE <x>$v</x> IN "b" CONSTRUCT <y>$v</y>`); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineViewQL("b", `WHERE <y>$v</y> IN "a" CONSTRUCT <x>$v</x>`); err != nil {
		t.Fatal(err)
	}
	err := c.CheckAcyclic()
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestQueryDeps(t *testing.T) {
	q := xmlql.MustParse(`
		WHERE <a>$x</a> IN "s1", <b>$y</b> IN "s2", <c>$z</c> IN $x
		CONSTRUCT <r>
			{ WHERE <d>$w</d> IN "s3" CONSTRUCT <e>$w</e> }
			<n>{ count({ WHERE <f>$u</f> IN "s4" CONSTRUCT <g>$u</g> }) }</n>
		</r>`)
	deps := QueryDeps(q)
	want := map[string]bool{"s1": true, "s2": true, "s3": true, "s4": true}
	if len(deps) != 4 {
		t.Fatalf("deps = %v", deps)
	}
	for _, d := range deps {
		if !want[d] {
			t.Errorf("unexpected dep %q", d)
		}
	}
}

func TestStaticSourceFetchAndReplace(t *testing.T) {
	b := xmldm.NewBuilder()
	s := NewStaticSource("s", b.Elem("doc", b.Elem("item", "1")))
	doc, cost, err := s.Fetch(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "doc" || cost.RowsReturned != 2 {
		t.Errorf("doc = %s, cost = %+v", doc.Name, cost)
	}
	s.Replace(b.Elem("doc2"))
	doc, _, _ = s.Fetch(context.Background(), Request{})
	if doc.Name != "doc2" {
		t.Error("Replace did not take effect")
	}
}

func TestSchemaAndSourceNames(t *testing.T) {
	c := New()
	doc := xmldm.NewBuilder().Elem("d")
	c.AddSource(NewStaticSource("zeta", doc))
	c.AddSource(NewStaticSource("alpha", doc))
	c.DefineViewQL("mid", `WHERE <a>$v</a> IN "alpha" CONSTRUCT <b>$v</b>`)
	if got := c.SourceNames(); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("SourceNames = %v", got)
	}
	if got := c.SchemaNames(); len(got) != 1 || got[0] != "mid" {
		t.Errorf("SchemaNames = %v", got)
	}
}

// renamingSource wraps a source for the WrapAll test.
type renamingSource struct{ Source }

func TestWrapAll(t *testing.T) {
	c := New()
	doc := xmldm.NewBuilder().Elem("d")
	c.AddSource(NewStaticSource("a", doc))
	c.AddSource(NewStaticSource("b", doc))
	// Wrap only "a"; returning nil keeps "b" untouched.
	c.WrapAll(func(s Source) Source {
		if s.Name() == "a" {
			return renamingSource{s}
		}
		return nil
	})
	a, err := c.Source("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(renamingSource); !ok {
		t.Errorf("source a = %T, want the wrapper", a)
	}
	b, err := c.Source("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*StaticSource); !ok {
		t.Errorf("source b = %T, want the original", b)
	}
	// Lookups still key on the registered name after wrapping.
	if got := c.SourceNames(); len(got) != 2 {
		t.Errorf("SourceNames = %v", got)
	}
}

func TestDefineViewValidation(t *testing.T) {
	c := New()
	if err := c.DefineView("s", nil); err == nil {
		t.Error("nil view should fail")
	}
	if err := c.DefineViewQL("", `WHERE <a>$v</a> IN "x" CONSTRUCT <b>$v</b>`); err == nil {
		t.Error("empty schema name should fail")
	}
	if err := c.DefineViewQL("s", `not xmlql`); err == nil {
		t.Error("bad query text should fail")
	}
}
