package lineage

import (
	"testing"
)

func TestAppendAndAncestry(t *testing.T) {
	l := New()
	l.Append(KindNormalize, []string{"crm/1"}, "crm/1", "normalized")
	l.Append(KindNormalize, []string{"web/a"}, "web/a", "normalized")
	l.Append(KindDecision, []string{"crm/1", "web/a"}, "crm/1~web/a", "human same=true")
	l.Append(KindMerge, []string{"crm/1", "web/a"}, "merged/1", "2-way merge")
	l.Append(KindNormalize, []string{"crm/9"}, "crm/9", "unrelated")

	anc := l.Ancestry("merged/1")
	if len(anc) != 3 {
		t.Fatalf("ancestry = %d events: %+v", len(anc), anc)
	}
	// Ancestry is ordered by sequence and excludes unrelated events.
	for _, e := range anc {
		if e.Output == "crm/9" {
			t.Error("unrelated event in ancestry")
		}
	}
	if anc[len(anc)-1].Kind != KindMerge {
		t.Errorf("last ancestry event = %v", anc[len(anc)-1].Kind)
	}
	if l.Len() != 5 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestAncestryIncludesDecisions(t *testing.T) {
	l := New()
	l.Append(KindDecision, []string{"a", "b"}, "a~b", "human")
	l.Append(KindMerge, []string{"a~b"}, "m", "")
	anc := l.Ancestry("m")
	found := false
	for _, e := range anc {
		if e.Kind == KindDecision {
			found = true
		}
	}
	if !found {
		t.Error("human decision missing from ancestry — §3.2 requires recording them")
	}
}

func TestRollback(t *testing.T) {
	l := New()
	s0 := l.Append(KindNormalize, []string{"a"}, "a", "")
	l.Append(KindDecision, []string{"a", "b"}, "a~b", "")
	l.Append(KindMerge, []string{"a", "b"}, "m", "")

	dropped, err := l.RollbackTo(s0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped = %d", len(dropped))
	}
	// Most recent first, so the merge precedes the decision.
	if dropped[0].Kind != KindMerge || dropped[1].Kind != KindDecision {
		t.Errorf("rollback order = %v, %v", dropped[0].Kind, dropped[1].Kind)
	}
	if l.Len() != 1 {
		t.Errorf("len after rollback = %d", l.Len())
	}
	// Index rebuilt: ancestry of the dropped output is empty.
	if anc := l.Ancestry("m"); len(anc) != 0 {
		t.Errorf("stale index: %v", anc)
	}
	// Full rollback.
	if _, err := l.RollbackTo(-1); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Error("rollback to -1 should empty the log")
	}
}

func TestRollbackRangeErrors(t *testing.T) {
	l := New()
	l.Append(KindNormalize, nil, "a", "")
	if _, err := l.RollbackTo(5); err == nil {
		t.Error("out-of-range rollback should fail")
	}
	if _, err := l.RollbackTo(-2); err == nil {
		t.Error("below -1 should fail")
	}
}

func TestEventsCopy(t *testing.T) {
	l := New()
	l.Append(KindNormalize, nil, "a", "")
	evs := l.Events()
	evs[0].Output = "mutated"
	if l.Events()[0].Output != "a" {
		t.Error("Events must return a copy")
	}
}

func TestCyclicAncestryTerminates(t *testing.T) {
	// Defensive: a log with a self-referential chain must not loop.
	l := New()
	l.Append(KindMerge, []string{"x"}, "y", "")
	l.Append(KindMerge, []string{"y"}, "x", "")
	anc := l.Ancestry("x")
	if len(anc) != 2 {
		t.Errorf("ancestry = %d", len(anc))
	}
}
