// Package lineage implements the data lineage mechanism of §3.2: the
// cleaning system records "data ancestry, human decisions, and
// supporting roll-back whenever possible". Every cleaning step appends
// events linking outputs to their inputs; Ancestry walks the links
// backwards, and RollbackTo undoes a suffix of the log, reporting which
// decisions must be revoked in the concordance database.
package lineage

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies lineage events.
type Kind string

// The event kinds.
const (
	KindNormalize Kind = "normalize"
	KindMatch     Kind = "match"
	KindDecision  Kind = "decision" // a human determination
	KindMerge     Kind = "merge"
)

// Event is one lineage record: Output was produced from Inputs by a step
// of the given kind.
type Event struct {
	Seq    int
	Kind   Kind
	Inputs []string // record keys
	Output string   // record key (or pair key for match/decision)
	Detail string
	At     time.Time
}

// Log is an append-only lineage log, safe for concurrent use.
type Log struct {
	mu     sync.RWMutex
	events []Event
	byOut  map[string][]int // output key -> event indexes
	clock  func() time.Time
}

// New creates an empty log.
func New() *Log {
	return &Log{byOut: map[string][]int{}, clock: time.Now}
}

// SetClock replaces the time source (tests).
func (l *Log) SetClock(fn func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = fn
}

// Append records an event and returns its sequence number.
func (l *Log) Append(kind Kind, inputs []string, output, detail string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := len(l.events)
	l.events = append(l.events, Event{
		Seq: seq, Kind: kind,
		Inputs: append([]string(nil), inputs...),
		Output: output, Detail: detail, At: l.clock(),
	})
	l.byOut[output] = append(l.byOut[output], seq)
	return seq
}

// Len reports the number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Events returns a copy of the log.
func (l *Log) Events() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Event(nil), l.events...)
}

// Ancestry returns every event reachable backwards from the output key:
// the full derivation of a cleaned record, human decisions included.
func (l *Log) Ancestry(output string) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := map[int]bool{}
	var visit func(key string)
	var collected []int
	visit = func(key string) {
		for _, idx := range l.byOut[key] {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			collected = append(collected, idx)
			for _, in := range l.events[idx].Inputs {
				visit(in)
			}
		}
	}
	visit(output)
	sort.Ints(collected)
	out := make([]Event, len(collected))
	for i, idx := range collected {
		out[i] = l.events[idx]
	}
	return out
}

// RollbackTo truncates the log after seq (exclusive) and returns the
// dropped events, most recent first — the caller revokes the
// corresponding concordance decisions.
func (l *Log) RollbackTo(seq int) ([]Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < -1 || seq >= len(l.events) {
		return nil, fmt.Errorf("lineage: rollback point %d out of range [-1, %d)", seq, len(l.events))
	}
	dropped := append([]Event(nil), l.events[seq+1:]...)
	// Reverse: undo most recent first.
	for i, j := 0, len(dropped)-1; i < j; i, j = i+1, j-1 {
		dropped[i], dropped[j] = dropped[j], dropped[i]
	}
	l.events = l.events[:seq+1]
	l.byOut = map[string][]int{}
	for i, e := range l.events {
		l.byOut[e.Output] = append(l.byOut[e.Output], i)
	}
	return dropped, nil
}
