// Package sched is the shared inter-query scheduler: one process-wide
// worker budget that every concurrent query's intra-query parallelism is
// admitted against. PR 8 made a single query's pipelines parallel
// (exchanges and partitioned joins in internal/algebra), but each query
// claimed its configured degree unconditionally — N concurrent queries at
// parallelism P spun up N·P workers on a machine with GOMAXPROCS cores,
// exactly the oversubscription a mediator stack hits first under fan-in
// load. The scheduler replaces that with admission:
//
//   - the budget counts *extra* worker slots — the worker goroutines a
//     query may use beyond the one goroutine every query already has. A
//     granted degree of d costs d−1 slots, so a serial query costs zero
//     and is always admitted immediately: the floor of one never blocks.
//     The default budget is GOMAXPROCS;
//   - Acquire never blocks: a query asking for degree d receives
//     min(d, 1+free) at once. Queries admitted below their desired degree
//     are counted as downgrades and parked in a per-class FIFO for
//     upgrades as slots free;
//   - two priority classes, interactive and batch. Freed slots go to
//     interactive waiters first, and batch queries *yield* slack to unmet
//     interactive demand at operator boundaries (Grant.Checkpoint, which
//     the engine calls between rewrites, where no plan operators are
//     running) — so an interactive query is never queued behind batch
//     longer than one operator boundary;
//   - grants are released on query completion or cancellation (Release is
//     idempotent, so defer-on-every-path is safe), returning the slots to
//     the pool and re-dispatching waiters.
//
// The accounting invariant, asserted by the storm and fuzz suites at
// every instant: granted + free == budget and granted ≤ budget. Gauges
// (nimble_sched_budget / _granted / _waiting) and counters
// (nimble_sched_downgrades_total / _upgrades_total / _reclaimed_total)
// expose the same numbers; everything balances to zero at idle.
//
// The scheduler composes with, and does not double-count, the cluster
// front end's admission control: cluster slots bound how many *queries*
// run per instance, scheduler slots bound how many *workers* all running
// queries may spread across, process-wide.
package sched

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Class is a query's scheduling priority class.
type Class int

const (
	// Interactive queries are latency-sensitive: freed slots go to them
	// first, and batch queries yield slack to them at operator
	// boundaries.
	Interactive Class = iota
	// Batch queries are throughput work: they receive slots after
	// interactive demand is met and give slack back when interactive
	// queries arrive.
	Batch
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// ParseClass parses a class name as it appears in Config.QueryClass, the
// X-Nimble-Class HTTP header, and the nimbled -query-class flag. Empty
// means Interactive (the default).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	}
	return Interactive, fmt.Errorf("sched: unknown query class %q (want interactive or batch)", s)
}

// Clock abstracts time for grant ages and queue-wait measurement;
// chaos.FakeClock satisfies it, so scheduler tests run on virtual time.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Config tunes a Scheduler.
type Config struct {
	// Budget is the global pool of extra worker slots shared by all
	// concurrent queries (a granted degree of d consumes d−1 slots).
	// 0 resolves to runtime.GOMAXPROCS(0).
	Budget int
	// Clock drives grant timestamps and wait measurement; nil = real
	// time. Tests inject chaos.FakeClock for determinism.
	Clock Clock
	// Metrics receives the nimble_sched_* series; nil disables metrics.
	Metrics *obs.Registry
}

// Scheduler owns the worker budget. Safe for concurrent use.
type Scheduler struct {
	clock Clock

	mu      sync.Mutex
	budget  int                 // immutable after New, read under mu for Snap coherence
	free    int                 // guarded by mu; slots not granted
	grants  map[*Grant]struct{} // guarded by mu; live grants
	waitInt *list.List          // guarded by mu; interactive grants awaiting upgrades (FIFO)
	waitBat *list.List          // guarded by mu; batch grants awaiting upgrades (FIFO)

	downgrades int64 // guarded by mu; grants admitted below their desired degree
	upgrades   int64 // guarded by mu; slots later granted to waiting grants
	reclaimed  int64 // guarded by mu; slots yielded by batch grants at checkpoints
	starved    int64 // guarded by mu; see Checkpoint's starvation detector

	mDowngrades *obs.Counter
	mUpgrades   *obs.Counter
	mReclaimed  *obs.Counter
	mWait       *obs.Histogram
}

// New builds a scheduler over the configured budget.
func New(cfg Config) *Scheduler {
	budget := cfg.Budget
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if budget < 1 {
		budget = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	s := &Scheduler{
		clock:   clock,
		budget:  budget,
		free:    budget,
		grants:  map[*Grant]struct{}{},
		waitInt: list.New(),
		waitBat: list.New(),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("nimble_sched_budget", func() float64 { return float64(s.Budget()) })
		reg.GaugeFunc("nimble_sched_granted", func() float64 { return float64(s.Snap().Granted) })
		reg.GaugeFunc("nimble_sched_waiting", func() float64 { return float64(s.Snap().Waiting) })
		s.mDowngrades = reg.Counter("nimble_sched_downgrades_total")
		s.mUpgrades = reg.Counter("nimble_sched_upgrades_total")
		s.mReclaimed = reg.Counter("nimble_sched_reclaimed_total")
		s.mWait = reg.Histogram("nimble_sched_wait_seconds")
	}
	return s
}

var (
	defaultMu    sync.Mutex
	defaultSched *Scheduler
)

// Default returns the process-wide scheduler (budget GOMAXPROCS,
// metrics on obs.Default()). Engines without an explicit SetScheduler
// admit their queries here, so even ad-hoc core.Engine users share one
// budget.
func Default() *Scheduler {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSched == nil {
		defaultSched = New(Config{Metrics: obs.Default()})
	}
	return defaultSched
}

// Budget reports the configured slot budget.
func (s *Scheduler) Budget() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// Grant is one query's admitted degree of parallelism. The engine
// acquires a grant per top-level query, consults Degree/Checkpoint at
// operator boundaries (each rewrite, the final sort), and releases it
// when the query finishes — on success, error, cancellation, and panic
// paths alike (Release is idempotent, so `defer g.Release()` is the
// whole contract).
type Grant struct {
	s     *Scheduler
	class Class
	start time.Time

	desired  int           // guarded by s.mu
	degree   int           // guarded by s.mu
	elem     *list.Element // guarded by s.mu; non-nil while queued for an upgrade
	enq      time.Time     // guarded by s.mu; when the grant started waiting
	released bool          // guarded by s.mu
}

// Acquire admits a query requesting the desired degree of parallelism
// under the given class. desired <= 0 means "use the machine": it
// resolves to the budget (the old SetParallelism(0) = GOMAXPROCS
// behavior, now against the shared pool instead of per query). The
// granted degree is min(desired, 1+free) with a floor of 1 — Acquire
// never blocks and never fails; a query short of its desired degree is
// queued for upgrades at its next operator boundary.
func (s *Scheduler) Acquire(desired int, class Class) *Grant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if desired <= 0 {
		desired = s.budget
	}
	if desired < 1 {
		desired = 1
	}
	if desired > s.budget+1 {
		// More workers than the budget can ever grant is demand that can
		// never be met; cap it so waiters are always satisfiable.
		desired = s.budget + 1
	}
	take := desired - 1
	if take > s.free {
		take = s.free
	}
	s.free -= take
	now := s.clock.Now()
	g := &Grant{s: s, class: class, start: now, desired: desired, degree: 1 + take}
	s.grants[g] = struct{}{}
	if g.degree < g.desired {
		s.downgrades++
		s.mDowngrades.Inc()
		g.enq = now
		g.elem = s.queueOfLocked(class).PushBack(g)
	}
	return g
}

// queueOfLocked returns the upgrade queue for a class.
func (s *Scheduler) queueOfLocked(c Class) *list.List {
	if c == Batch {
		return s.waitBat
	}
	return s.waitInt
}

// dispatchLocked hands free slots to waiting grants: interactive FIFO
// first, then batch FIFO. Partial upgrades are allowed; a grant leaves
// the queue only when it reaches its desired degree.
func (s *Scheduler) dispatchLocked() {
	for s.free > 0 {
		q := s.waitInt
		if q.Len() == 0 {
			q = s.waitBat
		}
		if q.Len() == 0 {
			return
		}
		g := q.Front().Value.(*Grant)
		take := g.desired - g.degree
		if take > s.free {
			take = s.free
		}
		g.degree += take
		s.free -= take
		s.upgrades += int64(take)
		s.mUpgrades.Add(int64(take))
		if g.degree >= g.desired {
			q.Remove(q.Front())
			g.elem = nil
			s.mWait.Observe(s.clock.Now().Sub(g.enq).Seconds())
		} else {
			return // head of queue still unmet: the pool is dry
		}
	}
}

// unmetInteractiveLocked sums the slots interactive waiters still need.
func (s *Scheduler) unmetInteractiveLocked() int {
	unmet := 0
	for e := s.waitInt.Front(); e != nil; e = e.Next() {
		g := e.Value.(*Grant)
		unmet += g.desired - g.degree
	}
	return unmet
}

// Class reports the grant's scheduling class.
func (g *Grant) Class() Class {
	if g == nil {
		return Interactive
	}
	return g.class
}

// Desired reports the degree the query asked for (after resolution of
// the 0 = budget default). Nil grants are serial.
func (g *Grant) Desired() int {
	if g == nil {
		return 1
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.desired
}

// Degree reports the currently granted degree of parallelism. Nil
// grants are serial (degree 1) — the engine's materialization paths run
// without a grant.
func (g *Grant) Degree() int {
	if g == nil {
		return 1
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	if g.released {
		return 1
	}
	return g.degree
}

// Checkpoint is the operator-boundary yield point, called by the engine
// between rewrites and before the final sort — moments when none of the
// query's plan operators are running, so degree changes are safe. A
// batch grant yields slack to unmet interactive demand here (the
// reclaim path); any grant picks up upgrades granted since the last
// boundary. Returns the degree to plan the next operator tree at.
func (g *Grant) Checkpoint() int {
	if g == nil {
		return 1
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	s := g.s
	if g.released {
		return 1
	}
	if g.class == Batch && g.degree > 1 {
		if demand := s.unmetInteractiveLocked(); demand > 0 {
			yield := g.degree - 1
			if yield > demand {
				yield = demand
			}
			g.degree -= yield
			s.free += yield
			s.reclaimed += int64(yield)
			s.mReclaimed.Add(int64(yield))
			if g.degree < g.desired && g.elem == nil {
				// The yielded slots come back when interactive pressure
				// clears: rejoin the batch upgrade queue.
				g.enq = s.clock.Now()
				g.elem = s.waitBat.PushBack(g)
			}
			s.dispatchLocked()
			// Starvation detector: after a batch boundary yielded, no
			// interactive waiter may remain unmet while this grant still
			// holds slack. Structurally unreachable; the soak asserts 0.
			if g.degree > 1 && s.unmetInteractiveLocked() > 0 {
				s.starved++
			}
			return g.degree
		}
	}
	s.dispatchLocked()
	return g.degree
}

// Release returns the grant's slots to the pool and re-dispatches
// waiters. Idempotent: the second and later calls are no-ops, so the
// engine defers it unconditionally and error/cancel/panic paths cannot
// double-release or leak.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	s := g.s
	if g.released {
		return
	}
	g.released = true
	if g.elem != nil {
		s.queueOfLocked(g.class).Remove(g.elem)
		g.elem = nil
	}
	s.free += g.degree - 1
	g.degree = 1
	delete(s.grants, g)
	s.dispatchLocked()
}

// Snapshot is the scheduler's instantaneous accounting, served on
// /debug/cluster and asserted by the storm/fuzz invariants:
// Granted + Free == Budget and Granted <= Budget, always; Granted,
// Waiting, and Queries are zero at idle.
type Snapshot struct {
	// Budget is the configured extra-worker slot pool.
	Budget int `json:"budget"`
	// Granted is the sum of degree−1 over live grants (slots out).
	Granted int `json:"granted"`
	// Free is the slots available for new grants.
	Free int `json:"free"`
	// Waiting is the grants queued for an upgrade (admitted below
	// their desired degree).
	Waiting int `json:"waiting"`
	// Queries is the live grant count.
	Queries int `json:"queries"`
	// Downgrades counts grants admitted below their desired degree.
	Downgrades int64 `json:"downgrades"`
	// Upgrades counts slots later granted to waiting grants.
	Upgrades int64 `json:"upgrades"`
	// Reclaimed counts slots batch grants yielded at checkpoints.
	Reclaimed int64 `json:"reclaimed"`
	// Starved counts interactive waiters left unmet across a batch
	// operator boundary that still held slack — always 0 unless the
	// scheduler's priority logic is broken.
	Starved int64 `json:"starved"`
}

// Snap returns the current accounting. Granted is recomputed from the
// live grants (not derived from Free), so the Granted+Free==Budget
// invariant check in tests catches bookkeeping drift on either side.
func (s *Scheduler) Snap() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	granted := 0
	for g := range s.grants {
		granted += g.degree - 1
	}
	return Snapshot{
		Budget:     s.budget,
		Granted:    granted,
		Free:       s.free,
		Waiting:    s.waitInt.Len() + s.waitBat.Len(),
		Queries:    len(s.grants),
		Downgrades: s.downgrades,
		Upgrades:   s.upgrades,
		Reclaimed:  s.reclaimed,
		Starved:    s.starved,
	}
}
