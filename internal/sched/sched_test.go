package sched

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// checkInvariants asserts the core accounting invariants on a snapshot:
// granted never exceeds the budget, and granted + free covers the budget
// exactly (no slot minted, no slot lost).
func checkInvariants(t *testing.T, snap Snapshot) {
	t.Helper()
	if snap.Granted < 0 || snap.Free < 0 {
		t.Fatalf("negative accounting: %+v", snap)
	}
	if snap.Granted > snap.Budget {
		t.Fatalf("granted %d exceeds budget %d: %+v", snap.Granted, snap.Budget, snap)
	}
	if snap.Granted+snap.Free != snap.Budget {
		t.Fatalf("granted %d + free %d != budget %d: %+v", snap.Granted, snap.Free, snap.Budget, snap)
	}
}

func TestAcquireGrantsUpToBudget(t *testing.T) {
	s := New(Config{Budget: 4})
	g := s.Acquire(3, Interactive)
	if got := g.Degree(); got != 3 {
		t.Fatalf("degree = %d, want 3 (budget 4 has room)", got)
	}
	if got := g.Desired(); got != 3 {
		t.Fatalf("desired = %d, want 3", got)
	}
	snap := s.Snap()
	checkInvariants(t, snap)
	if snap.Granted != 2 || snap.Queries != 1 || snap.Waiting != 0 {
		t.Fatalf("snap = %+v, want granted 2 (degree 3 costs 2 slots)", snap)
	}
	g.Release()
	snap = s.Snap()
	checkInvariants(t, snap)
	if snap.Granted != 0 || snap.Queries != 0 {
		t.Fatalf("after release: %+v, want all zero", snap)
	}
}

func TestAcquireNeverBlocksAtFloorOne(t *testing.T) {
	s := New(Config{Budget: 1})
	// Exhaust the budget, then keep admitting: every further query gets
	// the serial floor immediately — Acquire never blocks.
	first := s.Acquire(2, Batch)
	if first.Degree() != 2 {
		t.Fatalf("first degree = %d, want 2", first.Degree())
	}
	var rest []*Grant
	for i := 0; i < 8; i++ {
		g := s.Acquire(4, Interactive)
		if g.Degree() != 1 {
			t.Fatalf("grant %d degree = %d, want serial floor 1", i, g.Degree())
		}
		rest = append(rest, g)
	}
	checkInvariants(t, s.Snap())
	if got := s.Snap().Downgrades; got != 8 {
		t.Fatalf("downgrades = %d, want 8", got)
	}
	first.Release()
	for _, g := range rest {
		g.Release()
	}
	if snap := s.Snap(); snap.Granted != 0 || snap.Waiting != 0 {
		t.Fatalf("idle snap = %+v, want zero granted/waiting", snap)
	}
}

func TestAutoDesiredResolvesToBudget(t *testing.T) {
	s := New(Config{Budget: 3})
	g := s.Acquire(0, Interactive)
	if g.Desired() != 3 || g.Degree() != 3 {
		t.Fatalf("auto grant = desired %d degree %d, want 3/3 (budget)", g.Desired(), g.Degree())
	}
	g.Release()
}

func TestDesiredCappedAtBudgetPlusOne(t *testing.T) {
	s := New(Config{Budget: 2})
	g := s.Acquire(100, Interactive)
	if g.Desired() != 3 {
		t.Fatalf("desired = %d, want cap at budget+1 = 3", g.Desired())
	}
	if g.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", g.Degree())
	}
	// Fully satisfied: must not sit in the upgrade queue forever.
	if w := s.Snap().Waiting; w != 0 {
		t.Fatalf("waiting = %d, want 0", w)
	}
	g.Release()
}

func TestReleaseIsIdempotent(t *testing.T) {
	s := New(Config{Budget: 2})
	g := s.Acquire(3, Interactive)
	g.Release()
	g.Release() // double release must not mint slots
	g.Release()
	snap := s.Snap()
	checkInvariants(t, snap)
	if snap.Free != 2 {
		t.Fatalf("free = %d after double release, want 2", snap.Free)
	}
	if g.Degree() != 1 {
		t.Fatalf("released grant degree = %d, want serial 1", g.Degree())
	}
}

func TestNilGrantIsSerial(t *testing.T) {
	var g *Grant
	if g.Degree() != 1 || g.Checkpoint() != 1 || g.Desired() != 1 {
		t.Fatal("nil grant must behave as serial degree 1")
	}
	g.Release() // must not panic
}

func TestUpgradeAtCheckpointAfterRelease(t *testing.T) {
	s := New(Config{Budget: 4})
	hog := s.Acquire(5, Interactive) // takes the whole budget
	late := s.Acquire(3, Interactive)
	if late.Degree() != 1 {
		t.Fatalf("late degree = %d, want floor 1", late.Degree())
	}
	hog.Release()
	// The released slots were dispatched to the waiter; the next
	// operator boundary observes the upgrade.
	if got := late.Checkpoint(); got != 3 {
		t.Fatalf("late degree after release+checkpoint = %d, want 3", got)
	}
	if w := s.Snap().Waiting; w != 0 {
		t.Fatalf("waiting = %d, want 0 after upgrade", w)
	}
	late.Release()
	checkInvariants(t, s.Snap())
}

func TestInteractiveWaitersServedBeforeBatch(t *testing.T) {
	s := New(Config{Budget: 2})
	hog := s.Acquire(3, Interactive)
	bat := s.Acquire(3, Batch)         // waits
	inter := s.Acquire(3, Interactive) // waits, arrived later than batch
	hog.Release()
	// Freed slots must go to the interactive waiter even though the
	// batch waiter is older.
	if got := inter.Degree(); got != 3 {
		t.Fatalf("interactive degree after release = %d, want 3", got)
	}
	if got := bat.Degree(); got != 1 {
		t.Fatalf("batch degree = %d, want still 1", got)
	}
	inter.Release()
	if got := bat.Checkpoint(); got != 3 {
		t.Fatalf("batch degree after interactive release = %d, want 3", got)
	}
	bat.Release()
	checkInvariants(t, s.Snap())
}

// TestBatchYieldsToInteractiveWithinOneBoundary is the starvation test:
// on a FakeClock, an interactive query arriving while a batch query
// holds the whole budget is granted workers at the very next operator
// boundary — it is never queued behind batch longer than that.
func TestBatchYieldsToInteractiveWithinOneBoundary(t *testing.T) {
	fc := chaos.NewFakeClock()
	reg := obs.NewRegistry()
	s := New(Config{Budget: 2, Clock: fc, Metrics: reg})

	bat := s.Acquire(3, Batch)
	if bat.Degree() != 3 {
		t.Fatalf("batch degree = %d, want 3 (whole budget)", bat.Degree())
	}

	fc.Advance(10 * time.Millisecond)
	inter := s.Acquire(2, Interactive)
	if inter.Degree() != 1 {
		t.Fatalf("interactive admitted at degree %d, want floor 1 while batch holds budget", inter.Degree())
	}

	// One batch operator boundary: the batch grant yields its slack to
	// the unmet interactive demand.
	fc.Advance(10 * time.Millisecond)
	if got := bat.Checkpoint(); got != 2 {
		t.Fatalf("batch degree after yield = %d, want 2 (yielded 1 slot)", got)
	}
	if got := inter.Degree(); got != 2 {
		t.Fatalf("interactive degree after one batch boundary = %d, want desired 2", got)
	}

	snap := s.Snap()
	checkInvariants(t, snap)
	if snap.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", snap.Reclaimed)
	}
	if snap.Starved != 0 {
		t.Fatalf("starved = %d, want 0", snap.Starved)
	}

	// The interactive waiter's queue time ran on the virtual clock.
	h := reg.Histogram("nimble_sched_wait_seconds")
	if h.Count() != 1 {
		t.Fatalf("wait histogram count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got < 0.009 || got > 0.011 {
		t.Fatalf("wait histogram sum = %v, want ~0.010 (10ms of virtual time)", got)
	}

	inter.Release()
	if got := bat.Checkpoint(); got != 3 {
		t.Fatalf("batch degree after interactive done = %d, want regrown to 3", got)
	}
	bat.Release()
	snap = s.Snap()
	checkInvariants(t, snap)
	if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 {
		t.Fatalf("idle snap = %+v, want zeros", snap)
	}
}

func TestBatchKeepsSlackWithoutInteractiveDemand(t *testing.T) {
	s := New(Config{Budget: 4})
	bat := s.Acquire(4, Batch)
	// No interactive demand: checkpoints must not shed workers.
	for i := 0; i < 3; i++ {
		if got := bat.Checkpoint(); got != 4 {
			t.Fatalf("checkpoint %d degree = %d, want 4", i, got)
		}
	}
	// A batch waiter does not trigger reclaim either (same class).
	other := s.Acquire(2, Batch)
	if got := bat.Checkpoint(); got != 4 {
		t.Fatalf("degree after batch-only demand = %d, want 4", got)
	}
	bat.Release()
	other.Release()
}

func promText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestMetricsGaugesBalance(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Budget: 3, Metrics: reg})
	g1 := s.Acquire(3, Interactive)
	g2 := s.Acquire(3, Batch)
	text := promText(t, reg)
	for _, want := range []string{
		"nimble_sched_budget 3",
		"nimble_sched_granted 3",
		"nimble_sched_waiting 1",
		"nimble_sched_downgrades_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	g1.Release()
	g2.Release()
	text = promText(t, reg)
	for _, want := range []string{"nimble_sched_granted 0", "nimble_sched_waiting 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("idle exposition missing %q:\n%s", want, text)
		}
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Interactive, "interactive": Interactive, "batch": Batch} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Fatal("ParseClass(bulk) should fail")
	}
	if Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Fatal("Class.String mismatch")
	}
}

// TestGrantReleaseProperty drives seeded random acquire / checkpoint /
// release sequences and asserts the accounting invariants after every
// step: no double-release effects, no leaked slots, waiters served once
// capacity exists.
func TestGrantReleaseProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		budget := 1 + rng.Intn(8)
		s := New(Config{Budget: budget})
		var live []*Grant
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // acquire
				class := Interactive
				if rng.Intn(2) == 0 {
					class = Batch
				}
				live = append(live, s.Acquire(rng.Intn(budget+3), class))
			case op < 7 && len(live) > 0: // release (sometimes double)
				i := rng.Intn(len(live))
				live[i].Release()
				if rng.Intn(3) == 0 {
					live[i].Release()
				}
				live = append(live[:i], live[i+1:]...)
			case len(live) > 0: // checkpoint
				live[rng.Intn(len(live))].Checkpoint()
			}
			checkInvariants(t, s.Snap())
		}
		for _, g := range live {
			g.Release()
		}
		snap := s.Snap()
		checkInvariants(t, snap)
		if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 {
			t.Fatalf("seed %d: idle snap = %+v, want zeros", seed, snap)
		}
		// Waiters eventually served: with the pool fully free, a maximal
		// request is granted in full immediately.
		g := s.Acquire(budget+1, Interactive)
		if g.Degree() != budget+1 {
			t.Fatalf("seed %d: post-drain full acquire degree = %d, want %d", seed, g.Degree(), budget+1)
		}
		g.Release()
	}
}

// TestReleaseOnPanicPath mirrors the engine's contract: Release is
// deferred, so a panic mid-query still returns the slots.
func TestReleaseOnPanicPath(t *testing.T) {
	s := New(Config{Budget: 2})
	func() {
		defer func() { recover() }()
		g := s.Acquire(3, Interactive)
		defer g.Release()
		panic("query exploded")
	}()
	snap := s.Snap()
	checkInvariants(t, snap)
	if snap.Granted != 0 || snap.Queries != 0 {
		t.Fatalf("slots leaked across panic: %+v", snap)
	}
}

// TestConcurrentStorm hammers the scheduler from many goroutines under
// -race while a sampler thread asserts the budget invariant at every
// observed instant.
func TestConcurrentStorm(t *testing.T) {
	s := New(Config{Budget: 4})
	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snap()
			if snap.Granted > snap.Budget || snap.Granted+snap.Free != snap.Budget {
				panic("budget invariant violated under storm")
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				class := Interactive
				if w%2 == 0 {
					class = Batch
				}
				g := s.Acquire(rng.Intn(6), class)
				for c := 0; c < rng.Intn(3); c++ {
					g.Checkpoint()
				}
				g.Release()
				if rng.Intn(4) == 0 {
					g.Release() // racing double release must stay a no-op
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()

	snap := s.Snap()
	checkInvariants(t, snap)
	if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 {
		t.Fatalf("storm left residue: %+v", snap)
	}
}

func TestDefaultSchedulerSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a == nil || a != b {
		t.Fatal("Default must return one shared scheduler")
	}
	if a.Budget() < 1 {
		t.Fatalf("default budget = %d, want >= 1", a.Budget())
	}
}
