package sched

import "testing"

// FuzzGrantSequence feeds random acquire/checkpoint/release/cancel
// interleavings (including double releases) to a scheduler and asserts
// the accounting invariants after every operation: the budget is never
// exceeded, granted + free always equals the budget, and once the
// sequence drains, waiters have been served and the pool is whole. It
// is the scheduler-side sibling of FuzzPartition in internal/algebra.
func FuzzGrantSequence(f *testing.F) {
	f.Add(uint8(4), []byte{0x00})
	f.Add(uint8(1), []byte{0x05, 0x12, 0x02, 0x03})
	f.Add(uint8(8), []byte{0x41, 0x42, 0x02, 0x43, 0x03, 0x02, 0x02})
	f.Add(uint8(2), []byte{0xff, 0xfe, 0xfd, 0x00, 0x01, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, rawBudget uint8, ops []byte) {
		budget := int(rawBudget)%8 + 1
		s := New(Config{Budget: budget})
		var live []*Grant
		for _, op := range ops {
			arg := int(op >> 2)
			switch op % 4 {
			case 0: // acquire interactive
				live = append(live, s.Acquire(arg%12, Interactive))
			case 1: // acquire batch
				live = append(live, s.Acquire(arg%12, Batch))
			case 2: // release (cancel); sometimes double to probe idempotence
				if len(live) > 0 {
					i := arg % len(live)
					live[i].Release()
					if arg%2 == 0 {
						live[i].Release()
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // operator boundary
				if len(live) > 0 {
					live[arg%len(live)].Checkpoint()
				}
			}
			snap := s.Snap()
			if snap.Granted > snap.Budget {
				t.Fatalf("granted %d exceeds budget %d after op %#x", snap.Granted, snap.Budget, op)
			}
			if snap.Granted+snap.Free != snap.Budget {
				t.Fatalf("slots leaked or minted after op %#x: %+v", op, snap)
			}
			if snap.Granted < 0 || snap.Free < 0 || snap.Waiting < 0 {
				t.Fatalf("negative accounting after op %#x: %+v", op, snap)
			}
		}
		for _, g := range live {
			g.Release()
		}
		snap := s.Snap()
		if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 || snap.Free != budget {
			t.Fatalf("drained scheduler not idle: %+v", snap)
		}
		// Waiters eventually served: the freed pool must satisfy a
		// maximal request in full, immediately.
		g := s.Acquire(budget+1, Interactive)
		if g.Degree() != budget+1 {
			t.Fatalf("post-drain full acquire degree = %d, want %d", g.Degree(), budget+1)
		}
		g.Release()
	})
}
