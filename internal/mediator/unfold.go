package mediator

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/xmlql"
)

// instanceCounter numbers view unfoldings so each gets fresh variables.
var instanceCounter int64

// Rewrite is one conjunctive query produced by unfolding. Fallback lists
// mediated schemas that could not be unfolded (their patterns remain and
// must be answered by materializing the view document).
type Rewrite struct {
	Query    *xmlql.Query
	Fallback []string
}

// Unfold rewrites q over the catalog's mediated schemas into a union of
// conjunctive queries over sources. Hierarchically composed schemas
// unfold level by level until only source patterns (or fallback schema
// patterns) remain.
func Unfold(cat *catalog.Catalog, q *xmlql.Query) ([]Rewrite, error) {
	return UnfoldSkip(cat, q, nil)
}

// UnfoldSkip is Unfold with a skip predicate: schemas for which skip
// returns true are left in place (they will be answered from the local
// materialized store rather than rewritten down to sources — §3.3's
// "the query processor knows to make use of local copies").
func UnfoldSkip(cat *catalog.Catalog, q *xmlql.Query, skip func(string) bool) ([]Rewrite, error) {
	// processed marks schema patterns that failed to unfold, so they are
	// not retried forever.
	type workItem struct {
		q         *xmlql.Query
		processed map[*xmlql.PatternCond]bool
	}
	work := []workItem{{q: q, processed: map[*xmlql.PatternCond]bool{}}}
	var done []Rewrite
	const maxRewrites = 10000
	for len(work) > 0 {
		if len(work)+len(done) > maxRewrites {
			return nil, fmt.Errorf("mediator: rewrite explosion (> %d alternatives)", maxRewrites)
		}
		item := work[0]
		work = work[1:]

		idx, pc := nextSchemaPattern(cat, item.q, item.processed, skip)
		if pc == nil {
			done = append(done, finishRewrite(cat, item.q))
			continue
		}
		views, err := cat.Views(pc.Source.Name)
		if err != nil {
			return nil, err
		}
		expanded := false
		for _, vd := range views {
			ren := newRenamer(int(atomic.AddInt64(&instanceCounter, 1)))
			view := ren.renameQuery(vd.Query)
			for _, alt := range unifyTopLevel(pc.Pattern, view.Construct) {
				nq, err := rewriteWith(item.q, idx, view, alt)
				if err != nil {
					continue // this alternative is not expressible; try others
				}
				// Copy the processed set: pointers survive into the new
				// query because rewriteWith reuses condition values.
				np := make(map[*xmlql.PatternCond]bool, len(item.processed))
				for k, v := range item.processed {
					np[k] = v
				}
				work = append(work, workItem{q: nq, processed: np})
				expanded = true
			}
		}
		if !expanded {
			// No view unifies: leave the pattern for fallback
			// materialization and continue with the rest of the query.
			item.processed[pc] = true
			work = append(work, item)
		}
	}
	if len(done) == 0 {
		return nil, fmt.Errorf("mediator: query has no valid rewriting")
	}
	return done, nil
}

// nextSchemaPattern finds the first unprocessed pattern condition whose
// source is a mediated schema.
func nextSchemaPattern(cat *catalog.Catalog, q *xmlql.Query, processed map[*xmlql.PatternCond]bool, skip func(string) bool) (int, *xmlql.PatternCond) {
	for i, c := range q.Where {
		if pc, ok := c.(*xmlql.PatternCond); ok {
			if pc.Source.Name != "" && cat.IsSchema(pc.Source.Name) && !processed[pc] {
				if skip != nil && skip(pc.Source.Name) {
					continue
				}
				return i, pc
			}
		}
	}
	return -1, nil
}

// rewriteWith replaces condition idx of q by the view's WHERE clause
// plus the alternative's extra conditions, then applies the substitution.
func rewriteWith(q *xmlql.Query, idx int, view *xmlql.Query, alt alternative) (*xmlql.Query, error) {
	bound := patternBoundVars(q, idx)

	var where []xmlql.Condition
	where = append(where, q.Where[:idx]...)
	where = append(where, view.Where...)
	where = append(where, alt.conds...)
	// Join predicates for substituted variables that other patterns
	// bind, in sorted order so rewrites (and therefore plans and explain
	// output) are deterministic.
	vars := make([]string, 0, len(alt.theta))
	for v := range alt.theta {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		e := alt.theta[v]
		if bound[v] {
			where = append(where, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{
				Op: "=", L: &xmlql.VarExpr{Name: v}, R: e,
			}})
		}
	}
	where = append(where, q.Where[idx+1:]...)

	nq := &xmlql.Query{Where: where, Construct: q.Construct, OrderBy: q.OrderBy}
	return applySubst(nq, alt.theta, bound)
}

// finishRewrite records which schemas remain for fallback.
func finishRewrite(cat *catalog.Catalog, q *xmlql.Query) Rewrite {
	r := Rewrite{Query: q}
	seen := map[string]bool{}
	for _, c := range q.Where {
		if pc, ok := c.(*xmlql.PatternCond); ok && pc.Source.Name != "" && cat.IsSchema(pc.Source.Name) {
			if !seen[pc.Source.Name] {
				seen[pc.Source.Name] = true
				r.Fallback = append(r.Fallback, pc.Source.Name)
			}
		}
	}
	return r
}

// Decomposition groups the pattern conditions of a conjunctive query by
// target, in query order, and attaches the predicates. It is the unit
// the planner compiles per source.
type Decomposition struct {
	// Groups holds the pattern conditions per target, keyed by group id
	// in first-appearance order.
	Groups []*Group
	// Predicates are all predicate conditions of the query.
	Predicates []xmlql.Expr
}

// Group is the set of patterns aimed at one target: a named source (or
// fallback schema), or the content of a variable bound by an earlier
// group.
type Group struct {
	// Source is the source/schema name; empty for variable targets.
	Source string
	// Var is the variable whose content the patterns match ("IN $v").
	Var string
	// Patterns in query order.
	Patterns []*xmlql.ElemPattern
}

// Decompose splits a conjunctive (already unfolded) query.
func Decompose(q *xmlql.Query) *Decomposition {
	d := &Decomposition{}
	index := map[string]*Group{}
	for _, c := range q.Where {
		switch x := c.(type) {
		case *xmlql.PatternCond:
			var key string
			if x.Source.Name != "" {
				key = "s:" + x.Source.Name
			} else {
				key = "v:" + x.Source.Var
			}
			g, ok := index[key]
			if !ok {
				g = &Group{Source: x.Source.Name, Var: x.Source.Var}
				index[key] = g
				d.Groups = append(d.Groups, g)
			}
			g.Patterns = append(g.Patterns, x.Pattern)
		case *xmlql.PredicateCond:
			d.Predicates = append(d.Predicates, x.Expr)
		}
	}
	return d
}

// GroupVars returns the variables bound by a group's patterns.
func (g *Group) GroupVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range g.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
