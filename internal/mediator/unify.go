package mediator

import (
	"repro/internal/xmlql"
)

// alternative is one way a user pattern unifies with a view template:
// theta maps the pattern's variables to expressions over the view's
// variables, and conds carries extra conditions the rewrite needs (value
// equalities from literal matches, plus the WHERE clauses of nested
// template queries whose output the pattern reached into).
type alternative struct {
	theta Subst
	conds []xmlql.Condition
}

func singleAlt() []alternative { return []alternative{{theta: Subst{}}} }

// unifyTopLevel unifies a top-level pattern with a view construct: the
// pattern may match the template root or any nested template element
// (mirroring the matcher's descendant-or-self semantics for top-level
// patterns), including elements constructed by nested queries — whose
// WHERE conditions then join the rewrite.
func unifyTopLevel(pat *xmlql.ElemPattern, tmpl *xmlql.TmplElem) []alternative {
	var out []alternative
	var visit func(t *xmlql.TmplElem, prefix []xmlql.Condition)
	visit = func(t *xmlql.TmplElem, prefix []xmlql.Condition) {
		for _, alt := range unifyAtNode(pat, t) {
			out = append(out, alternative{
				theta: alt.theta,
				conds: append(append([]xmlql.Condition{}, prefix...), alt.conds...),
			})
		}
		for _, c := range t.Content {
			switch x := c.(type) {
			case *xmlql.TmplChild:
				visit(x.Elem, prefix)
			case *xmlql.TmplQuery:
				visit(x.Query.Construct, append(append([]xmlql.Condition{}, prefix...), x.Query.Where...))
			}
		}
	}
	visit(tmpl, nil)
	return out
}

// unifyAtNode unifies pat against exactly the template element t.
func unifyAtNode(pat *xmlql.ElemPattern, t *xmlql.TmplElem) []alternative {
	// ELEMENT_AS / CONTENT_AS need the XML form of the view element;
	// unfolding cannot provide it, so this alternative fails and the
	// caller falls back to view materialization.
	if pat.ElementAs != "" || pat.ContentAs != "" {
		return nil
	}

	base := alternative{theta: Subst{}}

	// Tag test.
	switch {
	case pat.Tag.Var != "":
		switch {
		case t.Tag != "":
			base.theta[pat.Tag.Var] = &xmlql.LitExpr{Value: t.Tag}
		case t.TagVar != "":
			base.theta[pat.Tag.Var] = &xmlql.VarExpr{Name: t.TagVar}
		default:
			return nil
		}
	case pat.Tag.Wild:
		// matches any template element
	case len(pat.Tag.Alts) > 0:
		switch {
		case t.Tag != "":
			if !pat.Tag.Matches(t.Tag) {
				return nil
			}
		case t.TagVar != "":
			// The view's tag is dynamic: the alternation becomes a
			// disjunction over the tag variable.
			var or xmlql.Expr
			for _, alt := range pat.Tag.Alts {
				eq := xmlql.Expr(&xmlql.BinExpr{
					Op: "=", L: &xmlql.VarExpr{Name: t.TagVar}, R: &xmlql.LitExpr{Value: alt},
				})
				if or == nil {
					or = eq
				} else {
					or = &xmlql.BinExpr{Op: "OR", L: or, R: eq}
				}
			}
			base.conds = append(base.conds, &xmlql.PredicateCond{Expr: or})
		default:
			return nil
		}
	default:
		switch {
		case t.Tag != "":
			if t.Tag != pat.Tag.Name {
				return nil
			}
		case t.TagVar != "":
			base.conds = append(base.conds, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{
				Op: "=", L: &xmlql.VarExpr{Name: t.TagVar}, R: &xmlql.LitExpr{Value: pat.Tag.Name},
			}})
		default:
			return nil
		}
	}

	// Attribute patterns.
	for _, ap := range pat.Attrs {
		var valExpr xmlql.Expr
		for _, ta := range t.Attrs {
			if ta.Name == ap.Name {
				valExpr = ta.Value
				break
			}
		}
		if valExpr == nil {
			return nil
		}
		if ap.Var != "" {
			if ok := bindTheta(&base, ap.Var, valExpr); !ok {
				return nil
			}
		} else {
			base.conds = append(base.conds, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{
				Op: "=", L: valExpr, R: &xmlql.LitExpr{Value: ap.Lit},
			}})
		}
	}

	alts := []alternative{base}
	for _, item := range pat.Content {
		var itemAlts []alternative
		switch it := item.(type) {
		case *xmlql.TextContent:
			if e, ok := contentAsExpr(t); ok {
				if lit, isLit := e.(*xmlql.LitExpr); isLit {
					if s, isStr := lit.Value.(string); isStr && s == it.Text {
						itemAlts = singleAlt()
					}
				} else {
					itemAlts = []alternative{{theta: Subst{}, conds: []xmlql.Condition{
						&xmlql.PredicateCond{Expr: &xmlql.BinExpr{Op: "=", L: e, R: &xmlql.LitExpr{Value: it.Text}}},
					}}}
				}
			}
		case *xmlql.VarContent:
			if e, ok := contentAsExpr(t); ok {
				a := alternative{theta: Subst{}}
				if bindTheta(&a, it.Var, e) {
					itemAlts = []alternative{a}
				}
			}
		case *xmlql.ChildPattern:
			itemAlts = unifyChild(it.Elem, t)
		}
		if len(itemAlts) == 0 {
			return nil
		}
		alts = crossAlternatives(alts, itemAlts)
		if len(alts) == 0 {
			return nil
		}
	}
	return alts
}

// unifyChild unifies a child pattern against the content of template t:
// direct template children, elements built by nested queries, and — when
// the child pattern carries the descendant flag — any depth below.
func unifyChild(pat *xmlql.ElemPattern, t *xmlql.TmplElem) []alternative {
	var out []alternative
	var visit func(t *xmlql.TmplElem, prefix []xmlql.Condition, depthOK bool)
	visit = func(t *xmlql.TmplElem, prefix []xmlql.Condition, depthOK bool) {
		for _, c := range t.Content {
			switch x := c.(type) {
			case *xmlql.TmplChild:
				for _, alt := range unifyAtNode(pat, x.Elem) {
					out = append(out, alternative{
						theta: alt.theta,
						conds: append(append([]xmlql.Condition{}, prefix...), alt.conds...),
					})
				}
				if depthOK {
					visit(x.Elem, prefix, true)
				}
			case *xmlql.TmplQuery:
				subPrefix := append(append([]xmlql.Condition{}, prefix...), x.Query.Where...)
				for _, alt := range unifyAtNode(pat, x.Query.Construct) {
					out = append(out, alternative{
						theta: alt.theta,
						conds: append(append([]xmlql.Condition{}, subPrefix...), alt.conds...),
					})
				}
				if depthOK {
					visit(x.Query.Construct, subPrefix, true)
				}
			}
		}
	}
	visit(t, nil, pat.Tag.Descendant)
	return out
}

// contentAsExpr reports whether a template element's content denotes a
// single expression value (what a VarContent or TextContent pattern can
// bind against).
func contentAsExpr(t *xmlql.TmplElem) (xmlql.Expr, bool) {
	switch len(t.Content) {
	case 0:
		return &xmlql.LitExpr{Value: ""}, true
	case 1:
		switch x := t.Content[0].(type) {
		case *xmlql.TmplExpr:
			return x.Expr, true
		case *xmlql.TmplText:
			return &xmlql.LitExpr{Value: x.Text}, true
		default:
			return nil, false
		}
	default:
		return nil, false
	}
}

// bindTheta records var -> expr, turning a conflicting rebinding into an
// equality condition (repeated pattern variables are joins).
func bindTheta(a *alternative, v string, e xmlql.Expr) bool {
	if prev, ok := a.theta[v]; ok {
		a.conds = append(a.conds, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{Op: "=", L: prev, R: e}})
		return true
	}
	a.theta[v] = e
	return true
}

// crossAlternatives combines alternatives of two conjunctive sub-matches.
func crossAlternatives(as, bs []alternative) []alternative {
	var out []alternative
	for _, a := range as {
		for _, b := range bs {
			merged := alternative{theta: Subst{}}
			merged.conds = append(append([]xmlql.Condition{}, a.conds...), b.conds...)
			for k, v := range a.theta {
				merged.theta[k] = v
			}
			for k, v := range b.theta {
				if prev, exists := merged.theta[k]; exists {
					merged.conds = append(merged.conds, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{Op: "=", L: prev, R: v}})
					continue
				}
				merged.theta[k] = v
			}
			out = append(out, merged)
		}
	}
	return out
}
