package mediator

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// These tests drive the substitution machinery through full unfoldings,
// exercising the nested-pattern rewriting (correlated subqueries), the
// fresh-variable path for computed substitution targets, and the
// failure path for unqueryable computed sources.

func catWithView(t *testing.T, view string) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	b := xmldm.NewBuilder()
	for _, s := range []string{"crmdb", "salesdb"} {
		if err := cat.AddSource(catalog.NewStaticSource(s, b.Elem(s))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.DefineViewQL("v", view); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSubstNestedQueryPatternRenamed(t *testing.T) {
	cat := catWithView(t, `
		WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who></cust>`)
	// $k is bound by the schema pattern and used as a correlation
	// constraint inside the nested query's pattern.
	q := xmlql.MustParse(`
		WHERE <cust><cid>$k</cid><who>$w</who></cust> IN "v"
		CONSTRUCT <p>
			{ WHERE <order><cust>$k</cust><total>$t</total></order> IN "salesdb" CONSTRUCT <o>$t</o> }
		</p>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	s := rws[0].Query.String()
	if strings.Contains(s, "$k") {
		t.Errorf("correlation variable not renamed in nested pattern:\n%s", s)
	}
	// The nested pattern must now reference the view's id variable.
	if !strings.Contains(s, "<cust>$_u") {
		t.Errorf("nested pattern should bind the renamed view variable:\n%s", s)
	}
}

func TestSubstNestedPatternComputedTargetGetsFreshVar(t *testing.T) {
	// The view computes the exported key ($i + 1000), so the nested
	// pattern cannot simply rename: it needs a fresh variable plus an
	// equality predicate.
	cat := catWithView(t, `
		WHERE <customer><id>$i</id></customer> IN "crmdb"
		CONSTRUCT <cust><cid>{ $i + 1000 }</cid></cust>`)
	q := xmlql.MustParse(`
		WHERE <cust><cid>$k</cid></cust> IN "v"
		CONSTRUCT <p>
			{ WHERE <order><cust>$k</cust></order> IN "salesdb" CONSTRUCT <o/> }
		</p>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	s := rws[0].Query.String()
	if !strings.Contains(s, "_s") {
		t.Errorf("expected a fresh variable for the computed target:\n%s", s)
	}
	if !strings.Contains(s, "+ 1000") {
		t.Errorf("expected the computed expression in an equality predicate:\n%s", s)
	}
}

func TestSubstComputedSourceVarFailsAlternative(t *testing.T) {
	// The user binds $c to the view's computed content and then tries to
	// match patterns inside it — not expressible; the rewrite must fall
	// back (no valid unfolding alternative, fallback materialization).
	cat := catWithView(t, `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><label>{ concat($n, "!") }</label></cust>`)
	q := xmlql.MustParse(`
		WHERE <cust><label>$c</label></cust> IN "v",
		      <x>$y</x> IN $c
		CONSTRUCT <r>$y</r>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving rewrite must keep the schema for fallback.
	for _, rw := range rws {
		if len(rw.Fallback) == 0 {
			t.Errorf("expected fallback for unqueryable computed source:\n%s", rw.Query)
		}
	}
}

func TestSubstAggregateInsideConstruct(t *testing.T) {
	cat := catWithView(t, `
		WHERE <customer><id>$i</id></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid></cust>`)
	q := xmlql.MustParse(`
		WHERE <cust><cid>$k</cid></cust> IN "v"
		CONSTRUCT <p><n>{ count({ WHERE <order><cust>$k</cust></order> IN "salesdb" CONSTRUCT <o/> }) }</n></p>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	s := rws[0].Query.String()
	if strings.Contains(s, "$k") {
		t.Errorf("aggregate subquery correlation not rewritten:\n%s", s)
	}
}

func TestSubstOrderByAndTagVarExpressions(t *testing.T) {
	cat := catWithView(t, `
		WHERE <customer><name>$n</name><kind>$kd</kind></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><k>$kd</k></cust>`)
	q := xmlql.MustParse(`
		WHERE <cust><who>$w</who><k>$t</k></cust> IN "v"
		CONSTRUCT <$t>$w</> ORDER-BY upper($w) DESCENDING`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	s := rws[0].Query.String()
	if strings.Contains(s, "$w") || strings.Contains(s, "$t>") {
		t.Errorf("construct/order substitution incomplete:\n%s", s)
	}
	if len(rws[0].Query.OrderBy) != 1 || !rws[0].Query.OrderBy[0].Desc {
		t.Errorf("order by lost: %+v", rws[0].Query.OrderBy)
	}
}

func TestUnifyEmptyContentBindsEmptyString(t *testing.T) {
	cat := catWithView(t, `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><note/></cust>`)
	q := xmlql.MustParse(`
		WHERE <cust><who>$w</who><note>$m</note></cust> IN "v", $m = ""
		CONSTRUCT <r>$w</r>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 || len(rws[0].Fallback) != 0 {
		t.Errorf("empty template content should unify as empty string: %+v", rws)
	}
}

func TestUnifyTemplateTextContent(t *testing.T) {
	cat := catWithView(t, `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><origin>"crm"</origin></cust>`)
	// Matching text: unifies with no extra condition.
	q1 := xmlql.MustParse(`WHERE <cust><origin>"crm"</origin><who>$w</who></cust> IN "v" CONSTRUCT <r>$w</r>`)
	rws, err := Unfold(cat, q1)
	if err != nil || len(rws) != 1 || len(rws[0].Fallback) != 0 {
		t.Fatalf("matching literal: %v %+v", err, rws)
	}
	// Mismatching text: no alternative; the whole pattern falls back.
	q2 := xmlql.MustParse(`WHERE <cust><origin>"web"</origin><who>$w</who></cust> IN "v" CONSTRUCT <r>$w</r>`)
	rws2, err := Unfold(cat, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws2[0].Fallback) == 0 {
		t.Errorf("mismatched literal should not unify:\n%s", rws2[0].Query)
	}
	// Variable binds the literal text.
	q3 := xmlql.MustParse(`WHERE <cust><origin>$o</origin><who>$w</who></cust> IN "v", $o = "crm" CONSTRUCT <r>$w</r>`)
	rws3, err := Unfold(cat, q3)
	if err != nil || len(rws3[0].Fallback) != 0 {
		t.Fatalf("variable over literal content: %v %+v", err, rws3)
	}
	s := rws3[0].Query.String()
	if !strings.Contains(s, `("crm" = "crm")`) {
		t.Logf("substituted predicate: %s", s) // constant-folded form acceptable
	}
}

func TestRenameExprCoversAllForms(t *testing.T) {
	r := newRenamer(3)
	e := xmlql.MustParse(`WHERE <a>$x</a> IN "s",
		count({WHERE <b>$y</b> IN $x CONSTRUCT <c>$y</c>}) + strlen($x) > 2 AND TRUE
		CONSTRUCT <r/>`).Where[1].(*xmlql.PredicateCond).Expr
	out := xmlql.ExprString(r.renameExpr(e))
	if !strings.Contains(out, "$_u3_x") || !strings.Contains(out, "$_u3_y") {
		t.Errorf("renamed expr = %s", out)
	}
	if strings.Contains(out, "$x") && !strings.Contains(out, "_u3_x") {
		t.Errorf("unrenamed variable survived: %s", out)
	}
}
