package mediator

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// newCat builds a catalog with one dummy source and the given view
// definitions (schema -> queries).
func newCat(t testing.TB, views map[string][]string) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	b := xmldm.NewBuilder()
	for _, src := range []string{"crmdb", "salesdb", "webdb"} {
		if err := cat.AddSource(catalog.NewStaticSource(src, b.Elem(src))); err != nil {
			t.Fatal(err)
		}
	}
	for schema, defs := range views {
		for _, d := range defs {
			if err := cat.DefineViewQL(schema, d); err != nil {
				t.Fatalf("view %s: %v", schema, err)
			}
		}
	}
	return cat
}

// sourcesOf lists the source names a rewritten query's patterns target.
func sourcesOf(q *xmlql.Query) []string {
	var out []string
	for _, c := range q.Where {
		if pc, ok := c.(*xmlql.PatternCond); ok && pc.Source.Name != "" {
			out = append(out, pc.Source.Name)
		}
	}
	return out
}

func predStrings(q *xmlql.Query) []string {
	var out []string
	for _, c := range q.Where {
		if pc, ok := c.(*xmlql.PredicateCond); ok {
			out = append(out, xmlql.ExprString(pc.Expr))
		}
	}
	return out
}

func TestUnfoldSimpleView(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
			CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`},
	})
	q := xmlql.MustParse(`
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <out>$w</out>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Fatalf("rewrites = %d", len(rws))
	}
	rw := rws[0]
	if len(rw.Fallback) != 0 {
		t.Errorf("fallback = %v", rw.Fallback)
	}
	srcs := sourcesOf(rw.Query)
	if len(srcs) != 1 || srcs[0] != "crmdb" {
		t.Errorf("sources = %v", srcs)
	}
	// The predicate must now reference the view's variable.
	preds := predStrings(rw.Query)
	if len(preds) != 1 || !strings.Contains(preds[0], `= "London"`) || strings.Contains(preds[0], "$p") {
		t.Errorf("preds = %v", preds)
	}
	// The construct must reference the view variable bound to $w.
	cs := rw.Query.String()
	if strings.Contains(cs, "$w") || strings.Contains(cs, "$p") {
		t.Errorf("user variables survived substitution:\n%s", cs)
	}
}

func TestUnfoldHierarchicalSchemas(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"raw": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <person><nm>$n</nm></person>`},
		"top": {`
			WHERE <person><nm>$x</nm></person> IN "raw"
			CONSTRUCT <vip><label>$x</label></vip>`},
	})
	q := xmlql.MustParse(`WHERE <vip><label>$l</label></vip> IN "top" CONSTRUCT <o>$l</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Fatalf("rewrites = %d", len(rws))
	}
	srcs := sourcesOf(rws[0].Query)
	if len(srcs) != 1 || srcs[0] != "crmdb" {
		t.Errorf("two-level unfolding should reach crmdb, got %v", srcs)
	}
}

func TestUnfoldUnionOfViews(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {
			`WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <cust><who>$n</who></cust>`,
			`WHERE <client><nm>$m</nm></client> IN "salesdb" CONSTRUCT <cust><who>$m</who></cust>`,
		},
	})
	q := xmlql.MustParse(`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <o>$w</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 2 {
		t.Fatalf("rewrites = %d, want a union of 2", len(rws))
	}
	got := map[string]bool{}
	for _, rw := range rws {
		for _, s := range sourcesOf(rw.Query) {
			got[s] = true
		}
	}
	if !got["crmdb"] || !got["salesdb"] {
		t.Errorf("union sources = %v", got)
	}
}

func TestUnfoldJoinPredicateForSharedVariable(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <cust><who>$n</who></cust>`},
	})
	// $w is bound both by the schema pattern and by a direct source
	// pattern: unfolding must keep the join.
	q := xmlql.MustParse(`
		WHERE <cust><who>$w</who></cust> IN "customers",
		      <order><buyer>$w</buyer><total>$t</total></order> IN "salesdb"
		CONSTRUCT <o><n>$w</n><t>$t</t></o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Fatalf("rewrites = %d", len(rws))
	}
	preds := predStrings(rws[0].Query)
	found := false
	for _, p := range preds {
		if strings.Contains(p, "$w =") || strings.Contains(p, "= $w") {
			found = true
		}
	}
	if !found {
		t.Errorf("no join predicate for shared variable; preds = %v\n%s", preds, rws[0].Query)
	}
}

func TestUnfoldTextAndAttributeConditions(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name><tier>$t</tier></customer> IN "crmdb"
			CONSTRUCT <cust tier=$t><who>$n</who></cust>`},
	})
	q := xmlql.MustParse(`
		WHERE <cust tier="gold"><who>$w</who></cust> IN "customers"
		CONSTRUCT <o>$w</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	preds := predStrings(rws[0].Query)
	if len(preds) != 1 || !strings.Contains(preds[0], `"gold"`) {
		t.Errorf("attribute literal should become a predicate: %v", preds)
	}
}

func TestUnfoldTextContentEquality(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><status>$s</status><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <cust><state>$s</state><who>$n</who></cust>`},
	})
	q := xmlql.MustParse(`
		WHERE <cust><state>"active"</state><who>$w</who></cust> IN "customers"
		CONSTRUCT <o>$w</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	preds := predStrings(rws[0].Query)
	if len(preds) != 1 || !strings.Contains(preds[0], `"active"`) {
		t.Errorf("text content should become equality: %v", preds)
	}
}

func TestUnfoldNestedTemplateQuery(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"nested": {`
			WHERE <dept><dname>$d</dname></dept> ELEMENT_AS $e IN "crmdb"
			CONSTRUCT <department name=$d>
				{ WHERE <emp><nm>$n</nm></emp> IN $e CONSTRUCT <employee><ename>$n</ename></employee> }
			</department>`},
	})
	q := xmlql.MustParse(`
		WHERE <department><employee><ename>$x</ename></employee></department> IN "nested"
		CONSTRUCT <o>$x</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Fatalf("rewrites = %d", len(rws))
	}
	rw := rws[0].Query
	// The rewrite must include both the dept pattern (crmdb) and the
	// emp pattern (IN the dept element variable).
	var haveSource, haveVar bool
	for _, c := range rw.Where {
		if pc, ok := c.(*xmlql.PatternCond); ok {
			if pc.Source.Name == "crmdb" {
				haveSource = true
			}
			if pc.Source.Var != "" {
				haveVar = true
			}
		}
	}
	if !haveSource || !haveVar {
		t.Errorf("nested query conditions missing:\n%s", rw)
	}
}

func TestUnfoldFallbackOnElementAs(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <cust><who>$n</who></cust>`},
	})
	q := xmlql.MustParse(`
		WHERE <cust><who>$w</who></cust> ELEMENT_AS $e IN "customers"
		CONSTRUCT <o>$e</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Fatalf("rewrites = %d", len(rws))
	}
	if len(rws[0].Fallback) != 1 || rws[0].Fallback[0] != "customers" {
		t.Errorf("fallback = %v", rws[0].Fallback)
	}
}

func TestUnfoldWildcardAndTagVarPatterns(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <cust><who>$n</who></cust>`},
	})
	// Wildcard pattern unifies with any template element.
	q := xmlql.MustParse(`WHERE <*><who>$w</who></> IN "customers" CONSTRUCT <o>$w</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws[0].Fallback) != 0 {
		t.Error("wildcard should unify")
	}
	// Tag variable binds the template's tag as a literal.
	q2 := xmlql.MustParse(`WHERE <$t><who>$w</who></$t> IN "customers" CONSTRUCT <o><tag>$t</tag>$w</o>`)
	rws2, err := Unfold(cat, q2)
	if err != nil {
		t.Fatal(err)
	}
	s := rws2[0].Query.String()
	if !strings.Contains(s, `"cust"`) {
		t.Errorf("tag variable should substitute to literal: %s", s)
	}
}

func TestUnfoldTagAlternation(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"people": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <person><fullname>$n</fullname></person>`},
	})
	// (person|employee) unifies with the view's <person> template.
	q := xmlql.MustParse(`WHERE <(person|employee)><fullname>$f</fullname></> IN "people" CONSTRUCT <o>$f</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 || len(rws[0].Fallback) != 0 {
		t.Fatalf("alternation should unify: %+v", rws)
	}
	// A non-matching alternation does not unify.
	q2 := xmlql.MustParse(`WHERE <(robot|animal)><fullname>$f</fullname></> IN "people" CONSTRUCT <o>$f</o>`)
	rws2, err := Unfold(cat, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws2[0].Fallback) == 0 {
		t.Error("non-matching alternation should fall back")
	}
}

func TestUnfoldAlternationAgainstTagVariableView(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"dynamic": {`
			WHERE <customer><kind>$k</kind><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <$k><who>$n</who></$k>`},
	})
	q := xmlql.MustParse(`WHERE <(gold|silver)><who>$w</who></> IN "dynamic" CONSTRUCT <o>$w</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	preds := predStrings(rws[0].Query)
	found := false
	for _, p := range preds {
		if strings.Contains(p, "OR") && strings.Contains(p, `"gold"`) && strings.Contains(p, `"silver"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("alternation over a tag-variable view should become a disjunction: %v", preds)
	}
}

func TestUnfoldDescendantPattern(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"deep": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <wrap><inner><leaf>$n</leaf></inner></wrap>`},
	})
	q := xmlql.MustParse(`WHERE <wrap><//leaf>$v</></wrap> IN "deep" CONSTRUCT <o>$v</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 || len(rws[0].Fallback) != 0 {
		t.Fatalf("descendant unification failed: %+v", rws)
	}
}

func TestUnfoldNoSchemaIsIdentity(t *testing.T) {
	cat := newCat(t, nil)
	q := xmlql.MustParse(`WHERE <a>$x</a> IN "crmdb" CONSTRUCT <o>$x</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 || rws[0].Query != q {
		// Note: identity is structural, not pointer; check content.
		if len(sourcesOf(rws[0].Query)) != 1 {
			t.Errorf("identity rewrite wrong: %v", rws[0].Query)
		}
	}
}

func TestUnfoldPreservesOrderBy(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"customers": {`
			WHERE <customer><name>$n</name></customer> IN "crmdb"
			CONSTRUCT <cust><who>$n</who></cust>`},
	})
	q := xmlql.MustParse(`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <o>$w</o> ORDER-BY $w DESCENDING`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	ob := rws[0].Query.OrderBy
	if len(ob) != 1 || !ob[0].Desc {
		t.Fatalf("order by lost: %+v", ob)
	}
	if v, ok := ob[0].Expr.(*xmlql.VarExpr); !ok || v.Name == "w" {
		t.Errorf("order key should reference the view variable, got %s", xmlql.ExprString(ob[0].Expr))
	}
}

func TestUnfoldRepeatedVariableInUserPattern(t *testing.T) {
	cat := newCat(t, map[string][]string{
		"pairs": {`
			WHERE <row><a>$x</a><b>$y</b></row> IN "crmdb"
			CONSTRUCT <pair><l>$x</l><r>$y</r></pair>`},
	})
	// $v twice: the rewrite must equate the two view variables.
	q := xmlql.MustParse(`WHERE <pair><l>$v</l><r>$v</r></pair> IN "pairs" CONSTRUCT <o>$v</o>`)
	rws, err := Unfold(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	preds := predStrings(rws[0].Query)
	if len(preds) != 1 || !strings.Contains(preds[0], "=") {
		t.Errorf("repeated variable should yield equality predicate: %v", preds)
	}
}

func TestDecompose(t *testing.T) {
	q := xmlql.MustParse(`
		WHERE <a><x>$x</x></a> IN "s1",
		      <b><y>$y</y></b> IN "s2",
		      <c><z>$z</z></c> IN "s1",
		      <d>$d</d> IN $x,
		      $x > 1, $y = $z
		CONSTRUCT <o/>`)
	d := Decompose(q)
	if len(d.Groups) != 3 {
		t.Fatalf("groups = %d", len(d.Groups))
	}
	if d.Groups[0].Source != "s1" || len(d.Groups[0].Patterns) != 2 {
		t.Errorf("group0 = %+v", d.Groups[0])
	}
	if d.Groups[1].Source != "s2" {
		t.Errorf("group1 = %+v", d.Groups[1])
	}
	if d.Groups[2].Var != "x" || len(d.Groups[2].Patterns) != 1 {
		t.Errorf("group2 = %+v", d.Groups[2])
	}
	if len(d.Predicates) != 2 {
		t.Errorf("predicates = %d", len(d.Predicates))
	}
	gv := d.Groups[0].GroupVars()
	if len(gv) != 2 {
		t.Errorf("group vars = %v", gv)
	}
}

func TestRenamerConsistency(t *testing.T) {
	r := newRenamer(7)
	q := xmlql.MustParse(`
		WHERE <a k=$k><b>$v</b></a> ELEMENT_AS $e IN $src, $v > 1
		CONSTRUCT <o x=$k>{ WHERE <c>$w</c> IN $e CONSTRUCT <d>$w</d> }</o>
		ORDER-BY $v`)
	rq := r.renameQuery(q)
	s := rq.String()
	for _, v := range []string{"$_u7_k", "$_u7_v", "$_u7_e", "$_u7_src", "$_u7_w"} {
		if !strings.Contains(s, v) {
			t.Errorf("renamed query missing %s:\n%s", v, s)
		}
	}
	// The original must be untouched.
	if strings.Contains(q.String(), "_u7_") {
		t.Error("renamer mutated the original query")
	}
}
