// Package mediator implements query rewriting over mediated schemas:
// global-as-view unfolding (a query over a mediated schema becomes a
// union of conjunctive queries over the underlying sources), variable
// renaming, and decomposition of a rewritten query into per-source
// fragments. It is the layer the paper describes as breaking a query
// "into multiple fragments based on the target data sources" (§2.1).
package mediator

import (
	"fmt"
	"sync/atomic"

	"repro/internal/xmlql"
)

// Subst maps user variables to expressions over view variables.
type Subst map[string]xmlql.Expr

// renamer alpha-renames a view definition's variables so repeated
// unfoldings never collide with user variables or each other.
type renamer struct {
	prefix string
}

func newRenamer(instance int) *renamer {
	return &renamer{prefix: fmt.Sprintf("_u%d_", instance)}
}

func (r *renamer) name(v string) string {
	if v == "" {
		return ""
	}
	return r.prefix + v
}

// renameQuery returns a deep copy of q with every variable renamed.
func (r *renamer) renameQuery(q *xmlql.Query) *xmlql.Query {
	out := &xmlql.Query{}
	for _, c := range q.Where {
		switch x := c.(type) {
		case *xmlql.PatternCond:
			src := x.Source
			if src.Var != "" {
				src.Var = r.name(src.Var)
			}
			out.Where = append(out.Where, &xmlql.PatternCond{
				Pattern: r.renamePattern(x.Pattern),
				Source:  src,
			})
		case *xmlql.PredicateCond:
			out.Where = append(out.Where, &xmlql.PredicateCond{Expr: r.renameExpr(x.Expr)})
		}
	}
	if q.Construct != nil {
		out.Construct = r.renameTmpl(q.Construct)
	}
	for _, k := range q.OrderBy {
		out.OrderBy = append(out.OrderBy, xmlql.OrderKey{Expr: r.renameExpr(k.Expr), Desc: k.Desc})
	}
	return out
}

func (r *renamer) renamePattern(p *xmlql.ElemPattern) *xmlql.ElemPattern {
	out := &xmlql.ElemPattern{
		Tag:       p.Tag,
		ElementAs: r.name(p.ElementAs),
		ContentAs: r.name(p.ContentAs),
	}
	out.Tag.Var = r.name(p.Tag.Var)
	for _, a := range p.Attrs {
		na := a
		na.Var = r.name(a.Var)
		out.Attrs = append(out.Attrs, na)
	}
	for _, c := range p.Content {
		switch x := c.(type) {
		case *xmlql.ChildPattern:
			out.Content = append(out.Content, &xmlql.ChildPattern{Elem: r.renamePattern(x.Elem)})
		case *xmlql.VarContent:
			out.Content = append(out.Content, &xmlql.VarContent{Var: r.name(x.Var)})
		case *xmlql.TextContent:
			out.Content = append(out.Content, x)
		}
	}
	return out
}

func (r *renamer) renameTmpl(t *xmlql.TmplElem) *xmlql.TmplElem {
	out := &xmlql.TmplElem{Tag: t.Tag, TagVar: r.name(t.TagVar)}
	for _, a := range t.Attrs {
		out.Attrs = append(out.Attrs, xmlql.TmplAttr{Name: a.Name, Value: r.renameExpr(a.Value)})
	}
	for _, c := range t.Content {
		switch x := c.(type) {
		case *xmlql.TmplChild:
			out.Content = append(out.Content, &xmlql.TmplChild{Elem: r.renameTmpl(x.Elem)})
		case *xmlql.TmplExpr:
			out.Content = append(out.Content, &xmlql.TmplExpr{Expr: r.renameExpr(x.Expr)})
		case *xmlql.TmplText:
			out.Content = append(out.Content, x)
		case *xmlql.TmplQuery:
			out.Content = append(out.Content, &xmlql.TmplQuery{Query: r.renameQuery(x.Query)})
		}
	}
	return out
}

func (r *renamer) renameExpr(e xmlql.Expr) xmlql.Expr {
	switch x := e.(type) {
	case *xmlql.VarExpr:
		return &xmlql.VarExpr{Name: r.name(x.Name)}
	case *xmlql.LitExpr:
		return x
	case *xmlql.BinExpr:
		return &xmlql.BinExpr{Op: x.Op, L: r.renameExpr(x.L), R: r.renameExpr(x.R)}
	case *xmlql.FuncExpr:
		args := make([]xmlql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = r.renameExpr(a)
		}
		return &xmlql.FuncExpr{Name: x.Name, Args: args}
	case *xmlql.AggExpr:
		return &xmlql.AggExpr{Op: x.Op, Query: r.renameQuery(x.Query)}
	default:
		return e
	}
}

// applySubst rewrites expression occurrences of substituted variables
// throughout a query. Variables that remain pattern-bound in the query
// (boundVars) are NOT substituted; the caller adds join predicates for
// those instead.
func applySubst(q *xmlql.Query, theta Subst, boundVars map[string]bool) (*xmlql.Query, error) {
	s := &substituter{theta: theta, bound: boundVars}
	return s.query(q)
}

type substituter struct {
	theta Subst
	bound map[string]bool
	err   error
}

// freshCounter numbers fresh variables introduced when a substituted
// variable occurs in a pattern binding position but maps to a computed
// expression; parsed queries can never collide with the _s prefix plus
// a renamer-style underscore name.
var freshCounter int64

func freshVar(hint string) string {
	return fmt.Sprintf("_s%d_%s", atomic.AddInt64(&freshCounter, 1), hint)
}

// query rewrites one (possibly nested) query. topLevel distinguishes the
// outer query — whose pattern conditions the caller already handled via
// the bound-variable join predicates — from nested queries, where
// substituted variables inside patterns are correlation constraints that
// must be rewritten: renamed when the substitution target is a variable,
// or turned into a fresh variable plus an equality predicate otherwise.
func (s *substituter) query(q *xmlql.Query) (*xmlql.Query, error) {
	return s.queryAt(q, true)
}

func (s *substituter) queryAt(q *xmlql.Query, topLevel bool) (*xmlql.Query, error) {
	out := &xmlql.Query{}
	for _, c := range q.Where {
		switch x := c.(type) {
		case *xmlql.PatternCond:
			src := x.Source
			if src.Var != "" {
				nv, err := s.sourceVar(src.Var)
				if err != nil {
					return nil, err
				}
				src.Var = nv
			}
			pat := x.Pattern
			if !topLevel {
				np, extra := s.pattern(pat)
				pat = np
				out.Where = append(out.Where, &xmlql.PatternCond{Pattern: pat, Source: src})
				out.Where = append(out.Where, extra...)
				continue
			}
			out.Where = append(out.Where, &xmlql.PatternCond{Pattern: pat, Source: src})
		case *xmlql.PredicateCond:
			out.Where = append(out.Where, &xmlql.PredicateCond{Expr: s.expr(x.Expr)})
		}
	}
	if q.Construct != nil {
		out.Construct = s.tmpl(q.Construct)
	}
	for _, k := range q.OrderBy {
		out.OrderBy = append(out.OrderBy, xmlql.OrderKey{Expr: s.expr(k.Expr), Desc: k.Desc})
	}
	if s.err != nil {
		return nil, s.err
	}
	return out, nil
}

// patternVarTarget decides how one binding occurrence of v rewrites:
// keep (not substituted), rename (target is a variable), or bind a fresh
// variable and emit freshVar = target as a predicate.
func (s *substituter) patternVarTarget(v string) (newName string, extra xmlql.Condition) {
	e, ok := s.theta[v]
	if !ok || s.bound[v] {
		return v, nil
	}
	if ve, isVar := e.(*xmlql.VarExpr); isVar {
		return ve.Name, nil
	}
	nv := freshVar(v)
	return nv, &xmlql.PredicateCond{Expr: &xmlql.BinExpr{
		Op: "=", L: &xmlql.VarExpr{Name: nv}, R: e,
	}}
}

// pattern rewrites binding positions inside a nested query's pattern.
func (s *substituter) pattern(p *xmlql.ElemPattern) (*xmlql.ElemPattern, []xmlql.Condition) {
	var extra []xmlql.Condition
	out := &xmlql.ElemPattern{Tag: p.Tag}
	rewrite := func(v string) string {
		if v == "" {
			return ""
		}
		nv, cond := s.patternVarTarget(v)
		if cond != nil {
			extra = append(extra, cond)
		}
		return nv
	}
	out.Tag.Var = rewrite(p.Tag.Var)
	out.ElementAs = rewrite(p.ElementAs)
	out.ContentAs = rewrite(p.ContentAs)
	for _, a := range p.Attrs {
		na := a
		na.Var = rewrite(a.Var)
		out.Attrs = append(out.Attrs, na)
	}
	for _, c := range p.Content {
		switch x := c.(type) {
		case *xmlql.ChildPattern:
			np, sub := s.pattern(x.Elem)
			extra = append(extra, sub...)
			out.Content = append(out.Content, &xmlql.ChildPattern{Elem: np})
		case *xmlql.VarContent:
			out.Content = append(out.Content, &xmlql.VarContent{Var: rewrite(x.Var)})
		case *xmlql.TextContent:
			out.Content = append(out.Content, x)
		}
	}
	return out, extra
}

// sourceVar maps an `IN $v` reference: a substitution to another
// variable renames it; a substitution to a computed expression cannot be
// queried into, which fails this rewrite alternative.
func (s *substituter) sourceVar(v string) (string, error) {
	e, ok := s.theta[v]
	if !ok || s.bound[v] {
		return v, nil
	}
	if ve, isVar := e.(*xmlql.VarExpr); isVar {
		return ve.Name, nil
	}
	return "", fmt.Errorf("mediator: cannot match patterns inside computed value bound to $%s", v)
}

func (s *substituter) expr(e xmlql.Expr) xmlql.Expr {
	switch x := e.(type) {
	case *xmlql.VarExpr:
		if repl, ok := s.theta[x.Name]; ok && !s.bound[x.Name] {
			return repl
		}
		return x
	case *xmlql.LitExpr:
		return x
	case *xmlql.BinExpr:
		return &xmlql.BinExpr{Op: x.Op, L: s.expr(x.L), R: s.expr(x.R)}
	case *xmlql.FuncExpr:
		args := make([]xmlql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = s.expr(a)
		}
		return &xmlql.FuncExpr{Name: x.Name, Args: args}
	case *xmlql.AggExpr:
		nq, err := s.queryAt(x.Query, false)
		if err != nil {
			s.err = err
			return x
		}
		return &xmlql.AggExpr{Op: x.Op, Query: nq}
	default:
		return e
	}
}

func (s *substituter) tmpl(t *xmlql.TmplElem) *xmlql.TmplElem {
	out := &xmlql.TmplElem{Tag: t.Tag, TagVar: t.TagVar}
	if t.TagVar != "" {
		if repl, ok := s.theta[t.TagVar]; ok && !s.bound[t.TagVar] {
			// A tag variable replaced by a fixed name becomes a literal
			// tag; anything else stays an error at construct time.
			if lit, isLit := repl.(*xmlql.LitExpr); isLit {
				if name, isStr := lit.Value.(string); isStr {
					out.Tag, out.TagVar = name, ""
				}
			} else if ve, isVar := repl.(*xmlql.VarExpr); isVar {
				out.TagVar = ve.Name
			}
		}
	}
	for _, a := range t.Attrs {
		out.Attrs = append(out.Attrs, xmlql.TmplAttr{Name: a.Name, Value: s.expr(a.Value)})
	}
	for _, c := range t.Content {
		switch x := c.(type) {
		case *xmlql.TmplChild:
			out.Content = append(out.Content, &xmlql.TmplChild{Elem: s.tmpl(x.Elem)})
		case *xmlql.TmplExpr:
			out.Content = append(out.Content, &xmlql.TmplExpr{Expr: s.expr(x.Expr)})
		case *xmlql.TmplText:
			out.Content = append(out.Content, x)
		case *xmlql.TmplQuery:
			nq, err := s.queryAt(x.Query, false)
			if err != nil {
				s.err = err
				continue
			}
			out.Content = append(out.Content, &xmlql.TmplQuery{Query: nq})
		}
	}
	return out
}

// patternBoundVars collects the variables bound by the pattern
// conditions of q (including ELEMENT_AS/CONTENT_AS and tag variables).
func patternBoundVars(q *xmlql.Query, skip int) map[string]bool {
	out := map[string]bool{}
	for i, c := range q.Where {
		if i == skip {
			continue
		}
		if pc, ok := c.(*xmlql.PatternCond); ok {
			for _, v := range pc.Pattern.Vars() {
				out[v] = true
			}
		}
	}
	return out
}
