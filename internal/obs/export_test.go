package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestBatchQueueBatchesAndFlushes(t *testing.T) {
	reg := NewRegistry()
	mem := &MemExporter{}
	q := NewBatchQueue(mem, 16, 4, reg)
	for i := 0; i < 10; i++ {
		sp := NewSpan("q")
		sp.Finish()
		q.Enqueue(sp)
	}
	q.Flush()
	if got := len(mem.Spans()); got != 10 {
		t.Fatalf("exported %d spans", got)
	}
	for _, b := range mem.Batches() {
		if len(b) > 4 {
			t.Errorf("batch of %d exceeds batch size", len(b))
		}
	}
	if v := reg.Counter("nimble_trace_export_total").Value(); v != 10 {
		t.Errorf("export counter = %d", v)
	}
	q.Close()
	q.Close() // idempotent
	q.Flush() // no-op after close
	// Enqueue after close must not panic or block; the span is lost.
	q.Enqueue(NewSpan("late"))
}

func TestBatchQueueDropsWhenFull(t *testing.T) {
	reg := NewRegistry()
	block := make(chan struct{})
	exp := exporterFunc(func([]*Span) error { <-block; return nil })
	q := NewBatchQueue(exp, 1, 1, reg)
	// First span occupies the worker, second fills the queue, the rest drop.
	for i := 0; i < 8; i++ {
		sp := NewSpan("q")
		sp.Finish()
		q.Enqueue(sp)
	}
	if q.Dropped() == 0 {
		t.Error("full queue should drop")
	}
	close(block)
	q.Close()
}

func TestBatchQueueCountsExportErrors(t *testing.T) {
	reg := NewRegistry()
	exp := exporterFunc(func([]*Span) error { return errors.New("down") })
	q := NewBatchQueue(exp, 4, 1, reg)
	sp := NewSpan("q")
	sp.Finish()
	q.Enqueue(sp)
	q.Flush()
	if v := reg.Counter("nimble_trace_export_errors_total").Value(); v != 1 {
		t.Errorf("error counter = %d", v)
	}
	if v := reg.Counter("nimble_trace_export_total").Value(); v != 0 {
		t.Errorf("failed batch counted as exported: %d", v)
	}
	q.Close()
}

type exporterFunc func([]*Span) error

func (f exporterFunc) ExportBatch(b []*Span) error { return f(b) }

func TestFileExporterOTLPShape(t *testing.T) {
	var out strings.Builder
	exp := NewWriterExporter(&out, "nimble-test")

	root := NewRootSpan("request", TraceContext{})
	child := root.StartChild("engine")
	child.SetAttr("policy", "partial")
	child.AddEvent("retry backoff", "attempt", "1")
	child.Finish()
	root.Finish()
	if err := exp.ExportBatch([]*Span{root}); err != nil {
		t.Fatal(err)
	}
	if err := exp.ExportBatch([]*Span{root}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one JSON line per batch, got %d", len(lines))
	}

	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
					Events       []struct {
						Name string `json:"name"`
					} `json:"events"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &req); err != nil {
		t.Fatalf("invalid OTLP JSON: %v\n%s", err, lines[0])
	}
	rs := req.ResourceSpans[0]
	if rs.Resource.Attributes[0].Key != "service.name" || rs.Resource.Attributes[0].Value.StringValue != "nimble-test" {
		t.Errorf("resource attrs = %+v", rs.Resource.Attributes)
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("flattened spans = %d", len(spans))
	}
	if spans[0].Name != "request" || spans[0].ParentSpanID != "" {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != "engine" || spans[1].ParentSpanID != spans[0].SpanID {
		t.Errorf("child not linked by parentSpanId: %+v", spans[1])
	}
	if spans[1].TraceID != spans[0].TraceID {
		t.Error("spans of one trace must share traceId")
	}
	if len(spans[1].Events) != 1 || spans[1].Events[0].Name != "retry backoff" {
		t.Errorf("events = %+v", spans[1].Events)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileExporterAppendsToFile(t *testing.T) {
	path := t.TempDir() + "/traces.jsonl"
	exp, err := NewFileExporter(path, "svc")
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpan("q")
	sp.Finish()
	if err := exp.ExportBatch([]*Span{sp}); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Error("second close should be a no-op:", err)
	}
}
