package obs

import (
	"fmt"
	"strings"
)

// TreeNode is anything renderable as an ASCII tree: span trees, EXPLAIN
// operator trees. The renderer is shared so every tree-shaped diagnostic
// the system prints (traces, plans) reads the same way.
type TreeNode interface {
	// TreeLabel is the one-line description of this node.
	TreeLabel() string
	// TreeChildren returns the ordered children.
	TreeChildren() []TreeNode
}

// RenderTree renders the node and its descendants as an indented tree
// using box-drawing connectors:
//
//	root
//	├─ child one
//	│  └─ grandchild
//	└─ child two
func RenderTree(root TreeNode) string {
	return RenderTreeLimited(root, 0, 0)
}

// RenderTreeLimited renders like RenderTree but truncates: maxDepth
// bounds how deep children are expanded (0 = unlimited; 1 = root only)
// and maxNodes bounds total rendered nodes (0 = unlimited). Elided
// subtrees and siblings leave a `… (n more)` marker so a truncated
// rendering is visibly truncated — deep fan-out traces stay readable on
// the debug surface instead of scrolling for pages.
func RenderTreeLimited(root TreeNode, maxDepth, maxNodes int) string {
	var b strings.Builder
	b.WriteString(root.TreeLabel())
	b.WriteByte('\n')
	budget := maxNodes - 1 // root already rendered
	if maxNodes == 0 {
		budget = -1 // unlimited
	}
	renderChildren(&b, root, "", 1, maxDepth, &budget)
	return b.String()
}

// countNodes sizes a subtree for elision markers.
func countNodes(n TreeNode) int {
	total := 1
	for _, c := range n.TreeChildren() {
		total += countNodes(c)
	}
	return total
}

func renderChildren(b *strings.Builder, n TreeNode, prefix string, depth, maxDepth int, budget *int) {
	children := n.TreeChildren()
	if len(children) == 0 {
		return
	}
	if maxDepth > 0 && depth >= maxDepth {
		hidden := 0
		for _, c := range children {
			hidden += countNodes(c)
		}
		fmt.Fprintf(b, "%s└─ … (%d more)\n", prefix, hidden)
		return
	}
	for i, c := range children {
		if *budget == 0 {
			hidden := 0
			for _, rest := range children[i:] {
				hidden += countNodes(rest)
			}
			fmt.Fprintf(b, "%s└─ … (%d more)\n", prefix, hidden)
			return
		}
		connector, extend := "├─ ", "│  "
		if i == len(children)-1 {
			connector, extend = "└─ ", "   "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
		b.WriteString(c.TreeLabel())
		b.WriteByte('\n')
		if *budget > 0 {
			*budget--
		}
		renderChildren(b, c, prefix+extend, depth+1, maxDepth, budget)
	}
}

// TreeLabel implements TreeNode: the span name, duration, and attributes.
func (s *Span) TreeLabel() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(s.Name())
	fmt.Fprintf(&b, " %.3fms", float64(s.Duration())/1e6)
	for _, a := range s.Attrs() {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}

// TreeChildren implements TreeNode.
func (s *Span) TreeChildren() []TreeNode {
	children := s.Children()
	out := make([]TreeNode, len(children))
	for i, c := range children {
		out[i] = c
	}
	return out
}

// RenderText renders the span tree as indented text — the plain-text
// sibling of the JSON/XML trace formats.
func (s *Span) RenderText() string {
	if s == nil {
		return ""
	}
	return RenderTree(s)
}
