package obs

import (
	"fmt"
	"strings"
)

// TreeNode is anything renderable as an ASCII tree: span trees, EXPLAIN
// operator trees. The renderer is shared so every tree-shaped diagnostic
// the system prints (traces, plans) reads the same way.
type TreeNode interface {
	// TreeLabel is the one-line description of this node.
	TreeLabel() string
	// TreeChildren returns the ordered children.
	TreeChildren() []TreeNode
}

// RenderTree renders the node and its descendants as an indented tree
// using box-drawing connectors:
//
//	root
//	├─ child one
//	│  └─ grandchild
//	└─ child two
func RenderTree(root TreeNode) string {
	var b strings.Builder
	b.WriteString(root.TreeLabel())
	b.WriteByte('\n')
	renderChildren(&b, root, "")
	return b.String()
}

func renderChildren(b *strings.Builder, n TreeNode, prefix string) {
	children := n.TreeChildren()
	for i, c := range children {
		connector, extend := "├─ ", "│  "
		if i == len(children)-1 {
			connector, extend = "└─ ", "   "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
		b.WriteString(c.TreeLabel())
		b.WriteByte('\n')
		renderChildren(b, c, prefix+extend)
	}
}

// TreeLabel implements TreeNode: the span name, duration, and attributes.
func (s *Span) TreeLabel() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(s.Name())
	fmt.Fprintf(&b, " %.3fms", float64(s.Duration())/1e6)
	for _, a := range s.Attrs() {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}

// TreeChildren implements TreeNode.
func (s *Span) TreeChildren() []TreeNode {
	children := s.Children()
	out := make([]TreeNode, len(children))
	for i, c := range children {
		out[i] = c
	}
	return out
}

// RenderText renders the span tree as indented text — the plain-text
// sibling of the JSON/XML trace formats.
func (s *Span) RenderText() string {
	if s == nil {
		return ""
	}
	return RenderTree(s)
}
