// Trace identity and W3C Trace Context propagation. Every span carries a
// 128-bit TraceID shared by the whole query (across the HTTP front end,
// the cluster admission/routing hop, the engine phases, and each fetch
// attempt) and a 64-bit SpanID of its own, so one user request is
// followable end to end and joinable against structured logs and metric
// exemplars. The wire form is the W3C `traceparent` header
// (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// so external callers can hand the system a trace to join, and the
// system hands the identity back on every response.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// TraceID is the 128-bit identity shared by every span of one trace.
type TraceID [16]byte

// SpanID is the 64-bit identity of one span.
type SpanID [8]byte

// IsZero reports the invalid all-zero trace id (the W3C spec forbids it
// on the wire; internally it marks "no identity assigned").
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits ("" when zero).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String renders the id as 16 lowercase hex digits ("" when zero).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// TraceContext is the propagated identity of an in-progress trace: the
// trace id, the id of the calling span (the parent of whatever span is
// started next), and the sampled flag from the wire.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// IsZero reports an empty context (no incoming trace).
func (tc TraceContext) IsZero() bool { return tc.TraceID.IsZero() }

// ParseTraceparent parses a W3C traceparent header. It accepts the
// version-00 format `00-<32 hex>-<16 hex>-<2 hex>` and, per the spec's
// forward-compatibility rule, any higher known-length version except ff.
// A malformed header (wrong lengths, bad hex, all-zero ids, version ff)
// returns ok=false: the caller starts a fresh trace rather than
// propagating garbage.
func ParseTraceparent(h string) (TraceContext, bool) {
	var tc TraceContext
	// 2+1+32+1+16+1+2 = 55; future versions may append fields after
	// another dash, which version-00 parsers must tolerate.
	if len(h) < 55 {
		return tc, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[0:2])); err != nil || ver[0] == 0xff {
		return tc, false
	}
	if ver[0] == 0 && len(h) != 55 {
		return tc, false // version 00 is exactly 55 chars
	}
	if len(h) > 55 && h[55] != '-' {
		return tc, false // a higher version must separate extra fields
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// FormatTraceparent renders the context as a version-00 traceparent
// header ("" when the context carries no trace).
func FormatTraceparent(tc TraceContext) string {
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return ""
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", tc.TraceID.String(), tc.SpanID.String(), flags)
}

// IDGen generates trace and span ids. A seeded generator replays the
// same id sequence (chaos runs pin the seed so the set of head-sampled
// traces is deterministic); the zero seed draws a random one. Safe for
// concurrent use.
type IDGen struct {
	mu    sync.Mutex
	state uint64 // guarded by mu; SplitMix64 state
}

// NewIDGen creates a generator. seed 0 draws a random seed (production);
// any other seed replays deterministically (chaos and tests).
func NewIDGen(seed int64) *IDGen {
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = int64(binary.LittleEndian.Uint64(b[:]))
		}
		if seed == 0 {
			seed = 1
		}
	}
	return &IDGen{state: uint64(seed)}
}

// next is SplitMix64 (the same generator the cluster's power-of-two
// sampler uses), held under the mutex.
func (g *IDGen) nextLocked() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID draws a fresh non-zero trace id.
func (g *IDGen) TraceID() TraceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[0:8], g.nextLocked())
		binary.BigEndian.PutUint64(t[8:16], g.nextLocked())
	}
	return t
}

// SpanID draws a fresh non-zero span id.
func (g *IDGen) SpanID() SpanID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], g.nextLocked())
	}
	return s
}

// defaultIDGen serves spans created without an explicit generator.
var defaultIDGen = NewIDGen(0)

// sampleHash maps a trace id onto [0,1) deterministically: the head-
// sampling decision depends only on the id, so every tier (and every
// replay with a seeded IDGen) agrees on whether a trace is sampled.
func sampleHash(t TraceID) float64 {
	v := binary.BigEndian.Uint64(t[8:16])
	return float64(v>>11) / float64(1<<53)
}
