package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("q_total") != c {
		t.Error("lookup should return the same counter")
	}
	g := r.Gauge("inflight", "instance", "0")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
	r.GaugeFunc("derived", func() float64 { return 7 })
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.GaugeFunc("w", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	_ = r.Summary()

	var s *Span
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.Finish()
	if c := s.StartChild("c"); c != nil {
		t.Error("child of nil span should be nil")
	}
	if s.Duration() != 0 || s.Name() != "" {
		t.Error("nil span accessors")
	}
	var tr *TraceStore
	tr.Record(nil)
	if tr.Last(5) != nil || tr.Len() != 0 {
		t.Error("nil trace store accessors")
	}
	if tr.NewRoot("q", TraceContext{}) == nil {
		t.Error("nil store NewRoot should still mint a span")
	}
	tr.SetExporter(nil)
	if tr.HeadSampled(TraceID{1}) {
		t.Error("nil store should not head-sample")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 = %v, want within first bucket", p50)
	}
	if p95 := h.Quantile(0.95); p95 <= 0.01 || p95 > 0.1 {
		t.Errorf("p95 = %v, want within third bucket", p95)
	}
	// Overflow clamps to the largest finite bound.
	h2 := newHistogram([]float64{0.001})
	h2.Observe(5)
	if q := h2.Quantile(0.99); q != 0.001 {
		t.Errorf("overflow quantile = %v", q)
	}
	// Empty histogram.
	if q := newHistogram(nil).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("nimble_queries_total").Add(3)
	r.Counter("nimble_fetch_total", "source", "crmdb", "outcome", "ok").Add(2)
	r.Gauge("nimble_inflight", "instance", "0").Set(1.5)
	r.GaugeFunc("nimble_entries", func() float64 { return 4 })
	r.Histogram("nimble_query_seconds").Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nimble_queries_total counter",
		"nimble_queries_total 3",
		`nimble_fetch_total{source="crmdb",outcome="ok"} 2`,
		`nimble_inflight{instance="0"} 1.5`,
		"# TYPE nimble_entries gauge",
		"nimble_entries 4",
		"# TYPE nimble_query_seconds histogram",
		`nimble_query_seconds_bucket{le="0.0025"} 1`,
		`nimble_query_seconds_bucket{le="+Inf"} 1`,
		"nimble_query_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(r.Summary(), "nimble_queries_total = 3") {
		t.Errorf("summary = %q", r.Summary())
	}
}

func TestKindConflictReturnsDetachedMetric(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	g := r.Gauge("m") // wrong kind: usable but unregistered
	g.Set(9)
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "9") {
		t.Errorf("conflicting gauge leaked into exposition: %s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "k", `a"b\c`).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `m{k="a\"b\\c"} 1`) {
		t.Errorf("escaping: %s", b.String())
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	fetch := root.StartChild("fetch crmdb")
	fetch.SetAttr("source", "crmdb")
	fetch.SetInt("rows", 42)
	fetch.SetBool("local", false)
	fetch.Finish()
	eval := root.StartChild("eval HashJoin")
	eval.Finish()
	root.Finish()
	end := root.Duration()
	time.Sleep(time.Millisecond)
	if root.Duration() != end {
		t.Error("Finish should freeze duration")
	}
	if len(root.Children()) != 2 {
		t.Fatalf("children = %d", len(root.Children()))
	}
	if v, ok := fetch.Attr("rows"); !ok || v != "42" {
		t.Errorf("rows attr = %q %v", v, ok)
	}
	if got := root.FindAll("fetch "); len(got) != 1 || got[0] != fetch {
		t.Errorf("FindAll = %v", got)
	}
	n := 0
	root.Walk(func(*Span) { n++ })
	if n != 3 {
		t.Errorf("walk visited %d", n)
	}
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name":"query"`, `"fetch crmdb"`, `"rows":"42"`, `"duration_ms"`} {
		if !strings.Contains(s, want) {
			t.Errorf("json missing %q: %s", want, s)
		}
	}
}

func TestSpanContextThreading(t *testing.T) {
	ctx := t.Context()
	if FromContext(ctx) != nil {
		t.Error("empty context should carry no span")
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without a parent should be a no-op")
	}
	root := NewSpan("root")
	ctx = ContextWithSpan(ctx, root)
	ctx3, child := StartSpan(ctx, "step")
	if child == nil || FromContext(ctx3) != child {
		t.Fatal("child should thread through context")
	}
	if cs := root.Children(); len(cs) != 1 || cs[0] != child {
		t.Errorf("root children = %v", cs)
	}
}

func TestTraceStoreRing(t *testing.T) {
	tr := NewTraceStore(StoreConfig{Limit: 3})
	for i := 0; i < 5; i++ {
		s := tr.NewRoot("query", TraceContext{})
		s.SetInt("i", int64(i))
		s.Finish()
		tr.Record(s)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	last := tr.Last(2)
	if len(last) != 2 {
		t.Fatalf("last = %d", len(last))
	}
	if v, _ := last[0].Attr("i"); v != "4" {
		t.Errorf("most recent first: %s", v)
	}
	if v, _ := last[1].Attr("i"); v != "3" {
		t.Errorf("second: %s", v)
	}
	if len(tr.Last(0)) != 3 {
		t.Error("Last(0) should return all retained")
	}
}
