// Package obs is the observability subsystem of the integration product:
// the instrumentation half of §2.1's Management Tools, letting
// administrators "set up, monitor, and understand, the system" (§4). It
// has two faces: a lock-cheap metrics registry (counters, gauges, and
// latency histograms with quantile estimation, exposed in Prometheus
// text format), and a per-query span tracer threaded through
// context.Context so every query can return an execution profile.
//
// Every metric and span method is nil-receiver safe, so instrumented
// code never checks whether observability is configured:
//
//	var reg *obs.Registry // nil: observability off
//	reg.Counter("nimble_queries_total").Inc() // no-op, no panic
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram bounds (seconds) used when no
// explicit bounds are given: exponential from 0.25ms to 10s, sized for
// query and fetch latencies.
var DefaultLatencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; contention on gauges is rare).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// exemplar is one sampled observation pinned to a histogram bucket: the
// trace that produced the value, so a bad percentile links straight to
// a kept trace.
type exemplar struct {
	traceID string
	value   float64
}

// Histogram is a fixed-bucket latency histogram. Observations and reads
// are atomic per bucket; quantiles are estimated by linear interpolation
// within the bucket holding the target rank. Each bucket retains the
// last trace-tagged observation as an OpenMetrics-style exemplar.
type Histogram struct {
	bounds    []float64 // upper bounds, ascending; an implicit +Inf follows
	buckets   []atomic.Int64
	exemplars []atomic.Pointer[exemplar] // per-bucket last exemplar
	count     atomic.Int64
	sumNanos  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one value and, when traceID is non-empty,
// pins it to the value's bucket as that bucket's exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(v * 1e9))
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
	}
}

// ExemplarTraceIDs returns the trace ids currently pinned to buckets,
// ascending by bucket.
func (h *Histogram) ExemplarTraceIDs() []string {
	if h == nil {
		return nil
	}
	var out []string
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, e.traceID)
		}
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNanos.Load()) / 1e9
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts.
// Values beyond the largest finite bound clamp to that bound; an empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // the +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	name   string
	labels string // rendered `k="v",k2="v2"`, empty when unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

func (s *series) id() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds metric families. Lookup takes a read lock; increments
// are atomic, so hot paths that cache the returned metric pointer pay no
// lock at all, and even uncached paths share only an RLock.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series    // guarded by mu
	kinds  map[string]metricKind // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		kinds:  make(map[string]metricKind),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry; components record here
// unless explicitly configured with their own.
func Default() *Registry { return defaultRegistry }

// renderLabels turns k,v pairs into `k="v",...` (insertion order kept;
// callers use a consistent order per metric).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series for name+labels, creating it via make when
// absent. A name already registered under a different kind yields a
// detached series (recorded nowhere) rather than a panic.
func (r *Registry) lookup(name string, kind metricKind, labels []string, make func() *series) *series {
	if r == nil {
		return nil
	}
	s := &series{name: name, labels: renderLabels(labels)}
	id := s.id()
	r.mu.RLock()
	got, ok := r.series[id]
	r.mu.RUnlock()
	if ok {
		return got
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.series[id]; ok {
		return got
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		return make() // kind conflict: usable but unregistered
	}
	r.kinds[name] = kind
	got = make()
	r.series[id] = got
	return got
}

// Counter returns (creating if needed) the counter for name and label
// k,v pairs. Nil registries return a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, kindCounter, labels, func() *series {
		return &series{name: name, labels: renderLabels(labels), c: &Counter{}}
	})
	if s == nil {
		return nil
	}
	return s.c
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, kindGauge, labels, func() *series {
		return &series{name: name, labels: renderLabels(labels), g: &Gauge{}}
	})
	if s == nil {
		return nil
	}
	return s.g
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// exposition time — the idiom for in-flight counts and staleness ages.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	s := &series{name: name, labels: renderLabels(labels), gf: fn}
	id := s.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kindGauge {
		return
	}
	r.kinds[name] = kindGauge
	if got, ok := r.series[id]; ok {
		got.gf = fn
		got.g = nil
		return
	}
	r.series[id] = s
}

// Histogram returns (creating if needed) a latency histogram with the
// default buckets.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramWith(name, nil, labels...)
}

// HistogramWith returns (creating if needed) a histogram with explicit
// bucket upper bounds (ascending; an implicit +Inf bucket follows).
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, kindHistogram, labels, func() *series {
		return &series{name: name, labels: renderLabels(labels), h: newHistogram(bounds)}
	})
	if s == nil {
		return nil
	}
	return s.h
}

// snapshot returns the series sorted by family name then series id.
func (r *Registry) snapshot() []*series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (text/plain; version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	kinds := make(map[string]metricKind, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.RUnlock()

	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			lastFamily = s.name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, kinds[s.name]); err != nil {
				return err
			}
		}
		var err error
		switch {
		case s.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", s.id(), s.c.Value())
		case s.g != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", s.id(), formatFloat(s.g.Value()))
		case s.gf != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", s.id(), formatFloat(s.gf()))
		case s.h != nil:
			err = writeHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	h := s.h
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		if err := writeBucket(w, s, formatFloat(bound), cum, h.exemplars[i].Load()); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if err := writeBucket(w, s, "+Inf", cum, h.exemplars[len(h.bounds)].Load()); err != nil {
		return err
	}
	sep := ""
	if s.labels != "" {
		sep = "{" + s.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, sep, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, sep, h.Count())
	return err
}

// writeBucket renders one cumulative bucket line, appending the
// bucket's exemplar in OpenMetrics style (` # {trace_id="..."} value`)
// when one is pinned.
func writeBucket(w io.Writer, s *series, le string, cum int64, e *exemplar) error {
	labels := s.labels
	if labels != "" {
		labels += ","
	}
	if e != nil {
		_, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d # {trace_id=%q} %s\n",
			s.name, labels, le, cum, e.traceID, formatFloat(e.value))
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", s.name, labels, le, cum)
	return err
}

// Summary renders a compact human-readable dump: counters and gauges as
// single lines, histograms with count and p50/p95/p99 — the snapshot
// nimble-bench prints after a run.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, s := range r.snapshot() {
		switch {
		case s.c != nil:
			fmt.Fprintf(&b, "%-12s %s = %d\n", "counter", s.id(), s.c.Value())
		case s.g != nil:
			fmt.Fprintf(&b, "%-12s %s = %s\n", "gauge", s.id(), formatFloat(s.g.Value()))
		case s.gf != nil:
			fmt.Fprintf(&b, "%-12s %s = %s\n", "gauge", s.id(), formatFloat(s.gf()))
		case s.h != nil:
			fmt.Fprintf(&b, "%-12s %s count=%d p50=%.3gms p95=%.3gms p99=%.3gms\n",
				"histogram", s.id(), s.h.Count(),
				s.h.Quantile(0.50)*1000, s.h.Quantile(0.95)*1000, s.h.Quantile(0.99)*1000)
		}
	}
	return b.String()
}
