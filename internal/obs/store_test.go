package obs

import (
	"strings"
	"testing"
	"time"
)

// finished builds a completed root span on a store.
func finished(t *TraceStore, name string, mutate func(*Span)) *Span {
	sp := t.NewRoot(name, TraceContext{})
	if mutate != nil {
		mutate(sp)
	}
	sp.Finish()
	return sp
}

func TestTailKeepsBeatHeadSampling(t *testing.T) {
	reg := NewRegistry()
	// rate < 0 means tail-only: nothing survives the head decision.
	st := NewTraceStore(StoreConfig{Limit: 8, SampleRate: -1, Seed: 1, Metrics: reg})

	st.Record(finished(st, "clean", nil))
	if st.Len() != 0 {
		t.Fatal("tail-only store kept a clean trace")
	}
	if st.Dropped() != 1 {
		t.Errorf("dropped = %d", st.Dropped())
	}

	// An error anywhere in the tree keeps the trace.
	st.Record(finished(st, "failing", func(sp *Span) {
		c := sp.StartChild("fetch crmdb")
		c.SetAttr("error", "boom")
		c.Finish()
	}))
	if st.Len() != 1 {
		t.Fatal("errored trace not tail-kept")
	}
	_, errKept, _ := st.Kept()
	if errKept != 1 {
		t.Errorf("kept by error = %d", errKept)
	}
	if v := reg.Counter("nimble_traces_kept_total", "reason", "error").Value(); v != 1 {
		t.Errorf("kept counter = %d", v)
	}
}

func TestSlowThresholdKeep(t *testing.T) {
	st := NewTraceStore(StoreConfig{Limit: 8, SampleRate: -1, SlowThreshold: time.Nanosecond, Seed: 1})
	sp := st.NewRoot("slow", TraceContext{})
	time.Sleep(time.Millisecond)
	sp.Finish()
	st.Record(sp)
	if st.Len() != 1 {
		t.Fatal("slow trace not tail-kept")
	}
	_, _, slowKept := st.Kept()
	if slowKept != 1 {
		t.Errorf("kept by slow = %d", slowKept)
	}
}

func TestHeadSamplingDeterministicUnderSeed(t *testing.T) {
	keptIDs := func() []string {
		st := NewTraceStore(StoreConfig{Limit: 100, SampleRate: 0.5, Seed: 99})
		var ids []string
		for i := 0; i < 64; i++ {
			sp := finished(st, "q", nil)
			st.Record(sp)
			if st.Find(sp.TraceID()) != nil {
				ids = append(ids, sp.TraceID().String())
			}
		}
		return ids
	}
	a, b := keptIDs(), keptIDs()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("rate 0.5 kept %d of 64 — sampler not discriminating", len(a))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Error("same seed should keep the same trace set")
	}
}

func TestSearchFilters(t *testing.T) {
	st := NewTraceStore(StoreConfig{Limit: 16, Seed: 1})
	st.Record(finished(st, "fast", nil))
	st.Record(finished(st, "errored", func(sp *Span) { sp.SetAttr("error", "x") }))
	slow := st.NewRoot("slow", TraceContext{})
	c := slow.StartChild("fetch crmdb")
	c.Finish()
	time.Sleep(2 * time.Millisecond)
	slow.Finish()
	st.Record(slow)

	if got := st.Search(Query{}); len(got) != 3 || got[0].Name() != "slow" {
		t.Fatalf("unfiltered search = %d, most recent %q", len(got), got[0].Name())
	}
	if got := st.Search(Query{ErrOnly: true}); len(got) != 1 || got[0].Name() != "errored" {
		t.Errorf("err filter = %v", got)
	}
	if got := st.Search(Query{MinDuration: time.Millisecond}); len(got) != 1 || got[0].Name() != "slow" {
		t.Errorf("min duration filter returned %d", len(got))
	}
	if got := st.Search(Query{Source: "crmdb"}); len(got) != 1 || got[0].Name() != "slow" {
		t.Errorf("source filter = %v", got)
	}
	if got := st.Search(Query{Limit: 2}); len(got) != 2 {
		t.Errorf("limit = %d", len(got))
	}
	if st.Find(TraceID{9}) != nil {
		t.Error("Find of unknown id should be nil")
	}
}

func TestStoreStreamsToExporter(t *testing.T) {
	st := NewTraceStore(StoreConfig{Limit: 4, Seed: 1})
	mem := &MemExporter{}
	q := NewBatchQueue(mem, 8, 2, nil)
	st.SetExporter(q)
	for i := 0; i < 3; i++ {
		st.Record(finished(st, "q", nil))
	}
	q.Flush()
	if got := len(mem.Spans()); got != 3 {
		t.Fatalf("exported %d spans", got)
	}
	q.Close()
}

func TestRootSpanJoinsIncomingContext(t *testing.T) {
	g := NewIDGen(5)
	tc := TraceContext{TraceID: g.TraceID(), SpanID: g.SpanID(), Sampled: true}
	sp := NewRootSpan("request", tc)
	if sp.TraceID() != tc.TraceID {
		t.Error("root should adopt the incoming trace id")
	}
	if sp.ParentID() != tc.SpanID {
		t.Error("root should parent under the incoming span id")
	}
	child := sp.StartChild("engine")
	if child.TraceID() != tc.TraceID || child.ParentID() != sp.SpanID() {
		t.Error("child identity should chain from the root")
	}
	// Without an incoming context the root mints a fresh identity.
	fresh := NewRootSpan("request", TraceContext{})
	if fresh.TraceID().IsZero() || !fresh.ParentID().IsZero() {
		t.Error("fresh root identity wrong")
	}
}
