package obs

// The dedicated race-detector exercise for the observability primitives:
// concurrent metric updates and span mutation racing with exposition and
// serialization. `make check` runs the whole suite under -race; this
// test is the one designed to trip it if any path regresses.

import (
	"encoding/json"
	"io"
	"sync"
	"testing"
)

func TestConcurrentMetricsAndTracing(t *testing.T) {
	r := NewRegistry()
	tr := NewTraceStore(StoreConfig{Limit: 8})
	root := NewSpan("query")

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := []string{"a", "b", "c"}[w%3]
			for i := 0; i < iters; i++ {
				r.Counter("races_total", "source", src).Inc()
				r.Gauge("races_inflight").Add(1)
				r.Histogram("races_seconds", "source", src).Observe(float64(i) / 1e5)
				r.Gauge("races_inflight").Add(-1)

				sp := root.StartChild("fetch " + src)
				sp.SetInt("i", int64(i))
				sp.Finish()

				done := NewSpan("query")
				done.StartChild("eval").Finish()
				done.Finish()
				tr.Record(done)
				tr.Last(4)
			}
		}(w)
	}
	// Readers race with the writers.
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
				_ = r.Summary()
				if _, err := json.Marshal(root); err != nil {
					t.Error(err)
				}
				root.Walk(func(s *Span) { s.Duration() })
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	root.Finish()

	var total int64
	for _, src := range []string{"a", "b", "c"} {
		total += r.Counter("races_total", "source", src).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if n := int64(len(root.Children())); n != workers*iters {
		t.Errorf("root children = %d, want %d", n, workers*iters)
	}
	if tr.Len() != 8 {
		t.Errorf("trace store retained %d", tr.Len())
	}
}
