// Trace-correlated structured logging. Components log through a
// *slog.Logger whose handler pulls the active span out of the context
// and stamps trace_id/span_id onto every record, so a log line is
// always joinable against the kept trace (and vice versa: a trace id
// from /debug/traces greps straight into the log stream). Call sites
// use the context-taking slog methods (InfoContext, WarnContext, ...)
// for the correlation to apply.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a JSON-lines logger writing to w at the given
// minimum level, with trace correlation from context spans.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(&traceHandler{inner: inner})
}

// NopLogger returns a logger that discards everything — the default for
// components constructed without a logger, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// traceHandler decorates records with the context span's identity.
type traceHandler struct {
	inner slog.Handler
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := FromContext(ctx); sp != nil {
		r = r.Clone()
		if id := sp.TraceID().String(); id != "" {
			r.AddAttrs(slog.String("trace_id", id))
		}
		if id := sp.SpanID().String(); id != "" {
			r.AddAttrs(slog.String("span_id", id))
		}
	}
	return h.inner.Handle(ctx, r)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}

// nopHandler is a hand-rolled discard handler (slog.DiscardHandler
// arrives in a later Go than this module targets).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
