package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	g := NewIDGen(42)
	tc := TraceContext{TraceID: g.TraceID(), SpanID: g.SpanID(), Sampled: true}
	h := FormatTraceparent(tc)
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("header = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
	// Unsampled flag round-trips too.
	tc.Sampled = false
	got, ok = ParseTraceparent(FormatTraceparent(tc))
	if !ok || got != tc {
		t.Fatalf("unsampled round trip: %+v ok=%v", got, ok)
	}
	// A zero context formats to nothing.
	if h := FormatTraceparent(TraceContext{}); h != "" {
		t.Errorf("zero context header = %q", h)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("spec example rejected")
	}
	for name, h := range map[string]string{
		"empty":            "",
		"short":            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
		"bad version hex":  "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"version ff":       "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"v00 with suffix":  valid + "-extra",
		"missing dash":     "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad trace hex":    "00-Xbf92f3577b34da6a3ce929d0e0e4736X-00f067aa0ba902b7-01",
		"bad span hex":     "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bX-01",
		"bad flags hex":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":     "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"v01 glued suffix": "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
	} {
		if tc, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: accepted %q as %+v", name, h, tc)
		}
	}
	// A higher version with a dash-separated extension is accepted per the
	// forward-compatibility rule.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever"); !ok {
		t.Error("future version with extension rejected")
	}
}

// FuzzParseTraceparent asserts the parser's safety contract on arbitrary
// input: it never panics, and anything it accepts re-formats to a header
// carrying the same identity.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-ext")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("00--")
	f.Add(strings.Repeat("-", 60))
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-")
	f.Fuzz(func(t *testing.T, h string) {
		tc, ok := ParseTraceparent(h)
		if !ok {
			if !tc.TraceID.IsZero() || !tc.SpanID.IsZero() {
				t.Fatalf("rejected header leaked identity: %+v", tc)
			}
			return
		}
		if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
			t.Fatalf("accepted header with zero id: %q", h)
		}
		back, ok2 := ParseTraceparent(FormatTraceparent(tc))
		if !ok2 || back != tc {
			t.Fatalf("reformat of %q did not round-trip: %+v vs %+v", h, back, tc)
		}
	})
}

func TestIDGenDeterminism(t *testing.T) {
	a, b := NewIDGen(7), NewIDGen(7)
	for i := 0; i < 10; i++ {
		if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
			t.Fatal("same seed should replay the same id sequence")
		}
	}
	c := NewIDGen(8)
	if NewIDGen(7).TraceID() == c.TraceID() {
		t.Error("different seeds should diverge")
	}
	if NewIDGen(0).TraceID() == NewIDGen(0).TraceID() {
		t.Error("random-seed generators should not collide")
	}
}

func TestSampleHashRange(t *testing.T) {
	g := NewIDGen(3)
	for i := 0; i < 1000; i++ {
		v := sampleHash(g.TraceID())
		if v < 0 || v >= 1 {
			t.Fatalf("sampleHash out of [0,1): %v", v)
		}
	}
}
