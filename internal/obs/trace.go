package obs

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Event is one timestamped point annotation inside a span — the shape
// for things that happen during a span without deserving a child span of
// their own (admission enqueue/grant, retry backoff, probe outcomes,
// drain progress).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one timed step of a query's execution. Spans form a tree: the
// front end opens a root span per request, and each layer (cluster
// admission and routing, engine unfolding/planning/prefetching,
// per-source fetch attempts, operator evaluation) hangs children off it.
// Every span carries the trace identity: the TraceID shared by the whole
// tree, its own SpanID, and its parent's SpanID, so traces survive
// flattening (exporters) and joining (logs, exemplars). All methods are
// safe on a nil receiver, so code instruments unconditionally and pays
// nothing when tracing is off, and safe for concurrent use (parallel
// prefetches add children from goroutines).
type Span struct {
	name   string
	start  time.Time
	tid    TraceID
	sid    SpanID
	parent SpanID // zero for a trace-local root
	gen    *IDGen // id generator children inherit (nil = package default)

	mu       sync.Mutex
	end      time.Time // guarded by mu
	attrs    []Attr    // guarded by mu
	events   []Event   // guarded by mu
	children []*Span   // guarded by mu
}

// NewSpan starts a root span with a fresh trace identity.
func NewSpan(name string) *Span {
	return NewRootSpan(name, TraceContext{})
}

// NewRootSpan starts a root span joining the given trace context: with a
// non-zero context the span adopts the incoming TraceID and records the
// remote caller's span as its parent (the W3C traceparent hop); with a
// zero context a fresh trace begins.
func NewRootSpan(name string, tc TraceContext) *Span {
	return newRootSpan(name, tc, defaultIDGen)
}

// newRootSpan is NewRootSpan with an explicit id generator (the
// TraceStore's, when the store owns id assignment).
func newRootSpan(name string, tc TraceContext, gen *IDGen) *Span {
	if gen == nil {
		gen = defaultIDGen
	}
	s := &Span{name: name, start: time.Now(), gen: gen, sid: gen.SpanID()}
	if tc.TraceID.IsZero() {
		s.tid = gen.TraceID()
	} else {
		s.tid = tc.TraceID
		s.parent = tc.SpanID
	}
	return s
}

// StartChild starts and attaches a child span; on a nil receiver it
// returns nil (the no-op span). The child shares the trace id and
// records this span as its parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	gen := s.gen
	if gen == nil {
		gen = defaultIDGen
	}
	c := &Span{name: name, start: time.Now(), tid: s.tid, sid: gen.SpanID(), parent: s.sid, gen: gen}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the trace identity shared by the span's whole tree.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tid
}

// SpanID returns the span's own identity.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.sid
}

// ParentID returns the parent span's identity (zero for a root that
// started its own trace).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parent
}

// TraceContext returns the span's identity in propagation form: inject
// it with FormatTraceparent so the next hop records this span as its
// parent.
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.tid, SpanID: s.sid, Sampled: true}
}

// AddEvent records a timestamped point annotation with key/value pairs.
func (s *Span) AddEvent(name string, kv ...string) {
	if s == nil {
		return
	}
	ev := Event{Time: time.Now(), Name: name}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// SetAttr records a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt records an integer annotation.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool records a boolean annotation.
func (s *Span) SetBool(key string, v bool) {
	s.SetAttr(key, strconv.FormatBool(v))
}

// Finish marks the span complete; the first call wins.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end-start, or the running duration if unfinished.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Attrs returns a copy of the annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the last value recorded under key.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return "", false
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the span and every descendant, depth first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// FindAll returns every span in the tree whose name has the prefix.
func (s *Span) FindAll(prefix string) []*Span {
	var out []*Span
	s.Walk(func(sp *Span) {
		if strings.HasPrefix(sp.Name(), prefix) {
			out = append(out, sp)
		}
	})
	return out
}

// spanJSON is the wire shape of a span: the trace schema documented in
// README.md's Observability section.
type spanJSON struct {
	Name       string            `json:"name"`
	TraceID    string            `json:"trace_id,omitempty"`
	SpanID     string            `json:"span_id,omitempty"`
	ParentID   string            `json:"parent_span_id,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []eventJSON       `json:"events,omitempty"`
	Children   []*Span           `json:"children,omitempty"`
}

type eventJSON struct {
	Name  string            `json:"name"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	v := spanJSON{
		Name:       s.Name(),
		TraceID:    s.TraceID().String(),
		SpanID:     s.SpanID().String(),
		ParentID:   s.ParentID().String(),
		Start:      s.Start(),
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Children:   s.Children(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		v.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	for _, ev := range s.Events() {
		ej := eventJSON{Name: ev.Name, Time: ev.Time}
		if len(ev.Attrs) > 0 {
			ej.Attrs = make(map[string]string, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ej.Attrs[a.Key] = a.Value
			}
		}
		v.Events = append(v.Events, ej)
	}
	return json.Marshal(v)
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context for downstream layers.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the span attached to ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context span, returning a context
// carrying the child. With no span in ctx it returns ctx and nil: the
// whole call chain degrades to no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return ContextWithSpan(ctx, c), c
}
