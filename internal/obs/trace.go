package obs

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed step of a query's execution. Spans form a tree: the
// engine opens a root "query" span, and each layer (unfolding, planning,
// prefetching, per-source fetches, operator evaluation) hangs children
// off it. All methods are safe on a nil receiver, so code instruments
// unconditionally and pays nothing when tracing is off, and safe for
// concurrent use (parallel prefetches add children from goroutines).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // guarded by mu
	attrs    []Attr    // guarded by mu
	children []*Span   // guarded by mu
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and attaches a child span; on a nil receiver it
// returns nil (the no-op span).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt records an integer annotation.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool records a boolean annotation.
func (s *Span) SetBool(key string, v bool) {
	s.SetAttr(key, strconv.FormatBool(v))
}

// Finish marks the span complete; the first call wins.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end-start, or the running duration if unfinished.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Attrs returns a copy of the annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the last value recorded under key.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return "", false
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the span and every descendant, depth first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// FindAll returns every span in the tree whose name has the prefix.
func (s *Span) FindAll(prefix string) []*Span {
	var out []*Span
	s.Walk(func(sp *Span) {
		if strings.HasPrefix(sp.Name(), prefix) {
			out = append(out, sp)
		}
	})
	return out
}

// spanJSON is the wire shape of a span: the trace schema documented in
// README.md's Observability section.
type spanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*Span           `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	v := spanJSON{
		Name:       s.Name(),
		Start:      s.Start(),
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Children:   s.Children(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		v.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(v)
}

// Tracer retains the most recent N query traces for the management
// surface (/debug/trace/last). Safe for concurrent use; nil-receiver
// safe so tracing stays optional.
type Tracer struct {
	mu     sync.Mutex
	limit  int     // immutable after NewTracer
	traces []*Span // guarded by mu
}

// DefaultTraceBuffer is the trace retention used when no limit is given.
const DefaultTraceBuffer = 16

// NewTracer creates a tracer retaining the last limit traces (limit < 1
// uses DefaultTraceBuffer).
func NewTracer(limit int) *Tracer {
	if limit < 1 {
		limit = DefaultTraceBuffer
	}
	return &Tracer{limit: limit}
}

// Record retains a finished root span, evicting the oldest beyond the
// retention limit.
func (t *Tracer) Record(root *Span) {
	if t == nil || root == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces = append(t.traces, root)
	if n := len(t.traces) - t.limit; n > 0 {
		t.traces = append([]*Span(nil), t.traces[n:]...)
	}
}

// Last returns up to n retained traces, most recent first (n < 1 means
// all retained).
func (t *Tracer) Last(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 || n > len(t.traces) {
		n = len(t.traces)
	}
	out := make([]*Span, 0, n)
	for i := len(t.traces) - 1; i >= len(t.traces)-n; i-- {
		out = append(out, t.traces[i])
	}
	return out
}

// Len reports the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context for downstream layers.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the span attached to ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context span, returning a context
// carrying the child. With no span in ctx it returns ctx and nil: the
// whole call chain degrades to no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return ContextWithSpan(ctx, c), c
}
