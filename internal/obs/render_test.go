package obs

import (
	"strings"
	"testing"
)

// deepTrace builds a root with `depth` chained descendants, each with
// `fan` leaf children.
func deepTrace(depth, fan int) *Span {
	root := NewSpan("root")
	cur := root
	for d := 0; d < depth; d++ {
		next := cur.StartChild("level")
		for f := 0; f < fan; f++ {
			leaf := next.StartChild("leaf")
			leaf.Finish()
		}
		cur = next
	}
	root.Walk(func(sp *Span) { sp.Finish() })
	return root
}

func TestRenderTreeDeep(t *testing.T) {
	root := deepTrace(20, 2)
	out := RenderTree(root)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 1 root + 20 levels + 40 leaves, nothing elided.
	if len(lines) != 61 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if strings.Contains(out, "more)") {
		t.Error("unlimited render should not elide")
	}
	if !strings.Contains(lines[0], "root") || !strings.Contains(out, "└─") {
		t.Errorf("tree structure missing:\n%s", out)
	}
}

func TestRenderTreeLimitedDepth(t *testing.T) {
	root := deepTrace(5, 1)
	out := RenderTreeLimited(root, 2, 0)
	// Depth 2: root plus its direct child, then an elision marker for the
	// remaining 9 nodes (4 levels + 5 leaves).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("depth-limited render = %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "… (9 more)") {
		t.Errorf("missing elision marker:\n%s", out)
	}
	// Depth 1 renders the root only.
	out1 := RenderTreeLimited(root, 1, 0)
	if got := len(strings.Split(strings.TrimSpace(out1), "\n")); got != 2 {
		t.Errorf("depth 1 = %d lines:\n%s", got, out1)
	}
}

func TestRenderTreeLimitedNodes(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < 10; i++ {
		c := root.StartChild("child")
		c.Finish()
	}
	root.Finish()
	out := RenderTreeLimited(root, 0, 4)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// root + 3 children + elision marker for the 7 remaining.
	if len(lines) != 5 {
		t.Fatalf("node-limited render = %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "… (7 more)") {
		t.Errorf("missing sibling elision:\n%s", out)
	}
	// A budget larger than the tree renders everything.
	if out := RenderTreeLimited(root, 0, 100); strings.Contains(out, "more)") {
		t.Error("oversized budget should not elide")
	}
}
