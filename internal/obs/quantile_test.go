package obs

import (
	"sync"
	"testing"
)

// Quantile edge cases: the estimator must degrade predictably at the
// boundaries — no observations, one observation, and a distribution
// that lands entirely beyond the largest finite bound.

func TestQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := h.Count(); got != 0 {
		t.Errorf("empty histogram Count() = %d", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("empty histogram Sum() = %v", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1.5)
	// One sample in (1, 2]: the median interpolates to the middle of
	// that bucket.
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("Quantile(0.5) = %v, want 1.5", got)
	}
	// A high quantile stays inside the sample's bucket.
	if got := h.Quantile(0.99); got <= 1 || got > 2 {
		t.Errorf("Quantile(0.99) = %v, want within (1, 2]", got)
	}
}

func TestQuantileSingleSampleFirstBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	// The first bucket interpolates from zero.
	if got := h.Quantile(0.5); got < 0 || got > 1 {
		t.Errorf("Quantile(0.5) = %v, want within [0, 1]", got)
	}
}

func TestQuantileAllOverflow(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	for _, v := range []float64{5, 6, 7} {
		h.Observe(v)
	}
	// Every observation sits in the +Inf bucket: all quantiles clamp to
	// the largest finite bound rather than inventing a value.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 0.01 {
			t.Errorf("all-overflow Quantile(%v) = %v, want clamp to 0.01", q, got)
		}
	}
	if got := h.Count(); got != 3 {
		t.Errorf("Count() = %d, want 3", got)
	}
}

func TestQuantileNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile(0.5) = %v, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram Count/Sum not zero")
	}
}

// TestNilSpanConcurrent hammers every nil-receiver span and tracer
// method from many goroutines; under -race (part of make check) this
// proves the no-op paths are genuinely state-free.
func TestNilSpanConcurrent(t *testing.T) {
	var sp *Span
	var tr *TraceStore
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				child := sp.StartChild("c")
				if child != nil {
					t.Error("nil span StartChild returned non-nil")
					return
				}
				sp.SetAttr("k", "v")
				sp.SetInt("n", 1)
				sp.SetBool("b", true)
				sp.Finish()
				_ = sp.Name()
				_ = sp.Duration()
				_ = sp.Attrs()
				_, _ = sp.Attr("k")
				_ = sp.Children()
				sp.Walk(func(*Span) {})
				_ = sp.FindAll("c")
				tr.Record(NewSpan("x"))
				_ = tr.Last(1)
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()
}
