// Trace exporters: the egress half of the tracing pipeline. Kept traces
// flow from the TraceStore into a bounded BatchQueue; a background
// worker drains the queue in batches into a pluggable Exporter. The
// queue never blocks the query path — when full it drops the trace and
// counts the drop (nimble_trace_export_dropped_total), the standard
// backpressure posture for telemetry.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// Exporter receives batches of finished root spans. Implementations are
// called from a single worker goroutine, never concurrently.
type Exporter interface {
	// ExportBatch delivers one batch; an error counts against
	// nimble_trace_export_errors_total and the batch is not retried.
	ExportBatch(batch []*Span) error
}

// Default queue geometry: the queue absorbs bursts of kept traces, the
// batch size bounds per-export work.
const (
	DefaultExportQueue = 256
	DefaultExportBatch = 16
)

// BatchQueue is the bounded buffer between the TraceStore and an
// Exporter. Enqueue is non-blocking (drop-with-counter when full); a
// single worker goroutine batches and exports. Nil-receiver safe.
type BatchQueue struct {
	exp       Exporter
	batchSize int // immutable after NewBatchQueue

	ch      chan *Span         // the bounded buffer
	flushCh chan chan struct{} // Flush handshakes with the worker
	done    chan struct{}      // closed when the worker exits
	wg      sync.WaitGroup
	once    sync.Once // guards Close

	mu     sync.RWMutex
	closed bool // guarded by mu; bars Enqueue from a closed ch

	exported *Counter // spans successfully handed to the exporter
	drops    *Counter // spans dropped on a full queue
	errs     *Counter // failed ExportBatch calls
}

// NewBatchQueue starts the export worker. queueSize and batchSize < 1
// use the defaults; reg (may be nil) receives the export counters.
func NewBatchQueue(exp Exporter, queueSize, batchSize int, reg *Registry) *BatchQueue {
	if queueSize < 1 {
		queueSize = DefaultExportQueue
	}
	if batchSize < 1 {
		batchSize = DefaultExportBatch
	}
	q := &BatchQueue{
		exp:       exp,
		batchSize: batchSize,
		ch:        make(chan *Span, queueSize),
		flushCh:   make(chan chan struct{}),
		done:      make(chan struct{}),
		exported:  reg.Counter("nimble_trace_export_total"),
		drops:     reg.Counter("nimble_trace_export_dropped_total"),
		errs:      reg.Counter("nimble_trace_export_errors_total"),
	}
	q.wg.Add(1)
	go q.run()
	return q
}

// Enqueue offers a trace to the export worker; a full queue drops it
// (and a closed queue discards it silently).
func (q *BatchQueue) Enqueue(root *Span) {
	if q == nil || root == nil {
		return
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return
	}
	select {
	case q.ch <- root:
	default:
		q.drops.Inc()
	}
}

// Flush blocks until every trace enqueued before the call has been
// exported (no-op after Close).
func (q *BatchQueue) Flush() {
	if q == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case q.flushCh <- ack:
		<-ack
	case <-q.done:
	}
}

// Close flushes the queue and stops the worker. Safe to call twice.
func (q *BatchQueue) Close() {
	if q == nil {
		return
	}
	q.once.Do(func() {
		q.mu.Lock()
		q.closed = true
		close(q.ch)
		q.mu.Unlock()
		q.wg.Wait()
	})
}

// Dropped reports how many traces were dropped on a full queue.
func (q *BatchQueue) Dropped() int64 {
	if q == nil {
		return 0
	}
	return q.drops.Value()
}

// run is the worker: collect a batch (the blocking head plus whatever
// else is already queued, up to batchSize), export, repeat.
func (q *BatchQueue) run() {
	defer q.wg.Done()
	defer close(q.done)
	for {
		select {
		case sp, ok := <-q.ch:
			if !ok {
				q.drain()
				return
			}
			q.export(q.collect(sp))
		case ack := <-q.flushCh:
			q.drain()
			close(ack)
		}
	}
}

// collect fills a batch starting from head without blocking.
func (q *BatchQueue) collect(head *Span) []*Span {
	batch := []*Span{head}
	for len(batch) < q.batchSize {
		select {
		case sp, ok := <-q.ch:
			if !ok {
				return batch
			}
			batch = append(batch, sp)
		default:
			return batch
		}
	}
	return batch
}

// drain exports everything currently queued.
func (q *BatchQueue) drain() {
	for {
		select {
		case sp, ok := <-q.ch:
			if !ok {
				return
			}
			q.export(q.collect(sp))
		default:
			return
		}
	}
}

func (q *BatchQueue) export(batch []*Span) {
	if len(batch) == 0 {
		return
	}
	if err := q.exp.ExportBatch(batch); err != nil {
		q.errs.Inc()
		return
	}
	q.exported.Add(int64(len(batch)))
}

// MemExporter retains exported batches in memory — the test double.
type MemExporter struct {
	mu      sync.Mutex
	batches [][]*Span // guarded by mu
}

// ExportBatch implements Exporter.
func (m *MemExporter) ExportBatch(batch []*Span) error {
	cp := make([]*Span, len(batch))
	copy(cp, batch)
	m.mu.Lock()
	m.batches = append(m.batches, cp)
	m.mu.Unlock()
	return nil
}

// Batches returns a copy of the exported batches.
func (m *MemExporter) Batches() [][]*Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]*Span, len(m.batches))
	copy(out, m.batches)
	return out
}

// Spans returns every exported root span in export order.
func (m *MemExporter) Spans() []*Span {
	var out []*Span
	for _, b := range m.Batches() {
		out = append(out, b...)
	}
	return out
}

// FileExporter writes OTLP-style JSON, one ExportTraceServiceRequest
// object per batch per line (the OTLP file-exporter convention), with
// span trees flattened to parentSpanId links. Its target is offline
// inspection and replay into OTLP tooling, not a live OTLP endpoint.
type FileExporter struct {
	service string
	mu      sync.Mutex
	w       io.Writer // guarded by mu
	c       io.Closer // guarded by mu; nil when wrapping a plain writer
}

// NewFileExporter appends to path (creating it if needed).
func NewFileExporter(path, service string) (*FileExporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace export: %w", err)
	}
	return &FileExporter{service: service, w: f, c: f}, nil
}

// NewWriterExporter wraps an existing writer (tests, stdout).
func NewWriterExporter(w io.Writer, service string) *FileExporter {
	return &FileExporter{service: service, w: w}
}

// otlp wire shapes (the subset the file format needs).
type otlpKV struct {
	Key   string `json:"key"`
	Value struct {
		StringValue string `json:"stringValue"`
	} `json:"value"`
}

func otlpAttr(k, v string) otlpKV {
	a := otlpKV{Key: k}
	a.Value.StringValue = v
	return a
}

type otlpEvent struct {
	TimeUnixNano string   `json:"timeUnixNano"`
	Name         string   `json:"name"`
	Attributes   []otlpKV `json:"attributes,omitempty"`
}

type otlpSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []otlpKV    `json:"attributes,omitempty"`
	Events            []otlpEvent `json:"events,omitempty"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func unixNano(sp *Span, end bool) string {
	t := sp.Start()
	if end {
		t = t.Add(sp.Duration())
	}
	return strconv.FormatInt(t.UnixNano(), 10)
}

func flattenOTLP(root *Span, out *[]otlpSpan) {
	root.Walk(func(sp *Span) {
		o := otlpSpan{
			TraceID:           sp.TraceID().String(),
			SpanID:            sp.SpanID().String(),
			ParentSpanID:      sp.ParentID().String(),
			Name:              sp.Name(),
			StartTimeUnixNano: unixNano(sp, false),
			EndTimeUnixNano:   unixNano(sp, true),
		}
		for _, a := range sp.Attrs() {
			o.Attributes = append(o.Attributes, otlpAttr(a.Key, a.Value))
		}
		for _, ev := range sp.Events() {
			oe := otlpEvent{
				TimeUnixNano: strconv.FormatInt(ev.Time.UnixNano(), 10),
				Name:         ev.Name,
			}
			for _, a := range ev.Attrs {
				oe.Attributes = append(oe.Attributes, otlpAttr(a.Key, a.Value))
			}
			o.Events = append(o.Events, oe)
		}
		*out = append(*out, o)
	})
}

// ExportBatch implements Exporter.
func (f *FileExporter) ExportBatch(batch []*Span) error {
	var spans []otlpSpan
	for _, root := range batch {
		flattenOTLP(root, &spans)
	}
	req := otlpRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{otlpAttr("service.name", f.service)}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "nimble/obs"},
			Spans: spans,
		}},
	}}}

	line, err := json.Marshal(req)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	f.mu.Lock()
	defer f.mu.Unlock()
	_, err = f.w.Write(line)
	return err
}

// Close closes the underlying file (no-op for writer-backed exporters).
func (f *FileExporter) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.c == nil {
		return nil
	}
	err := f.c.Close()
	f.c = nil
	return err
}
