// TraceStore: retention and sampling for completed traces. The store
// replaces PR 1's last-N Tracer with a real sampling pipeline: a head
// decision (deterministic hash of the TraceID against a sample rate)
// plus tail-based keeps that always retain the traces worth keeping —
// errored traces and traces slower than a threshold — regardless of the
// head coin flip. Kept traces land in a bounded ring searchable from
// /debug/traces and stream to an optional batching exporter.
package obs

import (
	"strings"
	"sync"
	"time"
)

// DefaultTraceBuffer is the trace retention used when no limit is given.
const DefaultTraceBuffer = 16

// StoreConfig configures a TraceStore.
type StoreConfig struct {
	// Limit bounds the ring of kept traces (< 1 uses DefaultTraceBuffer).
	Limit int
	// SampleRate is the head-sampling rate: the fraction of traces kept
	// regardless of outcome. 0 means unset and defaults to 1 (keep all);
	// negative means tail-only (keep nothing on the head decision, only
	// errored/slow traces survive); values above 1 clamp to 1.
	SampleRate float64
	// SlowThreshold tail-keeps any trace at least this slow (0 disables
	// the slow keep).
	SlowThreshold time.Duration
	// Seed seeds the id generator. 0 draws a random seed; a fixed seed
	// replays the same id sequence, making the head-sampled set
	// deterministic for chaos runs.
	Seed int64
	// Metrics receives nimble_traces_kept_total{reason} and
	// nimble_traces_dropped_total (nil records nowhere).
	Metrics *Registry
}

// TraceStore retains completed traces for the management surface
// (/debug/traces) and feeds the exporter pipeline. Safe for concurrent
// use; nil-receiver safe so tracing stays optional.
type TraceStore struct {
	limit int           // immutable after NewTraceStore
	rate  float64       // immutable: effective head-sampling rate [0,1]
	slow  time.Duration // immutable: tail slow-keep threshold
	gen   *IDGen        // immutable: id generator for NewRoot

	keptHead *Counter // kept by the head coin flip alone
	keptErr  *Counter // tail-kept: the trace errored
	keptSlow *Counter // tail-kept: the trace was slow
	dropped  *Counter // completed but not kept

	mu     sync.Mutex
	traces []*Span     // guarded by mu
	queue  *BatchQueue // guarded by mu; nil until SetExporter
}

// NewTraceStore creates a store from cfg.
func NewTraceStore(cfg StoreConfig) *TraceStore {
	limit := cfg.Limit
	if limit < 1 {
		limit = DefaultTraceBuffer
	}
	rate := cfg.SampleRate
	switch {
	case rate == 0:
		rate = 1
	case rate < 0:
		rate = 0
	case rate > 1:
		rate = 1
	}
	// Without a registry the counters still count (Kept/Dropped work),
	// they just are not exposed on /metrics.
	counter := func(name string, labels ...string) *Counter {
		if cfg.Metrics == nil {
			return &Counter{}
		}
		return cfg.Metrics.Counter(name, labels...)
	}
	return &TraceStore{
		limit:    limit,
		rate:     rate,
		slow:     cfg.SlowThreshold,
		gen:      NewIDGen(cfg.Seed),
		keptHead: counter("nimble_traces_kept_total", "reason", "head"),
		keptErr:  counter("nimble_traces_kept_total", "reason", "error"),
		keptSlow: counter("nimble_traces_kept_total", "reason", "slow"),
		dropped:  counter("nimble_traces_dropped_total"),
	}
}

// NewRoot starts a root span with ids drawn from the store's (possibly
// seeded) generator, joining tc when non-zero. On a nil store it
// degrades to NewRootSpan with the package default generator.
func (t *TraceStore) NewRoot(name string, tc TraceContext) *Span {
	if t == nil {
		return NewRootSpan(name, tc)
	}
	return newRootSpan(name, tc, t.gen)
}

// HeadSampled reports the head-sampling decision for a trace id: a
// deterministic hash of the id against the configured rate, so every
// tier agrees without coordination.
func (t *TraceStore) HeadSampled(id TraceID) bool {
	if t == nil {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	return sampleHash(id) < t.rate
}

// SetExporter routes kept traces into q (nil detaches). The store does
// not own the queue's lifecycle; callers Close it on shutdown.
func (t *TraceStore) SetExporter(q *BatchQueue) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.queue = q
	t.mu.Unlock()
}

// errored reports whether any span in the tree recorded an error attr.
func errored(root *Span) bool {
	found := false
	root.Walk(func(sp *Span) {
		if _, ok := sp.Attr("error"); ok {
			found = true
		}
	})
	return found
}

// Record applies the sampling policy to a finished root span: tail keeps
// (error, then slow) win over the head decision; anything kept enters
// the ring and the exporter queue, anything else counts as dropped.
func (t *TraceStore) Record(root *Span) {
	if t == nil || root == nil {
		return
	}
	switch {
	case errored(root):
		t.keptErr.Inc()
	case t.slow > 0 && root.Duration() >= t.slow:
		t.keptSlow.Inc()
	case t.HeadSampled(root.TraceID()):
		t.keptHead.Inc()
	default:
		t.dropped.Inc()
		return
	}
	t.mu.Lock()
	t.traces = append(t.traces, root)
	if n := len(t.traces) - t.limit; n > 0 {
		t.traces = append([]*Span(nil), t.traces[n:]...)
	}
	q := t.queue
	t.mu.Unlock()
	q.Enqueue(root)
}

// Query filters a trace search.
type Query struct {
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// ErrOnly keeps only traces with an error attr somewhere in the tree.
	ErrOnly bool
	// Source keeps only traces that fetched the named source (a span
	// named "fetch <source>" or carrying a source attr).
	Source string
	// Limit bounds the result count (< 1 means all retained).
	Limit int
}

// touchesSource reports whether the trace fetched the named source.
func touchesSource(root *Span, source string) bool {
	found := false
	root.Walk(func(sp *Span) {
		if sp.Name() == "fetch "+source {
			found = true
		}
		if v, ok := sp.Attr("source"); ok && v == source {
			found = true
		}
	})
	return found
}

// Search returns the kept traces matching q, most recent first.
func (t *TraceStore) Search(q Query) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	snap := make([]*Span, len(t.traces))
	copy(snap, t.traces)
	t.mu.Unlock()
	var out []*Span
	for i := len(snap) - 1; i >= 0; i-- {
		root := snap[i]
		if q.MinDuration > 0 && root.Duration() < q.MinDuration {
			continue
		}
		if q.ErrOnly && !errored(root) {
			continue
		}
		if q.Source != "" && !touchesSource(root, strings.TrimSpace(q.Source)) {
			continue
		}
		out = append(out, root)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Find returns the kept trace with the given id, or nil.
func (t *TraceStore) Find(id TraceID) *Span {
	if t == nil || id.IsZero() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.traces) - 1; i >= 0; i-- {
		if t.traces[i].TraceID() == id {
			return t.traces[i]
		}
	}
	return nil
}

// Last returns up to n kept traces, most recent first (n < 1 means all
// retained) — the PR 1 Tracer surface, preserved for /debug/trace/last.
func (t *TraceStore) Last(n int) []*Span {
	return t.Search(Query{Limit: n})
}

// Len reports the number of kept traces currently retained.
func (t *TraceStore) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Kept reports how many traces have been kept, by reason, since start.
func (t *TraceStore) Kept() (head, err, slow int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.keptHead.Value(), t.keptErr.Value(), t.keptSlow.Value()
}

// Dropped reports how many completed traces the sampler discarded.
func (t *TraceStore) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Value()
}
