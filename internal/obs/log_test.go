package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerCorrelatesWithSpan(t *testing.T) {
	var out strings.Builder
	log := NewLogger(&out, slog.LevelInfo)

	root := NewRootSpan("request", TraceContext{})
	ctx := ContextWithSpan(context.Background(), root)
	log.InfoContext(ctx, "query served", "rows", 3)
	log.InfoContext(context.Background(), "no trace here")
	root.Finish()

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("invalid JSON log line: %v", err)
	}
	if rec["trace_id"] != root.TraceID().String() {
		t.Errorf("trace_id = %v, want %s", rec["trace_id"], root.TraceID())
	}
	if rec["span_id"] != root.SpanID().String() {
		t.Errorf("span_id = %v, want %s", rec["span_id"], root.SpanID())
	}
	if rec["msg"] != "query served" || rec["rows"] != float64(3) {
		t.Errorf("record = %v", rec)
	}
	// The untraced line must not carry identity fields.
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("untraced line has trace_id: %s", lines[1])
	}
}

func TestLoggerChildSpanIdentity(t *testing.T) {
	var out strings.Builder
	log := NewLogger(&out, slog.LevelInfo).With("tier", "cluster").WithGroup("g")

	root := NewRootSpan("request", TraceContext{})
	ctx := ContextWithSpan(context.Background(), root)
	ctx, child := StartSpan(ctx, "admission")
	log.InfoContext(ctx, "granted")
	child.Finish()
	root.Finish()

	line := out.String()
	if !strings.Contains(line, child.SpanID().String()) {
		t.Errorf("log line should carry the innermost span id: %s", line)
	}
	if !strings.Contains(line, root.TraceID().String()) {
		t.Errorf("log line should carry the trace id: %s", line)
	}
	if !strings.Contains(line, `"tier":"cluster"`) {
		t.Errorf("WithAttrs lost: %s", line)
	}
}

func TestNopLogger(t *testing.T) {
	log := NopLogger()
	if log == nil {
		t.Fatal("NopLogger returned nil")
	}
	// Must be callable without output or panic, including wrapped forms.
	log.Info("dropped")
	log.With("k", "v").WithGroup("g").WarnContext(context.Background(), "dropped")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger should report disabled")
	}
}
