package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	// Force a GC so pause histograms have content.
	runtime.GC()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"nimble_runtime_goroutines",
		"nimble_runtime_heap_bytes",
		`nimble_runtime_gc_pause_seconds{quantile="0.5"}`,
		`nimble_runtime_gc_pause_seconds{quantile="0.99"}`,
		`nimble_runtime_sched_latency_seconds{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("runtime gauges leaked a non-finite value:\n%s", out)
	}
}

func TestRuntimeSamplerValues(t *testing.T) {
	s := newRuntimeSampler()
	if g := s.scalar(rmGoroutines); g < 1 {
		t.Errorf("goroutines = %v", g)
	}
	if h := s.scalar(rmHeapBytes); h <= 0 {
		t.Errorf("heap bytes = %v", h)
	}
	if q := s.quantile(rmSchedLat, 0.5); q < 0 {
		t.Errorf("sched latency p50 = %v", q)
	}
}

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("nimble_query_seconds")
	h.ObserveExemplar(0.004, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.004) // no exemplar: must not clear the stored one
	h.ObserveExemplar(0.5, "00f067aa0ba902b7aabbccdd00112233")

	ids := h.ExemplarTraceIDs()
	found := 0
	for _, id := range ids {
		if id != "" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("stored exemplars = %d (%v)", found, ids)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"}`) {
		t.Errorf("bucket exemplar missing:\n%s", out)
	}
	if !strings.Contains(out, `# {trace_id="00f067aa0ba902b7aabbccdd00112233"}`) {
		t.Errorf("second exemplar missing:\n%s", out)
	}
}
