// Runtime telemetry: Go runtime health exported as nimble_runtime_*
// gauges (goroutine count, heap bytes, GC pause and scheduler latency
// quantiles). The values come from the runtime/metrics package and are
// sampled lazily at exposition time, with a short cache so one /metrics
// scrape reads the runtime once rather than once per gauge.
package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// The runtime/metrics series the collector reads.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// runtimeSampler batches runtime/metrics reads behind a freshness cache.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample // guarded by mu
	readAt  time.Time        // guarded by mu; zero until first read
}

func newRuntimeSampler() *runtimeSampler {
	names := []string{rmGoroutines, rmHeapBytes, rmGCPauses, rmSchedLat}
	s := &runtimeSampler{samples: make([]metrics.Sample, len(names))}
	for i, n := range names {
		s.samples[i].Name = n
	}
	return s
}

// get returns the (possibly cached) sample for name.
func (s *runtimeSampler) get(name string) metrics.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.readAt) > 100*time.Millisecond {
		metrics.Read(s.samples)
		s.readAt = time.Now()
	}
	for i := range s.samples {
		if s.samples[i].Name == name {
			return s.samples[i].Value
		}
	}
	return metrics.Value{}
}

// scalar renders a uint64 or float64 sample as float64 (0 when the
// runtime does not publish the series).
func (s *runtimeSampler) scalar(name string) float64 {
	v := s.get(name)
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	default:
		return 0
	}
}

// quantile estimates q from a runtime Float64Histogram sample.
func (s *runtimeSampler) quantile(name string, q float64) float64 {
	v := s.get(name)
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets has len(Counts)+1 boundaries; the first/last can
			// be ±Inf, so clamp to the nearest finite edge.
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return lo
			}
			if math.IsInf(lo, -1) {
				return hi
			}
			return hi
		}
	}
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if !math.IsInf(h.Buckets[i], 0) {
			return h.Buckets[i]
		}
	}
	return 0
}

// RegisterRuntimeMetrics wires the runtime telemetry gauges into reg:
// nimble_runtime_goroutines, nimble_runtime_heap_bytes, and
// p50/p99 quantile gauges for GC pause and scheduler latency.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	s := newRuntimeSampler()
	reg.GaugeFunc("nimble_runtime_goroutines", func() float64 { return s.scalar(rmGoroutines) })
	reg.GaugeFunc("nimble_runtime_heap_bytes", func() float64 { return s.scalar(rmHeapBytes) })
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}} {
		q := q
		reg.GaugeFunc("nimble_runtime_gc_pause_seconds",
			func() float64 { return s.quantile(rmGCPauses, q.v) }, "quantile", q.label)
		reg.GaugeFunc("nimble_runtime_sched_latency_seconds",
			func() float64 { return s.quantile(rmSchedLat, q.v) }, "quantile", q.label)
	}
}
