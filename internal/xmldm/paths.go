package xmldm

// Path navigation implements the "navigation-style access" the paper's
// conclusion (§4) lists as a required XML feature: "navigating the XML
// document structure up, down and sideways", plus recursion via the
// descendant axis and path closure.

// Axis selects the direction of one navigation step.
type Axis int

// The supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisAttribute
)

// String returns the axis name as written in path expressions.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisSelf:
		return "self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisAttribute:
		return "attribute"
	default:
		return "axis(?)"
	}
}

// Step is one navigation step: an axis and a name test ("*" matches any
// element name).
type Step struct {
	Axis Axis
	Name string
}

// Path is a sequence of steps evaluated left to right.
type Path []Step

// ChildPath builds the common child::a/child::b/... path.
func ChildPath(names ...string) Path {
	p := make(Path, len(names))
	for i, n := range names {
		p[i] = Step{Axis: AxisChild, Name: n}
	}
	return p
}

// Eval evaluates the path from a start node and returns the selected
// values in document order without duplicates. Attribute steps yield
// String atoms; all other steps yield *Node values.
func (p Path) Eval(start *Node) []Value {
	if start == nil {
		return nil
	}
	current := []*Node{start}
	for i, step := range p {
		if step.Axis == AxisAttribute {
			// An attribute step must be last; anything after it selects
			// nothing because attributes have no structure below them.
			if i != len(p)-1 {
				return nil
			}
			var out []Value
			for _, n := range current {
				for _, a := range n.Attrs {
					if step.Name == "*" || a.Name == step.Name {
						out = append(out, String(a.Value))
					}
				}
			}
			return out
		}
		current = evalStep(current, step)
		if len(current) == 0 {
			return nil
		}
	}
	out := make([]Value, len(current))
	for i, n := range current {
		out[i] = n
	}
	return out
}

func evalStep(in []*Node, step Step) []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	add := func(n *Node) {
		if n != nil && !seen[n] && nameMatches(step.Name, n.Name) {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range in {
		switch step.Axis {
		case AxisChild:
			for _, c := range n.ChildElements() {
				add(c)
			}
		case AxisDescendant:
			for _, c := range n.ChildElements() {
				c.Walk(func(d *Node) bool { add(d); return true })
			}
		case AxisDescendantOrSelf:
			n.Walk(func(d *Node) bool { add(d); return true })
		case AxisSelf:
			add(n)
		case AxisParent:
			add(n.Parent)
		case AxisAncestor:
			for a := n.Parent; a != nil; a = a.Parent {
				add(a)
			}
		case AxisFollowingSibling:
			for _, s := range siblingsAfter(n) {
				add(s)
			}
		case AxisPrecedingSibling:
			for _, s := range siblingsBefore(n) {
				add(s)
			}
		}
	}
	// Keep document order when ordinals are assigned; Walk order already
	// is document order per input node, but multiple input nodes can
	// interleave.
	sortByOrd(out)
	return out
}

func nameMatches(test, name string) bool { return test == "*" || test == name }

func siblingsAfter(n *Node) []*Node {
	if n.Parent == nil {
		return nil
	}
	sibs := n.Parent.ChildElements()
	for i, s := range sibs {
		if s == n {
			return sibs[i+1:]
		}
	}
	return nil
}

func siblingsBefore(n *Node) []*Node {
	if n.Parent == nil {
		return nil
	}
	sibs := n.Parent.ChildElements()
	for i, s := range sibs {
		if s == n {
			return sibs[:i]
		}
	}
	return nil
}

func sortByOrd(ns []*Node) {
	// Insertion sort: step outputs are nearly sorted already and inputs
	// are small relative to full documents.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Ord < ns[j-1].Ord; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
