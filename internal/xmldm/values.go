// Package xmldm implements the Nimble data model: a hybrid of XML's
// ordered, semi-structured element trees and the typed tuples and
// collections of relational and hierarchical data.
//
// The paper (§3.1) argues that a data integration product needs a model
// that "can certainly accommodate XML, but would let us deal efficiently
// with the types of data that we expected to see from users most
// frequently (e.g., relational, hierarchical)". Accordingly the model has
// four shapes:
//
//   - atoms: Null, String, Int, Float, Bool, Date — typed scalar values,
//     so relational columns keep their types instead of degrading to text;
//   - Tuple: an ordered sequence of named fields, the natural image of a
//     relational row (and of a variable-binding set inside the algebra);
//   - Collection: an ordered sequence of values, the image of a relation
//     or of repeated XML content;
//   - Node: an XML element with attributes and ordered mixed children,
//     carrying a document-order ordinal so that "XML documents are
//     intrinsically ordered" (§4) is respected by sorts and comparisons.
//
// All values are immutable after construction except Nodes during tree
// building (see Builder in build.go).
package xmldm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the shapes a Value can take.
type Kind int

// The kinds, ordered so that atoms sort before composites; Compare uses
// this order for cross-kind comparisons.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
	KindTuple
	KindCollection
	KindNode
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindTuple:
		return "tuple"
	case KindCollection:
		return "collection"
	case KindNode:
		return "node"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is the single interface implemented by every shape in the model.
type Value interface {
	// Kind reports the shape of the value.
	Kind() Kind
	// String renders the value in a human-readable, lossless-for-atoms
	// form. Nodes render as XML.
	String() string
}

// Null is the absent value (SQL NULL, missing XML content).
type Null struct{}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

func (Null) String() string { return "null" }

// String is a text atom.
type String string

// Kind implements Value.
func (String) Kind() Kind { return KindString }

func (s String) String() string { return string(s) }

// Int is a 64-bit integer atom.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a 64-bit floating-point atom.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

func (f Float) String() string { return strconv.FormatFloat(float64(f), 'g', -1, 64) }

// Bool is a boolean atom.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Date is a calendar timestamp atom (UTC, second precision is enough for
// the integration scenarios the paper describes).
type Date time.Time

// Kind implements Value.
func (Date) Kind() Kind { return KindDate }

func (d Date) String() string { return time.Time(d).UTC().Format(time.RFC3339) }

// Time returns the underlying time.Time.
func (d Date) Time() time.Time { return time.Time(d) }

// DateOf builds a Date from year, month, day.
func DateOf(y int, m time.Month, day int) Date {
	return Date(time.Date(y, m, day, 0, 0, 0, 0, time.UTC))
}

// Field is one named component of a Tuple.
type Field struct {
	Name  string
	Value Value
}

// Tuple is an ordered list of named fields: the image of a relational row
// and the unit of data flowing between algebra operators.
type Tuple struct {
	fields []Field
}

// NewTuple builds a tuple from fields. Field order is preserved; names
// need not be unique, but Get returns the first match.
func NewTuple(fields ...Field) *Tuple {
	return &Tuple{fields: fields}
}

// Kind implements Value.
func (*Tuple) Kind() Kind { return KindTuple }

// Len reports the number of fields.
func (t *Tuple) Len() int { return len(t.fields) }

// Field returns the i-th field.
func (t *Tuple) Field(i int) Field { return t.fields[i] }

// Fields returns the underlying field slice; callers must not modify it.
func (t *Tuple) Fields() []Field { return t.fields }

// Get returns the value of the first field with the given name, or
// (nil, false) if absent.
func (t *Tuple) Get(name string) (Value, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// MustGet returns the named field's value and panics if absent; it is for
// internal invariant checks, not user input.
func (t *Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("xmldm: tuple has no field %q", name))
	}
	return v
}

// Names returns the field names in order.
func (t *Tuple) Names() []string {
	ns := make([]string, len(t.fields))
	for i, f := range t.fields {
		ns[i] = f.Name
	}
	return ns
}

// With returns a new tuple with the named field appended (or replaced if
// a field of that name already exists).
func (t *Tuple) With(name string, v Value) *Tuple {
	fields := make([]Field, len(t.fields), len(t.fields)+1)
	copy(fields, t.fields)
	for i := range fields {
		if fields[i].Name == name {
			fields[i].Value = v
			return &Tuple{fields: fields}
		}
	}
	return &Tuple{fields: append(fields, Field{Name: name, Value: v})}
}

// Project returns a new tuple containing only the named fields, in the
// given order; missing names become Null fields.
func (t *Tuple) Project(names ...string) *Tuple {
	fields := make([]Field, len(names))
	for i, n := range names {
		v, ok := t.Get(n)
		if !ok {
			v = Null{}
		}
		fields[i] = Field{Name: n, Value: v}
	}
	return &Tuple{fields: fields}
}

// Concat returns a new tuple with u's fields appended after t's.
func (t *Tuple) Concat(u *Tuple) *Tuple {
	fields := make([]Field, 0, len(t.fields)+len(u.fields))
	fields = append(fields, t.fields...)
	fields = append(fields, u.fields...)
	return &Tuple{fields: fields}
}

func (t *Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, f := range t.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
		sb.WriteString(": ")
		if f.Value == nil {
			sb.WriteString("nil")
		} else {
			sb.WriteString(f.Value.String())
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// Collection is an ordered sequence of values: the image of a relation,
// of a query result, and of repeated XML content.
type Collection struct {
	items []Value
}

// NewCollection builds a collection over items; the slice is retained.
func NewCollection(items ...Value) *Collection {
	return &Collection{items: items}
}

// Kind implements Value.
func (*Collection) Kind() Kind { return KindCollection }

// Len reports the number of items.
func (c *Collection) Len() int { return len(c.items) }

// Item returns the i-th item.
func (c *Collection) Item(i int) Value { return c.items[i] }

// Items returns the underlying slice; callers must not modify it.
func (c *Collection) Items() []Value { return c.items }

// Append returns a new collection with v added; the receiver is unchanged.
func (c *Collection) Append(v Value) *Collection {
	items := make([]Value, len(c.items), len(c.items)+1)
	copy(items, c.items)
	return &Collection{items: append(items, v)}
}

func (c *Collection) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range c.items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Attr is one attribute of a Node.
type Attr struct {
	Name  string
	Value string
}

// Node is an XML element: a name, attributes, and ordered mixed children
// (each child is a Value — typically another *Node or a text atom). Ord
// is the element's position in document order, assigned by the Builder or
// parser; Parent supports the upward navigation §4 calls for.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []Value
	Parent   *Node
	Ord      int
}

// Kind implements Value.
func (*Node) Kind() Kind { return KindNode }

// Attr returns the named attribute's value and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the children that are elements, in order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if e, ok := c.(*Node); ok {
			out = append(out, e)
		}
	}
	return out
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if e, ok := c.(*Node); ok && e.Name == name {
			return e
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name, in order.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if e, ok := c.(*Node); ok && e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Text returns the concatenated text content of the node's subtree — the
// usual XML "string value" of an element.
func (n *Node) Text() string {
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch v := c.(type) {
		case *Node:
			v.appendText(sb)
		case String:
			sb.WriteString(string(v))
		default:
			if v != nil {
				sb.WriteString(v.String())
			}
		}
	}
}

// String renders the node as compact XML.
func (n *Node) String() string {
	var sb strings.Builder
	n.writeXML(&sb)
	return sb.String()
}

func (n *Node) writeXML(sb *strings.Builder) {
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeAttr(a.Value))
		sb.WriteByte('"')
	}
	if len(n.Children) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range n.Children {
		switch v := c.(type) {
		case *Node:
			v.writeXML(sb)
		case String:
			sb.WriteString(escapeText(string(v)))
		default:
			if v != nil {
				sb.WriteString(escapeText(v.String()))
			}
		}
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Walk visits n and every descendant element in document order, stopping
// early if fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if e, ok := c.(*Node); ok {
			if !e.Walk(fn) {
				return false
			}
		}
	}
	return true
}

// CountElements returns the number of elements in n's subtree, n included.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// ToFloat coerces an atom to float64 for arithmetic; ok is false for
// values with no numeric interpretation.
func ToFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	case String:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(x)), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	case *Node:
		f, err := strconv.ParseFloat(strings.TrimSpace(x.Text()), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// ToInt coerces an atom to int64; ok is false for values with no integral
// interpretation (floats truncate).
func ToInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case Int:
		return int64(x), true
	case Float:
		return int64(x), true
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	case String:
		i, err := strconv.ParseInt(strings.TrimSpace(string(x)), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(string(x)), 64)
			if ferr != nil {
				return 0, false
			}
			return int64(f), true
		}
		return i, true
	case *Node:
		return ToInt(String(x.Text()))
	default:
		return 0, false
	}
}

// Stringify renders a value as the text a user would expect inside
// constructed XML content: atoms by value, nodes by their text content,
// collections by concatenation.
func Stringify(v Value) string {
	switch x := v.(type) {
	case nil, Null:
		return ""
	case String:
		return string(x)
	case *Node:
		return x.Text()
	case *Collection:
		var sb strings.Builder
		for _, it := range x.Items() {
			sb.WriteString(Stringify(it))
		}
		return sb.String()
	default:
		return v.String()
	}
}

// Truthy reports whether a value counts as true in a boolean context:
// non-empty strings/collections, non-zero numbers, true, any node.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil, Null:
		return false
	case Bool:
		return bool(x)
	case Int:
		return x != 0
	case Float:
		return x != 0 && !math.IsNaN(float64(x))
	case String:
		return x != ""
	case *Collection:
		return x.Len() > 0
	case *Tuple:
		return x.Len() > 0
	default:
		return true
	}
}

// SortValues sorts a slice of values in place by Compare order.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
