package xmldm

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindDate: "date", KindTuple: "tuple",
		KindCollection: "collection", KindNode: "node",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestAtomKindsAndStrings(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null{}, KindNull, "null"},
		{String("hi"), KindString, "hi"},
		{Int(-42), KindInt, "-42"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{DateOf(2001, time.April, 2), KindDate, "2001-04-02T00:00:00Z"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(Field{"name", String("Ada")}, Field{"age", Int(36)})
	if tp.Len() != 2 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if v, ok := tp.Get("age"); !ok || !Equal(v, Int(36)) {
		t.Errorf("Get(age) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Error("Get(missing) should report absent")
	}
	if got := tp.MustGet("name"); !Equal(got, String("Ada")) {
		t.Errorf("MustGet = %v", got)
	}
	if !reflect.DeepEqual(tp.Names(), []string{"name", "age"}) {
		t.Errorf("Names = %v", tp.Names())
	}
	if got := tp.String(); got != "{name: Ada, age: 36}" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing field should panic")
		}
	}()
	NewTuple().MustGet("x")
}

func TestTupleWithReplacesAndAppends(t *testing.T) {
	tp := NewTuple(Field{"a", Int(1)})
	tp2 := tp.With("a", Int(2)).With("b", Int(3))
	if v, _ := tp.Get("a"); !Equal(v, Int(1)) {
		t.Error("With must not mutate the receiver")
	}
	if v, _ := tp2.Get("a"); !Equal(v, Int(2)) {
		t.Errorf("replaced a = %v", v)
	}
	if v, _ := tp2.Get("b"); !Equal(v, Int(3)) {
		t.Errorf("appended b = %v", v)
	}
}

func TestTupleProjectAndConcat(t *testing.T) {
	tp := NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)})
	p := tp.Project("b", "z")
	if !reflect.DeepEqual(p.Names(), []string{"b", "z"}) {
		t.Errorf("Project names = %v", p.Names())
	}
	if v, _ := p.Get("z"); v.Kind() != KindNull {
		t.Errorf("missing projected field should be Null, got %v", v)
	}
	c := tp.Concat(NewTuple(Field{"c", Int(3)}))
	if c.Len() != 3 {
		t.Errorf("Concat len = %d", c.Len())
	}
}

func TestCollectionBasics(t *testing.T) {
	c := NewCollection(Int(1), Int(2))
	c2 := c.Append(Int(3))
	if c.Len() != 2 || c2.Len() != 3 {
		t.Errorf("lens = %d, %d", c.Len(), c2.Len())
	}
	if !Equal(c2.Item(2), Int(3)) {
		t.Errorf("Item(2) = %v", c2.Item(2))
	}
	if got := c.String(); got != "[1, 2]" {
		t.Errorf("String = %q", got)
	}
}

func TestNodeBasics(t *testing.T) {
	b := NewBuilder()
	root := b.Elem("customer",
		Attr{"id", "c1"},
		b.Elem("name", "Ada Lovelace"),
		b.Elem("order", b.Elem("total", 120)),
		b.Elem("order", b.Elem("total", 80)),
	)
	if id, ok := root.Attr("id"); !ok || id != "c1" {
		t.Errorf("Attr(id) = %q, %v", id, ok)
	}
	if _, ok := root.Attr("nope"); ok {
		t.Error("Attr(nope) should be absent")
	}
	if root.Child("name").Text() != "Ada Lovelace" {
		t.Errorf("name text = %q", root.Child("name").Text())
	}
	if got := len(root.ChildrenNamed("order")); got != 2 {
		t.Errorf("orders = %d", got)
	}
	if root.Child("missing") != nil {
		t.Error("Child(missing) should be nil")
	}
	if n := root.CountElements(); n != 6 {
		t.Errorf("CountElements = %d, want 6", n)
	}
	xml := root.String()
	if !strings.HasPrefix(xml, `<customer id="c1">`) || !strings.Contains(xml, "<total>120</total>") {
		t.Errorf("XML = %s", xml)
	}
}

func TestNodeStringEscapes(t *testing.T) {
	b := NewBuilder()
	n := b.Elem("p", Attr{"q", `a"<b`}, "x<y&z")
	s := n.String()
	if !strings.Contains(s, "&quot;") || !strings.Contains(s, "&lt;y&amp;z") {
		t.Errorf("escaping failed: %s", s)
	}
}

func TestEmptyNodeSelfCloses(t *testing.T) {
	n := &Node{Name: "br"}
	if n.String() != "<br/>" {
		t.Errorf("got %q", n.String())
	}
}

func TestWalkEarlyStop(t *testing.T) {
	b := NewBuilder()
	root := b.Elem("a", b.Elem("b"), b.Elem("c"))
	visited := 0
	root.Walk(func(n *Node) bool {
		visited++
		return n.Name != "b"
	})
	if visited != 2 {
		t.Errorf("visited = %d, want 2 (a then b, stop)", visited)
	}
}

func TestCoercions(t *testing.T) {
	b := NewBuilder()
	priceNode := b.Elem("price", "19.5")
	cases := []struct {
		v   Value
		f   float64
		fok bool
		i   int64
		iok bool
	}{
		{Int(7), 7, true, 7, true},
		{Float(2.9), 2.9, true, 2, true},
		{Bool(true), 1, true, 1, true},
		{Bool(false), 0, true, 0, true},
		{String(" 42 "), 42, true, 42, true},
		{String("4.9"), 4.9, true, 4, true},
		{String("abc"), 0, false, 0, false},
		{Null{}, 0, false, 0, false},
		{priceNode, 19.5, true, 19, true},
	}
	for _, c := range cases {
		f, ok := ToFloat(c.v)
		if ok != c.fok || (ok && f != c.f) {
			t.Errorf("ToFloat(%v) = %v, %v", c.v, f, ok)
		}
		i, ok := ToInt(c.v)
		if ok != c.iok || (ok && i != c.i) {
			t.Errorf("ToInt(%v) = %v, %v", c.v, i, ok)
		}
	}
}

func TestStringify(t *testing.T) {
	b := NewBuilder()
	n := b.Elem("x", "ab", b.Elem("y", "cd"))
	cases := []struct {
		v    Value
		want string
	}{
		{nil, ""},
		{Null{}, ""},
		{String("s"), "s"},
		{Int(3), "3"},
		{n, "abcd"},
		{NewCollection(String("a"), Int(1)), "a1"},
	}
	for _, c := range cases {
		if got := Stringify(c.v); got != c.want {
			t.Errorf("Stringify(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Float(-0.5), String("x"), NewCollection(Int(1)), NewTuple(Field{"a", Int(1)}), &Node{Name: "e"}}
	falsy := []Value{nil, Null{}, Bool(false), Int(0), Float(0), String(""), NewCollection(), NewTuple()}
	for _, v := range truthy {
		if !Truthy(v) {
			t.Errorf("Truthy(%v) = false", v)
		}
	}
	for _, v := range falsy {
		if Truthy(v) {
			t.Errorf("Truthy(%v) = true", v)
		}
	}
}

func TestCompareAtoms(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Float(2.5), 1},
		{Float(1.5), Int(2), -1},
		{Bool(false), Int(1), -1},
		{Bool(true), Int(1), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{DateOf(2000, 1, 1), DateOf(2001, 1, 1), -1},
		{Null{}, Null{}, 0},
		{Null{}, Int(0), -1}, // nulls sort first by kind order
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if sign(Compare(c.b, c.a)) != -c.want {
			t.Errorf("Compare(%v, %v) not antisymmetric", c.b, c.a)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestCompareNodeWithAtom(t *testing.T) {
	b := NewBuilder()
	price := b.Elem("price", "100")
	if Compare(price, Int(100)) != 0 {
		t.Error("node <price>100</price> should equal Int(100)")
	}
	if Compare(price, Int(200)) >= 0 {
		t.Error("node 100 should be < 200")
	}
	name := b.Elem("name", "Ada")
	if Compare(name, String("Ada")) != 0 {
		t.Error("node text should equal string")
	}
}

func TestCompareNodesByValueNotPosition(t *testing.T) {
	b := NewBuilder()
	root := b.Elem("r", b.Elem("x", "zzz"), b.Elem("y", "aaa"))
	kids := root.ChildElements()
	if Compare(kids[0], kids[1]) <= 0 {
		t.Error("Compare is value-based: text zzz > aaa regardless of position")
	}
	if !DocOrderLess(kids[0], kids[1]) || DocOrderLess(kids[1], kids[0]) {
		t.Error("DocOrderLess should follow document position")
	}
}

func TestBuilderAssignsDocumentOrder(t *testing.T) {
	b := NewBuilder()
	root := b.Elem("r", b.Elem("a", b.Elem("c")), b.Elem("b"))
	// Document order: r=1, a=2, c=3, b=4, even though arguments were
	// constructed bottom-up.
	if root.Ord != 1 {
		t.Errorf("root Ord = %d", root.Ord)
	}
	a := root.Child("a")
	if a.Ord != 2 || a.Child("c").Ord != 3 || root.Child("b").Ord != 4 {
		t.Errorf("ordinals = a:%d c:%d b:%d", a.Ord, a.Child("c").Ord, root.Child("b").Ord)
	}
	if a.Parent != root || a.Child("c").Parent != a {
		t.Error("parent pointers wrong")
	}
}

func TestCompareComposites(t *testing.T) {
	a := NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)})
	b2 := NewTuple(Field{"a", Int(1)}, Field{"b", Int(3)})
	if Compare(a, b2) >= 0 {
		t.Error("tuple compare by fields")
	}
	short := NewTuple(Field{"a", Int(1)})
	if Compare(short, a) >= 0 {
		t.Error("shorter prefix tuple sorts first")
	}
	c1 := NewCollection(Int(1), Int(2))
	c2 := NewCollection(Int(1), Int(2), Int(0))
	if Compare(c1, c2) >= 0 {
		t.Error("prefix collection sorts first")
	}
	diffName := NewTuple(Field{"z", Int(1)})
	if Compare(short, diffName) >= 0 {
		t.Error("field names participate in tuple order")
	}
}

func TestWeakTypingAcrossSourceBoundaries(t *testing.T) {
	// Values crossing source boundaries arrive as text; the comparison
	// semantics must still match them against typed values (the design
	// choice documented on Compare).
	b := NewBuilder()
	cases := []struct {
		a, b Value
		want int
	}{
		{String("120"), Int(120), 0},
		{String("007"), Int(7), 0},
		{String(" 42 "), Float(42), 0},
		{String("120"), Int(100), 1},
		{String("99"), Int(100), -1},     // numeric, not lexicographic
		{String("10"), String("9"), 1},   // both numeric strings: by value
		{String("10"), String("9a"), -1}, // numeric class before string class
		{String("abc"), Int(5), 1},       // non-numeric string after numbers
		{b.Elem("p", "3.5"), Float(3.5), 0},
		{b.Elem("p", "x"), String("x"), 0},
		{String("1e2"), Int(100), 0}, // scientific notation parses
	}
	for _, c := range cases {
		if got := sign(Compare(c.a, c.b)); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if c.want == 0 && Hash(c.a) != Hash(c.b) {
			t.Errorf("equal values %v, %v hash differently", c.a, c.b)
		}
	}
}

func TestNaNIsTotallyOrdered(t *testing.T) {
	nan := Float(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN must compare equal to itself (total order)")
	}
	if Compare(nan, Float(math.Inf(-1))) != 0 {
		t.Error("NaN normalizes to -Inf")
	}
	if Compare(nan, Int(0)) >= 0 {
		t.Error("NaN sorts before finite numbers")
	}
	if Hash(nan) != Hash(Float(math.Inf(-1))) {
		t.Error("NaN hash must follow its comparison image")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	b := NewBuilder()
	pairs := [][2]Value{
		{Int(5), Float(5)},
		{Bool(true), Int(1)},
		{String("x"), String("x")},
		{b.Elem("p", "12"), Int(12)},
		{NewTuple(Field{"a", Int(1)}), NewTuple(Field{"a", Float(1)})},
		{NewCollection(Int(1), Int(2)), NewCollection(Float(1), Float(2))},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Equal values %v, %v hash differently", p[0], p[1])
		}
	}
	if Hash(String("a")) == Hash(String("b")) {
		t.Error("suspicious: different strings hash equal")
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), String("a"), Null{}, Int(2)}
	SortValues(vs)
	// Nulls first (kind order), then numbers ascending, then strings.
	want := []Value{Null{}, Int(1), Int(2), Int(3), String("a")}
	for i := range want {
		if Compare(vs[i], want[i]) != 0 {
			t.Fatalf("sorted[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
}

// randomValue generates a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(9)
	if depth <= 0 && k >= 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Null{}
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(1000) - 500)
	case 3:
		return Float(r.NormFloat64() * 100)
	case 4:
		return String(randString(r))
	case 5:
		return Date(time.Unix(r.Int63n(1e9), 0))
	case 6:
		n := r.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: string(rune('a' + r.Intn(4))), Value: randomValue(r, depth-1)}
		}
		return NewTuple(fields...)
	case 7:
		n := r.Intn(3)
		items := make([]Value, n)
		for i := range items {
			items[i] = randomValue(r, depth-1)
		}
		return NewCollection(items...)
	default:
		b := NewBuilder()
		return b.Elem(string(rune('a'+r.Intn(4))), randString(r))
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + r.Intn(26)))
	}
	return sb.String()
}

func TestCompareIsReflexiveAndAntisymmetric_Property(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomValue(rr, 2)
		b := randomValue(rr, 2)
		if Compare(a, a) != 0 {
			t.Logf("Compare(%v, a) != 0", a)
			return false
		}
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareIsTransitive_Property(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rr, 2), randomValue(rr, 2), randomValue(rr, 2)
		vs := []Value{a, b, c}
		SortValues(vs)
		return Compare(vs[0], vs[1]) <= 0 && Compare(vs[1], vs[2]) <= 0 && Compare(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashEqual_Property(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomValue(rr, 2)
		b := randomValue(rr, 2)
		if Equal(a, b) && Hash(a) != Hash(b) {
			t.Logf("equal values hash differently: %v vs %v", a, b)
			return false
		}
		return Hash(a) == Hash(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTupleRoundTripThroughNode(t *testing.T) {
	tp := NewTuple(
		Field{"name", String("Ada")},
		Field{"city", String("London")},
	)
	n := TupleToNode("row", tp)
	back := NodeToTuple(n)
	if !Equal(tp, back) {
		t.Errorf("round trip: %v -> %v", tp, back)
	}
}

func TestNodeToTupleRepeatedFieldsBecomeCollections(t *testing.T) {
	b := NewBuilder()
	n := b.Elem("row", b.Elem("tag", "x"), b.Elem("tag", "y"))
	tp := NodeToTuple(n)
	v, ok := tp.Get("tag")
	if !ok {
		t.Fatal("tag field missing")
	}
	coll, ok := v.(*Collection)
	if !ok || coll.Len() != 2 {
		t.Fatalf("tag = %v, want 2-item collection", v)
	}
	// A third repetition should extend the collection.
	n2 := b.Elem("row", b.Elem("t", "1"), b.Elem("t", "2"), b.Elem("t", "3"))
	tp2 := NodeToTuple(n2)
	v2, _ := tp2.Get("t")
	if c2, ok := v2.(*Collection); !ok || c2.Len() != 3 {
		t.Fatalf("t = %v, want 3-item collection", v2)
	}
}
