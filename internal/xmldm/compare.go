package xmldm

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Compare imposes a total preorder across all values, by value, with
// XPath-style weak typing: nodes compare through their atomized content,
// and strings that parse as numbers belong to the numeric class, so the
// XML-QL predicate $price > 100 behaves correctly whether $price carries
// Int(120), Float(120), String("120") (text content from a pattern
// binding), or the <price>120</price> element itself. The classes order
// Null < numeric < string < date < tuple < collection; within the string
// class comparison is lexicographic, within numeric it is by value, and
// composites compare lexicographically element-wise. Compare
// deliberately ignores document position: use DocOrderLess for
// document-order sorting.
//
// The weak-typing consequence — String("007") equals Int(7) — is a
// deliberate data-integration choice: values crossing source boundaries
// arrive as text, and joins across sources must still match them.
func Compare(a, b Value) int {
	if a == nil {
		a = Null{}
	}
	if b == nil {
		b = Null{}
	}
	// Atomize nodes up front so that every comparison is value-based and
	// the order stays transitive across mixed node/atom operands.
	if n, ok := a.(*Node); ok {
		a = atomizeNode(n)
	}
	if n, ok := b.(*Node); ok {
		b = atomizeNode(n)
	}

	fa, na := numericValue(a)
	fb, nb := numericValue(b)
	ra, rb := classRank(a, na), classRank(b, nb)
	if ra != rb {
		return ra - rb
	}
	if na && nb {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}

	ka, kb := a.Kind(), b.Kind()
	if ka != kb {
		return int(ka) - int(kb)
	}
	switch ka {
	case KindNull:
		return 0
	case KindBool:
		ba, bb := bool(a.(Bool)), bool(b.(Bool))
		switch {
		case !ba && bb:
			return -1
		case ba && !bb:
			return 1
		default:
			return 0
		}
	case KindString:
		sa, sb := string(a.(String)), string(b.(String))
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	case KindDate:
		ta, tb := time.Time(a.(Date)), time.Time(b.(Date))
		switch {
		case ta.Before(tb):
			return -1
		case ta.After(tb):
			return 1
		default:
			return 0
		}
	case KindTuple:
		return compareTuples(a.(*Tuple), b.(*Tuple))
	case KindCollection:
		return compareCollections(a.(*Collection), b.(*Collection))
	default:
		return 0
	}
}

// DocOrderLess orders nodes by document position (ordinal). It is the
// comparator behind "XML documents are intrinsically ordered" (§4): use
// it, not Compare, when result order must follow the source document.
func DocOrderLess(a, b *Node) bool { return a.Ord < b.Ord }

// numericValue reports whether a value belongs to the numeric class and
// its numeric image: Bool, Int, Float (except NaN), and strings that
// parse as finite numbers.
func numericValue(v Value) (float64, bool) {
	switch x := v.(type) {
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	case Int:
		return float64(x), true
	case Float:
		f := float64(x)
		if math.IsNaN(f) {
			// NaN has no order; map it to -Inf so the order stays total
			// and deterministic.
			return math.Inf(-1), true
		}
		return f, true
	case String:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(x)), 64)
		if err != nil || math.IsNaN(f) {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// classRank orders the comparison classes: Null < numeric < string <
// date < tuple < collection.
func classRank(v Value, numeric bool) int {
	if numeric {
		return 1
	}
	switch v.Kind() {
	case KindNull:
		return 0
	case KindString:
		return 2
	case KindDate:
		return 3
	case KindTuple:
		return 4
	default:
		return 5
	}
}

// atomizeNode turns a node into the atom its text content denotes: a
// number if it parses as one, else a string.
func atomizeNode(n *Node) Value {
	t := n.Text()
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return String(t)
}

func compareTuples(a, b *Tuple) int {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		fa, fb := a.Field(i), b.Field(i)
		if fa.Name != fb.Name {
			if fa.Name < fb.Name {
				return -1
			}
			return 1
		}
		if c := Compare(fa.Value, fb.Value); c != 0 {
			return c
		}
	}
	return a.Len() - b.Len()
}

func compareCollections(a, b *Collection) int {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if c := Compare(a.Item(i), b.Item(i)); c != 0 {
			return c
		}
	}
	return a.Len() - b.Len()
}

// Equal reports deep equality under Compare's semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash consistent with Equal: Equal values hash
// identically. Numeric atoms hash through their float64 image, and nodes
// through their text, matching the cross-kind behaviour of Compare.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	hashInto(h64writer{h}, v)
	return h.Sum64()
}

type hasher interface{ write([]byte) }

type h64writer struct {
	h interface{ Write([]byte) (int, error) }
}

func (w h64writer) write(b []byte) { w.h.Write(b) }

func hashInto(w hasher, v Value) {
	if v == nil {
		v = Null{}
	}
	var buf [9]byte
	writeNumeric := func(f float64) {
		if f == 0 {
			f = 0 // normalize -0 to +0
		}
		buf[0] = 1
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		w.write(buf[:9])
	}
	switch x := v.(type) {
	case Null:
		buf[0] = 0
		w.write(buf[:1])
	case Bool, Int, Float:
		f, _ := numericValue(x)
		writeNumeric(f)
	case String:
		// Numeric strings hash through the numeric path so that Hash
		// stays consistent with Compare's weak typing.
		if f, ok := numericValue(x); ok {
			writeNumeric(f)
			return
		}
		buf[0] = 2
		w.write(buf[:1])
		w.write([]byte(x))
	case Date:
		buf[0] = 3
		bits := uint64(time.Time(x).UnixNano())
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		w.write(buf[:9])
	case *Tuple:
		buf[0] = 4
		w.write(buf[:1])
		for _, f := range x.Fields() {
			w.write([]byte(f.Name))
			hashInto(w, f.Value)
		}
	case *Collection:
		buf[0] = 5
		w.write(buf[:1])
		for _, it := range x.Items() {
			hashInto(w, it)
		}
	case *Node:
		// Nodes hash by their atomized content so a node equal to an
		// atom under Compare hashes equal to it too.
		hashInto(w, atomizeNode(x))
	default:
		buf[0] = 255
		w.write(buf[:1])
		w.write([]byte(v.String()))
	}
}
