package xmldm

// Builder constructs element trees with parent pointers and document
// ordinals assigned, so navigation and document-order sorting work
// immediately. Each Elem call finalizes its subtree, so the outermost
// call yields a correctly numbered document; the cost is O(n·depth).
type Builder struct{}

// NewBuilder returns a Builder.
func NewBuilder() *Builder { return &Builder{} }

// Elem creates an element with the given name and children. Children may
// be *Node values (adopted: their Parent is set), atoms (kept as text
// content), or Attr values (appended to the attribute list).
func (b *Builder) Elem(name string, children ...any) *Node {
	n := &Node{Name: name}
	for _, c := range children {
		switch v := c.(type) {
		case Attr:
			n.Attrs = append(n.Attrs, v)
		case *Node:
			v.Parent = n
			n.Children = append(n.Children, v)
		case Value:
			n.Children = append(n.Children, v)
		case string:
			n.Children = append(n.Children, String(v))
		case int:
			n.Children = append(n.Children, Int(v))
		case int64:
			n.Children = append(n.Children, Int(v))
		case float64:
			n.Children = append(n.Children, Float(v))
		case bool:
			n.Children = append(n.Children, Bool(v))
		case nil:
			// skip
		default:
			panic("xmldm: Builder.Elem: unsupported child type")
		}
	}
	Finalize(n)
	return n
}

// Text wraps a string as a text child.
func (b *Builder) Text(s string) Value { return String(s) }

// Finalize renumbers the tree rooted at root in document order and fixes
// parent pointers; call it after assembling subtrees out of order or
// after manual tree surgery.
func Finalize(root *Node) {
	ord := 1
	var fix func(n *Node, parent *Node)
	fix = func(n *Node, parent *Node) {
		n.Parent = parent
		n.Ord = ord
		ord++
		for _, c := range n.Children {
			if e, ok := c.(*Node); ok {
				fix(e, n)
			}
		}
	}
	fix(root, nil)
}

// TupleToNode converts a tuple to an element: each field becomes a child
// element whose text is the field value. It is the canonical embedding of
// relational rows into the XML model (§3.1's "accommodating relational
// data more naturally" works both ways).
func TupleToNode(name string, t *Tuple) *Node {
	n := &Node{Name: name}
	for _, f := range t.Fields() {
		child := &Node{Name: f.Name, Parent: n}
		switch v := f.Value.(type) {
		case nil, Null:
			// empty element
		case *Node:
			v.Parent = child
			child.Children = append(child.Children, v)
		case *Collection:
			for _, it := range v.Items() {
				if e, ok := it.(*Node); ok {
					e.Parent = child
					child.Children = append(child.Children, e)
				} else {
					child.Children = append(child.Children, String(Stringify(it)))
				}
			}
		default:
			child.Children = append(child.Children, f.Value)
		}
		n.Children = append(n.Children, child)
	}
	return n
}

// NodeToTuple converts an element to a tuple: each child element becomes
// a field named after it. Repeated child names become Collection fields;
// text-only children become atoms via their text.
func NodeToTuple(n *Node) *Tuple {
	var fields []Field
	index := make(map[string]int)
	for _, c := range n.ChildElements() {
		var v Value
		if len(c.ChildElements()) > 0 {
			v = c
		} else {
			v = String(c.Text())
		}
		if i, ok := index[c.Name]; ok {
			switch existing := fields[i].Value.(type) {
			case *Collection:
				fields[i].Value = existing.Append(v)
			default:
				fields[i].Value = NewCollection(existing, v)
			}
			continue
		}
		index[c.Name] = len(fields)
		fields = append(fields, Field{Name: c.Name, Value: v})
	}
	return NewTuple(fields...)
}
