package xmldm

import (
	"testing"
)

// testDoc builds the document used by the path tests:
//
//	<catalog>
//	  <book id="b1"><title>TAOCP</title><author>Knuth</author></book>
//	  <book id="b2"><title>SICP</title><author>Abelson</author><author>Sussman</author></book>
//	  <journal id="j1"><title>TODS</title></journal>
//	</catalog>
func testDoc() *Node {
	b := NewBuilder()
	return b.Elem("catalog",
		b.Elem("book", Attr{"id", "b1"},
			b.Elem("title", "TAOCP"),
			b.Elem("author", "Knuth"),
		),
		b.Elem("book", Attr{"id", "b2"},
			b.Elem("title", "SICP"),
			b.Elem("author", "Abelson"),
			b.Elem("author", "Sussman"),
		),
		b.Elem("journal", Attr{"id", "j1"},
			b.Elem("title", "TODS"),
		),
	)
}

func names(vs []Value) []string {
	var out []string
	for _, v := range vs {
		switch x := v.(type) {
		case *Node:
			out = append(out, x.Name)
		default:
			out = append(out, x.String())
		}
	}
	return out
}

func texts(vs []Value) []string {
	var out []string
	for _, v := range vs {
		out = append(out, Stringify(v))
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChildPath(t *testing.T) {
	doc := testDoc()
	got := ChildPath("book", "title").Eval(doc)
	if !eqStrings(texts(got), []string{"TAOCP", "SICP"}) {
		t.Errorf("book/title = %v", texts(got))
	}
}

func TestWildcardChild(t *testing.T) {
	doc := testDoc()
	got := Path{{AxisChild, "*"}}.Eval(doc)
	if !eqStrings(names(got), []string{"book", "book", "journal"}) {
		t.Errorf("children = %v", names(got))
	}
}

func TestDescendantAxis(t *testing.T) {
	doc := testDoc()
	got := Path{{AxisDescendant, "title"}}.Eval(doc)
	if !eqStrings(texts(got), []string{"TAOCP", "SICP", "TODS"}) {
		t.Errorf("//title = %v", texts(got))
	}
	got = Path{{AxisDescendant, "author"}}.Eval(doc)
	if len(got) != 3 {
		t.Errorf("//author count = %d", len(got))
	}
}

func TestDescendantOrSelf(t *testing.T) {
	doc := testDoc()
	got := Path{{AxisDescendantOrSelf, "*"}}.Eval(doc)
	if len(got) != doc.CountElements() {
		t.Errorf("descendant-or-self::* = %d, want %d", len(got), doc.CountElements())
	}
	got = Path{{AxisDescendantOrSelf, "catalog"}}.Eval(doc)
	if len(got) != 1 || got[0].(*Node) != doc {
		t.Error("descendant-or-self::catalog should select the root itself")
	}
}

func TestParentAndAncestor(t *testing.T) {
	doc := testDoc()
	title := Path{{AxisDescendant, "title"}}.Eval(doc)[0].(*Node)
	up := Path{{AxisParent, "*"}}.Eval(title)
	if len(up) != 1 || up[0].(*Node).Name != "book" {
		t.Errorf("parent = %v", names(up))
	}
	anc := Path{{AxisAncestor, "*"}}.Eval(title)
	if !eqStrings(names(anc), []string{"catalog", "book"}) {
		t.Errorf("ancestors = %v (document order expected)", names(anc))
	}
	// Root has no parent.
	if got := (Path{{AxisParent, "*"}}).Eval(doc); got != nil {
		t.Errorf("root parent = %v", got)
	}
}

func TestSiblingAxes(t *testing.T) {
	doc := testDoc()
	firstBook := doc.ChildElements()[0]
	after := Path{{AxisFollowingSibling, "*"}}.Eval(firstBook)
	if !eqStrings(names(after), []string{"book", "journal"}) {
		t.Errorf("following = %v", names(after))
	}
	journal := doc.Child("journal")
	before := Path{{AxisPrecedingSibling, "book"}}.Eval(journal)
	if len(before) != 2 {
		t.Errorf("preceding books = %d", len(before))
	}
}

func TestAttributeAxis(t *testing.T) {
	doc := testDoc()
	got := Path{{AxisChild, "book"}, {AxisAttribute, "id"}}.Eval(doc)
	if !eqStrings(texts(got), []string{"b1", "b2"}) {
		t.Errorf("book/@id = %v", texts(got))
	}
	all := Path{{AxisChild, "*"}, {AxisAttribute, "*"}}.Eval(doc)
	if len(all) != 3 {
		t.Errorf("*/@* = %d", len(all))
	}
	// Attribute step must be last.
	bad := Path{{AxisAttribute, "id"}, {AxisChild, "x"}}.Eval(doc)
	if bad != nil {
		t.Errorf("attribute mid-path should select nothing, got %v", bad)
	}
}

func TestSelfAxis(t *testing.T) {
	doc := testDoc()
	got := Path{{AxisSelf, "catalog"}}.Eval(doc)
	if len(got) != 1 {
		t.Errorf("self = %v", names(got))
	}
	got = Path{{AxisSelf, "other"}}.Eval(doc)
	if got != nil {
		t.Errorf("self with wrong name = %v", names(got))
	}
}

func TestPathOnNilAndEmpty(t *testing.T) {
	if got := ChildPath("x").Eval(nil); got != nil {
		t.Errorf("Eval(nil) = %v", got)
	}
	doc := testDoc()
	if got := ChildPath("nosuch", "deeper").Eval(doc); got != nil {
		t.Errorf("dead-end path = %v", got)
	}
	if got := (Path{}).Eval(doc); len(got) != 1 || got[0].(*Node) != doc {
		t.Errorf("empty path should yield the start node")
	}
}

func TestDescendantResultsInDocumentOrderNoDuplicates(t *testing.T) {
	doc := testDoc()
	// Two-step descendant paths can revisit nodes; ensure dedup + order.
	got := Path{{AxisDescendantOrSelf, "*"}, {AxisDescendant, "author"}}.Eval(doc)
	if len(got) != 3 {
		t.Fatalf("authors = %d, want 3 (deduplicated)", len(got))
	}
	prev := -1
	for _, v := range got {
		n := v.(*Node)
		if n.Ord <= prev {
			t.Fatal("results not in document order")
		}
		prev = n.Ord
	}
}

func TestFinalizeRenumbers(t *testing.T) {
	// Assemble a tree manually (no builder ordinals), then finalize.
	root := &Node{Name: "r", Children: []Value{
		&Node{Name: "a"},
		&Node{Name: "b", Children: []Value{&Node{Name: "c"}}},
	}}
	Finalize(root)
	if root.Ord != 1 {
		t.Errorf("root ord = %d", root.Ord)
	}
	c := root.Child("b").Child("c")
	if c.Parent == nil || c.Parent.Name != "b" {
		t.Error("parent pointers not fixed")
	}
	if c.Ord != 4 {
		t.Errorf("c ord = %d, want 4 (r=1,a=2,b=3,c=4)", c.Ord)
	}
}

func TestAxisString(t *testing.T) {
	axes := []Axis{AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisSelf,
		AxisParent, AxisAncestor, AxisFollowingSibling, AxisPrecedingSibling, AxisAttribute}
	seen := map[string]bool{}
	for _, a := range axes {
		s := a.String()
		if s == "" || seen[s] {
			t.Errorf("axis %d has empty or duplicate name %q", a, s)
		}
		seen[s] = true
	}
}
