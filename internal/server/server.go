// Package server is the system front end: an HTTP interface offering the
// "multiple layers of access" of §2.1 — the low-level query endpoint for
// applications that want the integration engine directly, the lens layer
// with device-targeted formatting, and the management endpoints
// (materialization, refresh, statistics) that let administrators "set
// up, monitor, and understand, the system" (§4). Dispatch across engine
// instances (§2.1: "multiple instances of the integration engine can be
// run simultaneously") is delegated entirely to the internal/cluster
// front end: routing policy, health ejection, admission control with
// deadline-aware shedding (surfaced here as 503 + Retry-After), and
// graceful drain (the /admin/drain endpoint).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/lens"
	"repro/internal/matview"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/sched"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
	"repro/internal/xmlql"
)

// Server wires the cluster front end, lenses, cache, and materialized
// store into an http.Handler.
type Server struct {
	Cluster *cluster.Cluster
	Lenses  *lens.Registry
	Cache   *qcache.Cache    // optional shared front cache (nil when per-instance caches are in use)
	Views   *matview.Manager // optional
	// AdminToken guards the admin endpoints when non-empty.
	AdminToken string
	// Metrics is the registry behind /metrics and the per-endpoint
	// latency series; nil falls back to obs.Default().
	Metrics *obs.Registry
	// Traces, when set, makes the server the trace origin: every query
	// request gets a root span (joining an incoming W3C traceparent
	// header when present), the whole tier chain hangs under it, and the
	// finished trace is offered to the store's sampler. Feeds
	// /debug/traces and /debug/trace/last.
	Traces *obs.TraceStore
	// Logger receives structured request/error logs with trace
	// correlation (nil discards them).
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Slow and Active feed /debug/slowlog and /debug/queries; wire them
	// to the same instances the engines report into (core.SetIntrospection).
	// Both are nil-safe.
	Slow   *core.SlowLog
	Active *core.ActiveRegistry
	// Breakers, when set, adds per-source circuit-breaker states to
	// /debug/queries (wire the same set the engines fetch through).
	// Nil-safe.
	Breakers *exec.BreakerSet
}

func (s *Server) registry() *obs.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return obs.Default()
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return obs.NopLogger()
}

// startTrace opens the root span for a query-path request when tracing
// is configured: an incoming W3C traceparent header joins the caller's
// trace, and the response carries this span's identity back so the
// caller can fetch the kept trace by id. Returns the original context
// and a nil span when tracing is off (the chain degrades to no-ops).
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, name string) (context.Context, *obs.Span) {
	if s.Traces == nil {
		return r.Context(), nil
	}
	tc, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	sp := s.Traces.NewRoot(name, tc)
	sp.SetAttr("method", r.Method)
	sp.SetAttr("path", r.URL.Path)
	w.Header().Set("traceparent", obs.FormatTraceparent(sp.TraceContext()))
	return obs.ContextWithSpan(r.Context(), sp), sp
}

// finishTrace completes the request's root span and offers it to the
// sampler (nil-safe for untraced requests).
func (s *Server) finishTrace(sp *obs.Span) {
	if sp == nil {
		return
	}
	sp.Finish()
	s.Traces.Record(sp)
}

// Handler builds the HTTP routing table. Every endpoint is wrapped with
// request-count and latency instrumentation. (Per-instance in-flight
// gauges — nimble_cluster_inflight — are registered by the cluster
// itself when it is built with a metrics registry.)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("/lenses", s.instrument("lenses", s.handleLensList))
	mux.HandleFunc("/lens/", s.instrument("lens", s.handleLens))
	mux.HandleFunc("/catalog", s.instrument("catalog", s.handleCatalog))
	mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/debug/trace/last", s.instrument("trace", s.handleTraceLast))
	mux.HandleFunc("/debug/traces", s.instrument("traces", s.handleTraces))
	mux.HandleFunc("/debug/queries", s.instrument("debug_queries", s.handleDebugQueries))
	mux.HandleFunc("/debug/slowlog", s.instrument("slowlog", s.handleSlowLog))
	mux.HandleFunc("/debug/cluster", s.instrument("debug_cluster", s.handleDebugCluster))
	mux.HandleFunc("/admin/drain", s.instrument("admin", s.adminOnly(s.handleDrain)))
	mux.HandleFunc("/admin/materialize", s.instrument("admin", s.adminOnly(s.handleMaterialize)))
	mux.HandleFunc("/admin/refresh", s.instrument("admin", s.adminOnly(s.handleRefresh)))
	mux.HandleFunc("/admin/schema", s.instrument("admin", s.adminOnly(s.handleDefineSchema)))
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// instrument wraps a handler with per-endpoint request and latency
// metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		reg := s.registry()
		reg.Counter("nimble_http_requests_total", "endpoint", endpoint).Inc()
		reg.Histogram("nimble_http_request_seconds", "endpoint", endpoint).Observe(time.Since(start).Seconds())
	}
}

// handleMetrics serves the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.registry().WritePrometheus(w)
}

// handleTraceLast serves the most recent kept traces:
// GET /debug/trace/last?n=5&format=json|xml (default: all retained,
// JSON). Retained as the PR 1 surface; /debug/traces is the searchable
// successor.
func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	traces := s.Traces.Last(n)
	if r.URL.Query().Get("format") == "xml" {
		root := &xmldm.Node{Name: "traces"}
		for _, t := range traces {
			sn := spanNode(t)
			sn.Parent = root
			root.Children = append(root.Children, sn)
		}
		xmldm.Finalize(root)
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, xmlparse.SerializeString(root, 2))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if traces == nil {
		traces = []*obs.Span{}
	}
	json.NewEncoder(w).Encode(traces)
}

// handleTraces is the searchable trace store:
// GET /debug/traces?min_ms=50&err=1&source=crmdb&n=5&format=json|text.
// JSON returns the matching span trees (most recent first); format=text
// renders each as an ASCII tree, with ?depth= and ?nodes= bounding the
// rendering of deep fan-out traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	var q obs.Query
	if ms, err := strconv.ParseFloat(qv.Get("min_ms"), 64); err == nil && ms > 0 {
		q.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	q.ErrOnly = qv.Get("err") == "1" || qv.Get("err") == "true"
	q.Source = qv.Get("source")
	if n, err := strconv.Atoi(qv.Get("n")); err == nil && n > 0 {
		q.Limit = n
	}
	traces := s.Traces.Search(q)
	if qv.Get("format") == "text" {
		depth, _ := strconv.Atoi(qv.Get("depth"))
		nodes, _ := strconv.Atoi(qv.Get("nodes"))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range traces {
			fmt.Fprintf(w, "trace %s\n%s\n", t.TraceID(), obs.RenderTreeLimited(t, depth, nodes))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if traces == nil {
		traces = []*obs.Span{}
	}
	json.NewEncoder(w).Encode(traces)
}

// handleDebugQueries is the query inspector: what is running right now
// (pg_stat_activity style), the recent slow queries, and the per-source
// circuit-breaker states, as JSON.
func (s *Server) handleDebugQueries(w http.ResponseWriter, _ *http.Request) {
	active := s.Active.Snapshot()
	if active == nil {
		active = []core.ActiveQueryInfo{}
	}
	slow := s.Slow.Entries()
	if slow == nil {
		slow = []core.SlowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Active   []core.ActiveQueryInfo `json:"active"`
		Slow     []core.SlowEntry       `json:"slow"`
		Breakers map[string]string      `json:"breakers"`
	}{active, slow, s.Breakers.States()})
}

// handleDebugCluster serves the cluster inspector: per-instance health
// state, outstanding queries, probe failures, cache effectiveness, and
// breaker positions, plus the admission queue and shed counters.
func (s *Server) handleDebugCluster(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Cluster.Status())
}

// handleDrain gracefully drains an instance: stop routing to it, wait
// for its in-flight queries (bounded by ?timeout=, default 30s), then
// remove it from the registry. POST /admin/drain?instance=N&token=...
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /admin/drain?instance=N", http.StatusMethodNotAllowed)
		return
	}
	i, err := strconv.Atoi(r.URL.Query().Get("instance"))
	if err != nil || i < 0 || i >= s.Cluster.Instances() {
		http.Error(w, "instance parameter must name a registered instance", http.StatusBadRequest)
		return
	}
	timeout := 30 * time.Second
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.Cluster.Drain(ctx, i); err != nil {
		http.Error(w, fmt.Sprintf("drain of instance %d did not finish: %v", i, err), http.StatusGatewayTimeout)
		return
	}
	fmt.Fprintf(w, "instance %d drained\n", i)
}

// writeQueryError maps a dispatch error onto the right status: shed
// queries become 503 with a Retry-After hint, everything else 400.
func writeQueryError(w http.ResponseWriter, err error) {
	var oe *cluster.OverloadError
	if errors.As(err, &oe) {
		w.Header().Set("Retry-After", strconv.Itoa(oe.RetryAfterSeconds()))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// handleSlowLog serves the retained slow-query entries (slowest first,
// each with its rendered EXPLAIN ANALYZE plan) as JSON.
func (s *Server) handleSlowLog(w http.ResponseWriter, _ *http.Request) {
	entries := s.Slow.Entries()
	if entries == nil {
		entries = []core.SlowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		ThresholdMS float64          `json:"threshold_ms"`
		Entries     []core.SlowEntry `json:"entries"`
	}{float64(s.Slow.Threshold()) / float64(time.Millisecond), entries})
}

// spanNode converts a span tree to XML for profile embedding and the
// XML trace format.
func spanNode(sp *obs.Span) *xmldm.Node {
	n := &xmldm.Node{Name: "span"}
	n.Attrs = append(n.Attrs,
		xmldm.Attr{Name: "name", Value: sp.Name()},
		xmldm.Attr{Name: "duration_ms", Value: fmt.Sprintf("%.3f", float64(sp.Duration())/float64(time.Millisecond))})
	for _, a := range sp.Attrs() {
		n.Attrs = append(n.Attrs, xmldm.Attr{Name: a.Key, Value: a.Value})
	}
	for _, c := range sp.Children() {
		cn := spanNode(c)
		cn.Parent = n
		n.Children = append(n.Children, cn)
	}
	return n
}

// handleDefineSchema adds a view definition to a mediated schema: the
// management-tool path for "mappings are set via the management tools"
// (§2.1). POST /admin/schema?name=X with the XML-QL view as the body.
func (s *Server) handleDefineSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the view definition", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "name parameter required", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cat := s.Cluster.Engine(0).Catalog()
	if err := cat.DefineViewQLChecked(name, string(body)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.Cache != nil {
		s.Cache.InvalidateSource(name)
	}
	fmt.Fprintf(w, "schema %s extended\n", name)
}

func (s *Server) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.AdminToken != "" && r.URL.Query().Get("token") != s.AdminToken {
			http.Error(w, "admin token required", http.StatusForbidden)
			return
		}
		h(w, r)
	}
}

// handleQuery runs a raw XML-QL query (POST body, or GET ?q=) and
// returns XML. ?profile=1 embeds the execution span tree as a <profile>
// element; ?explain=1 embeds the per-operator EXPLAIN ANALYZE report as
// an <explain> element. Both bypass the result cache so the report
// reflects a real execution.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q string
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q = strings.TrimSpace(string(body))
	case http.MethodGet:
		q = strings.TrimSpace(r.URL.Query().Get("q"))
	default:
		http.Error(w, "POST an XML-QL query, or GET /query?q=...", http.StatusMethodNotAllowed)
		return
	}
	if q == "" {
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	flag := func(name string) bool {
		v := r.URL.Query().Get(name)
		return v == "1" || v == "true"
	}
	profile, explain := flag("profile"), flag("explain")
	// X-Nimble-Class picks the scheduling class the shared worker
	// scheduler admits this query under: "interactive" (the default) or
	// "batch". Validated up front so a typo is a 400, not a query error.
	class := strings.TrimSpace(r.Header.Get("X-Nimble-Class"))
	if _, err := sched.ParseClass(class); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, sp := s.startTrace(w, r, "request")
	defer s.finishTrace(sp)
	start := time.Now()
	var doc *xmldm.Node
	if profile || explain {
		res, err := s.Cluster.QueryOpt(ctx, q, core.QueryOptions{Profile: profile, Explain: explain, Class: class})
		if err != nil {
			sp.SetAttr("error", err.Error())
			s.logger().WarnContext(ctx, "query failed", "query", q, "error", err.Error())
			writeQueryError(w, err)
			return
		}
		doc = res.Document()
		if explain && res.Explain != nil {
			ex := &xmldm.Node{Name: "explain", Parent: doc}
			ex.Attrs = append(ex.Attrs,
				xmldm.Attr{Name: "operators", Value: strconv.FormatInt(res.Stats.OperatorsRun, 10)},
				xmldm.Attr{Name: "drain_ms", Value: fmt.Sprintf("%.3f", float64(res.Stats.DrainNanos)/1e6)})
			ex.Children = append(ex.Children, xmldm.String("\n"+res.Explain.Render()))
			doc.Children = append(doc.Children, ex)
		}
		if profile && res.Trace != nil {
			prof := &xmldm.Node{Name: "profile", Parent: doc}
			sn := spanNode(res.Trace)
			sn.Parent = prof
			prof.Children = append(prof.Children, sn)
			doc.Children = append(doc.Children, prof)
		}
		xmldm.Finalize(doc)
	} else {
		var err error
		doc, err = s.runQueryClass(ctx, q, class)
		if err != nil {
			sp.SetAttr("error", err.Error())
			s.logger().WarnContext(ctx, "query failed", "query", q, "error", err.Error())
			writeQueryError(w, err)
			return
		}
	}
	s.logger().InfoContext(ctx, "query served", "query", q,
		"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, xmlparse.SerializeString(doc, 2))
}

// NewHTTPServer wraps a handler in an http.Server with the timeouts a
// front end needs so one slow client cannot pin a balancer slot
// forever: header-read, full-request-read, write, and idle bounds.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// runQuery consults the cache (complete results only) and dispatches.
func (s *Server) runQuery(ctx context.Context, q string) (*xmldm.Node, error) {
	return s.runQueryClass(ctx, q, "")
}

// runQueryClass is runQuery under an explicit scheduling class. The
// class does not bypass caches: a hit serves from memory and never
// reaches the scheduler, which is exactly the cheap path.
func (s *Server) runQueryClass(ctx context.Context, q, class string) (*xmldm.Node, error) {
	if s.Cache != nil {
		if cached, ok := s.Cache.Get(q); ok {
			res := &core.Result{Values: cached.Values}
			res.Completeness.Complete = true
			return res.Document(), nil
		}
	}
	res, err := s.Cluster.QueryOpt(ctx, q, core.QueryOptions{Class: class})
	if err != nil {
		return nil, err
	}
	if s.Cache != nil && res.Completeness.Complete {
		// Tag with both the answering sources and the names the query
		// references, so invalidating a schema evicts queries written
		// against it even though execution unfolded them to sources.
		var srcs []string
		for _, st := range res.Completeness.Statuses {
			srcs = append(srcs, st.Source)
		}
		if parsed, err := xmlql.Parse(q); err == nil {
			srcs = append(srcs, catalog.QueryDeps(parsed)...)
		}
		s.Cache.Put(q, qcache.Result{Values: res.Values, Sources: srcs})
	}
	return res.Document(), nil
}

func (s *Server) handleLensList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	for _, n := range s.Lenses.Names() {
		fmt.Fprintln(w, n)
	}
}

// handleLens serves GET /lens/{name}?device=web&auth=...&param=value.
func (s *Server) handleLens(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/lens/")
	l, ok := s.Lenses.Get(name)
	if !ok {
		http.Error(w, "no such lens", http.StatusNotFound)
		return
	}
	qv := r.URL.Query()
	if err := l.Authorize(qv.Get("auth")); err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	device := lens.ParseDevice(qv.Get("device"))
	params := map[string]string{}
	for k, vs := range qv {
		if k == "device" || k == "auth" {
			continue
		}
		if len(vs) > 0 {
			params[k] = vs[0]
		}
	}
	queries, err := l.Bind(params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, sp := s.startTrace(w, r, "lens")
	defer s.finishTrace(sp)
	sp.SetAttr("lens", name)
	// A lens may hold several queries; their results concatenate under
	// one document.
	combined := &xmldm.Node{Name: "results"}
	complete := true
	for _, q := range queries {
		doc, err := s.runQuery(ctx, q)
		if err != nil {
			sp.SetAttr("error", err.Error())
			s.logger().WarnContext(ctx, "lens query failed", "lens", name, "error", err.Error())
			writeQueryError(w, err)
			return
		}
		if v, ok := doc.Attr("complete"); ok && v == "false" {
			complete = false
		}
		for _, c := range doc.ChildElements() {
			c.Parent = combined
			combined.Children = append(combined.Children, c)
		}
	}
	if !complete {
		combined.Attrs = append(combined.Attrs, xmldm.Attr{Name: "complete", Value: "false"})
	}
	xmldm.Finalize(combined)

	switch device {
	case lens.DeviceWeb:
		w.Header().Set("Content-Type", "text/html")
	case lens.DeviceXML:
		w.Header().Set("Content-Type", "application/xml")
	default:
		w.Header().Set("Content-Type", "text/plain")
	}
	io.WriteString(w, l.Render(combined, device))
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/xml")
	cat := s.Cluster.Engine(0).Catalog()
	root := &xmldm.Node{Name: "catalog"}
	for _, n := range cat.SourceNames() {
		c := &xmldm.Node{Name: "source", Parent: root, Children: []xmldm.Value{xmldm.String(n)}}
		root.Children = append(root.Children, c)
	}
	for _, n := range cat.SchemaNames() {
		c := &xmldm.Node{Name: "schema", Parent: root, Children: []xmldm.Value{xmldm.String(n)}}
		root.Children = append(root.Children, c)
	}
	xmldm.Finalize(root)
	io.WriteString(w, xmlparse.SerializeString(root, 2))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	for i, n := range s.Cluster.Loads() {
		fmt.Fprintf(w, "engine[%d] queries=%d\n", i, n)
	}
	if s.Cache != nil {
		st := s.Cache.Stats()
		fmt.Fprintf(w, "cache hits=%d misses=%d entries=%d hit_rate=%.3f\n",
			st.Hits, st.Misses, st.Entries, st.HitRate())
	}
	if s.Views != nil {
		entries := s.Views.Entries()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Schema < entries[j].Schema })
		for _, e := range entries {
			fmt.Fprintf(w, "matview %s elements=%d hits=%d refreshed=%s\n",
				e.Schema, e.Elements, e.Hits, e.RefreshedAt.Format(time.RFC3339))
		}
	}
}

func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	if s.Views == nil {
		http.Error(w, "materialized views are not configured", http.StatusBadRequest)
		return
	}
	schema := r.URL.Query().Get("schema")
	if schema == "" {
		http.Error(w, "schema parameter required", http.StatusBadRequest)
		return
	}
	if err := s.Views.Materialize(r.Context(), schema); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.Cache != nil {
		s.Cache.InvalidateSource(schema)
	}
	fmt.Fprintf(w, "materialized %s\n", schema)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if s.Views == nil {
		http.Error(w, "materialized views are not configured", http.StatusBadRequest)
		return
	}
	schema := r.URL.Query().Get("schema")
	var err error
	if schema == "" {
		err = s.Views.RefreshAll(r.Context())
	} else {
		err = s.Views.Refresh(r.Context(), schema)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.Cache != nil {
		if schema == "" {
			s.Cache.InvalidateAll()
		} else {
			s.Cache.InvalidateSource(schema)
		}
	}
	fmt.Fprintln(w, "refreshed")
}
