package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lens"
	"repro/internal/matview"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// newObsServer builds a deployment with an isolated metrics registry and
// trace store, so assertions do not race with other tests through the
// default registry.
func newObsServer(t testing.TB) (*Server, *httptest.Server, *obs.Registry, *obs.TraceStore) {
	t.Helper()
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1,'Ada','London'), (2,'Alan','Cambridge'), (3,'Grace','New York')`)
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("crmdb", db)); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineViewQL("customers", `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTraceStore(obs.StoreConfig{Limit: 8})
	e1, e2 := core.New(cat), core.New(cat)
	for _, e := range []*core.Engine{e1, e2} {
		e.SetMetrics(reg)
		e.SetTraceStore(tr)
	}
	cache := qcache.New(16, 0)
	cache.SetMetrics(reg)
	views := matview.NewManager(e1)
	views.SetMetrics(reg)
	srv := &Server{
		Cluster:    cluster.New(cluster.Config{Policy: cluster.RoundRobin, Metrics: reg}, e1, e2),
		Lenses:     lens.NewRegistry(),
		Cache:      cache,
		Views:      views,
		AdminToken: "admin",
		Metrics:    reg,
		Traces:     tr,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg, tr
}

const obsQuery = `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`

func TestStatsEndpointOutput(t *testing.T) {
	_, ts, _, _ := newObsServer(t)
	post(t, ts.URL+"/query", obsQuery)
	post(t, ts.URL+"/query", obsQuery) // cache hit
	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "engine[0] queries=") || !strings.Contains(body, "engine[1] queries=") {
		t.Errorf("stats missing engine lines:\n%s", body)
	}
	if !strings.Contains(body, "cache hits=1 misses=1 entries=1") {
		t.Errorf("stats missing cache line:\n%s", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, _ := newObsServer(t)
	post(t, ts.URL+"/query", obsQuery)
	post(t, ts.URL+"/query", obsQuery) // cache hit
	// Materialize so the matview metrics appear.
	resp, err := httpPost(ts.URL + "/admin/materialize?schema=customers&token=admin")
	if err != nil || resp != 200 {
		t.Fatalf("materialize: %d %v", resp, err)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{
		"# TYPE nimble_queries_total counter",
		"nimble_queries_total 1",
		"nimble_query_seconds_bucket",
		"nimble_query_seconds_count 1",
		// 2 fetches: one for the uncached query, one for materialization.
		`nimble_fetch_seconds_count{source="crmdb"} 2`,
		`nimble_fetch_total{source="crmdb",outcome="ok"} 2`,
		"nimble_qcache_hits_total 1",
		"nimble_qcache_misses_total 1",
		"nimble_matview_refresh_total 1",
		`nimble_matview_staleness_seconds{schema="customers"}`,
		`nimble_cluster_inflight{instance="0"} 0`,
		`nimble_cluster_inflight{instance="1"} 0`,
		`nimble_http_requests_total{endpoint="query"} 2`,
		`nimble_http_request_seconds_count{endpoint="query"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

func httpPost(url string) (int, error) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestTraceLastEndpoint(t *testing.T) {
	_, ts, _, tr := newObsServer(t)
	post(t, ts.URL+"/query", obsQuery)
	post(t, ts.URL+"/query", obsQuery) // cache hit: root span only, no engine subtree
	if tr.Len() != 2 {
		t.Fatalf("trace store retained %d traces", tr.Len())
	}
	code, body := get(t, ts.URL+"/debug/trace/last")
	if code != 200 {
		t.Fatalf("code = %d", code)
	}
	var spans []struct {
		Name     string            `json:"name"`
		TraceID  string            `json:"trace_id"`
		Attrs    map[string]string `json:"attrs"`
		Children []json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(spans) != 2 || spans[0].Name != "request" || spans[1].Name != "request" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].TraceID == "" || spans[0].TraceID == spans[1].TraceID {
		t.Errorf("trace ids not distinct: %q %q", spans[0].TraceID, spans[1].TraceID)
	}
	// Most recent first: the cache hit has no engine subtree, the real
	// execution underneath it does.
	if len(spans[0].Children) != 0 {
		t.Error("cache-hit trace should have no children")
	}
	if len(spans[1].Children) == 0 {
		t.Error("executed trace has no children")
	}
	if !strings.Contains(body, `"complete":"true"`) {
		t.Errorf("engine span attrs missing from trace:\n%s", body)
	}
	// XML format and the n limit.
	post(t, ts.URL+"/query", obsQuery+" ORDER-BY $w")
	_, xmlBody := get(t, ts.URL+"/debug/trace/last?n=1&format=xml")
	if !strings.Contains(xmlBody, `<span name="request"`) || strings.Count(xmlBody, `name="request"`) != 1 {
		t.Errorf("xml traces = %s", xmlBody)
	}
}

func TestProfileQueryOption(t *testing.T) {
	srv, ts, _, _ := newObsServer(t)
	// Warm the cache; profile must bypass it and still run the engine.
	post(t, ts.URL+"/query", obsQuery)
	code, body := post(t, ts.URL+"/query?profile=1", obsQuery)
	if code != 200 {
		t.Fatalf("code = %d: %s", code, body)
	}
	if !strings.Contains(body, "<r>Ada</r>") {
		t.Errorf("profiled query lost its results:\n%s", body)
	}
	if !strings.Contains(body, "<profile>") || !strings.Contains(body, `<span name="engine"`) {
		t.Errorf("no embedded profile:\n%s", body)
	}
	// The per-source fetch span agrees with the completeness report:
	// crmdb answered with 3 rows, no error, not local.
	if !strings.Contains(body, `source="crmdb"`) {
		t.Errorf("no fetch span for crmdb:\n%s", body)
	}
	if !strings.Contains(body, `rows="3"`) || !strings.Contains(body, `local="false"`) {
		t.Errorf("fetch span flags wrong:\n%s", body)
	}
	if strings.Contains(body, `error=`) {
		t.Errorf("unexpected error attr:\n%s", body)
	}
	// Cache stats: the profiled run did not consume the cached entry.
	if st := srv.Cache.Stats(); st.Hits != 0 {
		t.Errorf("profiled query hit the cache: %+v", st)
	}
}

// gatedSource blocks every fetch until the gate closes.
type gatedSource struct {
	name string
	gate chan struct{}
}

func (g *gatedSource) Name() string                       { return g.name }
func (g *gatedSource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (g *gatedSource) Fetch(ctx context.Context, _ catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, catalog.Cost{}, ctx.Err()
	}
	b := xmldm.NewBuilder()
	return b.Elem(g.name, b.Elem("a", "1")), catalog.Cost{RowsReturned: 1}, nil
}

func TestSetCapacityBlocksExcessQueries(t *testing.T) {
	cat := catalog.New()
	gate := make(chan struct{})
	if err := cat.AddSource(&gatedSource{name: "s", gate: gate}); err != nil {
		t.Fatal(err)
	}
	e := core.New(cat)
	e.SetMetrics(obs.NewRegistry())
	b := cluster.New(cluster.Config{Policy: cluster.RoundRobin, Capacity: 1}, e)
	q := `WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>`

	done1 := make(chan error, 1)
	go func() {
		_, err := b.Query(context.Background(), q)
		done1 <- err
	}()
	// Wait until the first query holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for b.InFlight(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never started")
		}
		time.Sleep(time.Millisecond)
	}
	// The second query must block on the capacity slot, not execute.
	done2 := make(chan error, 1)
	go func() {
		_, err := b.Query(context.Background(), q)
		done2 <- err
	}()
	select {
	case err := <-done2:
		t.Fatalf("second query ran over capacity: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if n := b.InFlight(0); n != 1 {
		t.Errorf("inflight = %d while slot held", n)
	}
	// A waiter whose context dies gives up without a slot.
	ctx, cancel := context.WithCancel(context.Background())
	done3 := make(chan error, 1)
	go func() {
		_, err := b.Query(ctx, q)
		done3 <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done3; err != context.Canceled {
		t.Errorf("cancelled waiter err = %v", err)
	}
	// Release the gate: both held queries complete.
	close(gate)
	if err := <-done1; err != nil {
		t.Errorf("first query: %v", err)
	}
	if err := <-done2; err != nil {
		t.Errorf("second query: %v", err)
	}
	if n := b.InFlight(0); n != 0 {
		t.Errorf("inflight after drain = %d", n)
	}
}

// TestConcurrentQueriesUnderCapacity exercises the balancer, metrics,
// and tracing paths concurrently — the server-side half of the race
// coverage (run under -race via `make check`).
func TestConcurrentQueriesUnderCapacity(t *testing.T) {
	srv, ts, reg, _ := newObsServer(t)
	srv.Cluster.SetCapacity(2)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// No t.Fatal from goroutines: post inline.
			resp, err := http.Post(ts.URL+"/query?profile=1", "text/plain", strings.NewReader(obsQuery))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("code = %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	if n := reg.Counter("nimble_queries_total").Value(); n != 16 {
		t.Errorf("queries_total = %d", n)
	}
	if c := reg.Histogram("nimble_query_seconds").Count(); c != 16 {
		t.Errorf("latency count = %d", c)
	}
}
