package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

const custQL = `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`

func TestQueryExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/query?explain=1&q="+url.QueryEscape(custQL))
	if code != 200 {
		t.Fatalf("code = %d: %s", code, body)
	}
	for _, part := range []string{"<r>Ada</r>", "<explain", "Query [rewrites=1]", "Fetch [crmdb", "out=", "time="} {
		if !strings.Contains(body, part) {
			t.Errorf("body missing %q:\n%s", part, body)
		}
	}
	// POST with ?explain works the same.
	code, body = post(t, ts.URL+"/query?explain=true", custQL)
	if code != 200 || !strings.Contains(body, "<explain") {
		t.Errorf("POST explain code = %d body:\n%s", code, body)
	}
}

func TestDebugQueriesAndSlowlog(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body := post(t, ts.URL+"/query", custQL); code != 200 {
		t.Fatalf("query code = %d: %s", code, body)
	}

	code, body := get(t, ts.URL+"/debug/queries")
	if code != 200 {
		t.Fatalf("debug/queries code = %d", code)
	}
	var dq struct {
		Active   []core.ActiveQueryInfo `json:"active"`
		Slow     []core.SlowEntry       `json:"slow"`
		Breakers map[string]string      `json:"breakers"`
	}
	if err := json.Unmarshal([]byte(body), &dq); err != nil {
		t.Fatalf("debug/queries JSON: %v\n%s", err, body)
	}
	if dq.Breakers == nil {
		t.Errorf("debug/queries missing breakers map:\n%s", body)
	}
	if len(dq.Active) != 0 {
		t.Errorf("active = %+v, want none in flight", dq.Active)
	}
	if len(dq.Slow) != 1 || !strings.Contains(dq.Slow[0].Query, "<cust>") {
		t.Fatalf("slow = %+v", dq.Slow)
	}
	if !strings.Contains(dq.Slow[0].Plan, "Query [rewrites=1]") {
		t.Errorf("slow plan = %q", dq.Slow[0].Plan)
	}

	code, body = get(t, ts.URL+"/debug/slowlog")
	if code != 200 {
		t.Fatalf("debug/slowlog code = %d", code)
	}
	var sl struct {
		ThresholdMS float64          `json:"threshold_ms"`
		Entries     []core.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatalf("debug/slowlog JSON: %v\n%s", err, body)
	}
	if len(sl.Entries) != 1 || sl.Entries[0].DurationMS <= 0 {
		t.Errorf("entries = %+v", sl.Entries)
	}
}

// TestDebugQueriesUnderLoad polls the inspector while instrumented
// queries run concurrently across both engine instances — the data-race
// check for the active registry, the slow log, and the per-operator
// statistics (run with -race).
func TestDebugQueriesUnderLoad(t *testing.T) {
	_, ts := newTestServer(t)
	const workers, polls = 4, 8
	fetch := func(method, url, body string) (int, error) {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Distinct texts bypass the result cache so every
				// iteration executes an instrumented plan.
				q := fmt.Sprintf(`WHERE <cust><who>$w</who></cust> IN "customers", $w != "nobody%d_%d" CONSTRUCT <r>$w</r>`, w, i)
				if code, err := fetch(http.MethodPost, ts.URL+"/query?explain=1", q); err != nil || code != 200 {
					t.Errorf("query code = %d err = %v", code, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < polls; i++ {
			if code, err := fetch(http.MethodGet, ts.URL+"/debug/queries", ""); err != nil || code != 200 {
				t.Errorf("debug/queries code = %d err = %v", code, err)
			}
			if code, err := fetch(http.MethodGet, ts.URL+"/debug/slowlog", ""); err != nil || code != 200 {
				t.Errorf("debug/slowlog code = %d err = %v", code, err)
			}
		}
	}()
	wg.Wait()

	code, body := get(t, ts.URL+"/debug/slowlog")
	if code != 200 || !strings.Contains(body, "Query [rewrites=1]") {
		t.Errorf("slowlog after load: code=%d body=%s", code, body)
	}
}

// TestBreakerStormUnderLoad hammers the flapping chaos source from
// concurrent workers — driving the shared breaker and the retry path
// from both engine instances at once — while a poller reads
// /debug/queries. Run with -race: the contested state is the breaker
// set, the memoized Access, and the inspector snapshot.
func TestBreakerStormUnderLoad(t *testing.T) {
	_, ts := newTestServer(t)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Distinct texts bypass the result cache; the default
				// partial policy turns flap-induced failures into 200s
				// with an incompleteness flag rather than errors.
				q := fmt.Sprintf(`WHERE <t>$x</t> IN "flaky", $x != "no%d_%d" CONSTRUCT <r>$x</r>`, w, i)
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(q))
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("worker %d query %d: code = %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			code, body := get(t, ts.URL+"/debug/queries")
			if code != 200 || !strings.Contains(body, `"breakers"`) {
				t.Errorf("poll %d: code=%d body=%s", i, code, body)
				return
			}
		}
	}()
	wg.Wait()

	// After the storm the breaker has tracked the flapping source.
	_, body := get(t, ts.URL+"/debug/queries")
	var dq struct {
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.Unmarshal([]byte(body), &dq); err != nil {
		t.Fatalf("debug/queries JSON: %v\n%s", err, body)
	}
	if st := dq.Breakers["flaky"]; st == "" {
		t.Errorf("breakers = %v, want an entry for the flaky source", dq.Breakers)
	}
}
