package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/lens"
	"repro/internal/matview"
	"repro/internal/qcache"
	"repro/internal/rdb"
	"repro/internal/sources"
)

// newTestServer builds a 2-instance deployment over one catalog with a
// lens, a cache, and a materialized-view manager.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1,'Ada','London'), (2,'Alan','Cambridge'), (3,'Grace','New York')`)
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("crmdb", db)); err != nil {
		t.Fatal(err)
	}
	// A chaos-wrapped source that flaps availability: two fetches up,
	// two down. With one retry per fetch the breaker sees occasional
	// failures without permanently opening, which is exactly the storm
	// the inspector race test wants.
	flaky, err := sources.NewXMLSource("flaky", `<flaky><t>one</t><t>two</t></flaky>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(chaos.Wrap(flaky, chaos.Flap{Up: 2, Down: 2})); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineViewQL("customers", `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	e1 := core.New(cat)
	e2 := core.New(cat)
	slow := core.NewSlowLog(8, 0)
	active := core.NewActiveRegistry()
	e1.SetIntrospection(slow, active)
	e2.SetIntrospection(slow, active)
	// One breaker set shared by both instances, like a deployment.
	breakers := exec.NewBreakerSet(3, 10*time.Millisecond, nil, nil)
	res := exec.Resilience{FetchTimeout: 2 * time.Second, Retries: 1, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}
	e1.SetResilience(res, breakers, nil)
	e2.SetResilience(res, breakers, nil)
	reg := lens.NewRegistry()
	if err := reg.Publish(&lens.Lens{
		Name:  "by-city",
		Title: "Customers by city",
		Queries: []string{`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "${city}"
			CONSTRUCT <hit><name>$w</name></hit>`},
		Params: []lens.Param{{Name: "city", Required: true}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(&lens.Lens{
		Name:      "secret",
		Queries:   []string{`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`},
		AuthToken: "s3cret",
	}); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Cluster:    cluster.New(cluster.Config{Policy: cluster.RoundRobin}, e1, e2),
		Lenses:     reg,
		Cache:      qcache.New(16, 0),
		Views:      matview.NewManager(e1),
		AdminToken: "admin",
		Slow:       slow,
		Active:     active,
		Breakers:   breakers,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/query",
		`WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r> ORDER-BY $w`)
	if code != 200 {
		t.Fatalf("code = %d: %s", code, body)
	}
	if !strings.Contains(body, "<r>Ada</r>") || !strings.Contains(body, "<results>") {
		t.Errorf("body = %s", body)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	// GET without q is an empty query, not a method error (GET ?q= is the
	// explain-friendly form).
	if code, _ := get(t, ts.URL+"/query"); code != http.StatusBadRequest {
		t.Errorf("GET code = %d", code)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/query", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT code = %d", resp.StatusCode)
	}
	if code, _ := post(t, ts.URL+"/query", ""); code != http.StatusBadRequest {
		t.Errorf("empty code = %d", code)
	}
	if code, _ := post(t, ts.URL+"/query", "garbage"); code != http.StatusBadRequest {
		t.Errorf("bad query code = %d", code)
	}
}

func TestLensEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/lens/by-city?city=London&device=web")
	if code != 200 {
		t.Fatalf("code = %d: %s", code, body)
	}
	if !strings.Contains(body, "<h1>Customers by city</h1>") || !strings.Contains(body, "Ada") {
		t.Errorf("body = %s", body)
	}
	// Plain device.
	_, plain := get(t, ts.URL+"/lens/by-city?city=London&device=plain")
	if !strings.Contains(plain, "name=Ada") {
		t.Errorf("plain = %q", plain)
	}
	// Missing parameter.
	if code, _ := get(t, ts.URL+"/lens/by-city"); code != http.StatusBadRequest {
		t.Errorf("missing param code = %d", code)
	}
	// Unknown lens.
	if code, _ := get(t, ts.URL+"/lens/nope?city=X"); code != http.StatusNotFound {
		t.Errorf("unknown lens code = %d", code)
	}
}

func TestLensAuth(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := get(t, ts.URL+"/lens/secret"); code != http.StatusForbidden {
		t.Errorf("no token code = %d", code)
	}
	if code, _ := get(t, ts.URL+"/lens/secret?auth=s3cret"); code != 200 {
		t.Errorf("with token code = %d", code)
	}
}

func TestLensListEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := get(t, ts.URL+"/lenses")
	if !strings.Contains(body, "by-city") || !strings.Contains(body, "secret") {
		t.Errorf("lenses = %q", body)
	}
}

func TestCatalogEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := get(t, ts.URL+"/catalog")
	if !strings.Contains(body, "<source>crmdb</source>") || !strings.Contains(body, "<schema>customers</schema>") {
		t.Errorf("catalog = %s", body)
	}
}

func TestCachingOnQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	post(t, ts.URL+"/query", q)
	post(t, ts.URL+"/query", q)
	st := srv.Cache.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestAdminEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	// Token required.
	resp, err := http.Post(ts.URL+"/admin/materialize?schema=customers", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("no token code = %d", resp.StatusCode)
	}
	// Materialize.
	resp, _ = http.Post(ts.URL+"/admin/materialize?schema=customers&token=admin", "", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "materialized") {
		t.Errorf("materialize = %d %s", resp.StatusCode, body)
	}
	// Refresh all.
	resp, _ = http.Post(ts.URL+"/admin/refresh?token=admin", "", nil)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("refresh code = %d", resp.StatusCode)
	}
	// Stats mention the materialized view.
	_, stats := get(t, ts.URL+"/stats")
	if !strings.Contains(stats, "matview customers") {
		t.Errorf("stats = %s", stats)
	}
	// Bad schema fails.
	resp, _ = http.Post(ts.URL+"/admin/materialize?schema=nosuch&token=admin", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad schema code = %d", resp.StatusCode)
	}
}

func TestAdminDefineSchema(t *testing.T) {
	_, ts := newTestServer(t)
	// Define a new second-level schema over HTTP.
	view := `WHERE <cust><who>$w</who><where>"London"</where></cust> IN "customers"
	         CONSTRUCT <londoner><name>$w</name></londoner>`
	resp, err := http.Post(ts.URL+"/admin/schema?name=londoners&token=admin", "text/plain", strings.NewReader(view))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("define: %d %s", resp.StatusCode, body)
	}
	// The new schema answers immediately.
	code, out := post(t, ts.URL+"/query", `WHERE <londoner><name>$n</name></londoner> IN "londoners" CONSTRUCT <r>$n</r>`)
	if code != 200 || !strings.Contains(out, "Ada") {
		t.Errorf("query over new schema: %d %s", code, out)
	}
	// A cyclic definition is rejected and not recorded.
	resp, _ = http.Post(ts.URL+"/admin/schema?name=customers&token=admin", "text/plain",
		strings.NewReader(`WHERE <londoner><name>$n</name></londoner> IN "londoners" CONSTRUCT <cust><who>$n</who></cust>`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cycle code = %d", resp.StatusCode)
	}
	// The catalog still works (rollback happened).
	code, _ = post(t, ts.URL+"/query", `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	if code != 200 {
		t.Errorf("catalog broken after rejected cycle: %d", code)
	}
	// Bad requests.
	resp, _ = http.Post(ts.URL+"/admin/schema?token=admin", "text/plain", strings.NewReader(view))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing name code = %d", resp.StatusCode)
	}
	if code, _ := get(t, ts.URL+"/admin/schema?name=x&token=admin"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET code = %d", code)
	}
}

func TestClusterRoundRobinSpreadsLoad(t *testing.T) {
	srv, ts := newTestServer(t)
	// Distinct queries so the cache does not absorb them.
	for i := 0; i < 10; i++ {
		q := fmt.Sprintf(`WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb", $i >= %d CONSTRUCT <r>$n</r>`, i%5)
		post(t, ts.URL+"/query", q)
	}
	loads := srv.Cluster.Loads()
	// The materialize manager runs on engine 1 too; just require both
	// engines saw work.
	if loads[0] == 0 || loads[1] == 0 {
		t.Errorf("loads = %v", loads)
	}
}

func TestClusterConcurrentDispatch(t *testing.T) {
	cat := catalog.New()
	src, _ := sources.NewXMLSource("s", `<d><a>1</a></d>`)
	cat.AddSource(src)
	e1, e2 := core.New(cat), core.New(cat)
	c := cluster.New(cluster.Config{Policy: cluster.LeastOutstanding}, e1, e2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Query(context.Background(), `WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>`)
		}()
	}
	wg.Wait()
	if c.Instances() != 2 {
		t.Error("instances")
	}
	if got := e1.QueriesRun() + e2.QueriesRun(); got != 8 {
		t.Errorf("queries run = %d", got)
	}
}

// TestShedReturns503RetryAfter: when admission control sheds a query,
// the HTTP layer answers 503 with a Retry-After hint rather than a
// generic 400.
func TestShedReturns503RetryAfter(t *testing.T) {
	cat := catalog.New()
	gate := make(chan struct{})
	if err := cat.AddSource(&gatedSource{name: "s", gate: gate}); err != nil {
		t.Fatal(err)
	}
	e := core.New(cat)
	srv := &Server{
		Cluster: cluster.New(cluster.Config{Policy: cluster.RoundRobin, Capacity: 1, QueueLimit: 1}, e),
		Lenses:  lens.NewRegistry(),
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := `WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>`

	// One query holds the only slot, a second fills the queue.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
		deadline := time.Now().Add(2 * time.Second)
		for srv.Cluster.InFlight(0) != 1 || srv.Cluster.Queued() != i {
			if time.Now().After(deadline) {
				t.Fatalf("setup stalled: inflight=%d queued=%d", srv.Cluster.InFlight(0), srv.Cluster.Queued())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The third is shed.
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed code = %d, body %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", ra)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Errorf("shed body = %q", body)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("held query code = %d", code)
		}
	}
}

func TestDebugClusterEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/query", `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	code, body := get(t, ts.URL+"/debug/cluster")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{`"policy":"round-robin"`, `"state":"healthy"`, `"instances"`} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %s in %s", want, body)
		}
	}
}

func TestAdminDrainEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	if code, _ := post(t, ts.URL+"/admin/drain?instance=1&token=admin", ""); code != http.StatusOK {
		t.Fatalf("drain code = %d", code)
	}
	st := srv.Cluster.Status()
	if st.Instances[1].State != "removed" {
		t.Errorf("instance 1 state = %q after drain", st.Instances[1].State)
	}
	// Queries keep working on the remaining instance.
	if code, _ := post(t, ts.URL+"/query", `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`); code != http.StatusOK {
		t.Errorf("query after drain = %d", code)
	}
	if code, _ := post(t, ts.URL+"/admin/drain?instance=9&token=admin", ""); code != http.StatusBadRequest {
		t.Errorf("bad instance code = %d", code)
	}
	if code, _ := post(t, ts.URL+"/admin/drain?instance=0", ""); code != http.StatusForbidden {
		t.Errorf("tokenless drain code = %d", code)
	}
}
