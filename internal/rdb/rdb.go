// Package rdb is an embedded relational database engine: typed tables,
// hash and ordered indexes, and a SQL subset sufficient for the queries
// the integration compiler generates (SELECT-FROM-WHERE with joins,
// grouping, ordering and limits) plus the DML and DDL the test harness
// needs.
//
// In the paper's deployment the relational sources are customers'
// production DBMSs; here rdb plays that role so that the compiler's
// "translate each fragment into the appropriate query language for the
// destination source" (§2.1) path is exercised against a real SQL
// consumer, including its use of indexes.
//
// Deviation from standard SQL: values compare with the data model's
// weak typing (xmldm.Compare), so VARCHAR values that parse as numbers
// order numerically ('9' < '10'). Inside the integration system this is
// exactly right — the mediator joins text from one source against
// numbers from another — but it differs from a vanilla DBMS.
package rdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmldm"
)

// Value is a cell value: one of the xmldm atom kinds.
type Value = xmldm.Value

// ColType enumerates column types.
type ColType int

// The supported column types.
const (
	TInt ColType = iota
	TFloat
	TString
	TBool
	TDate
)

// String returns the SQL spelling of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOL"
	case TDate:
		return "DATE"
	default:
		return "?"
	}
}

func parseColType(s string) (ColType, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return TFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING", "CLOB":
		return TString, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	case "DATE", "TIMESTAMP", "DATETIME":
		return TDate, nil
	default:
		return 0, fmt.Errorf("rdb: unknown column type %q", s)
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table's columns; PrimaryKey is the index into
// Columns of the primary-key column, or -1.
type Schema struct {
	Columns    []Column
	PrimaryKey int
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Row is one table row; len(Row) == len(Schema.Columns).
type Row []Value

// Table is an in-memory relational table with optional indexes.
type Table struct {
	Name    string
	Schema  Schema
	rows    []Row
	deleted []bool // tombstones, compacted lazily
	live    int
	indexes map[string]*Index // by column name (lower-case)
}

// Database is a named collection of tables. All methods are safe for
// concurrent use.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
}

// ErrNoTable is wrapped by errors for references to unknown tables.
var ErrNoTable = errors.New("no such table")

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateTable creates a table; it fails if the name is taken.
func (db *Database) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("rdb: table %q already exists", name)
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("rdb: table %q must have at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("rdb: duplicate column %q in table %q", c.Name, name)
		}
		seen[lc] = true
	}
	t := &Table{Name: name, Schema: schema, indexes: make(map[string]*Index)}
	if schema.PrimaryKey >= 0 {
		t.indexes[strings.ToLower(schema.Columns[schema.PrimaryKey].Name)] = newIndex(schema.Columns[schema.PrimaryKey].Name, true)
	}
	db.tables[key] = t
	return t, nil
}

// Table returns the named table.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("rdb: %w: %q", ErrNoTable, name)
	}
	return t, nil
}

// TableNames returns the table names in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("rdb: %w: %q", ErrNoTable, name)
	}
	delete(db.tables, key)
	return nil
}

// CreateIndex builds an index on the named column. unique enforces
// uniqueness on future inserts.
func (db *Database) CreateIndex(table, column string, unique bool) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("rdb: no column %q in table %q", column, table)
	}
	key := strings.ToLower(column)
	if _, ok := t.indexes[key]; ok {
		return nil // idempotent
	}
	idx := newIndex(t.Schema.Columns[ci].Name, unique)
	for rid, row := range t.rows {
		if t.deleted[rid] {
			continue
		}
		if err := idx.add(row[ci], rid); err != nil {
			return fmt.Errorf("rdb: building index on %s.%s: %w", table, column, err)
		}
	}
	t.indexes[key] = idx
	return nil
}

// HasIndex reports whether the table has an index on the column; the
// integration optimizer uses this to cost source-side plans.
func (db *Database) HasIndex(table, column string) bool {
	t, err := db.Table(table)
	if err != nil {
		return false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// Insert appends a row, coercing values to column types and maintaining
// indexes. It fails on arity mismatch, uncoercible values, or unique-key
// violations.
func (db *Database) Insert(table string, vals Row) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(vals) != len(t.Schema.Columns) {
		return fmt.Errorf("rdb: insert into %q: %d values for %d columns", table, len(vals), len(t.Schema.Columns))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Schema.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("rdb: insert into %q column %q: %w", table, t.Schema.Columns[i].Name, err)
		}
		row[i] = cv
	}
	rid := len(t.rows)
	for _, idx := range t.indexes {
		ci := t.Schema.ColIndex(idx.column)
		if err := idx.check(row[ci]); err != nil {
			return fmt.Errorf("rdb: insert into %q: %w", table, err)
		}
	}
	t.rows = append(t.rows, row)
	t.deleted = append(t.deleted, false)
	t.live++
	for _, idx := range t.indexes {
		ci := t.Schema.ColIndex(idx.column)
		if err := idx.add(row[ci], rid); err != nil {
			// check() above makes this unreachable, but keep the row
			// store consistent if an index implementation changes.
			t.deleted[rid] = true
			t.live--
			return err
		}
	}
	return nil
}

// RowCount returns the number of live rows; the optimizer's statistics
// hook.
func (db *Database) RowCount(table string) int {
	t, err := db.Table(table)
	if err != nil {
		return 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return t.live
}

// scanAll calls fn for every live row. Callers must hold at least a read
// lock on db.mu.
func (t *Table) scanAll(fn func(rid int, row Row) bool) {
	for rid, row := range t.rows {
		if t.deleted[rid] {
			continue
		}
		if !fn(rid, row) {
			return
		}
	}
}

// coerce converts v to the column type; Null passes through.
func coerce(v Value, ct ColType) (Value, error) {
	if v == nil {
		return xmldm.Null{}, nil
	}
	if v.Kind() == xmldm.KindNull {
		return v, nil
	}
	switch ct {
	case TInt:
		if i, ok := xmldm.ToInt(v); ok {
			return xmldm.Int(i), nil
		}
	case TFloat:
		if f, ok := xmldm.ToFloat(v); ok {
			return xmldm.Float(f), nil
		}
	case TString:
		return xmldm.String(xmldm.Stringify(v)), nil
	case TBool:
		switch x := v.(type) {
		case xmldm.Bool:
			return x, nil
		case xmldm.String:
			switch strings.ToLower(string(x)) {
			case "true", "t", "1", "yes":
				return xmldm.Bool(true), nil
			case "false", "f", "0", "no":
				return xmldm.Bool(false), nil
			}
		case xmldm.Int:
			return xmldm.Bool(x != 0), nil
		}
	case TDate:
		if d, ok := v.(xmldm.Date); ok {
			return d, nil
		}
		if s, ok := v.(xmldm.String); ok {
			if d, err := parseDate(string(s)); err == nil {
				return d, nil
			}
		}
	}
	return nil, fmt.Errorf("cannot coerce %s %q to %s", v.Kind(), v.String(), ct)
}
