package rdb

import (
	"strings"
	"testing"

	"repro/internal/xmldm"
)

// newTestDB builds a small customers/orders database used across tests.
func newTestDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("crm")
	stmts := []string{
		`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR, since DATE)`,
		`CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, total FLOAT, status VARCHAR)`,
		`INSERT INTO customers VALUES
			(1, 'Ada Lovelace', 'London', '1990-01-01'),
			(2, 'Alan Turing', 'London', '1991-06-23'),
			(3, 'Grace Hopper', 'New York', '1992-12-09'),
			(4, 'Edsger Dijkstra', 'Austin', '1993-05-11')`,
		`INSERT INTO orders VALUES
			(100, 1, 250.0, 'shipped'),
			(101, 1, 75.5, 'open'),
			(102, 2, 120.0, 'shipped'),
			(103, 3, 310.25, 'open'),
			(104, 3, 42.0, 'cancelled')`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Exec(`CREATE TABLE u (a INT, a VARCHAR)`); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := db.CreateTable("empty", Schema{PrimaryKey: -1}); err == nil {
		t.Error("empty schema should fail")
	}
}

func TestInsertAndSelectAll(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`SELECT * FROM customers`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Columns) != 4 || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Stats.RowsScanned != 4 {
		t.Errorf("scanned = %d", res.Stats.RowsScanned)
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	db := newTestDB(t)
	// Strings coerce to numbers and dates; numbers to strings.
	if _, err := db.Exec(`INSERT INTO customers VALUES ('5', 42, 'Paris', '2001-04-02')`); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec(`SELECT name, since FROM customers WHERE id = 5`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Kind() != xmldm.KindString || xmldm.Stringify(res.Rows[0][0]) != "42" {
		t.Errorf("name = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].Kind() != xmldm.KindDate {
		t.Errorf("since kind = %v", res.Rows[0][1].Kind())
	}
	// Uncoercible values fail.
	if _, err := db.Exec(`INSERT INTO customers VALUES ('abc', 'x', 'y', '2001-01-01')`); err == nil {
		t.Error("uncoercible id should fail")
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`INSERT INTO customers VALUES (1, 'Dup', 'X', '2000-01-01')`); err == nil {
		t.Error("duplicate primary key should fail")
	}
}

func TestSelectWhereComparisons(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM customers WHERE city = 'London'`, 2},
		{`SELECT * FROM customers WHERE city != 'London'`, 2},
		{`SELECT * FROM customers WHERE id > 2`, 2},
		{`SELECT * FROM customers WHERE id >= 2`, 3},
		{`SELECT * FROM customers WHERE id < 2`, 1},
		{`SELECT * FROM customers WHERE id <= 2 AND city = 'London'`, 2},
		{`SELECT * FROM customers WHERE city = 'London' OR city = 'Austin'`, 3},
		{`SELECT * FROM customers WHERE NOT city = 'London'`, 2},
		{`SELECT * FROM customers WHERE name LIKE 'A%'`, 2},
		{`SELECT * FROM customers WHERE name LIKE '%ra%'`, 2}, // Grace? no: G-r-a... "Grace Hopper" has "ra"? G,r,a yes. "Edsger Dijkstra" has "ra" at end. Ada no. Alan no.
		{`SELECT * FROM customers WHERE name LIKE '_da%'`, 1},
		{`SELECT * FROM customers WHERE name NOT LIKE 'A%'`, 2},
		{`SELECT * FROM customers WHERE city IN ('London', 'Austin')`, 3},
		{`SELECT * FROM customers WHERE city NOT IN ('London')`, 2},
		{`SELECT * FROM customers WHERE since IS NULL`, 0},
		{`SELECT * FROM customers WHERE since IS NOT NULL`, 4},
		{`SELECT * FROM orders WHERE total > 100 AND status = 'shipped'`, 2},
		{`SELECT * FROM orders WHERE total + 10 > 300`, 1},
		{`SELECT * FROM orders WHERE total * 2 >= 620.5`, 1},
	}
	for _, c := range cases {
		res, err := db.Exec(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if len(res.Rows) != c.want {
			t.Errorf("%s: rows = %d, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestSelectProjectionAndAliases(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT name AS who, upper(city) FROM customers WHERE id = 1`)
	if res.Columns[0] != "who" || res.Columns[1] != "col2" {
		t.Errorf("columns = %v", res.Columns)
	}
	if xmldm.Stringify(res.Rows[0][1]) != "LONDON" {
		t.Errorf("upper = %v", res.Rows[0][1])
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT DISTINCT city FROM customers`)
	if len(res.Rows) != 3 {
		t.Errorf("distinct cities = %d", len(res.Rows))
	}
}

func TestSelectOrderByAndLimit(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT name FROM customers ORDER BY name DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if xmldm.Stringify(res.Rows[0][0]) != "Grace Hopper" {
		t.Errorf("first = %v", res.Rows[0][0])
	}
	// ORDER BY an alias.
	res = db.MustExec(`SELECT total * 2 AS dbl FROM orders ORDER BY dbl LIMIT 1`)
	if f, _ := xmldm.ToFloat(res.Rows[0][0]); f != 84 {
		t.Errorf("smallest doubled total = %v", res.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT c.name, o.total FROM customers c JOIN orders o ON c.id = o.cust_id WHERE o.status = 'shipped' ORDER BY o.total DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if xmldm.Stringify(res.Rows[0][0]) != "Ada Lovelace" {
		t.Errorf("first = %v", res.Rows[0][0])
	}
}

func TestJoinNonEqui(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT c.id, o.oid FROM customers c JOIN orders o ON c.id < o.cust_id AND o.status = 'open'`)
	// open orders: 101 (cust 1), 103 (cust 3). c.id < cust_id:
	// for 101: none (no id < 1); for 103: ids 1,2 → 2 rows.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestImplicitCrossJoin(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT c.name FROM customers c, orders o WHERE c.id = o.cust_id AND o.total > 300`)
	if len(res.Rows) != 1 || xmldm.Stringify(res.Rows[0][0]) != "Grace Hopper" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT count(*), sum(total), avg(total), min(total), max(total) FROM orders`)
	row := res.Rows[0]
	if n, _ := xmldm.ToInt(row[0]); n != 5 {
		t.Errorf("count = %v", row[0])
	}
	if f, _ := xmldm.ToFloat(row[1]); f != 797.75 {
		t.Errorf("sum = %v", row[1])
	}
	if f, _ := xmldm.ToFloat(row[3]); f != 42 {
		t.Errorf("min = %v", row[3])
	}
	if f, _ := xmldm.ToFloat(row[4]); f != 310.25 {
		t.Errorf("max = %v", row[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT cust_id, count(*) AS n, sum(total) AS t FROM orders GROUP BY cust_id HAVING count(*) >= 2 ORDER BY cust_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if id, _ := xmldm.ToInt(res.Rows[0][0]); id != 1 {
		t.Errorf("first group = %v", res.Rows[0][0])
	}
	if n, _ := xmldm.ToInt(res.Rows[0][1]); n != 2 {
		t.Errorf("count = %v", res.Rows[0][1])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT count(*) FROM orders WHERE total > 10000`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if n, _ := xmldm.ToInt(res.Rows[0][0]); n != 0 {
		t.Errorf("count over empty = %v", res.Rows[0][0])
	}
}

func TestIndexUse(t *testing.T) {
	db := newTestDB(t)
	// Primary key index exists on customers.id.
	res := db.MustExec(`SELECT * FROM customers WHERE id = 3`)
	if !res.Stats.IndexUsed {
		t.Error("primary key lookup should use index")
	}
	if res.Stats.RowsScanned != 1 {
		t.Errorf("scanned = %d, want 1", res.Stats.RowsScanned)
	}
	// Range scan through the index.
	res = db.MustExec(`SELECT * FROM customers WHERE id >= 3`)
	if !res.Stats.IndexUsed || len(res.Rows) != 2 {
		t.Errorf("range: used=%v rows=%d", res.Stats.IndexUsed, len(res.Rows))
	}
	// Secondary index.
	if _, err := db.Exec(`CREATE INDEX idx_city ON customers (city)`); err != nil {
		t.Fatal(err)
	}
	if !db.HasIndex("customers", "city") {
		t.Error("HasIndex should report the new index")
	}
	res = db.MustExec(`SELECT * FROM customers WHERE city = 'London'`)
	if !res.Stats.IndexUsed || res.Stats.RowsScanned != 2 {
		t.Errorf("city lookup: used=%v scanned=%d", res.Stats.IndexUsed, res.Stats.RowsScanned)
	}
	// No index on name: full scan.
	res = db.MustExec(`SELECT * FROM customers WHERE name = 'Ada Lovelace'`)
	if res.Stats.IndexUsed || res.Stats.RowsScanned != 4 {
		t.Errorf("name lookup: used=%v scanned=%d", res.Stats.IndexUsed, res.Stats.RowsScanned)
	}
}

func TestIndexFilterFlippedOperands(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT * FROM customers WHERE 3 = id`)
	if !res.Stats.IndexUsed || len(res.Rows) != 1 {
		t.Errorf("flipped equality: used=%v rows=%d", res.Stats.IndexUsed, len(res.Rows))
	}
	res = db.MustExec(`SELECT * FROM customers WHERE 3 <= id`)
	if !res.Stats.IndexUsed || len(res.Rows) != 2 {
		t.Errorf("flipped range: used=%v rows=%d", res.Stats.IndexUsed, len(res.Rows))
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`UPDATE orders SET status = 'closed', total = total + 1 WHERE cust_id = 1`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := db.MustExec(`SELECT total FROM orders WHERE oid = 100`)
	if f, _ := xmldm.ToFloat(check.Rows[0][0]); f != 251 {
		t.Errorf("total = %v", check.Rows[0][0])
	}
	// Updating the indexed key keeps the index correct.
	db.MustExec(`UPDATE orders SET oid = 200 WHERE oid = 100`)
	if len(db.MustExec(`SELECT * FROM orders WHERE oid = 200`).Rows) != 1 {
		t.Error("index stale after key update")
	}
	if len(db.MustExec(`SELECT * FROM orders WHERE oid = 100`).Rows) != 0 {
		t.Error("old key still in index")
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`DELETE FROM orders WHERE status = 'cancelled'`)
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if db.RowCount("orders") != 4 {
		t.Errorf("live rows = %d", db.RowCount("orders"))
	}
	// Deleted rows invisible to index lookups too.
	if len(db.MustExec(`SELECT * FROM orders WHERE oid = 104`).Rows) != 0 {
		t.Error("deleted row visible via index")
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`DROP TABLE orders`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT * FROM orders`); err == nil {
		t.Error("query on dropped table should fail")
	}
	if _, err := db.Exec(`DROP TABLE orders`); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTableNames(t *testing.T) {
	db := newTestDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "customers" {
		t.Errorf("names = %v", names)
	}
}

func TestSQLErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM nosuch`,
		`SELECT nosuch FROM customers`,
		`SELECT * FROM customers WHERE`,
		`SELECT * FROM customers WHERE name LIKE 5`,
		`INSERT INTO customers VALUES (1)`,
		`INSERT INTO nosuch VALUES (1)`,
		`UPDATE customers SET nosuch = 1`,
		`SELECT name FROM customers GROUP BY name HAVING nosuch > 1`,
		`SELECT count(*) FROM customers WHERE count(*) > 1`, // aggregate in WHERE
		`SELECT * FROM customers LIMIT x`,
		`CREATE UNIQUE TABLE t (a INT)`,
		`SELECT * FROM customers ORDER BY`,
		`garbage`,
		`SELECT * FROM customers; extra`,
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("Exec(%q) should fail", s)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newTestDB(t)
	// "id" appears once, "cust_id" once; join and reference unqualified
	// column appearing on both sides via alias duplication.
	if _, err := db.Exec(`SELECT status FROM orders o1, orders o2 WHERE o1.oid = o2.oid`); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT lower(name) FROM customers WHERE id = 1`, "ada lovelace"},
		{`SELECT substr(name, 1, 3) FROM customers WHERE id = 1`, "Ada"},
		{`SELECT substr(name, 5) FROM customers WHERE id = 1`, "Lovelace"},
		{`SELECT concat(city, '-', id) FROM customers WHERE id = 2`, "London-2"},
		{`SELECT trim('  x  ') FROM customers WHERE id = 1`, "x"},
		{`SELECT replace(city, 'Lon', 'Lun') FROM customers WHERE id = 1`, "Lundon"},
		{`SELECT coalesce(NULL, name) FROM customers WHERE id = 1`, "Ada Lovelace"},
		{`SELECT length(city) FROM customers WHERE id = 1`, "6"},
		{`SELECT abs(0 - 5) FROM customers WHERE id = 1`, "5"},
	}
	for _, c := range cases {
		res, err := db.Exec(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if got := xmldm.Stringify(res.Rows[0][0]); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "abc", true},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"", "", true},
		{"", "a", false},
		{"abc", "abc", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%%", "x", true},
		{"_", "x", true},
		{"_", "", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDatabase("d")
	db.MustExec(`CREATE TABLE t (a INT, b VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)`)
	// Comparisons with NULL are false.
	if got := len(db.MustExec(`SELECT * FROM t WHERE a = 1`).Rows); got != 1 {
		t.Errorf("a=1 rows = %d", got)
	}
	if got := len(db.MustExec(`SELECT * FROM t WHERE a != 1`).Rows); got != 1 {
		t.Errorf("a!=1 rows = %d (NULL must not match)", got)
	}
	if got := len(db.MustExec(`SELECT * FROM t WHERE a IS NULL`).Rows); got != 1 {
		t.Errorf("IS NULL rows = %d", got)
	}
	// Aggregates skip NULLs.
	res := db.MustExec(`SELECT count(a), sum(a) FROM t`)
	if n, _ := xmldm.ToInt(res.Rows[0][0]); n != 2 {
		t.Errorf("count(a) = %v", res.Rows[0][0])
	}
	if s, _ := xmldm.ToInt(res.Rows[0][1]); s != 4 {
		t.Errorf("sum(a) = %v", res.Rows[0][1])
	}
	// Arithmetic with NULL yields NULL.
	res = db.MustExec(`SELECT a + 1 FROM t WHERE b = 'y'`)
	if res.Rows[0][0].Kind() != xmldm.KindNull {
		t.Errorf("NULL + 1 = %v", res.Rows[0][0])
	}
}

func TestIntegerAndFloatArithmetic(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT 7 / 2, 7.0 / 2, 7 * 3, 2 + 2.5 FROM customers WHERE id = 1`)
	if v, _ := xmldm.ToInt(res.Rows[0][0]); v != 3 {
		t.Errorf("7/2 = %v (integer division)", res.Rows[0][0])
	}
	if f, _ := xmldm.ToFloat(res.Rows[0][1]); f != 3.5 {
		t.Errorf("7.0/2 = %v", res.Rows[0][1])
	}
	if _, err := db.Exec(`SELECT 1 / 0 FROM customers`); err == nil {
		t.Error("division by zero should fail")
	}
}

func TestStringConcatWithPlus(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`SELECT name + '!' FROM customers WHERE id = 1`)
	if got := xmldm.Stringify(res.Rows[0][0]); got != "Ada Lovelace!" {
		t.Errorf("concat = %q", got)
	}
}

func TestConcurrentReads(t *testing.T) {
	db := newTestDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := db.Exec(`SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSQLCommentsAndCaseInsensitivity(t *testing.T) {
	db := newTestDB(t)
	res := db.MustExec(`select NAME from CUSTOMERS -- trailing comment
		where ID = 1`)
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestEscapedQuoteInString(t *testing.T) {
	db := NewDatabase("d")
	db.MustExec(`CREATE TABLE t (s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES ('O''Brien')`)
	res := db.MustExec(`SELECT s FROM t WHERE s = 'O''Brien'`)
	if len(res.Rows) != 1 || xmldm.Stringify(res.Rows[0][0]) != "O'Brien" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestVarcharLengthSuffix(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.Exec(`CREATE TABLE t (s VARCHAR(64), n DECIMAL(10, 2))`); err != nil {
		t.Fatalf("length suffix: %v", err)
	}
}

func TestSelectStarWithAggregateFails(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT * FROM orders GROUP BY status`); err == nil {
		t.Error("star with GROUP BY should fail")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := newTestDB(t)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "nosuch") {
			t.Error("MustExec should panic with the statement text")
		}
	}()
	db.MustExec(`SELECT * FROM nosuch`)
}
