package rdb

import (
	"fmt"
	"strings"

	"repro/internal/xmldm"
)

// evalSQL evaluates a scalar expression against one row of a row set.
// rs and row may be nil for constant expressions.
func evalSQL(e SQLExpr, rs *rowSet, row Row) (Value, error) {
	switch x := e.(type) {
	case *SQLLit:
		return x.Value, nil
	case *ColRef:
		if rs == nil {
			return nil, fmt.Errorf("rdb: column %s in constant context", x.String())
		}
		ci, err := rs.lookup(x.Table, x.Col)
		if err != nil {
			return nil, err
		}
		return row[ci], nil
	case *SQLBin:
		l, err := evalSQL(x.L, rs, row)
		if err != nil {
			return nil, err
		}
		r, err := evalSQL(x.R, rs, row)
		if err != nil {
			return nil, err
		}
		return applyBin(x.Op, l, r)
	case *SQLNot:
		v, err := evalSQL(x.E, rs, row)
		if err != nil {
			return nil, err
		}
		return xmldm.Bool(!xmldm.Truthy(v)), nil
	case *SQLLike:
		v, err := evalSQL(x.E, rs, row)
		if err != nil {
			return nil, err
		}
		if v == nil || v.Kind() == xmldm.KindNull {
			return xmldm.Bool(false), nil
		}
		return xmldm.Bool(likeMatch(x.Pattern, xmldm.Stringify(v))), nil
	case *SQLIn:
		v, err := evalSQL(x.E, rs, row)
		if err != nil {
			return nil, err
		}
		for _, le := range x.List {
			lv, err := evalSQL(le, rs, row)
			if err != nil {
				return nil, err
			}
			if xmldm.Equal(v, lv) {
				return xmldm.Bool(true), nil
			}
		}
		return xmldm.Bool(false), nil
	case *SQLIsNull:
		v, err := evalSQL(x.E, rs, row)
		if err != nil {
			return nil, err
		}
		isNull := v == nil || v.Kind() == xmldm.KindNull
		return xmldm.Bool(isNull != x.Not), nil
	case *SQLFunc:
		if sqlAggregates[x.Name] {
			return nil, fmt.Errorf("rdb: aggregate %s in row context (did you mean GROUP BY?)", x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalSQL(a, rs, row)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return applySQLFunc(x.Name, args)
	default:
		return nil, fmt.Errorf("rdb: unsupported expression %T", e)
	}
}

// applyBin applies a binary operator under SQL-ish semantics: comparisons
// with NULL yield false, arithmetic with NULL yields NULL.
func applyBin(op string, l, r Value) (Value, error) {
	lNull := l == nil || l.Kind() == xmldm.KindNull
	rNull := r == nil || r.Kind() == xmldm.KindNull
	switch op {
	case "AND":
		return xmldm.Bool(xmldm.Truthy(l) && xmldm.Truthy(r)), nil
	case "OR":
		return xmldm.Bool(xmldm.Truthy(l) || xmldm.Truthy(r)), nil
	case "=", "!=", "<", "<=", ">", ">=":
		if lNull || rNull {
			return xmldm.Bool(false), nil
		}
		c := xmldm.Compare(l, r)
		switch op {
		case "=":
			return xmldm.Bool(c == 0), nil
		case "!=":
			return xmldm.Bool(c != 0), nil
		case "<":
			return xmldm.Bool(c < 0), nil
		case "<=":
			return xmldm.Bool(c <= 0), nil
		case ">":
			return xmldm.Bool(c > 0), nil
		default:
			return xmldm.Bool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if lNull || rNull {
			return xmldm.Null{}, nil
		}
		// String concatenation with +.
		if op == "+" && (l.Kind() == xmldm.KindString || r.Kind() == xmldm.KindString) {
			if _, lok := xmldm.ToFloat(l); !lok {
				return xmldm.String(xmldm.Stringify(l) + xmldm.Stringify(r)), nil
			}
			if _, rok := xmldm.ToFloat(r); !rok {
				return xmldm.String(xmldm.Stringify(l) + xmldm.Stringify(r)), nil
			}
		}
		lf, lok := xmldm.ToFloat(l)
		rf, rok := xmldm.ToFloat(r)
		if !lok || !rok {
			return nil, fmt.Errorf("rdb: arithmetic on non-numeric values %s, %s", l.String(), r.String())
		}
		bothInt := l.Kind() == xmldm.KindInt && r.Kind() == xmldm.KindInt
		var f float64
		switch op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("rdb: division by zero")
			}
			f = lf / rf
			if bothInt {
				// SQL integer division truncates.
				return xmldm.Int(int64(lf) / int64(rf)), nil
			}
		}
		if bothInt {
			return xmldm.Int(int64(f)), nil
		}
		return xmldm.Float(f), nil
	default:
		return nil, fmt.Errorf("rdb: unknown operator %q", op)
	}
}

// applySQLFunc applies a scalar function.
func applySQLFunc(name string, args []Value) (Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("rdb: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	str := func(i int) string { return xmldm.Stringify(args[i]) }
	switch name {
	case "upper":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.ToUpper(str(0))), nil
	case "lower":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.ToLower(str(0))), nil
	case "length", "strlen":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.Int(int64(len(str(0)))), nil
	case "trim":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.TrimSpace(str(0))), nil
	case "substr":
		// substr(s, start[, len]) with 1-based start, as in SQL.
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("rdb: substr expects 2 or 3 arguments")
		}
		s := str(0)
		start, ok := xmldm.ToInt(args[1])
		if !ok {
			return nil, fmt.Errorf("rdb: substr start must be a number")
		}
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			n, ok := xmldm.ToInt(args[2])
			if !ok {
				return nil, fmt.Errorf("rdb: substr length must be a number")
			}
			if e := i + int(n); e < end {
				end = e
			}
			if end < i {
				end = i
			}
		}
		return xmldm.String(s[i:end]), nil
	case "concat":
		var sb strings.Builder
		for i := range args {
			sb.WriteString(str(i))
		}
		return xmldm.String(sb.String()), nil
	case "abs":
		if err := arity(1); err != nil {
			return nil, err
		}
		if i, ok := args[0].(xmldm.Int); ok {
			if i < 0 {
				return -i, nil
			}
			return i, nil
		}
		f, ok := xmldm.ToFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("rdb: abs of non-number")
		}
		if f < 0 {
			f = -f
		}
		return xmldm.Float(f), nil
	case "coalesce":
		for _, a := range args {
			if a != nil && a.Kind() != xmldm.KindNull {
				return a, nil
			}
		}
		return xmldm.Null{}, nil
	case "replace":
		if err := arity(3); err != nil {
			return nil, err
		}
		return xmldm.String(strings.ReplaceAll(str(0), str(1), str(2))), nil
	default:
		return nil, fmt.Errorf("rdb: unknown function %q", name)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte).
func likeMatch(pattern, s string) bool {
	// Dynamic-programming match over bytes; patterns are short.
	p, n := len(pattern), len(s)
	// match[j] means pattern[:i] matches s[:j].
	match := make([]bool, n+1)
	match[0] = true
	for j := 1; j <= n; j++ {
		match[j] = false
	}
	for i := 1; i <= p; i++ {
		pc := pattern[i-1]
		if pc == '%' {
			// new[j] = old[j] (match zero chars) || new[j-1] (extend the
			// run); updating left to right makes match[j-1] the new value.
			for j := 1; j <= n; j++ {
				match[j] = match[j] || match[j-1]
			}
			continue
		}
		newRow := make([]bool, n+1)
		newRow[0] = false
		for j := 1; j <= n; j++ {
			if pc == '_' || pc == s[j-1] {
				newRow[j] = match[j-1]
			}
		}
		copy(match, newRow)
	}
	return match[n]
}
