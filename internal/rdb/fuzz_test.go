package rdb

import "testing"

// FuzzParseSQL is the native fuzz target for the SQL parser. Run with:
//
//	go test -fuzz=FuzzParseSQL ./internal/rdb
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		`SELECT a, count(*) FROM t JOIN u ON t.a = u.b WHERE a LIKE 'x%' GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 5`,
		`INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'O''Brien')`,
		`CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(64))`,
		`UPDATE t SET a = a + 1 WHERE b IS NOT NULL`,
		`DELETE FROM t WHERE a IN (1, 2) OR NOT b LIKE '_'`,
		`SELECT 'unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must not panic; errors are fine.
		_, _ = ParseSQL(src)
	})
}
