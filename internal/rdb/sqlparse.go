package rdb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmldm"
)

// The SQL dialect: CREATE TABLE / CREATE [UNIQUE] INDEX / INSERT /
// SELECT (joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT,
// aggregates, LIKE, IN, IS NULL) / UPDATE / DELETE / DROP TABLE.

// Stmt is a parsed SQL statement.
type Stmt interface{ isStmt() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name   string
	Schema Schema
}

func (*CreateTableStmt) isStmt() {}

// CreateIndexStmt is CREATE [UNIQUE] INDEX ON table (column).
type CreateIndexStmt struct {
	Table  string
	Column string
	Unique bool
}

func (*CreateIndexStmt) isStmt() {}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) isStmt() {}

// InsertStmt is INSERT INTO ... VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]SQLExpr
}

func (*InsertStmt) isStmt() {}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	Star     bool
	From     []TableRef
	Joins    []JoinClause
	Where    SQLExpr
	GroupBy  []*ColRef
	Having   SQLExpr
	OrderBy  []SQLOrderItem
	Limit    int // -1 = none
}

func (*SelectStmt) isStmt() {}

// UpdateStmt is UPDATE ... SET ... [WHERE].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where SQLExpr
}

func (*UpdateStmt) isStmt() {}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Expr   SQLExpr
}

// DeleteStmt is DELETE FROM ... [WHERE].
type DeleteStmt struct {
	Table string
	Where SQLExpr
}

func (*DeleteStmt) isStmt() {}

// SelectItem is one projected expression with optional alias.
type SelectItem struct {
	Expr  SQLExpr
	Alias string
}

// TableRef is a table with optional alias in FROM.
type TableRef struct {
	Table string
	Alias string
}

// Ref returns the name the table is referenced by (alias or table name).
func (t TableRef) Ref() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one INNER JOIN.
type JoinClause struct {
	Table TableRef
	On    SQLExpr
}

// SQLOrderItem is one ORDER BY key.
type SQLOrderItem struct {
	Expr SQLExpr
	Desc bool
}

// SQLExpr is a SQL scalar expression.
type SQLExpr interface{ isSQLExpr() }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string
	Col   string
}

func (*ColRef) isSQLExpr() {}

// String renders the reference as written.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Col
	}
	return c.Col
}

// SQLLit is a literal value.
type SQLLit struct{ Value Value }

func (*SQLLit) isSQLExpr() {}

// SQLBin is a binary operation: comparison, arithmetic, AND, OR.
type SQLBin struct {
	Op   string
	L, R SQLExpr
}

func (*SQLBin) isSQLExpr() {}

// SQLNot negates a boolean expression.
type SQLNot struct{ E SQLExpr }

func (*SQLNot) isSQLExpr() {}

// SQLLike is expr LIKE 'pattern' with % and _ wildcards.
type SQLLike struct {
	E       SQLExpr
	Pattern string
}

func (*SQLLike) isSQLExpr() {}

// SQLIn is expr IN (literals...).
type SQLIn struct {
	E    SQLExpr
	List []SQLExpr
}

func (*SQLIn) isSQLExpr() {}

// SQLIsNull is expr IS [NOT] NULL.
type SQLIsNull struct {
	E   SQLExpr
	Not bool
}

func (*SQLIsNull) isSQLExpr() {}

// SQLFunc is a function or aggregate call; Star marks COUNT(*).
type SQLFunc struct {
	Name string
	Args []SQLExpr
	Star bool
}

func (*SQLFunc) isSQLExpr() {}

// sqlAggregates are the aggregate function names.
var sqlAggregates = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

// --- lexer ---

type sqlTok struct {
	kind string // "ident" "num" "str" "op" "eof"
	text string
	pos  int
}

func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	emit := func(kind, text string, pos int) { toks = append(toks, sqlTok{kind, text, pos}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("rdb: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			emit("str", sb.String(), start)
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			emit("num", src[start:i], start)
		case isSQLIdentStart(c):
			start := i
			for i < len(src) && (isSQLIdentStart(src[i]) || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			emit("ident", src[start:i], start)
		case strings.ContainsRune("(),.*=+-/", rune(c)):
			emit("op", string(c), i)
			i++
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
				emit("op", src[i:i+2], i)
				i += 2
			} else {
				emit("op", "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit("op", ">=", i)
				i += 2
			} else {
				emit("op", ">", i)
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				emit("op", "!=", i)
				i += 2
			} else {
				return nil, fmt.Errorf("rdb: unexpected '!' at offset %d", i)
			}
		case c == ';':
			emit("op", ";", i)
			i++
		default:
			return nil, fmt.Errorf("rdb: unexpected character %q at offset %d", c, i)
		}
	}
	emit("eof", "", i)
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// --- parser ---

type sqlParser struct {
	toks []sqlTok
	i    int
}

// ParseSQL parses one SQL statement.
func ParseSQL(src string) (Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("rdb: unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

func (p *sqlParser) peek() sqlTok { return p.toks[p.i] }

func (p *sqlParser) next() sqlTok {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *sqlParser) kw(word string) bool {
	t := p.peek()
	return t.kind == "ident" && strings.EqualFold(t.text, word)
}

func (p *sqlParser) acceptKw(word string) bool {
	if p.kw(word) {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(word string) error {
	if !p.acceptKw(word) {
		return fmt.Errorf("rdb: expected %s, found %q", word, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectOp(op string) error {
	t := p.peek()
	if t.kind != "op" || t.text != op {
		return fmt.Errorf("rdb: expected %q, found %q", op, t.text)
	}
	p.next()
	return nil
}

func (p *sqlParser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == "op" && t.text == op {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != "ident" {
		return "", fmt.Errorf("rdb: expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *sqlParser) parseStmt() (Stmt, error) {
	switch {
	case p.kw("SELECT"):
		return p.parseSelect()
	case p.kw("INSERT"):
		return p.parseInsert()
	case p.kw("CREATE"):
		return p.parseCreate()
	case p.kw("UPDATE"):
		return p.parseUpdate()
	case p.kw("DELETE"):
		return p.parseDelete()
	case p.kw("DROP"):
		p.next()
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	default:
		return nil, fmt.Errorf("rdb: unknown statement starting with %q", p.peek().text)
	}
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, fmt.Errorf("rdb: UNIQUE TABLE is not valid")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		schema := Schema{PrimaryKey: -1}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typName, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct, err := parseColType(typName)
			if err != nil {
				return nil, err
			}
			// Swallow length suffixes like VARCHAR(64).
			if p.acceptOp("(") {
				for p.peek().kind == "num" || p.acceptOp(",") {
					p.next()
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			schema.Columns = append(schema.Columns, Column{Name: col, Type: ct})
			if p.acceptKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				schema.PrimaryKey = len(schema.Columns) - 1
			}
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Schema: schema}, nil
	case p.acceptKw("INDEX"):
		// CREATE [UNIQUE] INDEX [name] ON table (column)
		if p.peek().kind == "ident" && !p.kw("ON") {
			p.next() // optional index name, unused
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Column: col, Unique: unique}, nil
	default:
		return nil, fmt.Errorf("rdb: expected TABLE or INDEX after CREATE")
	}
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []SQLExpr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *sqlParser) parseSelect() (Stmt, error) {
	p.next() // SELECT
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKw("DISTINCT")
	if p.acceptOp("*") {
		st.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			st.Items = append(st.Items, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, tr)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	for p.kw("JOIN") || p.kw("INNER") {
		p.acceptKw("INNER")
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Table: tr, On: on})
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cr, ok := e.(*ColRef)
			if !ok {
				return nil, fmt.Errorf("rdb: GROUP BY supports column references only")
			}
			st.GroupBy = append(st.GroupBy, cr)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SQLOrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.kind != "num" {
			return nil, fmt.Errorf("rdb: expected number after LIMIT")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("rdb: bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.peek().kind == "ident" && !isSQLKeyword(p.peek().text) {
		tr.Alias = p.next().text
	}
	return tr, nil
}

var sqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "join": true, "inner": true,
	"on": true, "where": true, "group": true, "by": true, "having": true,
	"order": true, "asc": true, "desc": true, "limit": true, "and": true,
	"or": true, "not": true, "like": true, "in": true, "is": true, "null": true,
	"as": true, "values": true, "insert": true, "into": true, "create": true,
	"table": true, "index": true, "unique": true, "primary": true, "key": true,
	"update": true, "set": true, "delete": true, "drop": true, "true": true,
	"false": true,
}

func isSQLKeyword(s string) bool { return sqlKeywords[strings.ToLower(s)] }

// Expression precedence: OR < AND < NOT < comparison/LIKE/IN/IS < add < mul < primary.
func (p *sqlParser) parseExpr() (SQLExpr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (SQLExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &SQLBin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (SQLExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &SQLBin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (SQLExpr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &SQLNot{E: e}, nil
	}
	return p.parseCmp()
}

func (p *sqlParser) parseCmp() (SQLExpr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == "op" && (t.text == "=" || t.text == "!=" || t.text == "<>" ||
		t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
		op := p.next().text
		if op == "<>" {
			op = "!="
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &SQLBin{Op: op, L: l, R: r}, nil
	case p.kw("LIKE"):
		p.next()
		pt := p.peek()
		if pt.kind != "str" {
			return nil, fmt.Errorf("rdb: LIKE requires a string pattern")
		}
		p.next()
		return &SQLLike{E: l, Pattern: pt.text}, nil
	case p.kw("IN"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []SQLExpr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &SQLIn{E: l, List: list}, nil
	case p.kw("IS"):
		p.next()
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &SQLIsNull{E: l, Not: not}, nil
	case p.kw("NOT"):
		// expr NOT LIKE / NOT IN
		p.next()
		switch {
		case p.acceptKw("LIKE"):
			pt := p.peek()
			if pt.kind != "str" {
				return nil, fmt.Errorf("rdb: LIKE requires a string pattern")
			}
			p.next()
			return &SQLNot{E: &SQLLike{E: l, Pattern: pt.text}}, nil
		case p.acceptKw("IN"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []SQLExpr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SQLNot{E: &SQLIn{E: l, List: list}}, nil
		default:
			return nil, fmt.Errorf("rdb: expected LIKE or IN after NOT")
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdd() (SQLExpr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "op" && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &SQLBin{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseMul() (SQLExpr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "op" && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &SQLBin{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parsePrimary() (SQLExpr, error) {
	t := p.peek()
	switch {
	case t.kind == "num":
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("rdb: bad number %q", t.text)
			}
			return &SQLLit{Value: xmldm.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rdb: bad number %q", t.text)
		}
		return &SQLLit{Value: xmldm.Int(n)}, nil
	case t.kind == "str":
		p.next()
		return &SQLLit{Value: xmldm.String(t.text)}, nil
	case t.kind == "op" && t.text == "-":
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &SQLBin{Op: "-", L: &SQLLit{Value: xmldm.Int(0)}, R: e}, nil
	case t.kind == "op" && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.kw("NULL"):
		p.next()
		return &SQLLit{Value: xmldm.Null{}}, nil
	case p.kw("TRUE"):
		p.next()
		return &SQLLit{Value: xmldm.Bool(true)}, nil
	case p.kw("FALSE"):
		p.next()
		return &SQLLit{Value: xmldm.Bool(false)}, nil
	case t.kind == "ident":
		p.next()
		// Function call?
		if p.acceptOp("(") {
			fn := &SQLFunc{Name: strings.ToLower(t.text)}
			if p.acceptOp("*") {
				fn.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fn, nil
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, a)
					if p.acceptOp(",") {
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fn, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Col: col}, nil
		}
		return &ColRef{Col: t.text}, nil
	default:
		return nil, fmt.Errorf("rdb: unexpected %q in expression", t.text)
	}
}
