package rdb

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/xmldm"
)

// Index is a combined hash + ordered index over one column. The hash map
// serves equality lookups in O(1); the sorted key list serves range scans
// in O(log n + k). Keeping both in one structure mirrors what the
// compiler cares about: "the presence of indices on the data" (§2.1)
// determines whether a selection is cheap at the source.
type Index struct {
	column string
	unique bool
	hash   map[uint64][]entry
	keys   []orderedKey // sorted by value
	dirty  bool         // keys need re-sorting
}

type entry struct {
	val Value
	rid int
}

type orderedKey struct {
	val Value
	rid int
}

func newIndex(column string, unique bool) *Index {
	return &Index{column: column, unique: unique, hash: make(map[uint64][]entry)}
}

// check reports a uniqueness violation that adding v would cause.
func (ix *Index) check(v Value) error {
	if !ix.unique || v == nil || v.Kind() == xmldm.KindNull {
		return nil
	}
	h := xmldm.Hash(v)
	for _, e := range ix.hash[h] {
		if xmldm.Equal(e.val, v) {
			return fmt.Errorf("unique index on %q: duplicate key %s", ix.column, v.String())
		}
	}
	return nil
}

func (ix *Index) add(v Value, rid int) error {
	if err := ix.check(v); err != nil {
		return err
	}
	if v == nil {
		v = xmldm.Null{}
	}
	h := xmldm.Hash(v)
	ix.hash[h] = append(ix.hash[h], entry{val: v, rid: rid})
	ix.keys = append(ix.keys, orderedKey{val: v, rid: rid})
	ix.dirty = true
	return nil
}

func (ix *Index) remove(v Value, rid int) {
	if v == nil {
		v = xmldm.Null{}
	}
	h := xmldm.Hash(v)
	bucket := ix.hash[h]
	for i, e := range bucket {
		if e.rid == rid {
			ix.hash[h] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	for i, k := range ix.keys {
		if k.rid == rid {
			ix.keys = append(ix.keys[:i], ix.keys[i+1:]...)
			break
		}
	}
}

// lookupEq returns the row ids whose column equals v.
func (ix *Index) lookupEq(v Value) []int {
	var out []int
	for _, e := range ix.hash[xmldm.Hash(v)] {
		if xmldm.Equal(e.val, v) {
			out = append(out, e.rid)
		}
	}
	return out
}

// lookupRange returns row ids with lo <= value <= hi; nil bounds are
// open. Inclusivity of each bound is controlled by loInc/hiInc.
func (ix *Index) lookupRange(lo, hi Value, loInc, hiInc bool) []int {
	ix.ensureSorted()
	n := len(ix.keys)
	start := 0
	if lo != nil {
		start = sort.Search(n, func(i int) bool {
			c := xmldm.Compare(ix.keys[i].val, lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []int
	for i := start; i < n; i++ {
		if hi != nil {
			c := xmldm.Compare(ix.keys[i].val, hi)
			if c > 0 || (c == 0 && !hiInc) {
				break
			}
		}
		out = append(out, ix.keys[i].rid)
	}
	return out
}

func (ix *Index) ensureSorted() {
	if !ix.dirty {
		return
	}
	sort.SliceStable(ix.keys, func(i, j int) bool {
		return xmldm.Compare(ix.keys[i].val, ix.keys[j].val) < 0
	})
	ix.dirty = false
}

// parseDate accepts the date formats the generators and SQL dialect use.
func parseDate(s string) (xmldm.Date, error) {
	for _, layout := range []string{time.RFC3339, "2006-01-02", "2006-01-02 15:04:05"} {
		if t, err := time.Parse(layout, s); err == nil {
			return xmldm.Date(t), nil
		}
	}
	return xmldm.Date{}, fmt.Errorf("rdb: unparseable date %q", s)
}
