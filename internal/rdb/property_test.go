package rdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldm"
)

// TestInsertSelectRoundTrip_Property: every inserted row is retrievable
// by primary key with exactly the coerced values, SELECT * returns all
// live rows, and WHERE range predicates agree with a naive scan — with
// and without an index on the predicate column (the indexed and
// unindexed paths must agree).
func TestInsertSelectRoundTrip_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase("p")
		db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR)`)
		n := 5 + rng.Intn(40)
		type row struct {
			v int
			s string
		}
		model := map[int]row{}
		for i := 0; i < n; i++ {
			v := rng.Intn(100)
			s := fmt.Sprintf("s%d", rng.Intn(10))
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d, '%s')`, i, v, s))
			model[i] = row{v, s}
		}
		// Random deletes.
		for i := 0; i < n/4; i++ {
			id := rng.Intn(n)
			db.MustExec(fmt.Sprintf(`DELETE FROM t WHERE id = %d`, id))
			delete(model, id)
		}

		// Count matches.
		res := db.MustExec(`SELECT count(*) FROM t`)
		if c, _ := xmldm.ToInt(res.Rows[0][0]); int(c) != len(model) {
			t.Logf("seed %d: count %d vs model %d", seed, c, len(model))
			return false
		}

		// Point lookups through the pk index.
		for id, want := range model {
			res := db.MustExec(fmt.Sprintf(`SELECT v, s FROM t WHERE id = %d`, id))
			if len(res.Rows) != 1 {
				t.Logf("seed %d: id %d rows = %d", seed, id, len(res.Rows))
				return false
			}
			gv, _ := xmldm.ToInt(res.Rows[0][0])
			if int(gv) != want.v || xmldm.Stringify(res.Rows[0][1]) != want.s {
				t.Logf("seed %d: id %d got (%d,%s) want (%d,%s)", seed, id, gv, res.Rows[0][1], want.v, want.s)
				return false
			}
		}

		// Range predicate: unindexed vs indexed column must agree with
		// the model.
		lo := rng.Intn(100)
		naive := 0
		for _, r := range model {
			if r.v >= lo {
				naive++
			}
		}
		q := fmt.Sprintf(`SELECT count(*) FROM t WHERE v >= %d`, lo)
		before := db.MustExec(q)
		db.MustExec(`CREATE INDEX ON t (v)`)
		after := db.MustExec(q)
		b, _ := xmldm.ToInt(before.Rows[0][0])
		a, _ := xmldm.ToInt(after.Rows[0][0])
		if int(b) != naive || int(a) != naive {
			t.Logf("seed %d: range count naive=%d scan=%d indexed=%d", seed, naive, b, a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOrderByIsSorted_Property: ORDER BY output is sorted under the
// model's comparison, for random data including ties.
func TestOrderByIsSorted_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase("p")
		db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
		n := 3 + rng.Intn(30)
		for i := 0; i < n; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, rng.Intn(8)))
		}
		desc := rng.Intn(2) == 0
		q := `SELECT v FROM t ORDER BY v`
		if desc {
			q += " DESC"
		}
		res := db.MustExec(q)
		for i := 1; i < len(res.Rows); i++ {
			c := xmldm.Compare(res.Rows[i-1][0], res.Rows[i][0])
			if desc && c < 0 || !desc && c > 0 {
				t.Logf("seed %d: out of order at %d (desc=%v)", seed, i, desc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLikeMatchesNaive_Property: the LIKE matcher agrees with a naive
// regexp-free reference built by brute force over short strings.
func TestLikeMatchesNaive_Property(t *testing.T) {
	alphabet := "ab%_"
	rng := rand.New(rand.NewSource(7))
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(2)]) // data: only a, b
		}
		return sb.String()
	}
	randPat := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(4)])
		}
		return sb.String()
	}
	var naive func(p, s string) bool
	naive = func(p, s string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if naive(p[1:], s[i:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && naive(p[1:], s[1:])
		default:
			return s != "" && s[0] == p[0] && naive(p[1:], s[1:])
		}
	}
	for i := 0; i < 3000; i++ {
		p := randPat(rng.Intn(6))
		s := randStr(rng.Intn(8))
		if likeMatch(p, s) != naive(p, s) {
			t.Fatalf("likeMatch(%q, %q) = %v, naive = %v", p, s, likeMatch(p, s), naive(p, s))
		}
	}
}
