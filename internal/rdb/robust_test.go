package rdb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseSQLNeverPanics_Property: the SQL parser handles arbitrary
// token soup without panicking — it receives generated fragments in
// production, but a substrate library must not crash on bad input.
func TestParseSQLNeverPanics_Property(t *testing.T) {
	pieces := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "CREATE",
		"TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY", "UPDATE", "SET",
		"DELETE", "DROP", "JOIN", "ON", "GROUP", "BY", "HAVING", "ORDER",
		"LIMIT", "AND", "OR", "NOT", "LIKE", "IN", "IS", "NULL", "AS",
		"count", "t", "a", "b", "*", ",", "(", ")", "=", "<", ">", "<=",
		">=", "<>", "!=", "+", "-", "/", ".", "'str'", "''", "1", "2.5",
		";", "--c\n", "'unterminated",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseSQL panicked on %q: %v", sb.String(), r)
			}
		}()
		_, _ = ParseSQL(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestExecRandomStatementsNeverPanic drives random (mostly invalid)
// statements against a live database: errors are fine, panics are not,
// and the table must stay consistent for valid queries afterwards.
func TestExecRandomStatementsNeverPanic(t *testing.T) {
	db := NewDatabase("f")
	db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	stmts := []string{
		`SELECT * FROM t WHERE id = id`,
		`SELECT v FROM t GROUP BY v HAVING count(*) > 0`,
		`SELECT count(v), max(id) FROM t`,
		`SELECT * FROM t t1 JOIN t t2 ON t1.id = t2.id JOIN t t3 ON t3.id = t1.id`,
		`UPDATE t SET v = v WHERE id IN (1, 2, 3)`,
		`DELETE FROM t WHERE id > 1000`,
		`SELECT * FROM t ORDER BY v DESC, id ASC LIMIT 0`,
		`SELECT id + id * id - id / 1 FROM t`,
		`SELECT * FROM t WHERE v LIKE '%' AND v NOT LIKE '_______________'`,
		`SELECT coalesce(NULL, NULL, v) FROM t`,
		`SELECT upper(lower(upper(v))) FROM t`,
		`INSERT INTO t (v, id) VALUES ('c', 3)`,
		`SELECT * FROM t WHERE id IS NOT NULL AND NOT id IS NULL`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	res := db.MustExec(`SELECT count(*) FROM t`)
	if got := res.Rows[0][0].String(); got != "3" {
		t.Errorf("final count = %s", got)
	}
}
