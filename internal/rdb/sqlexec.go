package rdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmldm"
)

// Result is the outcome of executing a statement. For SELECT, Columns
// names the output columns and Rows holds the data; for DML, Affected
// reports the touched row count.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
	Stats    ExecStats
}

// ExecStats reports work done by the executor; the integration
// optimizer's cost model and experiment E5 read these.
type ExecStats struct {
	RowsScanned int  // base-table rows touched
	IndexUsed   bool // an index restricted the scan
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(sql string) (*Result, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// MustExec executes a statement and panics on error; for test fixtures.
func (db *Database) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("rdb: %v\n%s", err, sql))
	}
	return r
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateTableStmt:
		_, err := db.CreateTable(st.Name, st.Schema)
		return &Result{}, err
	case *CreateIndexStmt:
		return &Result{}, db.CreateIndex(st.Table, st.Column, st.Unique)
	case *DropTableStmt:
		return &Result{}, db.DropTable(st.Name)
	case *InsertStmt:
		return db.execInsert(st)
	case *SelectStmt:
		return db.execSelect(st)
	case *UpdateStmt:
		return db.execUpdate(st)
	case *DeleteStmt:
		return db.execDelete(st)
	default:
		return nil, fmt.Errorf("rdb: unsupported statement %T", stmt)
	}
}

func (db *Database) execInsert(st *InsertStmt) (*Result, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, exprRow := range st.Rows {
		vals := make(Row, len(t.Schema.Columns))
		for i := range vals {
			vals[i] = xmldm.Null{}
		}
		if len(st.Columns) > 0 {
			if len(exprRow) != len(st.Columns) {
				return nil, fmt.Errorf("rdb: insert arity mismatch")
			}
			for i, col := range st.Columns {
				ci := t.Schema.ColIndex(col)
				if ci < 0 {
					return nil, fmt.Errorf("rdb: no column %q in %q", col, st.Table)
				}
				v, err := evalConst(exprRow[i])
				if err != nil {
					return nil, err
				}
				vals[ci] = v
			}
		} else {
			if len(exprRow) != len(t.Schema.Columns) {
				return nil, fmt.Errorf("rdb: insert arity mismatch")
			}
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
		}
		if err := db.Insert(st.Table, vals); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// evalConst evaluates an expression with no row context (INSERT values).
func evalConst(e SQLExpr) (Value, error) {
	return evalSQL(e, nil, nil)
}

// colKey identifies one column of an intermediate row set.
type colKey struct {
	qual string // table alias, lower-case
	name string // column name, lower-case
}

// rowSet is an intermediate table during SELECT evaluation.
type rowSet struct {
	cols []colKey
	rows []Row
}

func (rs *rowSet) lookup(qual, name string) (int, error) {
	qual = strings.ToLower(qual)
	name = strings.ToLower(name)
	found := -1
	for i, c := range rs.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("rdb: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("rdb: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("rdb: unknown column %q", name)
	}
	return found, nil
}

func (db *Database) execSelect(st *SelectStmt) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	res := &Result{}

	// Build the base row set from FROM and JOIN clauses.
	rs, err := db.buildFrom(st, &res.Stats)
	if err != nil {
		return nil, err
	}

	// WHERE (any conjuncts not already consumed by the index path).
	if st.Where != nil {
		filtered := rs.rows[:0:0]
		for _, row := range rs.rows {
			v, err := evalSQL(st.Where, rs, row)
			if err != nil {
				return nil, err
			}
			if xmldm.Truthy(v) {
				filtered = append(filtered, row)
			}
		}
		rs = &rowSet{cols: rs.cols, rows: filtered}
	}

	hasAgg := selectHasAggregate(st)
	if hasAgg || len(st.GroupBy) > 0 {
		rs, err = aggregate(st, rs)
		if err != nil {
			return nil, err
		}
		// After aggregation the row set's columns are exactly the output
		// columns; ORDER BY and LIMIT operate on it directly.
		if err := orderRows(st.OrderBy, rs, nil); err != nil {
			return nil, err
		}
		if st.Limit >= 0 && len(rs.rows) > st.Limit {
			rs.rows = rs.rows[:st.Limit]
		}
		for _, c := range rs.cols {
			res.Columns = append(res.Columns, c.name)
		}
		res.Rows = rs.rows
		return res, nil
	}

	// Non-aggregated: order on the full row set (so keys may reference
	// any input column), then project, then dedupe, then limit.
	if err := orderRows(st.OrderBy, rs, st.Items); err != nil {
		return nil, err
	}

	var outCols []string
	var outRows []Row
	if st.Star {
		for _, c := range rs.cols {
			outCols = append(outCols, c.name)
		}
		outRows = rs.rows
	} else {
		for i, item := range st.Items {
			outCols = append(outCols, itemName(item, i))
		}
		for _, row := range rs.rows {
			out := make(Row, len(st.Items))
			for i, item := range st.Items {
				v, err := evalSQL(item.Expr, rs, row)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
		}
	}
	if st.Distinct {
		outRows = dedupeRows(outRows)
	}
	if st.Limit >= 0 && len(outRows) > st.Limit {
		outRows = outRows[:st.Limit]
	}
	res.Columns = outCols
	res.Rows = outRows
	return res, nil
}

func itemName(item SelectItem, i int) string {
	if item.Alias != "" {
		return strings.ToLower(item.Alias)
	}
	if cr, ok := item.Expr.(*ColRef); ok {
		return strings.ToLower(cr.Col)
	}
	return fmt.Sprintf("col%d", i+1)
}

// buildFrom materializes the FROM/JOIN row set, applying index-assisted
// scans for single-table queries when WHERE allows.
func (db *Database) buildFrom(st *SelectStmt, stats *ExecStats) (*rowSet, error) {
	load := func(tr TableRef, filter *indexFilter) (*rowSet, error) {
		t, ok := db.tables[strings.ToLower(tr.Table)]
		if !ok {
			return nil, fmt.Errorf("rdb: %w: %q", ErrNoTable, tr.Table)
		}
		rs := &rowSet{}
		qual := strings.ToLower(tr.Ref())
		for _, c := range t.Schema.Columns {
			rs.cols = append(rs.cols, colKey{qual: qual, name: strings.ToLower(c.Name)})
		}
		if filter != nil {
			idx := t.indexes[filter.column]
			var rids []int
			if filter.eq != nil {
				rids = idx.lookupEq(filter.eq)
			} else {
				rids = idx.lookupRange(filter.lo, filter.hi, filter.loInc, filter.hiInc)
			}
			stats.IndexUsed = true
			for _, rid := range rids {
				if !t.deleted[rid] {
					stats.RowsScanned++
					rs.rows = append(rs.rows, t.rows[rid])
				}
			}
			return rs, nil
		}
		t.scanAll(func(_ int, row Row) bool {
			stats.RowsScanned++
			rs.rows = append(rs.rows, row)
			return true
		})
		return rs, nil
	}

	// Index path: single table, WHERE has a usable conjunct.
	var filter *indexFilter
	if len(st.From) == 1 && len(st.Joins) == 0 && st.Where != nil {
		if t, ok := db.tables[strings.ToLower(st.From[0].Table)]; ok {
			filter = chooseIndexFilter(st.Where, t, st.From[0].Ref())
		}
	}
	rs, err := load(st.From[0], filter)
	if err != nil {
		return nil, err
	}
	// Additional FROM tables: cross product (WHERE applies later).
	for _, tr := range st.From[1:] {
		right, err := load(tr, nil)
		if err != nil {
			return nil, err
		}
		rs = crossJoin(rs, right)
	}
	// JOIN ... ON: hash join on simple equality, else filtered cross.
	for _, jc := range st.Joins {
		right, err := load(jc.Table, nil)
		if err != nil {
			return nil, err
		}
		joined, err := joinOn(rs, right, jc.On)
		if err != nil {
			return nil, err
		}
		rs = joined
	}
	return rs, nil
}

type indexFilter struct {
	column       string // lower-case
	eq           Value
	lo, hi       Value
	loInc, hiInc bool
}

// chooseIndexFilter inspects the top-level AND conjuncts of where for a
// comparison between an indexed column of t and a literal.
func chooseIndexFilter(where SQLExpr, t *Table, ref string) *indexFilter {
	conjuncts := splitConjuncts(where)
	ref = strings.ToLower(ref)
	for _, c := range conjuncts {
		bin, ok := c.(*SQLBin)
		if !ok {
			continue
		}
		col, lit, op, ok := colLitComparison(bin, ref)
		if !ok {
			continue
		}
		if _, has := t.indexes[col]; !has {
			continue
		}
		switch op {
		case "=":
			return &indexFilter{column: col, eq: lit}
		case "<":
			return &indexFilter{column: col, hi: lit}
		case "<=":
			return &indexFilter{column: col, hi: lit, hiInc: true}
		case ">":
			return &indexFilter{column: col, lo: lit}
		case ">=":
			return &indexFilter{column: col, lo: lit, loInc: true}
		}
	}
	return nil
}

func splitConjuncts(e SQLExpr) []SQLExpr {
	if bin, ok := e.(*SQLBin); ok && bin.Op == "AND" {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []SQLExpr{e}
}

// colLitComparison matches col op lit or lit op col (flipping the
// operator), with col belonging to the given table reference.
func colLitComparison(bin *SQLBin, ref string) (col string, lit Value, op string, ok bool) {
	flip := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
	if _, valid := flip[bin.Op]; !valid {
		return "", nil, "", false
	}
	if cr, isCol := bin.L.(*ColRef); isCol {
		if l, isLit := bin.R.(*SQLLit); isLit {
			if cr.Table == "" || strings.EqualFold(cr.Table, ref) {
				return strings.ToLower(cr.Col), l.Value, bin.Op, true
			}
		}
	}
	if cr, isCol := bin.R.(*ColRef); isCol {
		if l, isLit := bin.L.(*SQLLit); isLit {
			if cr.Table == "" || strings.EqualFold(cr.Table, ref) {
				return strings.ToLower(cr.Col), l.Value, flip[bin.Op], true
			}
		}
	}
	return "", nil, "", false
}

func crossJoin(l, r *rowSet) *rowSet {
	out := &rowSet{cols: append(append([]colKey{}, l.cols...), r.cols...)}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			row := make(Row, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// joinOn performs an inner join. When the ON condition contains an
// equality between a left column and a right column it builds a hash
// table on the right side; otherwise it falls back to a filtered cross
// product.
func joinOn(l, r *rowSet, on SQLExpr) (*rowSet, error) {
	out := &rowSet{cols: append(append([]colKey{}, l.cols...), r.cols...)}
	li, ri := findEquiJoin(on, l, r)
	if li >= 0 {
		ht := make(map[uint64][]Row)
		for _, rr := range r.rows {
			h := xmldm.Hash(rr[ri])
			ht[h] = append(ht[h], rr)
		}
		for _, lr := range l.rows {
			for _, rr := range ht[xmldm.Hash(lr[li])] {
				if !xmldm.Equal(lr[li], rr[ri]) {
					continue
				}
				row := make(Row, 0, len(lr)+len(rr))
				row = append(row, lr...)
				row = append(row, rr...)
				// Residual ON predicates beyond the equality.
				v, err := evalSQL(on, out, row)
				if err != nil {
					return nil, err
				}
				if xmldm.Truthy(v) {
					out.rows = append(out.rows, row)
				}
			}
		}
		return out, nil
	}
	cross := crossJoin(l, r)
	filtered := cross.rows[:0]
	for _, row := range cross.rows {
		v, err := evalSQL(on, cross, row)
		if err != nil {
			return nil, err
		}
		if xmldm.Truthy(v) {
			filtered = append(filtered, row)
		}
	}
	cross.rows = filtered
	return cross, nil
}

// findEquiJoin locates an equality conjunct joining a left column to a
// right column and returns their positions, or (-1, -1).
func findEquiJoin(on SQLExpr, l, r *rowSet) (int, int) {
	for _, c := range splitConjuncts(on) {
		bin, ok := c.(*SQLBin)
		if !ok || bin.Op != "=" {
			continue
		}
		lc, lok := bin.L.(*ColRef)
		rc, rok := bin.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		if li, err := l.lookup(lc.Table, lc.Col); err == nil {
			if ri, err := r.lookup(rc.Table, rc.Col); err == nil {
				return li, ri
			}
		}
		if li, err := l.lookup(rc.Table, rc.Col); err == nil {
			if ri, err := r.lookup(lc.Table, lc.Col); err == nil {
				return li, ri
			}
		}
	}
	return -1, -1
}

func dedupeRows(rows []Row) []Row {
	seen := make(map[uint64][]Row)
	var out []Row
rowLoop:
	for _, row := range rows {
		h := hashRow(row)
		for _, prev := range seen[h] {
			if rowsEqual(prev, row) {
				continue rowLoop
			}
		}
		seen[h] = append(seen[h], row)
		out = append(out, row)
	}
	return out
}

func hashRow(row Row) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range row {
		h = h*1099511628211 ^ xmldm.Hash(v)
	}
	return h
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !xmldm.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// orderRows sorts rs in place by the ORDER BY keys. Keys may reference
// select-list aliases (resolved through items) or input columns.
func orderRows(keys []SQLOrderItem, rs *rowSet, items []SelectItem) error {
	if len(keys) == 0 {
		return nil
	}
	resolve := func(e SQLExpr) SQLExpr {
		cr, ok := e.(*ColRef)
		if !ok || cr.Table != "" {
			return e
		}
		for _, item := range items {
			if strings.EqualFold(item.Alias, cr.Col) {
				return item.Expr
			}
		}
		return e
	}
	var sortErr error
	sort.SliceStable(rs.rows, func(i, j int) bool {
		for _, k := range keys {
			e := resolve(k.Expr)
			vi, err := evalSQL(e, rs, rs.rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := evalSQL(e, rs, rs.rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c := xmldm.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func selectHasAggregate(st *SelectStmt) bool {
	for _, item := range st.Items {
		if exprHasAggregate(item.Expr) {
			return true
		}
	}
	return st.Having != nil && exprHasAggregate(st.Having)
}

func exprHasAggregate(e SQLExpr) bool {
	switch x := e.(type) {
	case *SQLFunc:
		if sqlAggregates[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *SQLBin:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *SQLNot:
		return exprHasAggregate(x.E)
	case *SQLLike:
		return exprHasAggregate(x.E)
	case *SQLIn:
		return exprHasAggregate(x.E)
	case *SQLIsNull:
		return exprHasAggregate(x.E)
	}
	return false
}

// aggregate groups rs by the GROUP BY columns and evaluates the select
// items per group; the returned row set's columns are the output columns.
func aggregate(st *SelectStmt, rs *rowSet) (*rowSet, error) {
	if st.Star {
		return nil, fmt.Errorf("rdb: SELECT * cannot be combined with aggregation")
	}
	type group struct {
		key  Row
		rows []Row
	}
	var groups []*group
	byHash := make(map[uint64][]*group)
	keyIdx := make([]int, len(st.GroupBy))
	for i, cr := range st.GroupBy {
		ci, err := rs.lookup(cr.Table, cr.Col)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = ci
	}
	for _, row := range rs.rows {
		key := make(Row, len(keyIdx))
		for i, ci := range keyIdx {
			key[i] = row[ci]
		}
		h := hashRow(key)
		var g *group
		for _, cand := range byHash[h] {
			if rowsEqual(cand.key, key) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: key}
			byHash[h] = append(byHash[h], g)
			groups = append(groups, g)
		}
		g.rows = append(g.rows, row)
	}
	// With no GROUP BY, aggregates run over the whole input — including
	// the empty input, which yields one row (COUNT(*) = 0).
	if len(st.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &group{})
	}

	out := &rowSet{}
	for i, item := range st.Items {
		out.cols = append(out.cols, colKey{name: itemName(item, i)})
	}
	for _, g := range groups {
		if st.Having != nil {
			v, err := evalAggExpr(st.Having, rs, g.rows)
			if err != nil {
				return nil, err
			}
			if !xmldm.Truthy(v) {
				continue
			}
		}
		row := make(Row, len(st.Items))
		for i, item := range st.Items {
			v, err := evalAggExpr(item.Expr, rs, g.rows)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// evalAggExpr evaluates an expression over a group of rows: aggregates
// reduce the group; plain column references take the value from the
// first row (correct for grouped columns).
func evalAggExpr(e SQLExpr, rs *rowSet, rows []Row) (Value, error) {
	switch x := e.(type) {
	case *SQLFunc:
		if !sqlAggregates[x.Name] {
			break
		}
		if x.Star {
			if x.Name != "count" {
				return nil, fmt.Errorf("rdb: %s(*) is not valid", x.Name)
			}
			return xmldm.Int(len(rows)), nil
		}
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("rdb: %s takes one argument", x.Name)
		}
		var vals []Value
		for _, row := range rows {
			v, err := evalSQL(x.Args[0], rs, row)
			if err != nil {
				return nil, err
			}
			if v != nil && v.Kind() != xmldm.KindNull {
				vals = append(vals, v)
			}
		}
		return reduceAggregate(x.Name, vals)
	case *SQLBin:
		l, err := evalAggExpr(x.L, rs, rows)
		if err != nil {
			return nil, err
		}
		r, err := evalAggExpr(x.R, rs, rows)
		if err != nil {
			return nil, err
		}
		return applyBin(x.Op, l, r)
	case *SQLNot:
		v, err := evalAggExpr(x.E, rs, rows)
		if err != nil {
			return nil, err
		}
		return xmldm.Bool(!xmldm.Truthy(v)), nil
	}
	if len(rows) == 0 {
		return xmldm.Null{}, nil
	}
	return evalSQL(e, rs, rows[0])
}

func reduceAggregate(name string, vals []Value) (Value, error) {
	switch name {
	case "count":
		return xmldm.Int(len(vals)), nil
	case "sum", "avg":
		if len(vals) == 0 {
			return xmldm.Null{}, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := xmldm.ToFloat(v)
			if !ok {
				return nil, fmt.Errorf("rdb: %s over non-numeric value %s", name, v.String())
			}
			if v.Kind() != xmldm.KindInt {
				allInt = false
			}
			sum += f
		}
		if name == "avg" {
			return xmldm.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return xmldm.Int(int64(sum)), nil
		}
		return xmldm.Float(sum), nil
	case "min", "max":
		if len(vals) == 0 {
			return xmldm.Null{}, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := xmldm.Compare(v, best)
			if name == "min" && c < 0 || name == "max" && c > 0 {
				best = v
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("rdb: unknown aggregate %q", name)
	}
}

func (db *Database) execUpdate(st *UpdateStmt) (*Result, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rs := &rowSet{}
	for _, c := range t.Schema.Columns {
		rs.cols = append(rs.cols, colKey{qual: strings.ToLower(st.Table), name: strings.ToLower(c.Name)})
	}
	n := 0
	for rid, row := range t.rows {
		if t.deleted[rid] {
			continue
		}
		if st.Where != nil {
			v, err := evalSQL(st.Where, rs, row)
			if err != nil {
				return nil, err
			}
			if !xmldm.Truthy(v) {
				continue
			}
		}
		for _, set := range st.Sets {
			ci := t.Schema.ColIndex(set.Column)
			if ci < 0 {
				return nil, fmt.Errorf("rdb: no column %q in %q", set.Column, st.Table)
			}
			v, err := evalSQL(set.Expr, rs, row)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.Schema.Columns[ci].Type)
			if err != nil {
				return nil, err
			}
			if idx, ok := t.indexes[strings.ToLower(t.Schema.Columns[ci].Name)]; ok {
				idx.remove(row[ci], rid)
				if err := idx.add(cv, rid); err != nil {
					return nil, err
				}
			}
			row[ci] = cv
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *Database) execDelete(st *DeleteStmt) (*Result, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rs := &rowSet{}
	for _, c := range t.Schema.Columns {
		rs.cols = append(rs.cols, colKey{qual: strings.ToLower(st.Table), name: strings.ToLower(c.Name)})
	}
	n := 0
	for rid, row := range t.rows {
		if t.deleted[rid] {
			continue
		}
		if st.Where != nil {
			v, err := evalSQL(st.Where, rs, row)
			if err != nil {
				return nil, err
			}
			if !xmldm.Truthy(v) {
				continue
			}
		}
		t.deleted[rid] = true
		t.live--
		for colName, idx := range t.indexes {
			ci := t.Schema.ColIndex(colName)
			idx.remove(row[ci], rid)
		}
		n++
	}
	return &Result{Affected: n}, nil
}
