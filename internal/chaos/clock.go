package chaos

import (
	"context"
	"sync"
	"time"
)

// FakeClock is a deterministic clock for the resilience layer and the
// latency faults: Sleep advances virtual time instantly (so backoff
// schedules and latency injection cost no wall-clock time), and
// Advance moves time forward manually (so breaker cooldowns elapse on
// demand). It satisfies exec.Clock structurally. Safe for concurrent
// use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time     // guarded by mu
	sleeps int           // guarded by mu
	slept  time.Duration // guarded by mu
}

// NewFakeClock starts virtual time at a fixed epoch so two runs observe
// identical timestamps.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000_000, 0)}
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Sleep advances virtual time by d and returns immediately; a done
// context returns its error without advancing (matching the real
// clock's cancellation contract).
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps++
	c.slept += d
	c.mu.Unlock()
	return nil
}

// Slept reports how many sleeps ran and their accumulated virtual
// duration.
func (c *FakeClock) Slept() (int, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sleeps, c.slept
}
