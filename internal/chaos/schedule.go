package chaos

import (
	"math/rand"
	"time"
)

// Script replays an explicit fault sequence, then keeps returning Then
// (zero Then = Pass). Use it for exact scenarios: "fail twice, then
// recover".
type Script struct {
	Faults []Fault
	Then   Fault
}

// Fault implements Schedule.
func (s Script) Fault(call int) Fault {
	if call >= 0 && call < len(s.Faults) {
		return s.Faults[call]
	}
	return s.Then
}

// Fail builds the Script for a source that fails the first n fetches
// with Unavailable and answers afterwards — the canonical
// retry-recovers scenario.
func Fail(n int) Script {
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{Kind: Unavailable}
	}
	return Script{Faults: faults}
}

// Flap alternates availability cyclically: Up passing calls, then Down
// unavailable calls, starting Offset calls into the cycle. A flapping
// source is what drives a breaker through its full
// closed→open→half-open→closed life.
type Flap struct {
	Up, Down int
	Offset   int
}

// Fault implements Schedule.
func (f Flap) Fault(call int) Fault {
	period := f.Up + f.Down
	if period <= 0 || call < 0 {
		return Fault{}
	}
	if pos := (call + f.Offset) % period; pos >= f.Up {
		return Fault{Kind: Unavailable}
	}
	return Fault{}
}

// Mix injects faults at fixed per-kind probabilities. Every decision is
// drawn from a PRNG derived from the seed and the call index alone —
// not from shared generator state — so the schedule is deterministic
// per call even when calls interleave, and a replay with the same seed
// reproduces the identical fault sequence.
type Mix struct {
	Seed                                      int64
	PUnavailable, PMalformed, PGarbage, PHang float64
	// MaxLatency, when positive, adds uniform [0, MaxLatency) latency
	// to passing fetches (Slow faults).
	MaxLatency time.Duration
}

// Fault implements Schedule.
func (m Mix) Fault(call int) Fault {
	rng := rand.New(rand.NewSource(m.Seed ^ int64(uint64(call+1)*0x9E3779B97F4A7C15)))
	p := rng.Float64()
	cut := m.PUnavailable
	if p < cut {
		return Fault{Kind: Unavailable}
	}
	if cut += m.PMalformed; p < cut {
		return Fault{Kind: Malformed}
	}
	if cut += m.PGarbage; p < cut {
		return Fault{Kind: Garbage}
	}
	if cut += m.PHang; p < cut {
		return Fault{Kind: Hang}
	}
	if m.MaxLatency > 0 {
		return Fault{Kind: Slow, Latency: time.Duration(rng.Int63n(int64(m.MaxLatency)))}
	}
	return Fault{}
}
