package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// stubSource answers every fetch with a four-child document.
type stubSource struct{ name string }

func (s stubSource) Name() string                       { return s.name }
func (s stubSource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (s stubSource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	b := xmldm.NewBuilder()
	return b.Elem(s.name,
		b.Elem("row", "1"), b.Elem("row", "2"), b.Elem("row", "3"), b.Elem("row", "4"),
	), catalog.Cost{RowsReturned: 4}, nil
}

func fetch(t *testing.T, src catalog.Source) (*xmldm.Node, error) {
	t.Helper()
	doc, _, err := src.Fetch(context.Background(), catalog.Request{})
	return doc, err
}

func TestScriptAndFail(t *testing.T) {
	s := Fail(2)
	want := []Kind{Unavailable, Unavailable, Pass, Pass}
	for call, k := range want {
		if got := s.Fault(call).Kind; got != k {
			t.Errorf("call %d: kind = %v, want %v", call, got, k)
		}
	}
	// Then applies after the scripted prefix.
	s2 := Script{Faults: []Fault{{Kind: Garbage}}, Then: Fault{Kind: Hang}}
	if s2.Fault(0).Kind != Garbage || s2.Fault(1).Kind != Hang || s2.Fault(99).Kind != Hang {
		t.Error("Script Then not applied")
	}
}

func TestFlapCycle(t *testing.T) {
	f := Flap{Up: 2, Down: 3}
	want := []Kind{Pass, Pass, Unavailable, Unavailable, Unavailable, Pass, Pass, Unavailable}
	for call, k := range want {
		if got := f.Fault(call).Kind; got != k {
			t.Errorf("call %d: kind = %v, want %v", call, got, k)
		}
	}
	// Offset shifts the phase; a zero period passes everything.
	if (Flap{Up: 2, Down: 3, Offset: 2}).Fault(0).Kind != Unavailable {
		t.Error("Offset ignored")
	}
	if (Flap{}).Fault(5).Kind != Pass {
		t.Error("zero Flap should pass")
	}
}

// TestMixDeterministic: the fault for a call index is a pure function of
// (seed, call) — independent of evaluation order — and differing seeds
// produce differing schedules.
func TestMixDeterministic(t *testing.T) {
	m := Mix{Seed: 42, PUnavailable: 0.2, PMalformed: 0.1, PGarbage: 0.05, PHang: 0.05, MaxLatency: 10 * time.Millisecond}
	const n = 500
	first := make([]Fault, n)
	for i := 0; i < n; i++ {
		first[i] = m.Fault(i)
	}
	// Replay in reverse order: same decisions.
	for i := n - 1; i >= 0; i-- {
		if got := m.Fault(i); got != first[i] {
			t.Fatalf("call %d: replay = %+v, want %+v", i, got, first[i])
		}
	}
	// All kinds should appear at these rates over 500 calls.
	seen := map[Kind]int{}
	for _, f := range first {
		seen[f.Kind]++
	}
	for _, k := range []Kind{Unavailable, Malformed, Garbage, Hang, Slow} {
		if seen[k] == 0 {
			t.Errorf("kind %v never injected in %d calls", k, n)
		}
	}
	// A different seed diverges.
	m2 := Mix{Seed: 43, PUnavailable: 0.2, PMalformed: 0.1, PGarbage: 0.05, PHang: 0.05, MaxLatency: 10 * time.Millisecond}
	same := 0
	for i := 0; i < n; i++ {
		if m2.Fault(i) == first[i] {
			same++
		}
	}
	if same == n {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

func TestSourceUnavailableAndGarbage(t *testing.T) {
	src := Wrap(stubSource{"s"}, Script{Faults: []Fault{{Kind: Unavailable}, {Kind: Garbage}}})
	if _, err := fetch(t, src); !errors.Is(err, sources.ErrUnavailable) || !sources.Transient(err) {
		t.Errorf("unavailable fault: err = %v", err)
	}
	if _, err := fetch(t, src); err == nil || sources.Transient(err) {
		t.Errorf("garbage fault should be a non-transient error, got %v", err)
	}
	if doc, err := fetch(t, src); err != nil || doc == nil {
		t.Errorf("past the script: doc=%v err=%v", doc, err)
	}
	calls, injected := src.Stats()
	if calls != 3 || injected[Unavailable] != 1 || injected[Garbage] != 1 || injected[Pass] != 1 {
		t.Errorf("stats = %d %v", calls, injected)
	}
}

func TestSourceMalformedTruncates(t *testing.T) {
	src := Wrap(stubSource{"s"}, Script{Then: Fault{Kind: Malformed}})
	doc, _, err := src.Fetch(context.Background(), catalog.Request{})
	if !errors.Is(err, sources.ErrMalformed) || !sources.Transient(err) {
		t.Fatalf("err = %v", err)
	}
	if doc == nil || len(doc.Children) != 2 {
		t.Fatalf("truncated doc = %+v (want half of 4 children)", doc)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("err text = %q", err)
	}
}

func TestSourceHangRespectsContext(t *testing.T) {
	src := Wrap(stubSource{"s"}, Script{Then: Fault{Kind: Hang}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := src.Fetch(ctx, catalog.Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("hang outlived its context")
	}
}

func TestSourceSlowUsesInjectedSleeper(t *testing.T) {
	var slept []time.Duration
	src := Wrap(stubSource{"s"}, Script{Then: Fault{Kind: Slow, Latency: 3 * time.Second}}).
		WithSleep(func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		})
	start := time.Now()
	if _, err := fetch(t, src); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("injected sleeper still cost wall-clock time")
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept = %v", slept)
	}
	// A sleeper that reports cancellation aborts the fetch.
	src2 := Wrap(stubSource{"s"}, Script{Then: Fault{Kind: Slow, Latency: time.Second}}).
		WithSleep(func(ctx context.Context, d time.Duration) error { return context.Canceled })
	if _, err := fetch(t, src2); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestSourcePassThroughAndIdentity(t *testing.T) {
	inner := stubSource{"s"}
	src := Wrap(inner, nil)
	if src.Name() != "s" || src.Inner() != catalog.Source(inner) {
		t.Error("identity not forwarded")
	}
	doc, err := fetch(t, src)
	if err != nil || len(doc.Children) != 4 {
		t.Errorf("pass-through doc = %v, %v", doc, err)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock()
	epoch := c.Now()
	if epoch != time.Unix(1_000_000_000, 0) {
		t.Fatalf("epoch = %v", epoch)
	}
	if err := c.Sleep(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Minute)
	if got := c.Now().Sub(epoch); got != time.Hour+time.Minute {
		t.Errorf("advanced %v", got)
	}
	if n, d := c.Slept(); n != 1 || d != time.Hour {
		t.Errorf("Slept = %d, %v", n, d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sleep err = %v", err)
	}
	if got := c.Now().Sub(epoch); got != time.Hour+time.Minute {
		t.Errorf("cancelled sleep advanced time to +%v", got)
	}
	// Two clocks observe identical timestamps — the determinism anchor.
	if !NewFakeClock().Now().Equal(time.Unix(1_000_000_000, 0)) {
		t.Error("fresh clocks disagree on the epoch")
	}
}

// TestWrappedSchedulePerCallCounter: interleaved requests share one call
// counter, so the total injection counts match the schedule regardless
// of request identity.
func TestWrappedSchedulePerCallCounter(t *testing.T) {
	src := Wrap(stubSource{"s"}, Flap{Up: 1, Down: 1})
	var ok, bad int
	for i := 0; i < 10; i++ {
		_, _, err := src.Fetch(context.Background(), catalog.Request{Native: fmt.Sprintf("q%d", i%3)})
		if err != nil {
			bad++
		} else {
			ok++
		}
	}
	if ok != 5 || bad != 5 {
		t.Errorf("ok=%d bad=%d, want 5/5 from a 1-up-1-down flap", ok, bad)
	}
}
