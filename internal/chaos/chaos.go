// Package chaos is the deterministic fault-injection harness: a source
// wrapper that makes sources flap, hang, slow down, and return
// truncated or garbled documents on a seeded, replayable schedule. It
// exists to *provoke* the conditions §3.4 promises the system handles
// ("sources may be offline, or network connectivity may not be
// available") so the resilience layer — retries, per-attempt timeouts,
// circuit breakers, partial results — can be proven rather than hoped:
// the soak harness replays a fault schedule and asserts every query
// succeeds, degrades to a correctly-flagged partial result, or fails
// cleanly, and that the same seed reproduces the identical completeness
// report byte for byte.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// Kind is one injected failure mode.
type Kind int

const (
	// Pass forwards the fetch untouched.
	Pass Kind = iota
	// Slow adds latency before forwarding.
	Slow
	// Unavailable fails with sources.ErrUnavailable (offline source).
	Unavailable
	// Malformed performs the fetch but delivers a truncated document
	// together with sources.ErrMalformed — a transfer cut mid-stream.
	Malformed
	// Garbage fails with an opaque, non-transient error (a source-side
	// rejection retrying cannot cure).
	Garbage
	// Hang blocks until the context is cancelled — the failure mode
	// only a per-attempt timeout can bound.
	Hang
)

// String names the kind for stats and logs.
func (k Kind) String() string {
	switch k {
	case Slow:
		return "slow"
	case Unavailable:
		return "unavailable"
	case Malformed:
		return "malformed"
	case Garbage:
		return "garbage"
	case Hang:
		return "hang"
	}
	return "pass"
}

// Fault is the injected behaviour of a single fetch.
type Fault struct {
	Kind Kind
	// Latency is waited before the outcome is produced (Slow sets it;
	// any kind may carry it).
	Latency time.Duration
}

// Schedule decides the fault for the n-th fetch (0-based call index).
// Implementations must be deterministic functions of the call index so
// a replayed run injects the identical fault sequence.
type Schedule interface {
	Fault(call int) Fault
}

// Source wraps an inner source with fault injection. Faults are chosen
// by the schedule from a per-source call counter, so a sequential
// workload replays byte-identically. Safe for concurrent use (the
// counter is atomic under the lock; concurrent fetches to one source
// race only over which call index each receives).
type Source struct {
	inner catalog.Source
	sched Schedule
	sleep func(ctx context.Context, d time.Duration) error

	mu       sync.Mutex
	calls    int          // guarded by mu
	injected map[Kind]int // guarded by mu
}

// Wrap makes inner chaotic per the schedule (nil schedule passes
// everything through).
func Wrap(inner catalog.Source, sched Schedule) *Source {
	return &Source{inner: inner, sched: sched, injected: make(map[Kind]int)}
}

// WithSleep injects the latency sleeper (a FakeClock's Sleep makes Slow
// faults free of wall-clock time) and returns the source for chaining.
func (s *Source) WithSleep(fn func(ctx context.Context, d time.Duration) error) *Source {
	s.sleep = fn
	return s
}

// Name implements catalog.Source.
func (s *Source) Name() string { return s.inner.Name() }

// Capabilities implements catalog.Source.
func (s *Source) Capabilities() catalog.Capabilities { return s.inner.Capabilities() }

// Inner returns the wrapped source (the optimizer unwraps through this
// to reach relational descriptors, so pushdown survives wrapping).
func (s *Source) Inner() catalog.Source { return s.inner }

// Stats reports the total fetch calls and the per-kind injection
// counts.
func (s *Source) Stats() (calls int, injected map[Kind]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Kind]int, len(s.injected))
	for k, v := range s.injected {
		out[k] = v
	}
	return s.calls, out
}

// Fetch implements catalog.Source with the scheduled fault applied.
func (s *Source) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	var f Fault
	s.mu.Lock()
	call := s.calls
	s.calls++
	if s.sched != nil {
		f = s.sched.Fault(call)
	}
	s.injected[f.Kind]++
	s.mu.Unlock()

	if f.Latency > 0 {
		if err := s.doSleep(ctx, f.Latency); err != nil {
			return nil, catalog.Cost{}, err
		}
	}
	switch f.Kind {
	case Unavailable:
		return nil, catalog.Cost{}, fmt.Errorf("%w: chaos: %s offline", sources.ErrUnavailable, s.inner.Name())
	case Garbage:
		return nil, catalog.Cost{}, fmt.Errorf("chaos: %s returned garbage", s.inner.Name())
	case Hang:
		<-ctx.Done()
		return nil, catalog.Cost{}, ctx.Err()
	case Malformed:
		doc, cost, err := s.inner.Fetch(ctx, req)
		if err != nil {
			return nil, cost, err
		}
		// The transfer was cut mid-document: deliver what made it over
		// the wire alongside the decode failure.
		return truncateDoc(doc), cost,
			fmt.Errorf("%w: chaos: %s response truncated", sources.ErrMalformed, s.inner.Name())
	}
	return s.inner.Fetch(ctx, req)
}

// doSleep waits via the injected sleeper or the wall clock.
func (s *Source) doSleep(ctx context.Context, d time.Duration) error {
	if s.sleep != nil {
		return s.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// truncateDoc models a transfer cut mid-stream: a shallow root copy
// holding only the first half of the children. The shared child nodes
// keep their original parent pointers — the document is malformed by
// construction and always accompanied by ErrMalformed, never matched.
func truncateDoc(doc *xmldm.Node) *xmldm.Node {
	if doc == nil {
		return nil
	}
	cp := &xmldm.Node{Name: doc.Name, Attrs: doc.Attrs}
	cp.Children = doc.Children[:len(doc.Children)/2]
	return cp
}
