package qcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/xmldm"
)

func res(v string, sources ...string) Result {
	return Result{Values: []xmldm.Value{xmldm.String(v)}, Sources: sources}
}

func TestPutGet(t *testing.T) {
	c := New(10, 0)
	c.Put("q1", res("a", "s1"))
	got, ok := c.Get("q1")
	if !ok || len(got.Values) != 1 || xmldm.Stringify(got.Values[0]) != "a" {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if _, ok := c.Get("q2"); ok {
		t.Error("miss expected")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 0)
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	c.Get("a") // refresh a
	c.Put("c", res("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2, 0)
	c.Put("a", res("1", "s1"))
	c.Put("a", res("2", "s2"))
	got, _ := c.Get("a")
	if xmldm.Stringify(got.Values[0]) != "2" {
		t.Errorf("replace failed: %v", got)
	}
	// Old source index dropped: invalidating s1 must not kill the entry.
	if n := c.InvalidateSource("s1"); n != 0 {
		t.Errorf("invalidate s1 = %d", n)
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("entry lost")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(10, time.Minute)
	now := time.Unix(0, 0)
	c.SetClock(func() time.Time { return now })
	c.Put("a", res("1"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Error("expired entry should miss")
	}
	if c.Stats().Entries != 0 {
		t.Error("expired entry should be removed")
	}
}

func TestInvalidateSource(t *testing.T) {
	c := New(10, 0)
	c.Put("q1", res("1", "s1", "s2"))
	c.Put("q2", res("2", "s2"))
	c.Put("q3", res("3", "s3"))
	if n := c.InvalidateSource("S2"); n != 2 {
		t.Errorf("invalidated = %d", n)
	}
	if _, ok := c.Get("q1"); ok {
		t.Error("q1 should be gone")
	}
	if _, ok := c.Get("q3"); !ok {
		t.Error("q3 should survive")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(10, 0)
	c.Put("q1", res("1", "s1"))
	c.InvalidateAll()
	if _, ok := c.Get("q1"); ok {
		t.Error("cache should be empty")
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0, 0) // clamps to 1
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	if c.Stats().Entries != 1 {
		t.Errorf("entries = %d", c.Stats().Entries)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", i%32)
				if i%3 == 0 {
					c.Put(key, res("v", "s1"))
				} else {
					c.Get(key)
				}
				if i%50 == 0 {
					c.InvalidateSource("s1")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsMirrorStats(t *testing.T) {
	c := New(2, 0)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	c.Get("q1") // miss
	c.Put("q1", Result{})
	c.Get("q1") // hit
	c.Put("q2", Result{})
	c.Put("q3", Result{}) // evicts q1 (capacity 2)
	if n := reg.Counter("nimble_qcache_hits_total").Value(); n != 1 {
		t.Errorf("hits = %d", n)
	}
	if n := reg.Counter("nimble_qcache_misses_total").Value(); n != 1 {
		t.Errorf("misses = %d", n)
	}
	if n := reg.Counter("nimble_qcache_evictions_total").Value(); n != 1 {
		t.Errorf("evictions = %d", n)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "nimble_qcache_entries 2") {
		t.Errorf("entries gauge missing:\n%s", b.String())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}
