package qcache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCacheInvariants_Property drives a random operation sequence and
// checks the structural invariants after every step: the entry count
// never exceeds capacity, Get returns exactly what the latest Put
// stored, and a freshly-Put entry is never the next eviction victim.
func TestCacheInvariants_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(8)
		c := New(capacity, 0)
		model := map[string]string{} // key -> last stored value (may be evicted)
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
		for step := 0; step < 300; step++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", step)
				c.Put(k, res(v, "s"+k))
				model[k] = v
				// A just-put entry must be retrievable immediately.
				got, ok := c.Get(k)
				if !ok || stringOf(got) != v {
					t.Logf("seed %d step %d: put-then-get failed for %s", seed, step, k)
					return false
				}
			case 2:
				if got, ok := c.Get(k); ok {
					// Whatever the cache returns must be the last value
					// stored under that key (staleness would be a bug).
					if stringOf(got) != model[k] {
						t.Logf("seed %d step %d: stale value for %s: %s vs %s",
							seed, step, k, stringOf(got), model[k])
						return false
					}
				}
			case 3:
				if rng.Intn(10) == 0 {
					c.InvalidateSource("s" + k)
				}
			}
			if st := c.Stats(); st.Entries > capacity {
				t.Logf("seed %d step %d: %d entries > capacity %d", seed, step, st.Entries, capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func stringOf(r Result) string {
	if len(r.Values) == 0 {
		return ""
	}
	return r.Values[0].String()
}
