// Package qcache is the query-result cache of the integration engine
// (§3.3 cites Adali et al.'s query caching in mediator systems [1], and
// lists "caching and other performance tuning capabilities" among the
// product's needs in §4). Results are cached by the query text as
// submitted (whitespace-different spellings are distinct entries), with
// LRU eviction, optional TTL, and source-based
// invalidation: an update known to touch a source invalidates exactly
// the cached queries that read that source.
package qcache

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xmldm"
)

// Key canonicalizes query text into a stable cache key: whitespace
// runs collapse to single spaces, so differently formatted spellings of
// one query agree. The cluster front end hashes this same key for
// cache-affinity routing, which is what makes "route repeats to the
// instance whose cache is warm" line up with what the cache actually
// stores — the two layers must agree on the key or affinity wins
// nothing.
func Key(query string) string {
	return strings.Join(strings.Fields(query), " ")
}

// Result is a cached query answer.
type Result struct {
	Values  []xmldm.Value
	Sources []string // sources the answer was computed from
}

type cacheEntry struct {
	key      string
	res      Result
	storedAt time.Time
	elem     *list.Element
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// HitRate is hits / (hits + misses); 0 on no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded LRU query-result cache, safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int                        // guarded by mu
	ttl      time.Duration              // guarded by mu
	entries  map[string]*cacheEntry     // guarded by mu
	lru      *list.List                 // guarded by mu; front = most recent
	bySource map[string]map[string]bool // guarded by mu
	stats    Stats                      // guarded by mu
	clock    func() time.Time           // guarded by mu

	// observability counters, nil (no-op) until SetMetrics.
	mHits, mMisses, mEvictions *obs.Counter // guarded by mu
}

// SetMetrics mirrors the cache counters into a metrics registry
// (nimble_qcache_{hits,misses,evictions}_total and an entries gauge).
func (c *Cache) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	c.mHits = reg.Counter("nimble_qcache_hits_total")
	c.mMisses = reg.Counter("nimble_qcache_misses_total")
	c.mEvictions = reg.Counter("nimble_qcache_evictions_total")
	c.mu.Unlock()
	reg.GaugeFunc("nimble_qcache_entries", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
}

// New creates a cache of the given entry capacity; ttl 0 disables
// time-based expiry.
func New(capacity int, ttl time.Duration) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
		bySource: make(map[string]map[string]bool),
		clock:    time.Now,
	}
}

// SetClock replaces the time source for TTL tests.
func (c *Cache) SetClock(fn func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = fn
}

// Get returns the cached result for a query key.
func (c *Cache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.mMisses.Inc()
		return Result{}, false
	}
	if c.ttl > 0 && c.clock().Sub(e.storedAt) > c.ttl {
		c.removeLocked(e)
		c.stats.Misses++
		c.mMisses.Inc()
		return Result{}, false
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	c.mHits.Inc()
	return e.res, true
}

// Put stores a result under the query key.
func (c *Cache) Put(key string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.unindexLocked(e)
		e.res = res
		e.storedAt = c.clock()
		c.indexLocked(e)
		c.lru.MoveToFront(e.elem)
		return
	}
	for len(c.entries) >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*cacheEntry))
		c.stats.Evictions++
		c.mEvictions.Inc()
	}
	e := &cacheEntry{key: key, res: res, storedAt: c.clock()}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.indexLocked(e)
}

// InvalidateSource drops every cached result computed from the source;
// the refresh path for "the data may not be fresh" concerns.
func (c *Cache) InvalidateSource(source string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(source)
	keys := c.bySource[key]
	n := 0
	for k := range keys {
		if e, ok := c.entries[k]; ok {
			c.removeLocked(e)
			n++
		}
	}
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	c.bySource = make(map[string]map[string]bool)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

func (c *Cache) indexLocked(e *cacheEntry) {
	for _, s := range e.res.Sources {
		key := strings.ToLower(s)
		if c.bySource[key] == nil {
			c.bySource[key] = map[string]bool{}
		}
		c.bySource[key][e.key] = true
	}
}

func (c *Cache) unindexLocked(e *cacheEntry) {
	for _, s := range e.res.Sources {
		key := strings.ToLower(s)
		if m := c.bySource[key]; m != nil {
			delete(m, e.key)
			if len(m) == 0 {
				delete(c.bySource, key)
			}
		}
	}
}

func (c *Cache) removeLocked(e *cacheEntry) {
	c.unindexLocked(e)
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}
