package opt

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mediator"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
	"repro/internal/xmlql"
)

// fakeAccess serves fetches from canned documents and records requests.
type fakeAccess struct {
	docs     map[string]string // source -> XML (used when no SQL)
	db       map[string]*rdb.Database
	requests []catalog.Request
	srcNames []string
}

func (f *fakeAccess) Roots(source string, req catalog.Request) ([]xmldm.Value, error) {
	f.requests = append(f.requests, req)
	f.srcNames = append(f.srcNames, source)
	if db, ok := f.db[source]; ok && req.Native != "" {
		res, err := db.Exec(req.Native)
		if err != nil {
			return nil, err
		}
		root := &xmldm.Node{Name: source}
		for _, row := range res.Rows {
			r := &xmldm.Node{Name: "customer", Parent: root}
			for i, col := range res.Columns {
				c := &xmldm.Node{Name: col, Parent: r}
				c.Children = append(c.Children, xmldm.String(xmldm.Stringify(row[i])))
				r.Children = append(r.Children, c)
			}
			root.Children = append(root.Children, r)
		}
		xmldm.Finalize(root)
		return []xmldm.Value{root}, nil
	}
	doc, err := xmlparse.ParseString(f.docs[source])
	if err != nil {
		return nil, err
	}
	return []xmldm.Value{doc}, nil
}

func newPlannerEnv(t *testing.T) (*Planner, *fakeAccess) {
	t.Helper()
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1,'Ada','London'), (2,'Alan','Cambridge')`)
	cat := catalog.New()
	if err := cat.AddSource(sources.NewRelationalSource("crmdb", db)); err != nil {
		t.Fatal(err)
	}
	xmlSrc, _ := sources.NewXMLSource("feed", `<feed><entry><v>1</v></entry><entry><v>2</v></entry></feed>`)
	if err := cat.AddSource(xmlSrc); err != nil {
		t.Fatal(err)
	}
	access := &fakeAccess{
		docs: map[string]string{"feed": `<feed><entry><v>1</v></entry><entry><v>2</v></entry></feed>`},
		db:   map[string]*rdb.Database{"crmdb": db},
	}
	return New(cat, access), access
}

func rewriteOf(t *testing.T, q string) mediator.Rewrite {
	t.Helper()
	return mediator.Rewrite{Query: xmlql.MustParse(q)}
}

func TestPlanPushesToRelationalSource(t *testing.T) {
	p, access := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb", $c = "London"
		CONSTRUCT <r>$n</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fetches) != 1 || !strings.Contains(plan.Fetches[0].Req.Native, "WHERE") {
		t.Fatalf("fetches = %+v", plan.Fetches)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	if v, _ := bindings[0].Get("n"); xmldm.Stringify(v) != "Ada" {
		t.Errorf("n = %v", v)
	}
	if len(access.requests) != 1 || access.requests[0].Native == "" {
		t.Errorf("requests = %+v", access.requests)
	}
}

func TestPlanDisabledPushdownFallsBack(t *testing.T) {
	p, _ := newPlannerEnv(t)
	p.Opts = Options{} // everything off
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb", $c = "London"
		CONSTRUCT <r>$n</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pushdown of selections is off, but fragment compilation still
	// produces a (predicate-free) SQL scan; the Select runs above it.
	joined := strings.Join(plan.Explain, "\n")
	if strings.Contains(joined, "London") {
		t.Errorf("predicate pushed despite options: %s", joined)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 {
		t.Fatalf("bindings = %d", len(bindings))
	}
}

func TestPlanXMLSourceUsesMatch(t *testing.T) {
	p, access := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <entry><v>$v</v></entry> IN "feed" CONSTRUCT <r>$v</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(plan.Explain, " "), "fetch feed") {
		t.Errorf("explain = %v", plan.Explain)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	if access.requests[0].Native != "" {
		t.Error("XML source should receive a whole-document request")
	}
}

func TestPlanJoinsAcrossSources(t *testing.T) {
	p, _ := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <customer><id>$v</id><name>$n</name></customer> IN "crmdb",
		      <entry><v>$v</v></entry> IN "feed"
		CONSTRUCT <r>$n</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// ids 1,2 join with feed values 1,2.
	if len(bindings) != 2 {
		t.Fatalf("joined = %d", len(bindings))
	}
	if len(plan.Sources) != 2 {
		t.Errorf("sources = %v", plan.Sources)
	}
}

func TestPlanVariableGroupChains(t *testing.T) {
	p, _ := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <entry>$e</entry> ELEMENT_AS $x IN "feed",
		      <v>$v</v> IN $x
		CONSTRUCT <r>$v</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %d", len(bindings))
	}
}

func TestPlanVariableGroupWithoutBinderFails(t *testing.T) {
	p, _ := newPlannerEnv(t)
	_, err := p.Plan(rewriteOf(t, `WHERE <v>$v</v> IN $nowhere CONSTRUCT <r>$v</r>`), nil, nil)
	if err == nil {
		t.Error("pattern over unbound variable should fail to plan")
	}
}

func TestPlanPreBoundInput(t *testing.T) {
	p, _ := newPlannerEnv(t)
	outer := xmldm.NewTuple(xmldm.Field{Name: "c", Value: xmldm.String("London")})
	input := &algebra.TupleScan{Tuples: []algebra.Binding{outer}}
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <r>$n</r>`), []string{"c"}, input)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// The outer binding's $c joins against the pattern's city.
	if len(bindings) != 1 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	if v, _ := bindings[0].Get("n"); xmldm.Stringify(v) != "Ada" {
		t.Errorf("n = %v", v)
	}
}

func TestPlanOrderPushdown(t *testing.T) {
	p, _ := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <r>$n</r> ORDER-BY $n DESCENDING`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OrderPushed {
		t.Errorf("order not pushed: %v", plan.Explain)
	}
	if !strings.Contains(strings.Join(plan.Explain, " "), "ORDER BY") {
		t.Errorf("explain = %v", plan.Explain)
	}
	// Multi-group plans must not claim pushed order.
	plan2, err := p.Plan(rewriteOf(t, `
		WHERE <customer><name>$n</name></customer> IN "crmdb",
		      <entry><v>$v</v></entry> IN "feed"
		CONSTRUCT <r>$n</r> ORDER-BY $n`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.OrderPushed {
		t.Error("multi-fragment plan claimed pushed order")
	}
}

func TestPlanUnknownSource(t *testing.T) {
	p, _ := newPlannerEnv(t)
	if _, err := p.Plan(rewriteOf(t, `WHERE <a>$x</a> IN "ghost" CONSTRUCT <r>$x</r>`), nil, nil); err == nil {
		t.Error("unknown source should fail planning")
	}
}

func TestAsRelationalUnwraps(t *testing.T) {
	db := rdb.NewDatabase("d")
	db.MustExec(`CREATE TABLE t (a INT)`)
	rel := sources.NewRelationalSource("s", db)
	wrapped := sources.NewNetworkSim(rel, 0, 1, 1)
	if asRelational(wrapped) == nil {
		t.Error("network sim should unwrap to relational")
	}
	xmlSrc, _ := sources.NewXMLSource("x", `<x/>`)
	if asRelational(xmlSrc) != nil {
		t.Error("XML source is not relational")
	}
	if asRelational(sources.NewDowned(rel)) != nil {
		// Downed does not expose Inner; relational compilation is moot
		// for a hard-down source anyway.
		t.Log("downed unwrapped (acceptable if Inner is added)")
	}
}

func TestReorderGroupsSelectiveFirst(t *testing.T) {
	q := xmlql.MustParse(`
		WHERE <entry><v>$v</v></entry> IN "feed",
		      <customer><name>$n</name><city>$c</city></customer> IN "crmdb",
		      $c = "London"
		CONSTRUCT <r>$n</r>`)
	d := mediator.Decompose(q)
	out := reorderGroups(d.Groups, d.Predicates)
	if out[0].Source != "crmdb" {
		t.Errorf("selective group (covers the predicate) should come first, got %s", out[0].Source)
	}
	// Variable groups follow their binder even when the binder reorders.
	q2 := xmlql.MustParse(`
		WHERE <entry>$x</entry> ELEMENT_AS $e IN "feed",
		      <v>$v</v> IN $e,
		      <customer><city>"London"</city><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <r>$n</r>`)
	d2 := mediator.Decompose(q2)
	out2 := reorderGroups(d2.Groups, d2.Predicates)
	binderPos, varPos := -1, -1
	for i, g := range out2 {
		if g.Source == "feed" {
			binderPos = i
		}
		if g.Var == "e" {
			varPos = i
		}
	}
	if binderPos < 0 || varPos < 0 || varPos < binderPos {
		t.Errorf("var group before binder: order %v, %v", binderPos, varPos)
	}
}

func TestReorderDisabledKeepsQueryOrder(t *testing.T) {
	p, _ := newPlannerEnv(t)
	p.Opts.ReorderJoins = false
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <entry><v>$v</v></entry> IN "feed",
		      <customer><id>$v</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <r>$n</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sources[0] != "feed" {
		t.Errorf("query order not kept: %v", plan.Sources)
	}
	// Same answers either way.
	p.Opts.ReorderJoins = true
	plan2, err := p.Plan(rewriteOf(t, `
		WHERE <entry><v>$v</v></entry> IN "feed",
		      <customer><id>$v</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <r>$n</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := algebra.Drain(&algebra.Context{}, plan2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Errorf("reordering changed the answer: %d vs %d", len(b1), len(b2))
	}
}

func TestPlanPredicateWithUnboundVarStillTotal(t *testing.T) {
	p, _ := newPlannerEnv(t)
	plan, err := p.Plan(rewriteOf(t, `
		WHERE <entry><v>$v</v></entry> IN "feed", $ghost = 1
		CONSTRUCT <r>$v</r>`), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := algebra.Drain(&algebra.Context{}, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// Null-comparison semantics: the predicate is false, zero rows, no
	// error.
	if len(bindings) != 0 {
		t.Errorf("bindings = %d", len(bindings))
	}
}
