// Package opt is the internal query optimizer (§4: "an internal query
// optimizer that can address the varying query capabilities of different
// data sources"). Given a conjunctive rewrite from the mediator it
// builds a physical-algebra plan: for each source it pushes the largest
// fragment the source's capabilities allow (SQL generation for
// relational sources, whole-document export plus mediator-side pattern
// matching for the rest), places the remaining predicates as early as
// their variables permit, and joins the per-source streams.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mediator"
	"repro/internal/sqlgen"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Access is how plan leaves reach data at run time. The execution layer
// implements it with prefetching, availability policy, and the local
// materialized store.
type Access interface {
	// Roots returns the root values to match patterns against for a
	// named source (or fallback mediated schema).
	Roots(source string, req catalog.Request) ([]xmldm.Value, error)
}

// Options toggle optimizations — the ablation knobs for experiment E5.
type Options struct {
	// PushSelections pushes predicates into capable sources.
	PushSelections bool
	// PushProjections narrows SQL fragments to the needed columns.
	PushProjections bool
	// PushOrder pushes ORDER BY into a single-fragment plan.
	PushOrder bool
	// ReorderJoins processes the most selective source groups first
	// (more coverable predicates and literal constraints = earlier), so
	// joins stream small sides; variable-targeted groups stay after
	// their binders. Answers are order-insensitive at this level — the
	// engine sorts after construction — so reordering is safe.
	ReorderJoins bool
	// Parallelism is the intra-query degree of parallelism: > 1 makes
	// the planner place exchange operators and partitioned joins (see
	// parallel.go); <= 1 keeps plans serial. The engine stamps it from
	// its resolved configuration before planning.
	Parallelism int
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{PushSelections: true, PushProjections: true, PushOrder: true, ReorderJoins: true}
}

// FetchSpec names one source request a plan will perform; the executor
// prefetches them in parallel.
type FetchSpec struct {
	Source string
	Req    catalog.Request
}

// Plan is a compiled conjunctive query.
type Plan struct {
	// Root produces the bindings.
	Root algebra.Operator
	// Construct and OrderBy come from the rewrite (already substituted).
	Construct *xmlql.TmplElem
	OrderBy   []xmlql.OrderKey
	// OrderPushed reports that result order already satisfies OrderBy.
	OrderPushed bool
	// Fetches lists the source requests for parallel prefetch.
	Fetches []FetchSpec
	// Explain describes the chosen access paths, one line per fragment.
	Explain []string
	// Labels attaches the access-path description to the leaf operator
	// that performs it, for EXPLAIN trees (algebra.Instrument consumes
	// it to annotate plan leaves with their source or SQL fragment).
	Labels map[algebra.Operator]string
	// Sources lists the distinct sources/schemas the plan touches.
	Sources []string
}

// label records an access-path description for an operator.
func (p *Plan) label(op algebra.Operator, desc string) {
	if p.Labels == nil {
		p.Labels = make(map[algebra.Operator]string)
	}
	p.Labels[op] = desc
}

// Planner compiles rewrites into plans.
type Planner struct {
	Cat    *catalog.Catalog
	Access Access
	Opts   Options
}

// New creates a planner with default options.
func New(cat *catalog.Catalog, access Access) *Planner {
	return &Planner{Cat: cat, Access: access, Opts: DefaultOptions()}
}

// Plan compiles one conjunctive rewrite. preBound lists variables whose
// values the initial input already carries (the outer binding of a
// correlated subquery); input is that initial operator (nil means a
// single empty binding).
func (p *Planner) Plan(rw mediator.Rewrite, preBound []string, input algebra.Operator) (*Plan, error) {
	d := mediator.Decompose(rw.Query)
	plan := &Plan{Construct: rw.Query.Construct, OrderBy: rw.Query.OrderBy}

	bound := map[string]bool{}
	for _, v := range preBound {
		bound[v] = true
	}
	pendingPreds := make([]xmlql.Expr, len(d.Predicates))
	copy(pendingPreds, d.Predicates)

	acc := input
	seenSources := map[string]bool{}

	singleFragment := len(d.Groups) == 1 && len(d.Groups[0].Patterns) == 1 && d.Groups[0].Source != ""

	groups := d.Groups
	if p.Opts.ReorderJoins {
		groups = reorderGroups(groups, d.Predicates)
	}
	for _, g := range groups {
		if g.Source != "" && !seenSources[strings.ToLower(g.Source)] {
			seenSources[strings.ToLower(g.Source)] = true
			plan.Sources = append(plan.Sources, g.Source)
		}
		if g.Var != "" {
			// Patterns over a bound variable's content chain onto the
			// accumulated plan directly.
			if acc == nil {
				return nil, fmt.Errorf("opt: pattern IN $%s has no binding for the variable", g.Var)
			}
			for _, pat := range g.Patterns {
				acc = &algebra.Match{Input: acc, Pattern: pat, SourceVar: g.Var}
				markBound(bound, pat.Vars())
				plan.Explain = append(plan.Explain, fmt.Sprintf("match <%s> in $%s", pat.Tag, g.Var))
			}
			acc = p.applyReadyPreds(acc, &pendingPreds, bound)
			continue
		}

		groupPlan, err := p.planSourceGroup(plan, g, &pendingPreds, bound, singleFragment && p.Opts.PushOrder, rw.Query.OrderBy)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = groupPlan
		} else {
			acc = &algebra.HashJoin{Left: acc, Right: groupPlan}
		}
		acc = p.applyReadyPreds(acc, &pendingPreds, bound)
	}

	if acc == nil {
		acc = &algebra.Singleton{}
	}
	// Any predicates still pending reference unbound variables; under
	// Null-comparison semantics they are simply evaluated (false unless
	// existence-style) so queries stay total.
	for _, pred := range pendingPreds {
		acc = &algebra.Select{Input: acc, Pred: pred}
	}
	plan.Root = acc
	if p.Opts.Parallelism > 1 {
		plan.Root = p.parallelize(plan, plan.Root)
	}
	return plan, nil
}

// planSourceGroup builds the access path for one source's patterns.
func (p *Planner) planSourceGroup(plan *Plan, g *mediator.Group, pending *[]xmlql.Expr,
	bound map[string]bool, tryPushOrder bool, orderBy []xmlql.OrderKey) (algebra.Operator, error) {

	isSchema := p.Cat.IsSchema(g.Source)
	var rel catalog.Relational
	var caps catalog.Capabilities
	if !isSchema {
		src, err := p.Cat.Source(g.Source)
		if err != nil {
			return nil, err
		}
		caps = src.Capabilities()
		rel = asRelational(src)
	}

	var groupPlan algebra.Operator
	for _, pat := range g.Patterns {
		patVars := pat.Vars()
		var leaf algebra.Operator

		if rel != nil {
			// Offer the predicates this pattern alone can satisfy.
			offer, offerIdx := predsFor(*pending, patVars)
			sgOpts := sqlgen.Options{
				PushSelections:  p.Opts.PushSelections,
				PushProjections: p.Opts.PushProjections,
			}
			if tryPushOrder {
				sgOpts.OrderBy = orderBy
			}
			frag, rest, err := sqlgen.Compile(rel.Descriptors(), caps, pat, offer, sgOpts)
			if err == nil {
				consumed := len(offer) - len(rest)
				if consumed > 0 {
					removePreds(pending, offerIdx, offer, rest)
				}
				spec := FetchSpec{Source: g.Source, Req: catalog.Request{Native: frag.SQL, Collection: frag.Table}}
				plan.Fetches = append(plan.Fetches, spec)
				plan.Explain = append(plan.Explain, fmt.Sprintf("pushdown %s: %s", g.Source, frag.SQL))
				if frag.PushedOrder {
					plan.OrderPushed = true
				}
				leaf = fragmentScan(p.Access, spec, frag)
				plan.label(leaf, fmt.Sprintf("pushdown %s: %s", g.Source, frag.SQL))
			}
		}
		if leaf == nil {
			// Full export + mediator-side matching.
			spec := FetchSpec{Source: g.Source, Req: catalog.Request{}}
			plan.Fetches = append(plan.Fetches, spec)
			what := "fetch"
			if isSchema {
				what = "materialize schema"
			}
			plan.Explain = append(plan.Explain, fmt.Sprintf("%s %s, match <%s>", what, g.Source, pat.Tag))
			access := p.Access
			leaf = &algebra.Match{
				Input:   &algebra.Singleton{},
				Pattern: pat,
				Roots: func(*algebra.Context) ([]xmldm.Value, error) {
					return access.Roots(spec.Source, spec.Req)
				},
			}
			plan.label(leaf, fmt.Sprintf("%s %s", what, g.Source))
		}
		markBound(bound, patVars)
		if groupPlan == nil {
			groupPlan = leaf
		} else {
			groupPlan = &algebra.HashJoin{Left: groupPlan, Right: leaf}
		}
	}
	return groupPlan, nil
}

// reorderGroups emits source-targeted groups by descending selectivity
// score (coverable predicates count double; literal constraints in the
// patterns count once), inserting each variable-targeted group as soon
// as some already-emitted group binds its variable. Ties keep query
// order, so plans stay deterministic.
func reorderGroups(groups []*mediator.Group, preds []xmlql.Expr) []*mediator.Group {
	score := func(g *mediator.Group) int {
		vars := map[string]bool{}
		for _, v := range g.GroupVars() {
			vars[v] = true
		}
		s := 0
		for _, pred := range preds {
			pv := xmlql.ExprVars(pred)
			if len(pv) == 0 {
				continue
			}
			covered := true
			for _, v := range pv {
				if !vars[v] {
					covered = false
					break
				}
			}
			if covered {
				s += 2
			}
		}
		for _, pat := range g.Patterns {
			s += literalConstraints(pat)
		}
		return s
	}

	var sourceGroups []*mediator.Group
	var varGroups []*mediator.Group
	for _, g := range groups {
		if g.Var != "" {
			varGroups = append(varGroups, g)
		} else {
			sourceGroups = append(sourceGroups, g)
		}
	}
	sort.SliceStable(sourceGroups, func(i, j int) bool {
		return score(sourceGroups[i]) > score(sourceGroups[j])
	})

	bound := map[string]bool{}
	var out []*mediator.Group
	emit := func(g *mediator.Group) {
		out = append(out, g)
		for _, v := range g.GroupVars() {
			bound[v] = true
		}
	}
	flushVarGroups := func() {
		for progress := true; progress; {
			progress = false
			for i, vg := range varGroups {
				if vg != nil && bound[vg.Var] {
					emit(vg)
					varGroups[i] = nil
					progress = true
				}
			}
		}
	}
	for _, g := range sourceGroups {
		emit(g)
		flushVarGroups()
	}
	// Any leftover variable groups (unbound binder) keep their place at
	// the end; planning reports the error with the original message.
	for _, vg := range varGroups {
		if vg != nil {
			out = append(out, vg)
		}
	}
	return out
}

// literalConstraints counts the text-content and attribute-literal
// constraints in a pattern, a proxy for its selectivity.
func literalConstraints(p *xmlql.ElemPattern) int {
	n := 0
	for _, a := range p.Attrs {
		if a.Var == "" {
			n++
		}
	}
	for _, c := range p.Content {
		switch x := c.(type) {
		case *xmlql.TextContent:
			n++
		case *xmlql.ChildPattern:
			n += literalConstraints(x.Elem)
		}
	}
	return n
}

// asRelational finds the Relational interface through transport wrappers
// (network simulation and the like expose Inner); the compiler needs the
// layout descriptors even when the source sits behind a simulated WAN.
func asRelational(src catalog.Source) catalog.Relational {
	for {
		if rel, ok := src.(catalog.Relational); ok {
			return rel
		}
		w, ok := src.(interface{ Inner() catalog.Source })
		if !ok {
			return nil
		}
		src = w.Inner()
	}
}

// applyReadyPreds wraps op in Selects for every pending predicate whose
// variables are all bound, removing them from pending.
func (p *Planner) applyReadyPreds(op algebra.Operator, pending *[]xmlql.Expr, bound map[string]bool) algebra.Operator {
	var still []xmlql.Expr
	for _, pred := range *pending {
		ready := true
		for _, v := range xmlql.ExprVars(pred) {
			if !bound[v] {
				ready = false
				break
			}
		}
		if ready {
			op = &algebra.Select{Input: op, Pred: pred}
		} else {
			still = append(still, pred)
		}
	}
	*pending = still
	return op
}

func markBound(bound map[string]bool, vars []string) {
	for _, v := range vars {
		bound[v] = true
	}
}

// predsFor selects the pending predicates whose variables are all within
// vars, returning them and their indexes.
func predsFor(pending []xmlql.Expr, vars []string) ([]xmlql.Expr, []int) {
	set := map[string]bool{}
	for _, v := range vars {
		set[v] = true
	}
	var out []xmlql.Expr
	var idx []int
	for i, pred := range pending {
		ok := true
		pv := xmlql.ExprVars(pred)
		if len(pv) == 0 {
			ok = false // constant predicates stay in the mediator
		}
		for _, v := range pv {
			if !set[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, pred)
			idx = append(idx, i)
		}
	}
	return out, idx
}

// removePreds deletes from pending the offered predicates that were
// consumed (offer minus rest), by index.
func removePreds(pending *[]xmlql.Expr, offerIdx []int, offer, rest []xmlql.Expr) {
	restSet := map[xmlql.Expr]bool{}
	for _, r := range rest {
		restSet[r] = true
	}
	var drop []int
	for i, o := range offer {
		if !restSet[o] {
			drop = append(drop, offerIdx[i])
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(drop)))
	for _, di := range drop {
		*pending = append((*pending)[:di], (*pending)[di+1:]...)
	}
}

// fragmentScan builds the leaf operator that runs a compiled SQL
// fragment and turns the exported rows into bindings directly — no
// pattern matching needed, because the compiler chose the output
// aliases.
func fragmentScan(access Access, spec FetchSpec, frag *sqlgen.Fragment) algebra.Operator {
	vars := make([]string, 0, len(frag.VarColumns))
	for v := range frag.VarColumns {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return &algebra.FuncScan{
		OpenFn: func(ctx *algebra.Context) (func() (algebra.Binding, error), error) {
			roots, err := access.Roots(spec.Source, spec.Req)
			if err != nil {
				return nil, err
			}
			var rows []*xmldm.Node
			for _, r := range roots {
				if doc, ok := r.(*xmldm.Node); ok {
					rows = append(rows, doc.ChildrenNamed(frag.RowElement)...)
				}
			}
			i := 0
			return func() (algebra.Binding, error) {
				if i >= len(rows) {
					return nil, nil
				}
				row := rows[i]
				i++
				b := xmldm.NewTuple()
				for _, v := range vars {
					col := row.Child(frag.VarColumns[v])
					if col == nil {
						b = b.With(v, xmldm.Null{})
						continue
					}
					b = b.With(v, xmldm.String(col.Text()))
				}
				return b, nil
			}, nil
		},
	}
}
