// Parallelization pass: after a plan is built, the planner replaces its
// hot operators with parallel variants when Options.Parallelism > 1.
// The degree is not static configuration: the engine stamps
// Options.Parallelism per query, per rewrite, from the degree the
// shared inter-query scheduler (internal/sched) granted at that operator
// boundary — so concurrent queries divide a global worker budget instead
// of each claiming the configured maximum, and EXPLAIN's workers=N
// reflects the granted, not requested, degree.
// Hash joins become ParallelHashJoin (partitioned build+probe, routed by
// join-key hash so equal keys co-locate); maximal chains of per-tuple
// stages — Select, Project, Match over a bound variable — are lifted
// into a round-robin Exchange whose workers each run a private clone of
// the chain; leaf Matches fan their candidate elements across workers.
// Every replacement merges in input order, so a parallel plan's output
// is byte-identical to its serial twin — the determinism guarantee that
// lets Sort, Limit, and the top-level construct ignore parallelism.
//
// Selects whose predicate contains an aggregate stay serial: AggExpr
// evaluation runs a correlated subquery through the engine's
// SubqueryEval, which mutates per-query state (the trace span) that is
// not safe to share across workers.
package opt

import (
	"strings"

	"repro/internal/algebra"
	"repro/internal/xmlql"
)

// parallelize rewrites op (and its subtree) for the configured degree of
// parallelism, labeling the new exchange operators for EXPLAIN.
func (p *Planner) parallelize(plan *Plan, op algebra.Operator) algebra.Operator {
	n := p.Opts.Parallelism
	stages, below := stageChain(op)
	if len(stages) > 0 {
		ex := &algebra.Exchange{
			Input:   p.parallelize(plan, below),
			Workers: n,
			Build:   stageBuilder(stages),
		}
		names := make([]string, len(stages))
		for i, s := range stages {
			names[i] = stageName(s)
		}
		plan.label(ex, "runs "+strings.Join(names, "→"))
		return ex
	}
	switch x := op.(type) {
	case *algebra.HashJoin:
		return &algebra.ParallelHashJoin{
			Left:    p.parallelize(plan, x.Left),
			Right:   p.parallelize(plan, x.Right),
			On:      x.On,
			Workers: n,
		}
	case *algebra.Select: // aggregate-bearing: keep serial, recurse below
		x.Input = p.parallelize(plan, x.Input)
		return x
	case *algebra.Match:
		if x.SourceVar == "" {
			// Source-scan leaf: fan its candidate elements out instead
			// of exchanging (there is no tuple stream below to split).
			x.Workers = n
			return x
		}
		x.Input = p.parallelize(plan, x.Input)
		return x
	default:
		// FuncScan, Singleton, TupleScan: leaves stay as they are.
		return op
	}
}

// stageChain collects the maximal top-down chain of per-tuple,
// order-preserving stages starting at op, returning the chain and the
// first operator below it. An empty chain means op itself is not a
// parallelizable stage.
func stageChain(op algebra.Operator) ([]algebra.Operator, algebra.Operator) {
	var stages []algebra.Operator
	for {
		switch x := op.(type) {
		case *algebra.Select:
			if exprHasAgg(x.Pred) {
				return stages, op
			}
			stages = append(stages, x)
			op = x.Input
		case *algebra.Project:
			stages = append(stages, x)
			op = x.Input
		case *algebra.Match:
			if x.SourceVar == "" {
				return stages, op
			}
			stages = append(stages, x)
			op = x.Input
		default:
			return stages, op
		}
	}
}

// stageBuilder returns the Exchange Build function: given a worker's
// private source it reconstructs the stage chain bottom-up with fresh
// operator instances. The originals serve only as descriptors — their
// exported fields (predicates, patterns, variable lists) are read-only
// under evaluation, so sharing them across workers is safe.
func stageBuilder(stages []algebra.Operator) func(src algebra.Operator) algebra.Operator {
	return func(src algebra.Operator) algebra.Operator {
		out := src
		for i := len(stages) - 1; i >= 0; i-- {
			switch s := stages[i].(type) {
			case *algebra.Select:
				out = &algebra.Select{Input: out, Pred: s.Pred}
			case *algebra.Project:
				out = &algebra.Project{Input: out, Vars: s.Vars}
			case *algebra.Match:
				out = &algebra.Match{Input: out, Pattern: s.Pattern, SourceVar: s.SourceVar}
			}
		}
		return out
	}
}

// stageName names a stage for the exchange's EXPLAIN label.
func stageName(op algebra.Operator) string {
	switch x := op.(type) {
	case *algebra.Select:
		return "Select(" + xmlql.ExprString(x.Pred) + ")"
	case *algebra.Project:
		return "Project(" + strings.Join(x.Vars, ",") + ")"
	case *algebra.Match:
		return "Match(<" + x.Pattern.Tag.String() + "> in $" + x.SourceVar + ")"
	default:
		return "?"
	}
}

// exprHasAgg reports whether the expression contains an aggregate (and
// so a correlated subquery the workers must not run concurrently).
func exprHasAgg(e xmlql.Expr) bool {
	switch x := e.(type) {
	case *xmlql.AggExpr:
		return true
	case *xmlql.BinExpr:
		return exprHasAgg(x.L) || exprHasAgg(x.R)
	case *xmlql.FuncExpr:
		for _, a := range x.Args {
			if exprHasAgg(a) {
				return true
			}
		}
	}
	return false
}
