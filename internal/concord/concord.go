// Package concord implements the concordance database of §3.2: "a
// separate data store that is created to serve to match records from two
// or more different original data sources", recording determinations of
// object identity so that "past human decisions are reapplied" during
// the extraction phase. Decisions carry provenance (human or automatic)
// and can be revoked, which is the hook the lineage subsystem's
// rollback uses.
package concord

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Key identifies a record in its source.
type Key struct {
	Source string
	ID     string
}

// String renders the key as source/id.
func (k Key) String() string { return k.Source + "/" + k.ID }

// Origin says who made a determination.
type Origin string

// The determination origins.
const (
	OriginHuman Origin = "human"
	OriginAuto  Origin = "auto"
)

// Decision is one recorded determination about a pair of records.
type Decision struct {
	A, B   Key
	Same   bool
	Origin Origin
	At     time.Time
	Note   string
}

// DB is an in-memory concordance database, safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	decisions map[[2]Key]Decision
	clock     func() time.Time

	hits, misses int64
}

// New creates an empty concordance database.
func New() *DB {
	return &DB{decisions: map[[2]Key]Decision{}, clock: time.Now}
}

// SetClock replaces the time source (tests).
func (db *DB) SetClock(fn func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clock = fn
}

// pairKey orders the two keys canonically so lookups are symmetric.
func pairKey(a, b Key) [2]Key {
	if a.Source > b.Source || (a.Source == b.Source && a.ID > b.ID) {
		a, b = b, a
	}
	return [2]Key{a, b}
}

// Record stores a determination (overwriting any previous one for the
// pair).
func (db *DB) Record(a, b Key, same bool, origin Origin, note string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pk := pairKey(a, b)
	db.decisions[pk] = Decision{A: pk[0], B: pk[1], Same: same, Origin: origin, At: db.clock(), Note: note}
}

// Lookup returns the determination for a pair, if recorded. It counts
// hits and misses so the decision-reuse rate is measurable (E6).
func (db *DB) Lookup(a, b Key) (Decision, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, ok := db.decisions[pairKey(a, b)]
	if ok {
		db.hits++
	} else {
		db.misses++
	}
	return d, ok
}

// Revoke removes a determination; rollback support.
func (db *DB) Revoke(a, b Key) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	pk := pairKey(a, b)
	if _, ok := db.decisions[pk]; !ok {
		return false
	}
	delete(db.decisions, pk)
	return true
}

// Len reports the number of recorded determinations.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.decisions)
}

// Stats reports lookup hits and misses since creation.
func (db *DB) Stats() (hits, misses int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hits, db.misses
}

// Decisions returns all determinations, ordered by key.
func (db *DB) Decisions() []Decision {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Decision, 0, len(db.decisions))
	for _, d := range db.decisions {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A.String() < out[j].A.String()
		}
		return out[i].B.String() < out[j].B.String()
	})
	return out
}

// HumanDecisions counts determinations with human origin.
func (db *DB) HumanDecisions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, d := range db.decisions {
		if d.Origin == OriginHuman {
			n++
		}
	}
	return n
}

// ForSource returns the determinations touching a source, for audits.
func (db *DB) ForSource(source string) []Decision {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Decision
	for _, d := range db.decisions {
		if strings.EqualFold(d.A.Source, source) || strings.EqualFold(d.B.Source, source) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].A.String() < out[j].A.String() })
	return out
}
