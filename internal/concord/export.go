package concord

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/xmldm"
	"repro/internal/xmlparse"
)

// Export and Import serialize the concordance database as XML. §3.2
// notes that "large amounts of human effort may be required to develop a
// concordance database" — that investment must survive process
// restarts, travel between deployments, and be auditable, so the store
// round-trips through the system's own data model.

// ExportXML writes every determination as an XML document.
func (db *DB) ExportXML(w io.Writer) error {
	root := &xmldm.Node{Name: "concordance"}
	for _, d := range db.Decisions() {
		e := &xmldm.Node{Name: "determination", Parent: root, Attrs: []xmldm.Attr{
			{Name: "same", Value: strconv.FormatBool(d.Same)},
			{Name: "origin", Value: string(d.Origin)},
			{Name: "at", Value: d.At.UTC().Format(time.RFC3339Nano)},
		}}
		addKey := func(tag string, k Key) {
			kn := &xmldm.Node{Name: tag, Parent: e, Attrs: []xmldm.Attr{
				{Name: "source", Value: k.Source},
				{Name: "id", Value: k.ID},
			}}
			e.Children = append(e.Children, kn)
		}
		addKey("a", d.A)
		addKey("b", d.B)
		if d.Note != "" {
			note := &xmldm.Node{Name: "note", Parent: e, Children: []xmldm.Value{xmldm.String(d.Note)}}
			e.Children = append(e.Children, note)
		}
		root.Children = append(root.Children, e)
	}
	xmldm.Finalize(root)
	return xmlparse.Serialize(w, root, 2)
}

// ImportXML merges determinations from an exported document into the
// database (newer writes win over what the file carries for the same
// pair only if imported after; Import uses Record semantics, i.e. the
// imported determination replaces any existing one for the pair). It
// returns the number of determinations imported.
func (db *DB) ImportXML(r io.Reader) (int, error) {
	doc, err := xmlparse.Parse(r)
	if err != nil {
		return 0, err
	}
	if doc.Name != "concordance" {
		return 0, fmt.Errorf("concord: expected <concordance> root, found <%s>", doc.Name)
	}
	n := 0
	for _, e := range doc.ChildrenNamed("determination") {
		sameStr, _ := e.Attr("same")
		same, err := strconv.ParseBool(sameStr)
		if err != nil {
			return n, fmt.Errorf("concord: bad same attribute %q", sameStr)
		}
		originStr, _ := e.Attr("origin")
		origin := Origin(originStr)
		if origin != OriginHuman && origin != OriginAuto {
			return n, fmt.Errorf("concord: bad origin %q", originStr)
		}
		key := func(tag string) (Key, error) {
			kn := e.Child(tag)
			if kn == nil {
				return Key{}, fmt.Errorf("concord: determination missing <%s>", tag)
			}
			src, _ := kn.Attr("source")
			id, _ := kn.Attr("id")
			if src == "" || id == "" {
				return Key{}, fmt.Errorf("concord: determination with empty key")
			}
			return Key{Source: src, ID: id}, nil
		}
		a, err := key("a")
		if err != nil {
			return n, err
		}
		b, err := key("b")
		if err != nil {
			return n, err
		}
		note := ""
		if nn := e.Child("note"); nn != nil {
			note = nn.Text()
		}
		at := time.Now()
		if atStr, ok := e.Attr("at"); ok {
			if parsed, err := time.Parse(time.RFC3339Nano, atStr); err == nil {
				at = parsed
			}
		}
		db.recordAt(a, b, same, origin, note, at)
		n++
	}
	return n, nil
}

// recordAt stores a determination with an explicit timestamp (imports
// preserve the original decision time).
func (db *DB) recordAt(a, b Key, same bool, origin Origin, note string, at time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pk := pairKey(a, b)
	db.decisions[pk] = Decision{A: pk[0], B: pk[1], Same: same, Origin: origin, At: at, Note: note}
}
