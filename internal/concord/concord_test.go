package concord

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndLookupSymmetric(t *testing.T) {
	db := New()
	a := Key{Source: "crm", ID: "1"}
	b := Key{Source: "web", ID: "x"}
	db.Record(a, b, true, OriginHuman, "reviewed")
	d, ok := db.Lookup(a, b)
	if !ok || !d.Same || d.Origin != OriginHuman {
		t.Fatalf("lookup = %+v, %v", d, ok)
	}
	// Symmetric lookup.
	d2, ok := db.Lookup(b, a)
	if !ok || d2.A != d.A || d2.B != d.B {
		t.Errorf("reversed lookup differs: %+v", d2)
	}
	if db.Len() != 1 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestOverwriteAndRevoke(t *testing.T) {
	db := New()
	a, b := Key{"s", "1"}, Key{"s", "2"}
	db.Record(a, b, true, OriginAuto, "")
	db.Record(b, a, false, OriginHuman, "corrected")
	d, _ := db.Lookup(a, b)
	if d.Same || d.Origin != OriginHuman {
		t.Errorf("overwrite failed: %+v", d)
	}
	if !db.Revoke(a, b) {
		t.Error("revoke should succeed")
	}
	if db.Revoke(a, b) {
		t.Error("double revoke should fail")
	}
	if _, ok := db.Lookup(a, b); ok {
		t.Error("revoked decision still visible")
	}
}

func TestStatsAndCounts(t *testing.T) {
	db := New()
	now := time.Unix(42, 0)
	db.SetClock(func() time.Time { return now })
	a, b, c := Key{"s", "1"}, Key{"s", "2"}, Key{"t", "3"}
	db.Record(a, b, true, OriginAuto, "")
	db.Record(a, c, true, OriginHuman, "")
	db.Lookup(a, b)
	db.Lookup(b, c) // miss
	hits, misses := db.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
	if db.HumanDecisions() != 1 {
		t.Errorf("human = %d", db.HumanDecisions())
	}
	ds := db.Decisions()
	if len(ds) != 2 || !ds[0].At.Equal(now) {
		t.Errorf("decisions = %+v", ds)
	}
	if got := db.ForSource("T"); len(got) != 1 {
		t.Errorf("ForSource = %v", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := Key{"s", string(rune('a' + i%5))}
				b := Key{"t", string(rune('a' + (i+g)%5))}
				db.Record(a, b, i%2 == 0, OriginAuto, "")
				db.Lookup(a, b)
			}
		}(g)
	}
	wg.Wait()
}

func TestExportImportRoundTrip(t *testing.T) {
	db := New()
	fixed := time.Date(2001, 4, 2, 12, 0, 0, 0, time.UTC)
	db.SetClock(func() time.Time { return fixed })
	db.Record(Key{"crm", "1"}, Key{"web", "a"}, true, OriginHuman, "reviewed by J")
	db.Record(Key{"crm", "2"}, Key{"web", "b"}, false, OriginAuto, `score 0.81 & "quoted"`)

	var buf bytes.Buffer
	if err := db.ExportXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<concordance>") || !strings.Contains(out, `origin="human"`) {
		t.Errorf("export = %s", out)
	}

	db2 := New()
	n, err := db2.ImportXML(strings.NewReader(out))
	if err != nil || n != 2 {
		t.Fatalf("import = %d, %v", n, err)
	}
	if db2.Len() != 2 || db2.HumanDecisions() != 1 {
		t.Errorf("imported state: len=%d human=%d", db2.Len(), db2.HumanDecisions())
	}
	d, ok := db2.Lookup(Key{"web", "a"}, Key{"crm", "1"})
	if !ok || !d.Same || d.Note != "reviewed by J" || !d.At.Equal(fixed) {
		t.Errorf("imported decision = %+v", d)
	}
	d2, _ := db2.Lookup(Key{"crm", "2"}, Key{"web", "b"})
	if d2.Same || d2.Note != `score 0.81 & "quoted"` {
		t.Errorf("escaping broke the note: %+v", d2)
	}

	// Re-export is stable.
	var buf2 bytes.Buffer
	if err := db2.ExportXML(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Errorf("re-export differs:\n%s\nvs\n%s", out, buf2.String())
	}
}

func TestImportErrors(t *testing.T) {
	db := New()
	bad := []string{
		`not xml`,
		`<wrong/>`,
		`<concordance><determination same="maybe" origin="human"><a source="s" id="1"/><b source="t" id="2"/></determination></concordance>`,
		`<concordance><determination same="true" origin="alien"><a source="s" id="1"/><b source="t" id="2"/></determination></concordance>`,
		`<concordance><determination same="true" origin="human"><a source="s" id="1"/></determination></concordance>`,
		`<concordance><determination same="true" origin="human"><a source="" id=""/><b source="t" id="2"/></determination></concordance>`,
	}
	for _, s := range bad {
		if _, err := db.ImportXML(strings.NewReader(s)); err == nil {
			t.Errorf("ImportXML(%q) should fail", s)
		}
	}
}

func TestKeyString(t *testing.T) {
	if (Key{Source: "s", ID: "7"}).String() != "s/7" {
		t.Error("key string")
	}
}
